"""Documentation health: the docs/ tree, link integrity and doc coverage.

Wires ``tools/check_links.py`` and ``tools/check_docstrings.py`` into the
tier-1 suite so CI fails on a broken docs link or an undocumented public
API — the same checks the standalone scripts run.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docstrings  # noqa: E402
import check_links  # noqa: E402

REQUIRED_DOCS = (
    "docs/architecture.md",
    "docs/paper-mapping.md",
    "docs/backends.md",
    "docs/glossary.md",
)


def test_docs_tree_exists():
    for relative in REQUIRED_DOCS:
        path = REPO_ROOT / relative
        assert path.exists(), f"missing {relative}"
        assert path.read_text(encoding="utf-8").strip(), f"{relative} is empty"


def test_readme_points_into_docs():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for relative in REQUIRED_DOCS:
        assert relative in readme, f"README does not link {relative}"


def test_markdown_links_resolve():
    assert check_links.check() == []


def test_public_api_doc_coverage():
    assert check_docstrings.check() == []


def test_tools_run_as_scripts():
    """The CI steps invoke the tools directly; they must exit 0."""
    for tool in ("check_links.py", "check_docstrings.py"):
        completed = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / tool)],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
