"""The prepare-time static analyzer: negative corpus + MT-H positive sweep.

The negative corpus pins the error taxonomy of
``repro/compile/typecheck.py``: 25+ ill-typed statements, each asserting
that :class:`~repro.errors.TypeCheckError` is raised *at prepare time*
(no backend ever sees the statement) with a message naming the expected
fragment — including ambiguous references naming every candidate binding
and the same exception class arriving across the server wire.

The positive corpus is the paper's own workload: all 22 MT-H queries,
both scenarios, must pass the checker with zero diagnostics and return
exactly the rows a typecheck-disabled compile returns.
"""

from __future__ import annotations

import pytest

import repro.api as api
from repro.errors import TypeCheckError
from repro.mth.loader import load_mth
from repro.mth.queries import ALL_QUERY_IDS, query_text
from repro.server import serve
from repro.server.protocol import WIRE_CODES
from repro.sql.types import SQLType

from tests.conftest import build_paper_example

#: the paper's two scenarios: business alliance (uniform), research (zipf)
SCENARIOS = ("uniform", "zipf")


@pytest.fixture(scope="module")
def mt():
    """Running example plus one middleware-declared UDF (for signature checks)."""
    instance = build_paper_example()
    instance.execute_ddl(
        "CREATE FUNCTION taxed (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2) AS "
        "'SELECT $1 * $2' LANGUAGE SQL IMMUTABLE"
    )
    # pin the checker on explicitly: this suite tests the analyzer itself,
    # so it must hold even on the CI leg that exports the env knob as 0
    instance.compiler.typecheck = True
    return instance


@pytest.fixture(scope="module")
def conn(mt):
    connection = mt.connect(0, optimization="o4")
    connection.set_scope("IN (0, 1)")
    return connection


@pytest.fixture(scope="module", params=SCENARIOS)
def mth(request, tiny_tpch_data):
    instance = load_mth(data=tiny_tpch_data, tenants=4, distribution=request.param)
    instance.middleware.compiler.typecheck = True  # immune to the env knob
    return instance


# ---------------------------------------------------------------------------
# negative corpus: every statement must be rejected at prepare time
# ---------------------------------------------------------------------------

#: (sql, fragment expected somewhere in the TypeCheckError message)
ILL_TYPED = [
    # -- name resolution ----------------------------------------------------
    ("SELECT E_namee FROM Employees", "unknown column 'E_namee'"),
    ("SELECT e.nope FROM Employees e", "'e' has no column 'nope'"),
    ("SELECT x.E_name FROM Employees e", "unknown table or alias 'x'"),
    ("SELECT x.* FROM Employees e", "unknown table or alias 'x'"),
    (
        "SELECT E_name FROM Employees a, Employees b WHERE a.E_emp_id = b.E_emp_id",
        "ambiguous column reference 'E_name': resolves in bindings a, b",
    ),
    # -- comparisons over the coercion lattice ------------------------------
    ("SELECT E_name FROM Employees WHERE E_name = 1", "cannot compare VARCHAR with INTEGER"),
    ("SELECT E_name FROM Employees WHERE E_age = 'old'", "cannot compare INTEGER with VARCHAR"),
    (
        "SELECT E_name FROM Employees WHERE E_age BETWEEN 'a' AND 'b'",
        "cannot compare INTEGER with VARCHAR",
    ),
    ("SELECT E_name FROM Employees WHERE E_age IN ('x', 'y')", "cannot compare INTEGER with VARCHAR"),
    (
        "SELECT E_name FROM Employees WHERE E_age IN (SELECT E_name FROM Employees)",
        "cannot compare INTEGER with VARCHAR",
    ),
    (
        "SELECT E_name FROM Employees WHERE E_age = (SELECT MIN(E_name) FROM Employees)",
        "cannot compare INTEGER with VARCHAR",
    ),
    # -- predicate shape ----------------------------------------------------
    ("SELECT E_name FROM Employees WHERE E_name", "the WHERE clause must be a boolean, not VARCHAR"),
    (
        "SELECT E_age FROM Employees GROUP BY E_age HAVING E_age + 1",
        "the HAVING clause must be a boolean, not INTEGER",
    ),
    (
        "SELECT E_name FROM Employees WHERE E_age > 1 AND E_name",
        "argument of AND must be a boolean, not VARCHAR",
    ),
    ("SELECT E_name FROM Employees WHERE NOT E_name", "argument of NOT must be a boolean"),
    (
        "SELECT CASE WHEN E_name THEN 1 ELSE 2 END FROM Employees",
        "CASE WHEN condition must be a boolean, not VARCHAR",
    ),
    # -- aggregate placement ------------------------------------------------
    (
        "SELECT E_name FROM Employees WHERE SUM(E_salary) > 10",
        "aggregate function SUM is not allowed in the WHERE clause",
    ),
    (
        "SELECT COUNT(*) FROM Employees GROUP BY MAX(E_age)",
        "aggregate function MAX is not allowed in the GROUP BY clause",
    ),
    (
        "SELECT E_name FROM Employees e JOIN Roles r ON SUM(e.E_role_id) = r.R_role_id",
        "aggregate function SUM is not allowed in a join condition",
    ),
    (
        "SELECT SUM(MAX(E_salary)) FROM Employees",
        "aggregate function MAX cannot be nested inside another aggregate",
    ),
    # -- the grouped-placement rule -----------------------------------------
    (
        "SELECT E_name, SUM(E_salary) FROM Employees GROUP BY E_age",
        "column E_name must appear in the GROUP BY clause",
    ),
    (
        "SELECT E_name, COUNT(*) FROM Employees",
        "column E_name must appear in the GROUP BY clause",
    ),
    (
        "SELECT E_age, COUNT(*) FROM Employees GROUP BY E_age HAVING E_name = 'x'",
        "column E_name must appear in the GROUP BY clause",
    ),
    (
        "SELECT E_age, COUNT(*) FROM Employees GROUP BY E_age ORDER BY E_salary",
        "column E_salary must appear in the GROUP BY clause",
    ),
    # -- aggregate/function argument types ----------------------------------
    ("SELECT SUM(E_name) FROM Employees", "SUM requires a numeric argument, not VARCHAR"),
    ("SELECT AVG(R_name) FROM Roles", "AVG requires a numeric argument, not VARCHAR"),
    ("SELECT MIN(E_age, E_salary) FROM Employees", "MIN takes exactly one argument, got 2"),
    # -- UDF signatures (declared through CREATE FUNCTION) ------------------
    ("SELECT taxed(E_salary) FROM Employees", "function taxed takes 2 argument(s), got 1"),
    (
        "SELECT taxed(E_name, 0) FROM Employees",
        "argument 1 of taxed expects DECIMAL, got VARCHAR",
    ),
    # -- arithmetic and string operators ------------------------------------
    ("SELECT E_name + 1 FROM Employees", "VARCHAR is not numeric"),
    ("SELECT E_age || E_name FROM Employees", "|| requires strings, not INTEGER"),
    ("SELECT -E_name FROM Employees", "unary '-'"),
    ("SELECT E_name FROM Employees WHERE E_age LIKE 'x%'", "LIKE requires strings, not INTEGER"),
    ("SELECT EXTRACT(YEAR FROM E_age) FROM Employees", "EXTRACT requires a date, not INTEGER"),
    ("SELECT SUBSTRING(E_age FROM 1 FOR 2) FROM Employees", "SUBSTRING requires a string"),
    ("SELECT SUBSTRING(E_name FROM E_name) FROM Employees", "SUBSTRING bounds must be numeric"),
    # -- bind-parameter slots -----------------------------------------------
]


def test_conflicting_parameter_slot_rejected(conn):
    with pytest.raises(TypeCheckError) as excinfo:
        conn.query(
            "SELECT E_name FROM Employees WHERE E_name = ?1 AND E_age < ?1",
            parameters=("x",),
        )
    assert "parameter 1 is used as both VARCHAR and INTEGER" in str(excinfo.value)


@pytest.mark.parametrize(
    "sql, fragment", ILL_TYPED, ids=[sql[:48] for sql, _ in ILL_TYPED]
)
def test_ill_typed_statement_rejected_at_prepare(conn, sql, fragment):
    with pytest.raises(TypeCheckError) as excinfo:
        conn.query(sql)
    assert fragment in str(excinfo.value), (
        f"expected {fragment!r} in {excinfo.value}"
    )


#: date-typed negatives need MT-H (the running example has no DATE column)
ILL_TYPED_DATES = [
    ("SELECT l_shipdate * 2 FROM lineitem", "cannot apply '*' to DATE and INTEGER"),
    ("SELECT l_shipdate + l_commitdate FROM lineitem", "cannot apply '+' to DATE and DATE"),
    ("SELECT l_quantity FROM lineitem WHERE l_shipdate = 5", "cannot compare DATE with INTEGER"),
]


@pytest.mark.parametrize("sql, fragment", ILL_TYPED_DATES, ids=["mul", "add", "cmp"])
def test_ill_typed_date_arithmetic_rejected(mth, sql, fragment):
    connection = mth.middleware.connect(1, optimization="o4")
    connection.set_scope("IN ()")
    with pytest.raises(TypeCheckError) as excinfo:
        connection.query(sql)
    assert fragment in str(excinfo.value)


def test_error_carries_the_offending_fragment(conn):
    with pytest.raises(TypeCheckError) as excinfo:
        conn.query("SELECT E_name FROM Employees WHERE E_name = 1")
    assert excinfo.value.fragment == "E_name = 1"


def test_backend_never_sees_a_rejected_statement(mt):
    connection = mt.connect(0, optimization="o4")
    connection.set_scope("IN (0, 1)")
    before = mt.backend.stats.statements
    with pytest.raises(TypeCheckError):
        connection.query("SELECT E_namee FROM Employees")
    assert mt.backend.stats.statements == before


def test_mistyped_bind_value_rejected_at_execute(conn):
    sql = "SELECT E_name FROM Employees WHERE E_salary > ?"
    assert conn.query(sql, parameters=(100_000,)).rows  # sanity: slot works
    with pytest.raises(TypeCheckError) as excinfo:
        conn.query(sql, parameters=("oops",))
    assert "parameter 1 expects DECIMAL, got VARCHAR" in str(excinfo.value)


def test_typecheck_error_travels_the_wire_as_itself(mt):
    assert WIRE_CODES["TYPECHECK"] is TypeCheckError
    with serve(mt) as live:
        host, port = live.address
        spec = f"server://{host}:{port}"
        with api.connect(spec, client=0, optimization="o4", scope="IN (0, 1)") as remote:
            cursor = remote.cursor()
            with pytest.raises(TypeCheckError, match="unknown column"):
                cursor.execute("SELECT E_namee FROM Employees")
            # the connection survives the rejected statement
            assert cursor.execute("SELECT E_name FROM Employees").fetchall()


# ---------------------------------------------------------------------------
# positive corpus: the paper's workload is typecheck-clean
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("query_id", ALL_QUERY_IDS)
def test_all_mth_queries_typecheck_clean(mth, query_id):
    """Every MT-H query passes the checker and returns the same rows as a
    typecheck-disabled compile (the checker gates, it never changes results)."""
    text = query_text(query_id)

    def run():
        connection = mth.middleware.connect(1, optimization="o4")
        connection.set_scope("IN (1, 3)")
        return connection.query(text)

    checked = run()
    compiler = mth.middleware.compiler
    assert compiler.typecheck  # enabled by default
    compiler.typecheck = False
    try:
        unchecked = run()
    finally:
        compiler.typecheck = True
    assert checked.columns == unchecked.columns
    assert checked.rows == unchecked.rows


def test_facts_on_the_artifact(mth):
    """A clean walk leaves SemanticFacts on the CompiledQuery."""
    connection = mth.middleware.connect(1, optimization="o4")
    connection.set_scope("IN (1, 3)")
    compiled = connection.compile(
        "SELECT l_returnflag, SUM(l_quantity) FROM lineitem "
        "WHERE l_quantity < ?1 GROUP BY l_returnflag"
    )
    facts = compiled.facts
    assert facts is not None
    # the slot type comes from the comparison context
    assert facts.parameter_types[1] is SQLType.DECIMAL
    # schema-proven NOT NULL sets, keyed by base-table name, ttid included
    lineitem = facts.proven_not_null["lineitem"]
    assert "l_quantity" in lineitem and "l_ttid" in lineitem
    # the rewritten statement's column-provenance map is populated
    assert facts.column_owners
    assert facts.expression_types


def test_disabled_checker_produces_no_facts(mth):
    connection = mth.middleware.connect(1, optimization="o4")
    connection.set_scope("IN (1, 3)")
    compiler = mth.middleware.compiler
    compiler.typecheck = False
    try:
        compiled = connection.compile("SELECT COUNT(*) FROM lineitem")
    finally:
        compiler.typecheck = True
    assert compiled.facts is None
