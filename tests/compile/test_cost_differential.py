"""Plan-choice differential suite: the costed planner vs. the uncosted oracle.

The cost model changes *plans*, never *rows*: with statistics enabled the
cluster planner reorders joins, pushes prefilter predicates and column
subsets into the per-shard pulls of federated plans, and the engine planner
orders comma-joins by estimated filtered cardinality.  This suite proves the
choices are pure optimizations — every MT-H query, on both benchmark
scenarios, for ``D' = {single, subset, all}`` and shards ∈ {1, 2, 4},
returns row-set-identical results with the cost model on and off
(``set_cost`` toggles the same switch as ``REPRO_COMPILE_COST=0``).

The taxonomy tests pin *which* plans the cost model improves: the four
federated queries (Q15/Q17/Q20/Q22) leave the pull-everything path and gain
per-table prefilters and pull-column subsets.
"""

from __future__ import annotations

import pytest

from repro.backends import normalized_rows
from repro.cluster import FederatedPlan
from repro.mth.loader import load_mth
from repro.mth.queries import ALL_QUERY_IDS, query_text

TENANTS = 4
CLIENT = 1
SHARD_COUNTS = (1, 2, 4)

#: the three D' shapes of the acceptance grid
DATASETS = {
    "single": "IN (2)",
    "subset": "IN (1, 3)",
    "all": "IN ()",
}

#: the paper's two scenarios: business alliance (uniform), research (zipf)
SCENARIOS = ("uniform", "zipf")

#: MT-H queries the cluster planner cannot decompose (they fall back to the
#: federated strategy) — exactly these gain costed pull pushdown
FEDERATED_QUERY_IDS = {15, 17, 20, 22}

#: tables whose federated pull gains a pushed-down prefilter, per query
#: (uniform scenario, 4 shards, D' = all): Q15 filters lineitem by the
#: shipdate window, Q17 adds a synthesized semi-join against the filtered
#: part table, Q20 prefilters all five of its tables, Q22 pushes the
#: OR of the customer occurrences' phone-prefix predicates
EXPECTED_PREFILTERED_TABLES = {
    15: {"lineitem"},
    17: {"lineitem", "part"},
    20: {"lineitem", "nation", "part", "partsupp", "supplier"},
    22: {"customer"},
}


@pytest.fixture(scope="module", params=SCENARIOS)
def cost_grid(request, tiny_tpch_data):
    """MT-H clusters for 1/2/4 shards, with the cost model toggleable."""
    clusters = {
        shard_count: load_mth(
            data=tiny_tpch_data,
            tenants=TENANTS,
            distribution=request.param,
            shards=shard_count,
        )
        for shard_count in SHARD_COUNTS
    }
    yield request.param, clusters
    for instance in clusters.values():
        instance.middleware.backend.close()


def _connection(instance, scope: str):
    connection = instance.middleware.connect(CLIENT, optimization="o4")
    connection.set_scope(scope)
    return connection


@pytest.mark.parametrize("query_id", ALL_QUERY_IDS)
def test_costed_plans_are_row_identical(cost_grid, query_id):
    """Cost on vs. cost off: identical row sets across the whole grid."""
    _scenario, clusters = cost_grid
    text = query_text(query_id)
    for name, scope in DATASETS.items():
        for shard_count, cluster in clusters.items():
            sharded = cluster.middleware.backend
            sharded.set_cost(True)
            costed = normalized_rows(_connection(cluster, scope).query(text))
            costed_plan = sharded.last_plan
            sharded.set_cost(False)
            try:
                uncosted = normalized_rows(_connection(cluster, scope).query(text))
                uncosted_plan = sharded.last_plan
            finally:
                sharded.set_cost(True)
            assert costed == uncosted, (
                f"Q{query_id} D'={name} shards={shard_count}: costed plan "
                f"({costed_plan.describe() if costed_plan else 'none'}) and "
                f"uncosted plan "
                f"({uncosted_plan.describe() if uncosted_plan else 'none'}) "
                f"return different row sets"
            )


def test_federated_queries_gain_prefilters(cost_grid):
    """The costed planner prefilters exactly the federated queries' pulls."""
    scenario, clusters = cost_grid
    cluster = clusters[4]
    sharded = cluster.middleware.backend
    sharded.set_cost(True)
    connection = _connection(cluster, DATASETS["all"])
    prefiltered: dict[int, set[str]] = {}
    for query_id in ALL_QUERY_IDS:
        connection.query(query_text(query_id))
        plan = sharded.last_plan
        if isinstance(plan, FederatedPlan) and plan.prefilters:
            prefiltered[query_id] = {
                prefilter.table.lower() for prefilter in plan.prefilters
            }
            assert plan.pull_columns, (
                f"Q{query_id}: a federated plan with prefilters should also "
                f"carry pull-column subsets"
            )
    assert set(prefiltered) == FEDERATED_QUERY_IDS, (
        f"scenario {scenario}: prefiltered plans {sorted(prefiltered)} != "
        f"the federated queries {sorted(FEDERATED_QUERY_IDS)}"
    )
    for query_id, expected in EXPECTED_PREFILTERED_TABLES.items():
        assert prefiltered[query_id] == expected, (
            f"Q{query_id}: prefiltered tables {sorted(prefiltered[query_id])} "
            f"!= expected {sorted(expected)}"
        )


def test_uncosted_plans_carry_no_pushdown(cost_grid):
    """With the cost model off, federated plans pull everything (the seed
    semantics the differential baseline runs against)."""
    _scenario, clusters = cost_grid
    cluster = clusters[4]
    sharded = cluster.middleware.backend
    sharded.set_cost(False)
    try:
        connection = _connection(cluster, DATASETS["all"])
        for query_id in sorted(FEDERATED_QUERY_IDS):
            connection.query(query_text(query_id))
            plan = sharded.last_plan
            assert isinstance(plan, FederatedPlan)
            assert plan.prefilters == ()
            assert plan.pull_columns == ()
    finally:
        sharded.set_cost(True)


def test_prefilters_reduce_pulled_volume(cost_grid):
    """The pushed-down pulls ship strictly fewer rows and cells per shard."""
    _scenario, clusters = cost_grid
    cluster = clusters[4]
    sharded = cluster.middleware.backend
    connection = _connection(cluster, DATASETS["all"])
    for query_id in sorted(FEDERATED_QUERY_IDS):
        text = query_text(query_id)
        sharded.set_cost(True)
        sharded._scratch_state.clear()
        sharded.reset_pull_counters()
        connection.query(text)
        costed = (sharded.rows_pulled, sharded.cells_pulled)
        assert sharded.prefiltered_syncs > 0
        sharded.set_cost(False)
        try:
            sharded._scratch_state.clear()
            sharded.reset_pull_counters()
            connection.query(text)
            uncosted = (sharded.rows_pulled, sharded.cells_pulled)
        finally:
            sharded.set_cost(True)
        # strict reduction on both axes for every federated query
        assert costed[0] < uncosted[0], (
            f"Q{query_id}: costed pull ships {costed[0]} rows, uncosted "
            f"{uncosted[0]} — expected a strict reduction"
        )
        assert costed[1] < uncosted[1], (
            f"Q{query_id}: costed pull ships {costed[1]} cells, uncosted "
            f"{uncosted[1]} — expected a strict reduction"
        )
