"""Estimator-regression suite: estimated vs. actual cardinalities on MT-H.

``MTConnection.explain(analyze=True)`` carries the cost model's estimated
plan tree next to the executed statement's actual result cardinality.  This
suite loads MT-H at SF 0.01 and bounds the estimator's Q-error — the usual
``max(est, actual) / min(est, actual)`` with both sides floored at one row —
so estimator drift (a broken selectivity rule, statistics not refreshed,
date bounds lost in a merge) fails loudly instead of silently degrading
plan choices.

Two layers are pinned:

* **scan nodes** — each base-table scan's predicate is replayed as a
  ``SELECT COUNT(*)`` probe against the same backend and compared with the
  node's estimate.  These are the numbers join ordering and prefilter
  pushdown actually consume.
* **plan roots** — the root estimate vs. the analyzed run's row count.
  Roots compound join and aggregation guesses, so their bound is loose; the
  median bound keeps the typical case honest.
"""

from __future__ import annotations

import math

import pytest

from repro.mth.loader import load_mth
from repro.mth.queries import ALL_QUERY_IDS, query_text
from repro.sql import ast

SCALE_FACTOR = 0.01
TENANTS = 4
CLIENT = 1

#: per-scan ceiling: the worst observed scan misestimate is ~30× (a
#: magic-constant sub-query selectivity on an empty match set)
SCAN_Q_ERROR_MAX = 64.0
#: typical-scan ceiling: the geometric mean across all probed scans
SCAN_Q_ERROR_GEOMEAN = 4.0
#: per-root ceiling: roots compound grouping-NDV guesses (worst ~476×)
ROOT_Q_ERROR_MAX = 1024.0
#: typical-root ceiling: the median root Q-error (observed ~3.5×)
ROOT_Q_ERROR_MEDIAN = 8.0


def _q(estimated: float, actual: float) -> float:
    estimated = max(estimated, 1.0)
    actual = max(actual, 1.0)
    return max(estimated, actual) / min(estimated, actual)


@pytest.fixture(scope="module")
def sf001_reports():
    """One analyzed explain report per MT-H query at SF 0.01, D' = all."""
    instance = load_mth(
        scale_factor=SCALE_FACTOR, tenants=TENANTS, distribution="uniform", seed=7
    )
    connection = instance.middleware.connect(CLIENT, optimization="o4")
    connection.set_scope("IN ()")
    reports = {
        query_id: connection.explain(query_text(query_id), analyze=True)
        for query_id in ALL_QUERY_IDS
    }
    return instance, reports


def _probe_count(instance, table: str, predicate: ast.Expression):
    """COUNT(*) of ``table`` rows passing ``predicate``, or None if the
    predicate only makes sense in its original join context."""
    probe = ast.Select(
        items=[
            ast.SelectItem(expr=ast.FunctionCall(name="COUNT", args=(ast.Star(),)))
        ],
        from_items=[ast.TableRef(name=table)],
        where=predicate,
    )
    try:
        return instance.middleware.backend.execute(probe).rows[0][0]
    except Exception:
        return None  # e.g. Q21's self-join correlation leaks an alias


def test_scan_estimates_bound_q_error(sf001_reports):
    instance, reports = sf001_reports
    q_errors = []
    for query_id, report in reports.items():
        assert report.estimate is not None, f"Q{query_id}: no estimate tree"
        for scan in report.estimate.scans():
            if scan.predicate is None:
                continue
            actual = _probe_count(instance, scan.table, scan.predicate)
            if actual is None:
                continue
            q_error = _q(scan.rows, float(actual))
            assert q_error <= SCAN_Q_ERROR_MAX, (
                f"Q{query_id} scan of {scan.table}: estimated {scan.rows:.1f} "
                f"rows, actual {actual} — Q-error {q_error:.1f} exceeds "
                f"{SCAN_Q_ERROR_MAX}"
            )
            q_errors.append(q_error)
    assert q_errors, "no scan predicates were probed"
    geomean = math.exp(sum(math.log(q) for q in q_errors) / len(q_errors))
    assert geomean <= SCAN_Q_ERROR_GEOMEAN, (
        f"scan Q-error geometric mean {geomean:.2f} exceeds "
        f"{SCAN_Q_ERROR_GEOMEAN} over {len(q_errors)} probed scans"
    )


def test_root_estimates_bound_q_error(sf001_reports):
    _instance, reports = sf001_reports
    roots = {}
    for query_id, report in reports.items():
        assert report.actual_rows is not None, f"Q{query_id}: analyze recorded no rows"
        q_error = report.q_error
        assert q_error is not None
        assert q_error <= ROOT_Q_ERROR_MAX, (
            f"Q{query_id}: root estimate {report.estimate.rows:.1f} vs actual "
            f"{report.actual_rows} — Q-error {q_error:.1f} exceeds "
            f"{ROOT_Q_ERROR_MAX}"
        )
        roots[query_id] = q_error
    ordered = sorted(roots.values())
    median = ordered[len(ordered) // 2]
    assert median <= ROOT_Q_ERROR_MEDIAN, (
        f"median root Q-error {median:.2f} exceeds {ROOT_Q_ERROR_MEDIAN}: "
        f"{ {qid: round(q, 1) for qid, q in sorted(roots.items())} }"
    )
