"""Acceptance: each statement is compiled exactly once end-to-end.

Three counters prove it:

* ``middleware.compiler.stats.compilations`` — full pipeline runs,
* ``planner.stats.analyses_reused`` / ``analyses_recomputed`` — whether the
  cluster planner consumed the CompiledQuery's precomputed analysis or had
  to re-walk the AST itself,
* ``ShardedConnection.plan_reuses`` — plans served from the artifact's memo
  (a warm gateway hit re-executes without planning at all).
"""

from __future__ import annotations

import pytest

from repro.backends import ShardedBackend

from tests.conftest import build_paper_example

AGGREGATE_QUERY = (
    "SELECT E_reg_id, SUM(E_salary) AS total FROM Employees "
    "GROUP BY E_reg_id ORDER BY E_reg_id"
)
STREAM_QUERY = "SELECT E_name, E_salary FROM Employees ORDER BY E_name"


@pytest.fixture
def sharded_mt():
    backend = ShardedBackend(shards=2)
    mt = build_paper_example(backend=backend)
    yield mt
    backend.close()


class TestClusterPlannerReusesTheAnalysis:
    def test_no_independent_ast_reanalysis(self, sharded_mt):
        backend = sharded_mt.backend
        connection = sharded_mt.connect(0, optimization="o4")
        connection.set_scope("IN (0, 1)")
        backend.reset_stats()
        sharded_mt.compiler.reset_stats()

        for sql in (AGGREGATE_QUERY, STREAM_QUERY):
            connection.query(sql)

        stats = backend.planner.stats
        assert sharded_mt.compiler.stats.compilations == 2
        assert stats.plans == 2
        assert stats.analyses_reused == 2
        assert stats.analyses_recomputed == 0

    def test_results_match_a_single_backend(self, sharded_mt, paper_mt):
        for sql in (AGGREGATE_QUERY, STREAM_QUERY):
            sharded = sharded_mt.connect(0, optimization="o4")
            sharded.set_scope("IN (0, 1)")
            single = paper_mt.connect(0, optimization="o4")
            single.set_scope("IN (0, 1)")
            assert sharded.query(sql).rows == single.query(sql).rows

    def test_backend_created_tables_trigger_a_local_reanalysis(self, sharded_mt):
        """Meta tables created behind the middleware's back are unknown to the
        compiler's catalog; the planner must re-analyse against its own
        catalog instead of silently downgrading to the federated path."""
        from repro.cluster import RowStreamPlan

        backend = sharded_mt.backend
        connection = sharded_mt.connect(0, optimization="o1")
        connection.set_scope("IN (0, 1)")
        sql = (
            "SELECT E_name, CT_currency_key FROM Employees, CurrencyTransform "
            "ORDER BY E_name, CT_currency_key"
        )
        compiled = connection.compile(sql)
        assert compiled.analysis.unknown == ("currencytransform",)
        assert not compiled.analysis.partition_safe  # stale-conservative

        backend.reset_stats()
        rows = connection.query(sql).rows
        assert len(rows) == 12  # 6 employees × 2 currencies
        assert isinstance(backend.last_plan, RowStreamPlan)  # not federated
        assert backend.planner.stats.analyses_recomputed == 1

    def test_bare_statements_still_plan_soundly(self, sharded_mt):
        """Direct backend.execute() (no artifact) falls back to self-analysis."""
        backend = sharded_mt.backend
        backend.reset_stats()
        rewritten = sharded_mt.connect(0, optimization="o4")
        rewritten.set_scope("IN (0, 1)")
        plain = rewritten.rewrite(STREAM_QUERY)
        result = backend.execute(plain)
        assert len(result.rows) == 6
        assert backend.planner.stats.analyses_recomputed == 1
        assert backend.planner.stats.analyses_reused == 0


class TestWarmGatewayHitCompilesNothing:
    def test_zero_compilations_on_a_warm_hit(self, paper_mt):
        gateway = paper_mt.gateway(cache_size=32)
        try:
            session = gateway.session(0, optimization="o4", scope="IN (0, 1)")
            cold = session.query(AGGREGATE_QUERY).rows
            compilations = paper_mt.compiler.stats.compilations
            warm = session.query(AGGREGATE_QUERY).rows
            assert warm == cold
            assert paper_mt.compiler.stats.compilations == compilations
            assert session.stats.cache_hits == 1
        finally:
            gateway.close()

    def test_warm_hit_skips_shard_planning_too(self, sharded_mt):
        backend = sharded_mt.backend
        gateway = sharded_mt.gateway(cache_size=32)
        try:
            session = gateway.session(0, optimization="o4", scope="IN (0, 1)")
            backend.reset_stats()
            sharded_mt.compiler.reset_stats()

            cold = session.query(AGGREGATE_QUERY).rows
            assert sharded_mt.compiler.stats.compilations == 1
            assert backend.planner.stats.plans == 1
            assert backend.planner.stats.analyses_reused == 1
            assert backend.plan_reuses == 0

            warm = session.query(AGGREGATE_QUERY).rows
            assert warm == cold
            # zero compilations, zero planner invocations: the plan came from
            # the artifact's memo
            assert sharded_mt.compiler.stats.compilations == 1
            assert backend.planner.stats.plans == 1
            assert backend.plan_reuses == 1
        finally:
            gateway.close()

    def test_ddl_invalidates_artifact_and_plan_memo(self, sharded_mt):
        """A metadata change must force a fresh compilation *and* a fresh plan."""
        backend = sharded_mt.backend
        gateway = sharded_mt.gateway(cache_size=32)
        try:
            session = gateway.session(0, optimization="o4", scope="IN (0, 1)")
            session.query(AGGREGATE_QUERY)
            sharded_mt.execute_ddl(
                "CREATE TABLE Audit GLOBAL (A_id INTEGER NOT NULL)"
            )
            backend.reset_stats()
            sharded_mt.compiler.reset_stats()
            session.query(AGGREGATE_QUERY)
            assert sharded_mt.compiler.stats.compilations == 1  # recompiled
            assert backend.planner.stats.plans == 1  # replanned
            assert backend.planner.stats.analyses_recomputed == 0
        finally:
            gateway.close()
