"""The staged compiler: pass registry, CompiledQuery artifact, explain()."""

from __future__ import annotations

import pytest

from repro.compile import (
    LEVEL_PASSES,
    PASS_REGISTRY,
    CompiledQuery,
    ExplainReport,
    QueryAnalysis,
    register_pass,
)
from repro.core.optimizer.levels import ALL_LEVELS, OptimizationLevel
from repro.errors import MTSQLError
from repro.sql.parser import parse_statement

CONVERSION_QUERY = "SELECT E_name FROM Employees WHERE E_salary > 100000"
AGGREGATE_QUERY = "SELECT SUM(E_salary) AS total FROM Employees"


def connection_at(middleware, level, scope="IN (0, 1)", client=0):
    connection = middleware.connect(client, optimization=level)
    connection.set_scope(scope)
    return connection


class TestPassRegistry:
    def test_registered_passes(self):
        assert set(PASS_REGISTRY) == {"pushup", "distribution", "inlining"}

    def test_level_passes_only_name_registered_passes(self):
        for level, names in LEVEL_PASSES.items():
            for name in names:
                assert name in PASS_REGISTRY, (level, name)

    def test_duplicate_registration_rejected(self):
        class Duplicate:
            name = "pushup"
            description = "clash"

        with pytest.raises(MTSQLError, match="already registered"):
            register_pass(Duplicate)


class TestCompiledQuery:
    def test_artifact_carries_the_resolved_pipeline_state(self, paper_mt_session):
        connection = connection_at(paper_mt_session, "o4")
        compiled = connection.compile(CONVERSION_QUERY)
        assert isinstance(compiled, CompiledQuery)
        assert compiled.client == 0
        assert compiled.dataset == (0, 1)
        assert compiled.level is OptimizationLevel.O4
        assert compiled.tables == ("Employees",)
        # original / canonical / final stages are all retained
        assert "E_salary > 100000" in str_sql(compiled.statement)
        assert "currencyToUniversal" in str_sql(compiled.canonical)
        assert "currencyToUniversal" not in str_sql(compiled.rewritten)

    def test_pass_trace_matches_level_table_for_every_level(self, paper_mt_session):
        for level in ALL_LEVELS:
            connection = connection_at(paper_mt_session, level.value)
            compiled = connection.compile(CONVERSION_QUERY)
            assert compiled.pass_trace == ("canonical",) + LEVEL_PASSES[level], level

    def test_records_carry_timing_and_size_deltas(self, paper_mt_session):
        connection = connection_at(paper_mt_session, "o4")
        compiled = connection.compile(AGGREGATE_QUERY)
        for record in compiled.passes:
            assert record.seconds >= 0.0
            assert record.nodes_before > 0
            assert record.nodes_after > 0
            assert record.node_delta == record.nodes_after - record.nodes_before
        assert compiled.seconds >= sum(record.seconds for record in compiled.passes)

    def test_fired_rule_counts(self, paper_mt_session):
        connection = connection_at(paper_mt_session, "o4")
        compiled = connection.compile(CONVERSION_QUERY)
        fired = {record.name: record.fired for record in compiled.passes}
        # canonical emitted conversion wraps; push-up rewrote the comparison;
        # inlining replaced the remaining (pushed-up) conversion calls
        assert fired["canonical"] >= 1
        assert fired["pushup"] >= 1
        assert fired["inlining"] >= 1

    def test_conversion_census_shrinks_with_inlining(self, paper_mt_session):
        connection = connection_at(paper_mt_session, "o4")
        compiled = connection.compile(AGGREGATE_QUERY)
        assert compiled.conversions.canonical_total >= 2
        assert compiled.conversions.final_total == 0
        assert compiled.conversions.eliminated == compiled.conversions.canonical_total
        canonical_names = set(compiled.conversions.canonical)
        assert {"currencyToUniversal", "currencyFromUniversal"} <= canonical_names

    def test_analysis_reports_partitioning_and_local_keys(self, paper_mt_session):
        connection = connection_at(paper_mt_session, "o4")
        compiled = connection.compile(AGGREGATE_QUERY)
        analysis = compiled.analysis
        assert isinstance(analysis, QueryAnalysis)
        assert analysis.partitioned == ("employees",)
        assert analysis.partition_safe
        assert analysis.has_aggregation

    def test_analysis_local_keys_name_the_tenant_local_columns(self, paper_mt_session):
        # the non-restructured query keeps Employees as the top-level binding
        connection = connection_at(paper_mt_session, "o2")
        compiled = connection.compile(CONVERSION_QUERY)
        assert "e_ttid" in compiled.analysis.local_keys["employees"]
        assert "e_emp_id" in compiled.analysis.local_keys["employees"]

    def test_snapshot_after_returns_stage_ast(self, paper_mt_session):
        connection = connection_at(paper_mt_session, "o4")
        compiled = connection.compile(CONVERSION_QUERY)
        canonical = compiled.snapshot_after("canonical")
        assert canonical is not None
        assert "currencyToUniversal" in str_sql(canonical)
        assert compiled.snapshot_after("no-such-stage") is None

    def test_each_statement_compiles_exactly_once_per_execution(self, paper_mt):
        connection = connection_at(paper_mt, "o4")
        paper_mt.compiler.reset_stats()
        connection.query(CONVERSION_QUERY)
        assert paper_mt.compiler.stats.compilations == 1
        # a direct (ungatewayed) connection compiles again per execution
        connection.query(CONVERSION_QUERY)
        assert paper_mt.compiler.stats.compilations == 2


class TestExplain:
    def test_explain_reports_every_level(self, paper_mt_session):
        for level in ALL_LEVELS:
            connection = connection_at(paper_mt_session, level.value)
            report = connection.explain(AGGREGATE_QUERY)
            assert isinstance(report, ExplainReport)
            assert report.pass_trace == ("canonical",) + LEVEL_PASSES[level]
            for record in report.compiled.passes:
                assert record.seconds >= 0.0
                assert record.nodes_after > 0
            text = report.render()
            assert f"level={level.value}" in text
            for stage in report.pass_trace:
                assert stage in text
                assert f"-- after {stage}" in text
            assert "conversion calls:" in text
            assert "analysis:" in text

    def test_explain_defaults_to_the_backend_dialect(self, paper_mt_session):
        connection = connection_at(paper_mt_session, "o4")
        report = connection.explain(AGGREGATE_QUERY)
        assert report.dialect is connection.backend.dialect

    def test_explain_render_without_sql(self, paper_mt_session):
        connection = connection_at(paper_mt_session, "o4")
        text = connection.explain(AGGREGATE_QUERY).render(include_sql=False)
        assert "-- after" not in text
        assert "canonical" in text
        # compile-only reports carry no execution section
        assert "execution profile" not in text

    def test_explain_analyze_reports_operator_profiles(self, paper_mt):
        """``analyze=True`` executes once and renders the per-operator
        execution profile next to the per-pass compile timings."""
        connection = connection_at(paper_mt, "o4")
        report = connection.explain(AGGREGATE_QUERY, analyze=True)
        assert report.operators is not None
        operators = {profile.operator for profile in report.operators}
        assert "scan+join" in operators
        for profile in report.operators:
            assert profile.rows >= 0 and profile.batches >= 1
            assert profile.seconds >= 0.0
        text = report.render(include_sql=False)
        assert "execution profile (one analyzed run):" in text
        assert "scan+join" in text
        # both cost sides are in one printout
        assert "stage" in text and "rows/batch" in text


class TestDialectArguments:
    def test_rewrite_sql_default_is_the_default_dialect(self, tiny_mth):
        from repro.mth.queries import query_text

        connection = tiny_mth.middleware.connect(1, optimization="o4")
        connection.set_scope("IN ()")
        text = query_text(1)
        assert connection.rewrite_sql(text) == connection.rewrite_sql(text, dialect="default")
        # "backend" on an engine-backed connection is the default dialect too
        assert connection.rewrite_sql(text) == connection.rewrite_sql(text, dialect="backend")

    def test_rewrite_sql_renders_in_the_requested_dialect(self, tiny_mth):
        from repro.mth.queries import query_text

        connection = tiny_mth.middleware.connect(1, optimization="o4")
        connection.set_scope("IN ()")
        text = query_text(1)  # DATE - INTERVAL arithmetic spells differently
        default_sql = connection.rewrite_sql(text)
        sqlite_sql = connection.rewrite_sql(text, dialect="sqlite")
        assert default_sql != sqlite_sql
        assert "INTERVAL" in default_sql
        assert "INTERVAL" not in sqlite_sql

    def test_unknown_dialect_name_raises(self, paper_mt_session):
        from repro.errors import SQLError

        connection = connection_at(paper_mt_session, "o4")
        with pytest.raises(SQLError, match="unknown SQL dialect"):
            connection.rewrite_sql(AGGREGATE_QUERY, dialect="oracle")

    def test_explain_accepts_dialect_objects(self, paper_mt_session):
        from repro.sql.dialect import SQLITE_DIALECT

        connection = connection_at(paper_mt_session, "o4")
        report = connection.explain(AGGREGATE_QUERY, dialect=SQLITE_DIALECT)
        assert report.dialect is SQLITE_DIALECT
        assert "dialect=sqlite" in report.render(include_sql=False)


def str_sql(node) -> str:
    from repro.sql.printer import to_sql

    return to_sql(node)


def test_compile_rejects_non_select(paper_mt_session):
    connection = connection_at(paper_mt_session, "o4")
    statement = parse_statement("DELETE FROM Employees WHERE E_age > 99")
    with pytest.raises(MTSQLError, match="SELECT"):
        connection.compile(statement)
