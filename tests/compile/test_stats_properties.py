"""Property tests for the statistics layer (:mod:`repro.compile.stats`).

Three families of invariants, driven by Hypothesis:

* **collection** — :func:`collect_table_stats` agrees with brute force on
  row counts, NDV, null counts, min/max bounds and the per-tenant histogram
  for arbitrary row sets (including ``None``-heavy ones);
* **sharding** — partitioning rows arbitrarily across shards and merging
  the per-shard statistics (:func:`merge_catalogs`) reproduces the
  whole-table statistics exactly while the distinct sets stay under the cap;
* **refresh** — the engine's lazy :meth:`Database.statistics` refreshes a
  table exactly when the accumulated DML crosses the
  :class:`RefreshPolicy` threshold, and the refreshed numbers match a
  forced recollection.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.compile.stats import (  # noqa: E402
    DISTINCT_CAP,
    RefreshPolicy,
    StatisticsCatalog,
    collect_table_stats,
    merge_catalogs,
)
from repro.engine.database import Database  # noqa: E402

#: a value domain with NULLs, duplicates and a comparable type
values = st.one_of(st.none(), st.integers(min_value=-50, max_value=50))

#: rows of a fixed three-column layout: (ttid, key, payload)
rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=100),
        values,
    ),
    max_size=200,
)

COLUMNS = ("ttid", "key", "payload")


@settings(max_examples=50, deadline=None)
@given(rows=rows_strategy)
def test_collection_matches_brute_force(rows):
    stats = collect_table_stats("t", COLUMNS, rows, ttid_column="ttid")
    assert stats.row_count == len(rows)
    for index, column in enumerate(COLUMNS):
        observed = [row[index] for row in rows]
        non_null = [value for value in observed if value is not None]
        column_stats = stats.column(column)
        assert column_stats is not None
        assert column_stats.ndv == len(set(non_null))
        assert column_stats.null_count == len(observed) - len(non_null)
        assert column_stats.min_value == (min(non_null) if non_null else None)
        assert column_stats.max_value == (max(non_null) if non_null else None)
        assert column_stats.exact
        assert column_stats.values == frozenset(non_null)
    histogram: dict[int, int] = {}
    for row in rows:
        histogram[row[0]] = histogram.get(row[0], 0) + 1
    assert stats.tenant_rows == histogram
    assert sum(stats.tenant_rows.values()) == stats.row_count


@settings(max_examples=50, deadline=None)
@given(
    rows=rows_strategy,
    assignment=st.lists(st.integers(min_value=0, max_value=3), max_size=200),
)
def test_merged_shard_stats_equal_whole_table_stats(rows, assignment):
    """Any partition of the rows across shards merges back exactly."""
    shards: list[list[tuple]] = [[] for _ in range(4)]
    for index, row in enumerate(rows):
        shard = assignment[index] if index < len(assignment) else 0
        shards[shard].append(row)
    catalogs = []
    for shard_rows in shards:
        catalog = StatisticsCatalog()
        catalog.put(
            collect_table_stats("t", COLUMNS, shard_rows, ttid_column="ttid")
        )
        catalogs.append(catalog)
    merged = merge_catalogs(catalogs).table("t")
    whole = collect_table_stats("t", COLUMNS, rows, ttid_column="ttid")
    assert merged is not None
    assert merged.row_count == whole.row_count
    assert merged.tenant_rows == whole.tenant_rows
    for column in COLUMNS:
        merged_column = merged.column(column)
        whole_column = whole.column(column)
        # domains here are far below DISTINCT_CAP, so merges stay exact
        assert len(whole_column.values or ()) <= DISTINCT_CAP
        assert merged_column.exact
        assert merged_column.ndv == whole_column.ndv
        assert merged_column.null_count == whole_column.null_count
        assert merged_column.min_value == whole_column.min_value
        assert merged_column.max_value == whole_column.max_value
        assert merged_column.values == whole_column.values


@settings(max_examples=30, deadline=None)
@given(
    seed_rows=st.lists(
        st.tuples(st.integers(1, 5), st.integers(0, 100), values),
        min_size=1,
        max_size=50,
    ),
    operations=st.lists(
        st.tuples(
            st.sampled_from(("insert", "delete", "update")),
            st.integers(1, 5),
            st.integers(0, 100),
            values,
        ),
        max_size=30,
    ),
)
def test_engine_statistics_track_random_dml(seed_rows, operations):
    """After any DML sequence, a forced recollection matches the live rows;
    the lazy path refreshes exactly at the policy threshold."""
    database = Database()
    database.execute(
        "CREATE TABLE t (ttid INTEGER NOT NULL, key INTEGER NOT NULL, payload INTEGER)"
    )
    database.register_partitioned_table("t", "ttid")
    database.insert_rows("t", [tuple(row) for row in seed_rows])
    for kind, ttid, key, payload in operations:
        if kind == "insert":
            database.execute(
                f"INSERT INTO t VALUES ({ttid}, {key}, "
                f"{'NULL' if payload is None else payload})"
            )
        elif kind == "delete":
            database.execute(f"DELETE FROM t WHERE key = {key}")
        else:
            database.execute(
                f"UPDATE t SET payload = "
                f"{'NULL' if payload is None else payload} WHERE ttid = {ttid}"
            )
    stats = database.collect_statistics().table("t")
    live_rows = list(database.catalog.table("t").rows)
    expected = collect_table_stats("t", COLUMNS, live_rows, ttid_column="ttid")
    assert stats.row_count == expected.row_count
    assert stats.tenant_rows == expected.tenant_rows
    for column in COLUMNS:
        assert stats.column(column) == expected.column(column)


def test_lazy_refresh_triggers_at_threshold():
    """``statistics()`` serves cached numbers below the mutation threshold
    and recollects once accumulated DML reaches it."""
    policy = RefreshPolicy()
    database = Database()
    database.execute("CREATE TABLE t (key INTEGER NOT NULL)")
    database.insert_rows("t", [(value,) for value in range(10)])
    before = database.statistics().table("t")
    assert before.row_count == 10
    threshold = int(max(policy.min_mutations, policy.fraction * before.row_count))
    # stay strictly below the threshold: the cached statistics survive
    database.insert_rows("t", [(100 + value,) for value in range(threshold - 1)])
    assert database.statistics().table("t").row_count == 10
    # one more mutated row crosses it: the next read recollects
    database.execute("INSERT INTO t VALUES (9999)")
    assert database.statistics().table("t").row_count == 10 + threshold
