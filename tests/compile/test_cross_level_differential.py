"""Cross-level differential suite: every MT-H query at every Table-6 level.

The optimization levels are semantics preserving by construction (§4); this
suite proves it end-to-end on the compiled pipeline: all 22 MT-H queries ×
levels {CANONICAL, O1–O4, INL_ONLY} × backends {engine, sqlite} produce
row-set-identical results (normalized as in the backend differential suite).

The second half pins the per-level *pass-trace taxonomy* for representative
queries: which stages run is dictated by ``LEVEL_PASSES``, and which stages
actually fire is a property of the query shape — a regression in either
fails loudly.
"""

from __future__ import annotations

import pytest

from repro.backends import SQLiteBackend, normalized_rows
from repro.compile import LEVEL_PASSES
from repro.core.optimizer.levels import ALL_LEVELS, OptimizationLevel
from repro.mth.loader import load_mth
from repro.mth.queries import ALL_QUERY_IDS, query_text

TENANTS = 4
CLIENT = 1
#: a strict subset of the tenants: keeps every conversion and D'-filter live
SCOPE = "IN (1, 3)"


@pytest.fixture(scope="module")
def level_pair(tiny_tpch_data):
    """The same MT-H data on the engine and on SQLite, swept across levels."""
    engine = load_mth(data=tiny_tpch_data, tenants=TENANTS, distribution="uniform")
    sqlite_factory = SQLiteBackend()
    sqlite = load_mth(
        data=tiny_tpch_data,
        tenants=TENANTS,
        distribution="uniform",
        backend=sqlite_factory,
    )
    yield engine, sqlite
    sqlite_factory.close()


def _rows(instance, query_id: int, level: OptimizationLevel):
    connection = instance.middleware.connect(CLIENT, optimization=level)
    connection.set_scope(SCOPE)
    return normalized_rows(connection.query(query_text(query_id)))


@pytest.mark.parametrize("query_id", ALL_QUERY_IDS)
def test_all_levels_row_set_identical_on_both_backends(level_pair, query_id):
    engine, sqlite = level_pair
    reference = _rows(engine, query_id, OptimizationLevel.O4)
    for level in ALL_LEVELS:
        assert _rows(engine, query_id, level) == reference, (
            f"Q{query_id} engine@{level.value} differs from engine@o4"
        )
        assert _rows(sqlite, query_id, level) == reference, (
            f"Q{query_id} sqlite@{level.value} differs from engine@o4"
        )


# ---------------------------------------------------------------------------
# Pinned pass-trace taxonomy
# ---------------------------------------------------------------------------
#
# For each representative query and level: which passes *fired* (rewrote
# something).  Q1/Q6 aggregate converted measures (distribution restructures,
# nothing for push-up to grab); Q22 compares converted attributes against a
# scalar sub-query (push-up fires too).

_FIRED_TAXONOMY = {
    1: {
        "canonical": (),
        "o1": (),
        "o2": (),
        "o3": ("distribution",),
        "o4": ("distribution", "inlining"),
        "inl-only": ("inlining",),
    },
    6: {
        "canonical": (),
        "o1": (),
        "o2": (),
        "o3": ("distribution",),
        "o4": ("distribution", "inlining"),
        "inl-only": ("inlining",),
    },
    22: {
        "canonical": (),
        "o1": (),
        "o2": ("pushup",),
        "o3": ("pushup", "distribution"),
        "o4": ("pushup", "distribution", "inlining"),
        "inl-only": ("inlining",),
    },
}


@pytest.mark.parametrize("query_id", sorted(_FIRED_TAXONOMY))
def test_pass_trace_taxonomy_pinned(level_pair, query_id):
    engine, _ = level_pair
    for level in ALL_LEVELS:
        connection = engine.middleware.connect(CLIENT, optimization=level)
        connection.set_scope(SCOPE)
        compiled = connection.compile(query_text(query_id))
        assert compiled.pass_trace == ("canonical",) + LEVEL_PASSES[level], (
            f"Q{query_id}@{level.value}: unexpected stage list"
        )
        fired = tuple(
            record.name
            for record in compiled.passes
            if record.name != "canonical" and record.fired > 0
        )
        assert fired == _FIRED_TAXONOMY[query_id][level.value], (
            f"Q{query_id}@{level.value}: fired passes changed"
        )
        # inlining levels leave no conversion calls for the DBMS
        if level in (OptimizationLevel.O4, OptimizationLevel.INL_ONLY):
            assert compiled.conversions.final_total == 0, (
                f"Q{query_id}@{level.value}: conversion calls survived inlining"
            )
        else:
            assert compiled.conversions.final_total == compiled.conversions.canonical_total


def test_canonical_census_monotone_in_conversion_use(level_pair):
    """Sanity: the conversion-intensive queries really exercise conversions."""
    engine, _ = level_pair
    connection = engine.middleware.connect(CLIENT, optimization="canonical")
    connection.set_scope(SCOPE)
    census_q6 = connection.compile(query_text(6)).conversions.canonical_total
    census_q22 = connection.compile(query_text(22)).conversions.canonical_total
    assert census_q6 >= 2
    assert census_q22 > census_q6
