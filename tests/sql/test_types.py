"""Unit and property tests for the SQL value model (dates, intervals, NULLs)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TypeMismatchError
from repro.sql.types import (
    Date,
    Interval,
    IntervalUnit,
    SQLType,
    add_date_interval,
    format_value,
    sort_key,
    sql_compare,
    sql_equal,
)


class TestSQLType:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("INTEGER", SQLType.INTEGER),
            ("int", SQLType.INTEGER),
            ("BIGINT", SQLType.INTEGER),
            ("DECIMAL(15,2)", SQLType.DECIMAL),
            ("VARCHAR(25)", SQLType.VARCHAR),
            ("varchar", SQLType.VARCHAR),
            ("DATE", SQLType.DATE),
            ("BOOLEAN", SQLType.BOOLEAN),
        ],
    )
    def test_from_name(self, name, expected):
        assert SQLType.from_name(name) is expected

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatchError):
            SQLType.from_name("GEOMETRY")


class TestDates:
    def test_from_string_round_trip(self):
        date = Date.from_string("1998-12-01")
        assert str(date) == "1998-12-01"
        assert (date.year, date.month, date.day) == (1998, 12, 1)

    def test_ordering_follows_calendar(self):
        assert Date.from_string("1995-03-15") < Date.from_string("1995-03-16")
        assert Date.from_string("1996-01-01") > Date.from_string("1995-12-31")

    def test_add_days(self):
        assert Date.from_string("1998-12-01").add_days(-90) == Date.from_string("1998-09-02")

    def test_add_months_clamps_day(self):
        assert Date.from_ymd(1996, 1, 31).add_months(1) == Date.from_ymd(1996, 2, 29)
        assert Date.from_ymd(1995, 1, 31).add_months(1) == Date.from_ymd(1995, 2, 28)

    def test_add_months_year_wrap(self):
        assert Date.from_ymd(1994, 11, 15).add_months(3) == Date.from_ymd(1995, 2, 15)

    @given(st.integers(min_value=0, max_value=20000), st.integers(min_value=-500, max_value=500))
    def test_add_days_is_invertible(self, days, delta):
        date = Date(days)
        assert date.add_days(delta).add_days(-delta) == date

    @given(st.integers(min_value=0, max_value=20000), st.integers(min_value=0, max_value=48))
    def test_add_months_monotone(self, days, months):
        date = Date(days)
        assert date.add_months(months) >= date


class TestIntervals:
    def test_interval_day_addition(self):
        result = add_date_interval(Date.from_string("1994-01-01"), Interval(90, IntervalUnit.DAY))
        assert result == Date.from_string("1994-04-01")

    def test_interval_month_and_year(self):
        start = Date.from_string("1993-07-01")
        assert add_date_interval(start, Interval(3, IntervalUnit.MONTH)) == Date.from_string("1993-10-01")
        assert add_date_interval(start, Interval(1, IntervalUnit.YEAR)) == Date.from_string("1994-07-01")

    def test_interval_subtraction(self):
        result = add_date_interval(Date.from_string("1998-12-01"), Interval(90, IntervalUnit.DAY), -1)
        assert result == Date.from_string("1998-09-02")

    def test_day_interval_has_no_months(self):
        with pytest.raises(TypeMismatchError):
            Interval(3, IntervalUnit.DAY).months()


class TestThreeValuedLogic:
    def test_equal_with_null_is_null(self):
        assert sql_equal(None, 1) is None
        assert sql_equal(1, None) is None

    def test_equal_numeric_coercion(self):
        assert sql_equal(1, 1.0) is True
        assert sql_equal(2, 3) is False

    def test_compare_with_null_is_null(self):
        assert sql_compare(None, 5) is None

    def test_compare_orders(self):
        assert sql_compare(1, 2) == -1
        assert sql_compare("b", "a") == 1
        assert sql_compare(3.0, 3) == 0

    def test_date_compares_with_date_string(self):
        assert sql_compare(Date.from_string("1994-01-01"), "1994-06-01") == -1

    def test_date_number_comparison_rejected(self):
        with pytest.raises(TypeMismatchError):
            sql_compare(Date.from_string("1994-01-01"), 12)

    def test_string_number_comparison_rejected(self):
        with pytest.raises(TypeMismatchError):
            sql_compare("abc", 1)

    @given(st.integers() | st.floats(allow_nan=False, allow_infinity=False))
    def test_equality_is_reflexive(self, value):
        assert sql_equal(value, value) is True


class TestSortKeyAndFormatting:
    def test_nulls_sort_first(self):
        values = [3, None, 1]
        assert sorted(values, key=sort_key)[0] is None

    def test_mixed_types_sortable(self):
        values = [None, 2, Date.from_string("1994-01-01"), "abc", 1.5]
        assert sorted(values, key=sort_key)  # does not raise

    def test_format_value(self):
        assert format_value(None) == "NULL"
        assert format_value(1.5) == "1.50"
        assert format_value("x") == "x"
