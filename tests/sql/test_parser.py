"""Unit tests for the SQL / MTSQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse_expression, parse_query, parse_statement, parse_statements
from repro.sql.types import Date, Interval, IntervalUnit


class TestSelectParsing:
    def test_simple_select(self):
        query = parse_query("SELECT a, b FROM t")
        assert [item.expr.name for item in query.items] == ["a", "b"]
        assert isinstance(query.from_items[0], ast.TableRef)
        assert query.from_items[0].name == "t"

    def test_select_star_and_qualified_star(self):
        query = parse_query("SELECT *, t.* FROM t")
        assert isinstance(query.items[0].expr, ast.Star)
        assert query.items[1].expr.table == "t"

    def test_aliases_with_and_without_as(self):
        query = parse_query("SELECT a AS x, b y FROM t")
        assert query.items[0].alias == "x"
        assert query.items[1].alias == "y"

    def test_distinct_and_limit(self):
        query = parse_query("SELECT DISTINCT a FROM t LIMIT 10")
        assert query.distinct is True
        assert query.limit == 10

    def test_where_group_having_order(self):
        query = parse_query(
            "SELECT a, COUNT(*) AS c FROM t WHERE a > 1 GROUP BY a HAVING COUNT(*) > 2 "
            "ORDER BY c DESC, a"
        )
        assert isinstance(query.where, ast.BinaryOp)
        assert len(query.group_by) == 1
        assert query.having is not None
        assert query.order_by[0].descending is True
        assert query.order_by[1].descending is False

    def test_table_alias(self):
        query = parse_query("SELECT E1.a FROM Employees E1, Employees AS E2")
        assert query.from_items[0].alias == "E1"
        assert query.from_items[1].alias == "E2"

    def test_derived_table_requires_alias(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM (SELECT 1)")

    def test_derived_table(self):
        query = parse_query("SELECT x FROM (SELECT a AS x FROM t) AS sub")
        sub = query.from_items[0]
        assert isinstance(sub, ast.SubqueryRef)
        assert sub.alias == "sub"

    def test_explicit_joins(self):
        query = parse_query(
            "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id"
        )
        join = query.from_items[0]
        assert isinstance(join, ast.Join)
        assert join.join_type is ast.JoinType.LEFT
        assert isinstance(join.left, ast.Join)
        assert join.left.join_type is ast.JoinType.INNER

    def test_cross_join(self):
        query = parse_query("SELECT * FROM a CROSS JOIN b")
        assert query.from_items[0].join_type is ast.JoinType.CROSS

    def test_missing_from_is_allowed(self):
        query = parse_query("SELECT 1 + 1 AS two")
        assert query.from_items == []


class TestExpressionParsing:
    def test_operator_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_and_or_precedence(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "NOT"

    def test_parentheses_override_precedence(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_comparison_operators_normalized(self):
        assert parse_expression("a != b").op == "<>"
        assert parse_expression("a <> b").op == "<>"

    def test_between_and_not_between(self):
        expr = parse_expression("x BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between) and not expr.negated
        assert parse_expression("x NOT BETWEEN 1 AND 10").negated is True

    def test_in_list_and_subquery(self):
        in_list = parse_expression("x IN (1, 2, 3)")
        assert isinstance(in_list, ast.InList) and len(in_list.items) == 3
        in_sub = parse_expression("x IN (SELECT y FROM t)")
        assert isinstance(in_sub, ast.InSubquery)
        assert parse_expression("x NOT IN (1)").negated is True

    def test_like_and_not_like(self):
        expr = parse_expression("name LIKE '%green%'")
        assert isinstance(expr, ast.Like)
        assert parse_expression("name NOT LIKE 'a%'").negated is True

    def test_is_null(self):
        assert isinstance(parse_expression("x IS NULL"), ast.IsNull)
        assert parse_expression("x IS NOT NULL").negated is True

    def test_exists(self):
        expr = parse_expression("EXISTS (SELECT 1 FROM t)")
        assert isinstance(expr, ast.Exists)

    def test_scalar_subquery(self):
        expr = parse_expression("x > (SELECT AVG(y) FROM t)")
        assert isinstance(expr.right, ast.ScalarSubquery)

    def test_case_when(self):
        expr = parse_expression("CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END")
        assert isinstance(expr, ast.Case)
        assert len(expr.whens) == 2
        assert expr.else_result == ast.Literal("many")

    def test_date_and_interval_literals(self):
        date_literal = parse_expression("DATE '1998-12-01'")
        assert date_literal.value == Date.from_string("1998-12-01")
        interval = parse_expression("INTERVAL '3' MONTH")
        assert interval.value == Interval(3, IntervalUnit.MONTH)
        assert parse_expression("INTERVAL '90' day").value.unit is IntervalUnit.DAY

    def test_extract(self):
        expr = parse_expression("EXTRACT(YEAR FROM o_orderdate)")
        assert isinstance(expr, ast.Extract) and expr.part == "YEAR"

    def test_substring_both_syntaxes(self):
        ansi = parse_expression("SUBSTRING(c_phone FROM 1 FOR 2)")
        comma = parse_expression("SUBSTRING(c_phone, 1, 2)")
        assert isinstance(ansi, ast.Substring) and isinstance(comma, ast.Substring)
        assert ansi.start == comma.start

    def test_function_call_with_distinct(self):
        expr = parse_expression("COUNT(DISTINCT ps_suppkey)")
        assert expr.distinct is True

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr.args[0], ast.Star)

    def test_unary_minus(self):
        expr = parse_expression("-x + 1")
        assert isinstance(expr.left, ast.UnaryOp)

    def test_string_concatenation_operator(self):
        assert parse_expression("a || b").op == "||"

    def test_null_true_false_literals(self):
        assert parse_expression("NULL").value is None
        assert parse_expression("TRUE").value is True
        assert parse_expression("FALSE").value is False


class TestDDLParsing:
    def test_create_table_with_mt_annotations(self):
        statement = parse_statement(
            """CREATE TABLE Employees SPECIFIC (
                E_emp_id INTEGER NOT NULL SPECIFIC,
                E_name VARCHAR(25) NOT NULL COMPARABLE,
                E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
                CONSTRAINT pk_emp PRIMARY KEY (E_emp_id),
                CONSTRAINT fk_emp FOREIGN KEY (E_role_id) REFERENCES Roles (R_role_id)
            )"""
        )
        assert isinstance(statement, ast.CreateTable)
        assert statement.generality is ast.TableGenerality.SPECIFIC
        by_name = {column.name: column for column in statement.columns}
        assert by_name["E_emp_id"].comparability is ast.Comparability.SPECIFIC
        assert by_name["E_name"].comparability is ast.Comparability.COMPARABLE
        assert by_name["E_salary"].comparability is ast.Comparability.CONVERTIBLE
        assert by_name["E_salary"].to_universal == "currencyToUniversal"
        kinds = [constraint.kind for constraint in statement.constraints]
        assert ast.ConstraintKind.PRIMARY_KEY in kinds
        assert ast.ConstraintKind.FOREIGN_KEY in kinds

    def test_create_table_global_default(self):
        statement = parse_statement("CREATE TABLE Regions (r_id INTEGER NOT NULL)")
        assert statement.generality is None
        assert statement.columns[0].not_null is True

    def test_create_table_check_constraint(self):
        statement = parse_statement(
            "CREATE TABLE t (a INTEGER, CONSTRAINT chk CHECK (a > 0))"
        )
        assert statement.constraints[0].kind is ast.ConstraintKind.CHECK

    def test_create_function(self):
        statement = parse_statement(
            "CREATE FUNCTION f (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2) "
            "AS 'SELECT $1 * 2' LANGUAGE SQL IMMUTABLE"
        )
        assert isinstance(statement, ast.CreateFunction)
        assert statement.arg_types == ("DECIMAL(15,2)", "INTEGER")
        assert statement.immutable is True
        assert "$1" in statement.body

    def test_create_view_and_drop(self):
        view = parse_statement("CREATE VIEW v AS SELECT a FROM t")
        assert isinstance(view, ast.CreateView)
        assert isinstance(parse_statement("DROP TABLE t"), ast.DropTable)
        assert parse_statement("DROP TABLE IF EXISTS t").if_exists is True
        assert isinstance(parse_statement("DROP VIEW v"), ast.DropView)


class TestDMLAndDCLParsing:
    def test_insert_values(self):
        statement = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert statement.columns == ("a", "b")
        assert len(statement.rows) == 2

    def test_insert_select(self):
        statement = parse_statement("INSERT INTO t (a) SELECT a FROM s WHERE a > 1")
        assert statement.query is not None

    def test_update(self):
        statement = parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE a < 5")
        assert len(statement.assignments) == 2
        assert statement.where is not None

    def test_delete(self):
        statement = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(statement, ast.Delete)

    def test_grant_and_revoke(self):
        grant = parse_statement("GRANT READ ON Employees TO 42")
        assert isinstance(grant, ast.Grant)
        assert grant.privileges == ("READ",)
        assert grant.grantee == 42
        grant_all = parse_statement("GRANT READ, UPDATE ON Employees TO ALL")
        assert grant_all.grantee == "ALL"
        revoke = parse_statement("REVOKE READ ON Employees FROM 42")
        assert isinstance(revoke, ast.Revoke)

    def test_set_scope(self):
        statement = parse_statement('SET SCOPE = "IN (1, 3, 42)"')
        assert isinstance(statement, ast.SetScope)
        assert statement.scope_text == "IN (1, 3, 42)"


class TestScriptsAndErrors:
    def test_parse_statements_script(self):
        statements = parse_statements("SELECT 1; SELECT 2;  ")
        assert len(statements) == 2

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 FROM t garbage garbage garbage")

    def test_unknown_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("VACUUM t")

    def test_incomplete_expression_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 +")

    def test_parse_query_rejects_non_select(self):
        with pytest.raises(ParseError):
            parse_query("DELETE FROM t")
