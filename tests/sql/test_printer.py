"""Printer tests including property-based print→parse round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sql import ast
from repro.sql.parser import parse_expression, parse_query, parse_statement
from repro.sql.printer import to_sql
from repro.sql.types import Date


class TestPrinterBasics:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a, b AS x FROM t WHERE a > 1 GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 5",
            "SELECT DISTINCT a FROM t",
            "SELECT * FROM a, b WHERE a.id = b.id",
            "SELECT x FROM (SELECT a AS x FROM t) AS sub",
            "SELECT * FROM a LEFT JOIN b ON a.id = b.id",
            "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END AS label FROM t",
            "SELECT SUM(a * (1 - b)) AS revenue FROM t WHERE c IN (1, 2, 3)",
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM s WHERE s.id = t.id)",
            "SELECT a FROM t WHERE d BETWEEN DATE '1994-01-01' AND DATE '1995-01-01'",
            "SELECT SUBSTRING(phone FROM 1 FOR 2) AS code FROM t",
            "SELECT EXTRACT(YEAR FROM d) AS y FROM t",
            "SELECT a FROM t WHERE name NOT LIKE '%x%' AND b IS NOT NULL",
        ],
    )
    def test_query_round_trip(self, sql):
        first = parse_query(sql)
        printed = to_sql(first)
        second = parse_query(printed)
        assert to_sql(second) == printed

    @pytest.mark.parametrize(
        "sql",
        [
            "INSERT INTO t (a, b) VALUES (1, 'x')",
            "UPDATE t SET a = a + 1 WHERE b = 2",
            "DELETE FROM t WHERE a = 1",
            "CREATE VIEW v AS SELECT a FROM t",
            "DROP TABLE IF EXISTS t",
            "GRANT READ ON Employees TO 42",
            "REVOKE READ ON Employees FROM 42",
            'SET SCOPE = "IN (1, 2)"',
        ],
    )
    def test_statement_round_trip(self, sql):
        statement = parse_statement(sql)
        printed = to_sql(statement)
        reparsed = parse_statement(printed)
        assert to_sql(reparsed) == printed

    def test_create_table_round_trip_preserves_mt_annotations(self):
        sql = (
            "CREATE TABLE Employees SPECIFIC (E_id INTEGER NOT NULL SPECIFIC, "
            "E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @toFn @fromFn, "
            "CONSTRAINT pk PRIMARY KEY (E_id))"
        )
        printed = to_sql(parse_statement(sql))
        reparsed = parse_statement(printed)
        assert reparsed.generality is ast.TableGenerality.SPECIFIC
        assert reparsed.columns[1].to_universal == "toFn"

    def test_string_escaping(self):
        assert to_sql(ast.Literal("it's")) == "'it''s'"

    def test_date_literal_printing(self):
        assert to_sql(ast.Literal(Date.from_string("1994-01-01"))) == "DATE '1994-01-01'"

    def test_create_function_round_trip(self):
        sql = (
            "CREATE FUNCTION f (INTEGER) RETURNS INTEGER AS 'SELECT $1 * 2' "
            "LANGUAGE SQL IMMUTABLE"
        )
        reparsed = parse_statement(to_sql(parse_statement(sql)))
        assert reparsed.body == "SELECT $1 * 2"
        assert reparsed.immutable is True


# ---------------------------------------------------------------------------
# Property-based round trips over randomly generated expressions
# ---------------------------------------------------------------------------

_identifiers = st.sampled_from(["a", "b", "c", "col1", "E_salary", "t1"])
_tables = st.none() | st.sampled_from(["t", "E1", "orders"])

_literals = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-1000, max_value=1000, allow_nan=False).map(lambda v: round(v, 3)),
    st.text(alphabet="abc xyz'", min_size=0, max_size=8),
    st.none(),
    st.booleans(),
)


def _expressions(depth: int = 2):
    base = st.one_of(
        _literals.map(ast.Literal),
        st.builds(ast.Column, name=_identifiers, table=_tables),
    )
    if depth == 0:
        return base
    sub = _expressions(depth - 1)
    return st.one_of(
        base,
        st.builds(ast.BinaryOp, op=st.sampled_from(["+", "-", "*", "=", "<", ">=", "AND", "OR"]),
                  left=sub, right=sub),
        st.builds(ast.UnaryOp, op=st.just("NOT"), operand=sub),
        st.builds(
            ast.FunctionCall,
            name=st.sampled_from(["SUM", "COUNT", "MYFN", "COALESCE"]),
            args=st.tuples(sub),
            distinct=st.booleans(),
        ),
        st.builds(ast.IsNull, expr=sub, negated=st.booleans()),
        st.builds(ast.Between, expr=sub, low=sub, high=sub, negated=st.booleans()),
        st.builds(ast.InList, expr=sub, items=st.tuples(sub, sub), negated=st.booleans()),
    )


@settings(max_examples=150, deadline=None)
@given(_expressions())
def test_expression_print_parse_round_trip(expr):
    """print(parse(print(e))) is a fixed point: the printed text is stable."""
    printed = to_sql(expr)
    reparsed = parse_expression(printed)
    assert to_sql(reparsed) == printed


@settings(max_examples=60, deadline=None)
@given(
    items=st.lists(_expressions(1), min_size=1, max_size=4),
    where=st.none() | _expressions(1),
    distinct=st.booleans(),
    limit=st.none() | st.integers(min_value=0, max_value=99),
)
def test_select_print_parse_round_trip(items, where, distinct, limit):
    query = ast.Select(
        items=[ast.SelectItem(expr=item, alias=None) for item in items],
        from_items=[ast.TableRef(name="t", alias=None)],
        where=where,
        distinct=distinct,
        limit=limit,
    )
    printed = to_sql(query)
    reparsed = parse_query(printed)
    assert to_sql(reparsed) == printed
