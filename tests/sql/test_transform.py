"""AST transformation helpers used by the executor and the rewriter."""

from repro.sql import ast
from repro.sql.parser import parse_expression, parse_query
from repro.sql.printer import to_sql
from repro.sql.transform import clone_select, transform_expression, transform_select


def rename_column(old: str, new: str):
    def replacer(node: ast.Expression):
        if isinstance(node, ast.Column) and node.name == old:
            return ast.Column(name=new, table=node.table)
        return None

    return replacer


class TestTransformExpression:
    def test_identity_returns_equal_tree(self):
        expr = parse_expression("a + b * 2")
        assert to_sql(transform_expression(expr, lambda node: None)) == to_sql(expr)

    def test_replacement_is_used_verbatim(self):
        expr = parse_expression("a + b")
        replaced = transform_expression(expr, rename_column("a", "x"))
        assert to_sql(replaced) == "x + b"

    def test_replacement_not_recursed_into(self):
        """A returned subtree is taken as-is, even if it matches the pattern again."""
        expr = parse_expression("a")
        replaced = transform_expression(
            expr,
            lambda node: ast.BinaryOp("+", ast.Column("a"), ast.lit(1))
            if isinstance(node, ast.Column) and node.name == "a"
            else None,
        )
        assert to_sql(replaced) == "a + 1"

    def test_nested_constructs_are_visited(self):
        expr = parse_expression(
            "CASE WHEN a = 1 THEN b ELSE c END + COALESCE(a, b) + (a BETWEEN 1 AND 2)"
        )
        replaced = transform_expression(expr, rename_column("a", "z"))
        text = to_sql(replaced)
        assert "z = 1" in text and "COALESCE(z, b)" in text and "z BETWEEN" in text

    def test_subqueries_untouched_by_default(self):
        expr = parse_expression("a IN (SELECT a FROM t)")
        replaced = transform_expression(expr, rename_column("a", "z"))
        assert to_sql(replaced) == "z IN (SELECT a FROM t)"

    def test_subqueries_descended_when_requested(self):
        expr = parse_expression("a IN (SELECT a FROM t)")
        replaced = transform_expression(expr, rename_column("a", "z"), descend_subqueries=True)
        assert to_sql(replaced) == "z IN (SELECT z FROM t)"

    def test_none_passthrough(self):
        assert transform_expression(None, lambda node: None) is None

    def test_like_isnull_substring_extract(self):
        expr = parse_expression(
            "SUBSTRING(a FROM 1 FOR 2) || CASE WHEN a IS NULL THEN 'x' ELSE 'y' END"
        )
        replaced = transform_expression(expr, rename_column("a", "b"))
        assert "SUBSTRING(b" in to_sql(replaced)


class TestTransformSelect:
    def test_all_clauses_transformed(self):
        query = parse_query(
            "SELECT a, SUM(a) AS s FROM t WHERE a > 1 GROUP BY a HAVING SUM(a) > 2 ORDER BY a"
        )
        transformed = transform_select(query, rename_column("a", "z"))
        text = to_sql(transformed)
        assert "z" in text and " a" not in text.replace("AS s", "")

    def test_from_subqueries_transformed(self):
        query = parse_query("SELECT x FROM (SELECT a AS x FROM t WHERE a > 0) AS sub")
        transformed = transform_select(query, rename_column("a", "z"))
        assert "z AS x" in to_sql(transformed)
        assert "z > 0" in to_sql(transformed)

    def test_join_condition_transformed(self):
        query = parse_query("SELECT * FROM t1 LEFT JOIN t2 ON t1.a = t2.a")
        transformed = transform_select(query, rename_column("a", "z"))
        assert "t1.z = t2.z" in to_sql(transformed)

    def test_clone_is_independent(self):
        query = parse_query("SELECT a FROM t WHERE a = 1")
        clone = clone_select(query)
        clone.items.append(ast.SelectItem(expr=ast.Column("b"), alias=None))
        clone.where = None
        assert len(query.items) == 1
        assert query.where is not None

    def test_original_not_mutated_by_transform(self):
        query = parse_query("SELECT a FROM t WHERE a = 1")
        before = to_sql(query)
        transform_select(query, rename_column("a", "z"))
        assert to_sql(query) == before
