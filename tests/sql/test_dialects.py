"""Dialect-aware printing: quoting, literals, placeholders, idioms."""

from __future__ import annotations

import sqlite3

import pytest

from repro.errors import SQLError
from repro.sql import ast
from repro.sql.dialect import (
    DEFAULT_DIALECT,
    SQLITE_DIALECT,
    Dialect,
    SQLiteDialect,
    get_dialect,
)
from repro.sql.parser import parse_query, parse_statement
from repro.sql.printer import to_sql
from repro.sql.types import Date, Interval, IntervalUnit


class TestDialectRegistry:
    def test_lookup_by_name(self):
        assert get_dialect("default") is DEFAULT_DIALECT
        assert get_dialect("SQLite") is SQLITE_DIALECT

    def test_unknown_dialect(self):
        with pytest.raises(SQLError, match="unknown SQL dialect"):
            get_dialect("oracle")

    def test_dialect_names(self):
        assert isinstance(DEFAULT_DIALECT, Dialect)
        assert isinstance(SQLITE_DIALECT, SQLiteDialect)
        assert DEFAULT_DIALECT.name == "default"
        assert SQLITE_DIALECT.name == "sqlite"


class TestIdentifierQuoting:
    def test_default_never_quotes(self):
        # the default dialect feeds the repro parser, which has no quoting
        assert DEFAULT_DIALECT.quote_identifier("order") == "order"
        assert DEFAULT_DIALECT.quote_identifier("weird name") == "weird name"

    def test_sqlite_quotes_reserved_words(self):
        assert SQLITE_DIALECT.quote_identifier("order") == '"order"'
        assert SQLITE_DIALECT.quote_identifier("GROUP") == '"GROUP"'
        assert SQLITE_DIALECT.quote_identifier("lineitem") == "lineitem"

    def test_sqlite_quotes_non_identifier_characters(self):
        assert SQLITE_DIALECT.quote_identifier("weird name") == '"weird name"'
        assert SQLITE_DIALECT.quote_identifier('has"quote') == '"has""quote"'

    def test_qualified_identifier(self):
        assert SQLITE_DIALECT.qualified_identifier("o_orderkey", "orders") == (
            "orders.o_orderkey"
        )
        assert SQLITE_DIALECT.qualified_identifier("name", "order") == '"order".name'

    def test_quoted_identifier_round_trips_through_sqlite(self):
        connection = sqlite3.connect(":memory:")
        name = SQLITE_DIALECT.quote_identifier("select")
        connection.execute(f"CREATE TABLE {name} (x INTEGER)")
        connection.execute(f"INSERT INTO {name} VALUES (1)")
        assert connection.execute(f"SELECT x FROM {name}").fetchall() == [(1,)]


class TestLiteralRendering:
    def test_string_escaping(self):
        for dialect in (DEFAULT_DIALECT, SQLITE_DIALECT):
            assert dialect.format_literal("it's") == "'it''s'"
            assert dialect.format_literal("a''b") == "'a''''b'"

    def test_escaped_string_round_trips(self):
        text = to_sql(ast.Literal("O'Brien ''quoted''"))
        statement = parse_query(f"SELECT {text}")
        assert statement.items[0].expr.value == "O'Brien ''quoted''"
        row = sqlite3.connect(":memory:").execute(
            f"SELECT {SQLITE_DIALECT.format_literal(chr(39))}"
        ).fetchone()
        assert row == ("'",)

    def test_dates(self):
        date = Date.from_string("1994-01-01")
        assert DEFAULT_DIALECT.format_literal(date) == "DATE '1994-01-01'"
        assert SQLITE_DIALECT.format_literal(date) == "'1994-01-01'"

    def test_booleans(self):
        assert DEFAULT_DIALECT.format_literal(True) == "TRUE"
        assert SQLITE_DIALECT.format_literal(True) == "1"
        assert SQLITE_DIALECT.format_literal(False) == "0"

    def test_intervals(self):
        interval = Interval(3, IntervalUnit.MONTH)
        assert DEFAULT_DIALECT.format_literal(interval) == "INTERVAL '3' MONTH"
        with pytest.raises(SQLError, match="no interval literals"):
            SQLITE_DIALECT.format_literal(interval)


class TestPlaceholders:
    def test_styles(self):
        assert DEFAULT_DIALECT.placeholder(2) == "$2"
        assert SQLITE_DIALECT.placeholder(2) == "?2"

    def test_parameter_index(self):
        assert DEFAULT_DIALECT.parameter_index("$7") == 7
        assert DEFAULT_DIALECT.parameter_index("seven") is None

    def test_printed_parameters_follow_the_dialect(self):
        body = parse_query("SELECT $1 + $2")
        assert to_sql(body) == "SELECT $1 + $2"
        assert to_sql(body, SQLITE_DIALECT) == "SELECT ?1 + ?2"

    def test_sqlite_placeholder_binds(self):
        sql = to_sql(parse_query("SELECT $2, $1"), SQLITE_DIALECT)
        assert sqlite3.connect(":memory:").execute(sql, ("a", "b")).fetchone() == (
            "b",
            "a",
        )


class TestSQLiteIdioms:
    def test_extract(self):
        query = parse_query("SELECT EXTRACT(YEAR FROM o_orderdate) FROM orders")
        assert "strftime('%Y', o_orderdate)" in to_sql(query, SQLITE_DIALECT)
        with pytest.raises(SQLError, match="EXTRACT"):
            to_sql(parse_query("SELECT EXTRACT(EPOCH FROM x) FROM t"), SQLITE_DIALECT)

    def test_substring(self):
        query = parse_query("SELECT SUBSTRING(c_phone FROM 1 FOR 2) FROM customer")
        assert "SUBSTR(c_phone, 1, 2)" in to_sql(query, SQLITE_DIALECT)
        short = parse_query("SELECT SUBSTRING(c_phone FROM 3) FROM customer")
        assert "SUBSTR(c_phone, 3)" in to_sql(short, SQLITE_DIALECT)

    def test_date_arithmetic(self):
        query = parse_query(
            "SELECT 1 FROM t WHERE d < DATE '1994-01-01' + INTERVAL '3' MONTH"
        )
        assert "date('1994-01-01', '+3 month')" in to_sql(query, SQLITE_DIALECT)
        minus = parse_query(
            "SELECT 1 FROM t WHERE d <= DATE '1998-12-01' - INTERVAL '90' DAY"
        )
        assert "date('1998-12-01', '-90 day')" in to_sql(minus, SQLITE_DIALECT)

    def test_date_arithmetic_evaluates(self):
        connection = sqlite3.connect(":memory:")
        sql = to_sql(
            parse_query("SELECT DATE '1998-12-01' - INTERVAL '90' DAY"),
            SQLITE_DIALECT,
        )
        assert connection.execute(sql).fetchone() == ("1998-09-02",)

    def test_type_mapping(self):
        assert SQLITE_DIALECT.render_type("DECIMAL(15,2)") == "REAL"
        assert SQLITE_DIALECT.render_type("VARCHAR(25)") == "TEXT"
        assert SQLITE_DIALECT.render_type("DATE") == "TEXT"
        assert SQLITE_DIALECT.render_type("INTEGER") == "INTEGER"

    def test_create_table_uses_mapped_types(self):
        statement = parse_statement(
            "CREATE TABLE t (a INTEGER NOT NULL, b DECIMAL(15,2), c VARCHAR(10), d DATE)"
        )
        sql = to_sql(statement, SQLITE_DIALECT)
        assert sql == (
            "CREATE TABLE t (a INTEGER NOT NULL, b REAL, c TEXT, d TEXT)"
        )


class TestDefaultDialectRoundTrip:
    QUERIES = (
        "SELECT a AS x, b FROM t WHERE a < DATE '1994-01-01' + INTERVAL '1' YEAR",
        "SELECT SUBSTRING(p FROM 1 FOR 2), EXTRACT(YEAR FROM d) FROM t",
        "SELECT * FROM t WHERE s LIKE 'a%' AND b IN (1, 2) AND c = 'it''s'",
    )

    @pytest.mark.parametrize("text", QUERIES)
    def test_print_parse_print_is_stable(self, text):
        once = to_sql(parse_query(text))
        twice = to_sql(parse_query(once))
        assert once == twice


class TestNegativeIntervals:
    @pytest.mark.parametrize(
        "expr, expected",
        [
            ("DATE '1994-03-01' + INTERVAL '-3' DAY", "date('1994-03-01', '-3 day')"),
            ("DATE '1994-03-01' - INTERVAL '-3' DAY", "date('1994-03-01', '+3 day')"),
            ("DATE '1994-03-01' - INTERVAL '2' MONTH", "date('1994-03-01', '-2 month')"),
        ],
    )
    def test_sign_is_folded_into_the_modifier(self, expr, expected):
        sql = to_sql(parse_query(f"SELECT {expr}"), SQLITE_DIALECT)
        assert expected in sql

    def test_negative_amounts_evaluate(self):
        sql = to_sql(
            parse_query("SELECT DATE '1994-03-01' - INTERVAL '-3' DAY"),
            SQLITE_DIALECT,
        )
        assert sqlite3.connect(":memory:").execute(sql).fetchone() == ("1994-03-04",)
