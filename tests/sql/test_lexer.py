"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import TokenType, tokenize


def token_texts(sql):
    return [token.text for token in tokenize(sql) if token.type is not TokenType.EOF]


def token_types(sql):
    return [token.type for token in tokenize(sql) if token.type is not TokenType.EOF]


class TestBasicTokens:
    def test_identifiers_and_keywords_are_idents(self):
        assert token_types("SELECT foo FROM bar") == [TokenType.IDENT] * 4

    def test_numbers_integer_and_decimal(self):
        tokens = tokenize("42 3.14 .5")
        assert [t.text for t in tokens[:3]] == ["42", "3.14", ".5"]
        assert all(t.type is TokenType.NUMBER for t in tokens[:3])

    def test_string_literal(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].text == "hello world"

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].text == "it's"

    def test_double_quoted_scope_string(self):
        tokens = tokenize('SET SCOPE = "IN (1,2)"')
        assert tokens[3].type is TokenType.STRING
        assert tokens[3].text == "IN (1,2)"

    def test_parameters(self):
        tokens = tokenize("$1 + $22")
        assert tokens[0].type is TokenType.PARAM
        assert tokens[0].text == "$1"
        assert tokens[2].text == "$22"

    def test_operators_two_char_before_one_char(self):
        assert token_texts("a <= b <> c || d") == ["a", "<=", "b", "<>", "c", "||", "d"]

    def test_punctuation(self):
        assert token_texts("f(a, b.c);") == ["f", "(", "a", ",", "b", ".", "c", ")", ";"]

    def test_at_sign_for_mt_annotations(self):
        assert "@" in token_texts("CONVERTIBLE @toFn @fromFn")

    def test_position_tracking(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert token_texts("SELECT 1 -- comment\n+ 2") == ["SELECT", "1", "+", "2"]

    def test_block_comment_skipped(self):
        assert token_texts("SELECT /* hi */ 1") == ["SELECT", "1"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("SELECT /* oops")

    def test_whitespace_and_newlines(self):
        assert token_texts("SELECT\n\t 1") == ["SELECT", "1"]


class TestLexerErrors:
    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'unterminated")

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("SELECT ¤")

    def test_eof_token_always_present(self):
        tokens = tokenize("")
        assert tokens[-1].type is TokenType.EOF

    def test_token_matches_helper_is_case_insensitive(self):
        token = tokenize("select")[0]
        assert token.matches("SELECT")
        assert token.matches("select")
        assert not token.matches("FROM")
