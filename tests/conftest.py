"""Shared fixtures: the paper's running example and a tiny MT-H instance."""

from __future__ import annotations

import pytest

from repro.core import MTBase, make_currency_pair, make_phone_pair
from repro.mth import generate, load_mth, load_tpch_baseline

# ---------------------------------------------------------------------------
# The running example of the paper (Figure 2): Employees / Roles / Regions,
# two tenants, salaries in USD (tenant 0) and EUR (tenant 1).
# ---------------------------------------------------------------------------

EUR_TO_USD = 1.1
USD_TO_EUR = 1.0 / EUR_TO_USD

EMPLOYEES = [
    # (ttid, emp_id, name, role_id, reg_id, salary, age)
    (0, 0, "Patrick", 1, 3, 50_000, 30),
    (0, 1, "John", 0, 3, 70_000, 28),
    (0, 2, "Alice", 2, 3, 150_000, 46),
    (1, 0, "Allan", 1, 2, 80_000, 25),
    (1, 1, "Nancy", 2, 4, 200_000, 72),
    (1, 2, "Ed", 0, 4, 1_000_000, 46),
]

ROLES = [
    (0, 0, "phD stud."), (0, 1, "postdoc"), (0, 2, "professor"),
    (1, 0, "intern"), (1, 1, "researcher"), (1, 2, "executive"),
]

REGIONS = [
    (0, "AFRICA"), (1, "ASIA"), (2, "AUSTRALIA"),
    (3, "EUROPE"), (4, "N-AMERICA"), (5, "S-AMERICA"),
]


def build_paper_example(
    profile: str = "postgres", with_phone: bool = False, backend=None
) -> MTBase:
    """Build the paper's running example on a fresh middleware instance.

    ``backend`` selects the execution backend ("engine", "sqlite", or a
    Backend/BackendConnection); the default is a fresh in-memory engine.
    """
    mt = MTBase(profile=profile, backend=backend)
    db = mt.backend

    db.execute(
        "CREATE TABLE Tenant (T_tenant_key INTEGER NOT NULL, T_currency_key INTEGER NOT NULL,"
        " T_phone_prefix_key INTEGER NOT NULL, CONSTRAINT pk_tenant PRIMARY KEY (T_tenant_key))"
    )
    db.execute(
        "CREATE TABLE CurrencyTransform (CT_currency_key INTEGER NOT NULL,"
        " CT_to_universal DECIMAL(15,6) NOT NULL, CT_from_universal DECIMAL(15,6) NOT NULL,"
        " CONSTRAINT pk_ct PRIMARY KEY (CT_currency_key))"
    )
    db.execute(
        "CREATE TABLE PhoneTransform (PT_phone_prefix_key INTEGER NOT NULL,"
        " PT_prefix VARCHAR(5) NOT NULL, CONSTRAINT pk_pt PRIMARY KEY (PT_phone_prefix_key))"
    )
    db.execute(f"INSERT INTO CurrencyTransform VALUES (0, 1.0, 1.0), (1, {EUR_TO_USD}, {USD_TO_EUR})")
    db.execute("INSERT INTO PhoneTransform VALUES (0, ''), (1, '+')")
    db.execute("INSERT INTO Tenant VALUES (0, 0, 0), (1, 1, 1)")
    db.execute(
        "CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2) AS "
        "'SELECT CT_to_universal * $1 FROM Tenant, CurrencyTransform "
        "WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key' LANGUAGE SQL IMMUTABLE"
    )
    db.execute(
        "CREATE FUNCTION currencyFromUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2) AS "
        "'SELECT CT_from_universal * $1 FROM Tenant, CurrencyTransform "
        "WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key' LANGUAGE SQL IMMUTABLE"
    )
    db.execute(
        "CREATE FUNCTION phoneToUniversal (VARCHAR(17), INTEGER) RETURNS VARCHAR(17) AS "
        "'SELECT SUBSTRING($1 FROM CHAR_LENGTH(PT_prefix) + 1) FROM Tenant, PhoneTransform "
        "WHERE T_tenant_key = $2 AND T_phone_prefix_key = PT_phone_prefix_key' LANGUAGE SQL IMMUTABLE"
    )
    db.execute(
        "CREATE FUNCTION phoneFromUniversal (VARCHAR(17), INTEGER) RETURNS VARCHAR(17) AS "
        "'SELECT CONCAT(PT_prefix, $1) FROM Tenant, PhoneTransform "
        "WHERE T_tenant_key = $2 AND T_phone_prefix_key = PT_phone_prefix_key' LANGUAGE SQL IMMUTABLE"
    )
    rates_to = {0: 1.0, 1: EUR_TO_USD}
    rates_from = {0: 1.0, 1: USD_TO_EUR}
    prefixes = {0: "", 1: "+"}
    db.register_python_function("mt_currency_rate_to_universal", rates_to.__getitem__, immutable=True)
    db.register_python_function("mt_currency_rate_from_universal", rates_from.__getitem__, immutable=True)
    db.register_python_function("mt_phone_prefix", prefixes.__getitem__, immutable=True)
    mt.register_conversion_pair(make_currency_pair())
    mt.register_conversion_pair(make_phone_pair())

    phone_column = (
        "E_phone VARCHAR(17) NOT NULL CONVERTIBLE @phoneToUniversal @phoneFromUniversal," if with_phone else ""
    )
    mt.create_table(
        """CREATE TABLE Roles SPECIFIC (
            R_role_id INTEGER NOT NULL SPECIFIC,
            R_name VARCHAR(25) NOT NULL COMPARABLE
        )""",
        ttid_column="R_ttid",
    )
    mt.create_table(
        f"""CREATE TABLE Employees SPECIFIC (
            E_emp_id INTEGER NOT NULL SPECIFIC,
            E_name VARCHAR(25) NOT NULL COMPARABLE,
            E_role_id INTEGER NOT NULL SPECIFIC,
            E_reg_id INTEGER NOT NULL COMPARABLE,
            {phone_column}
            E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
            E_age INTEGER NOT NULL COMPARABLE,
            CONSTRAINT pk_emp PRIMARY KEY (E_emp_id),
            CONSTRAINT fk_emp FOREIGN KEY (E_role_id) REFERENCES Roles (R_role_id)
        )""",
        ttid_column="E_ttid",
    )
    mt.create_table(
        """CREATE TABLE Regions GLOBAL (
            Re_reg_id INTEGER NOT NULL,
            Re_name VARCHAR(25) NOT NULL
        )"""
    )

    if with_phone:
        rows = []
        for ttid, emp_id, name, role_id, reg_id, salary, age in EMPLOYEES:
            prefix = prefixes[ttid]
            rows.append(
                f"({ttid}, {emp_id}, '{name}', {role_id}, {reg_id},"
                f" '{prefix}41{emp_id}555000{ttid}', {salary}, {age})"
            )
        db.execute("INSERT INTO Employees VALUES " + ", ".join(rows))
    else:
        db.execute(
            "INSERT INTO Employees VALUES "
            + ", ".join(
                f"({ttid}, {emp_id}, '{name}', {role_id}, {reg_id}, {salary}, {age})"
                for ttid, emp_id, name, role_id, reg_id, salary, age in EMPLOYEES
            )
        )
    db.execute(
        "INSERT INTO Roles VALUES "
        + ", ".join(f"({ttid}, {role_id}, '{name}')" for ttid, role_id, name in ROLES)
    )
    db.execute(
        "INSERT INTO Regions VALUES "
        + ", ".join(f"({key}, '{name}')" for key, name in REGIONS)
    )

    mt.register_tenant(0, "usd-tenant")
    mt.register_tenant(1, "eur-tenant")
    mt.allow_cross_tenant_access(privileges=("READ", "INSERT", "UPDATE", "DELETE"))
    return mt


@pytest.fixture
def paper_mt() -> MTBase:
    """A fresh running-example middleware for tests that mutate data."""
    return build_paper_example()


@pytest.fixture(scope="session")
def paper_example_factory():
    """The builder itself, for tests that pick profile/backend per case.

    Session-scoped on purpose: the fixture yields the (stateless) builder
    function, so wider-scoped fixtures may depend on it.
    """
    return build_paper_example


@pytest.fixture(scope="session")
def paper_mt_session() -> MTBase:
    """A shared (read-only) running-example middleware."""
    return build_paper_example()


@pytest.fixture(scope="session")
def paper_mt_phone() -> MTBase:
    """Running example extended with a convertible phone attribute."""
    return build_paper_example(with_phone=True)


# ---------------------------------------------------------------------------
# A tiny MT-H instance shared by the integration tests
# ---------------------------------------------------------------------------

TINY_SF = 0.001
TINY_TENANTS = 4


@pytest.fixture(scope="session")
def tiny_tpch_data():
    return generate(scale_factor=TINY_SF, seed=7)


@pytest.fixture(scope="session")
def tiny_mth(tiny_tpch_data):
    return load_mth(data=tiny_tpch_data, tenants=TINY_TENANTS, distribution="uniform")


@pytest.fixture(scope="session")
def tiny_baseline(tiny_tpch_data):
    return load_tpch_baseline(data=tiny_tpch_data)
