"""Concurrent executor: multi-threaded smoke tests and metrics sanity."""

import threading

import pytest

from repro.gateway import ConcurrentExecutor, QueryGateway

from tests.conftest import build_paper_example

SQL_BY_NAME = "SELECT E_name, E_salary FROM Employees ORDER BY E_name"
SQL_TOTALS = (
    "SELECT E_reg_id, SUM(E_salary) AS total FROM Employees "
    "GROUP BY E_reg_id ORDER BY E_reg_id"
)
SQL_JOIN = (
    "SELECT R_name, COUNT(*) AS heads FROM Employees, Roles "
    "WHERE E_role_id = R_role_id GROUP BY R_name ORDER BY R_name"
)


@pytest.fixture
def mt():
    return build_paper_example()


def expected_rows(mt, client, sql):
    connection = mt.connect(client, optimization="o4")
    connection.set_scope("IN (0, 1)")
    return connection.query(sql).rows


def test_concurrent_sessions_return_correct_results(mt):
    gateway = mt.gateway(cache_size=64)
    statements = [SQL_BY_NAME, SQL_TOTALS, SQL_JOIN] * 4
    batches = [
        (gateway.session(client, optimization="o4", scope="IN (0, 1)"), statements)
        for client in (0, 1, 0, 1)
    ]
    report = gateway.run_concurrent(batches)

    assert report.statements == len(batches) * len(statements)
    assert report.errors == []
    assert report.elapsed > 0
    assert report.throughput > 0
    assert report.latency.count == report.statements
    for session, _ in batches:
        outcomes = report.outcomes_for(session)
        # per-session order is preserved
        assert [outcome.statement for outcome in outcomes] == statements
        for outcome, sql in zip(outcomes, statements):
            assert outcome.result.rows == expected_rows(mt, session.client, sql)
    # 6 distinct (digest, client, D', level) plans; same-key sessions racing the
    # first rewrite can each record a miss, so the floor is exact, the count not
    stats = gateway.cache_stats
    assert stats.misses >= 6
    assert stats.hits + stats.misses == report.statements
    assert len(gateway.cache) == 6
    gateway.close()


def test_errors_are_captured_per_statement_not_raised(mt):
    gateway = mt.gateway()
    good = gateway.session(0, optimization="o4", scope="IN (0, 1)")
    batches = [(good, [SQL_BY_NAME, "SELECT nonsense_column FROM Employees", SQL_BY_NAME])]
    report = gateway.run_concurrent(batches)
    assert report.statements == 3
    assert len(report.errors) == 1
    assert report.outcomes[0].ok and report.outcomes[2].ok
    assert report.outcomes[1].error is not None
    gateway.close()


def test_empty_run_is_a_noop(mt):
    report = ConcurrentExecutor().run([])
    assert report.statements == 0
    assert report.throughput == 0.0


def test_one_session_shared_by_many_threads_is_serialized(mt):
    """The session lock makes even *misuse* (one session, many threads) safe."""
    gateway = mt.gateway()
    session = gateway.session(0, optimization="o4", scope="IN (0, 1)")
    reference = expected_rows(mt, 0, SQL_BY_NAME)
    failures = []

    def hammer():
        try:
            for _ in range(5):
                assert session.query(SQL_BY_NAME).rows == reference
        except Exception as exc:  # pragma: no cover - only on failure
            failures.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert failures == []
    assert session.stats.executed == 40
    gateway.close()


def test_concurrent_dml_loses_no_writes(mt):
    """The engine's write lock: racing INSERT/UPDATE batches must all land."""
    gateway = mt.gateway()
    writers = 6
    per_writer = 5
    batches = []
    for worker in range(writers):
        session = gateway.session(0, optimization="o4")  # default scope: own rows
        statements = [
            f"INSERT INTO Employees VALUES ({100 + worker * per_writer + i}, "
            f"'W{worker}_{i}', 0, 1, 1000, 30)"
            for i in range(per_writer)
        ]
        batches.append((session, statements))
    report = gateway.run_concurrent(batches)
    assert report.errors == []
    count = mt.connect(0).query("SELECT COUNT(*) AS n FROM Employees").rows[0][0]
    assert count == 3 + writers * per_writer  # 3 seed rows for tenant 0
    gateway.close()


def test_gateway_context_manager_detaches_listener(mt):
    with QueryGateway(mt) as gateway:
        session = gateway.session(0, optimization="o4", scope="IN (0, 1)")
        session.query(SQL_BY_NAME)
        assert len(gateway.cache) == 1
    mt.execute_ddl("CREATE TABLE Scratch GLOBAL (S_id INTEGER NOT NULL)")
    assert gateway.cache_stats.invalidations == 0


def test_report_tracks_load_and_tail_latency(mt):
    """The run report carries the load gauge and the p99 tail percentile."""
    gateway = mt.gateway()
    batches = [
        (gateway.session(client, optimization="o4", scope="IN (0, 1)"),
         [SQL_BY_NAME] * 3)
        for client in (0, 1, 0, 1)
    ]
    report = gateway.run_concurrent(batches)
    assert report.load.peak_in_flight >= 1
    assert report.load.in_flight == 0 and report.load.queued == 0  # run drained
    assert report.load.peak_queued >= 0
    assert report.latency.p99 >= report.latency.p95 >= report.latency.p50
    described = report.describe()
    assert "in-flight" in described and "queued" in described
    assert "p99" in described
    gateway.close()


def test_load_gauge_counts_and_peaks():
    from repro.gateway import LoadGauge

    gauge = LoadGauge()
    gauge.enqueue()
    gauge.enqueue()
    gauge.dequeue()
    gauge.enter()
    gauge.enter()
    gauge.exit()
    snapshot = gauge.snapshot()
    assert (snapshot.queued, snapshot.peak_queued) == (1, 2)
    assert (snapshot.in_flight, snapshot.peak_in_flight) == (1, 2)
    assert "peak 2" in snapshot.describe()
