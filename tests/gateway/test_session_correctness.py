"""Cache correctness: warm-path results are byte-identical to the cold path.

The acceptance bar for the gateway: for every optimization level, executing
through the rewrite cache must return exactly what a direct
:class:`MTConnection` returns — same column headers, same row tuples, same
floats (the cached plan *is* the cold plan, so even rounding agrees).
"""

import pytest

from repro.errors import MTSQLError, PrivilegeError
from repro.gateway import fingerprint_statement
from repro.gateway import session as session_module

from tests.conftest import build_paper_example

LEVELS = ("canonical", "o1", "o2", "o3", "o4", "inl-only")

QUERIES = (
    "SELECT E_name, E_salary FROM Employees ORDER BY E_name",
    "SELECT E_reg_id, SUM(E_salary) AS total FROM Employees "
    "GROUP BY E_reg_id ORDER BY E_reg_id",
    "SELECT R_name, AVG(E_salary) AS pay FROM Employees, Roles "
    "WHERE E_role_id = R_role_id GROUP BY R_name ORDER BY R_name",
    "SELECT E_name FROM Employees "
    "WHERE E_salary > (SELECT AVG(E_salary) FROM Employees) ORDER BY E_name",
)


@pytest.fixture(scope="module")
def mt():
    return build_paper_example()


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("client", (0, 1))
def test_warm_cache_is_byte_identical_to_cold_path(mt, level, client):
    gateway = mt.gateway()
    session = gateway.session(client, optimization=level, scope="IN (0, 1)")
    direct = mt.connect(client, optimization=level)
    direct.set_scope("IN (0, 1)")
    for sql in QUERIES:
        cold = session.query(sql)
        warm = session.query(sql)
        reference = direct.query(sql)
        assert warm.columns == cold.columns == reference.columns
        assert warm.rows == cold.rows == reference.rows  # exact, not approx
    assert session.stats.cache_hits == len(QUERIES)
    gateway.close()


def test_warm_path_skips_parse_entirely(mt, monkeypatch):
    gateway = mt.gateway()
    session = gateway.session(0, optimization="o4", scope="IN (0, 1)")
    sql = "SELECT E_name FROM Employees ORDER BY E_name"
    cold = session.query(sql).rows
    parses = []

    def counting_parse(text):
        parses.append(text)
        raise AssertionError("warm path must not parse")

    monkeypatch.setattr(session_module, "parse_submitted_statement", counting_parse)
    assert session.query(sql).rows == cold
    assert parses == []
    gateway.close()


def test_prepared_statements_follow_scope_changes(mt):
    gateway = mt.gateway()
    session = gateway.session(0, optimization="o4", scope="IN (0, 1)")
    handle = session.prepare("SELECT E_name FROM Employees ORDER BY E_name")
    joint = session.execute(handle).rows
    own = session.execute(handle, scope="IN (0)").rows
    assert len(own) < len(joint)
    direct = mt.connect(0, optimization="o4")
    direct.set_scope("IN (0)")
    assert own == direct.query("SELECT E_name FROM Employees ORDER BY E_name").rows
    # the two scopes occupy distinct cache keys; flipping back hits the cache
    hits_before = session.stats.cache_hits
    assert session.execute(handle, scope="IN (0, 1)").rows == joint
    assert session.stats.cache_hits == hits_before + 1
    gateway.close()


def test_unknown_prepared_handle_raises(mt):
    gateway = mt.gateway()
    session = gateway.session(0)
    with pytest.raises(MTSQLError, match="prepared-statement handle"):
        session.execute(12345)
    gateway.close()


def test_set_scope_statement_is_delegated(mt):
    gateway = mt.gateway()
    session = gateway.session(0, optimization="o4", scope="IN (0, 1)")
    session.execute('SET SCOPE = "IN (0)"')
    assert session.scope.describe() == "IN (0)"
    gateway.close()


def test_privilege_errors_match_the_cold_path():
    mt = build_paper_example()
    mt.privileges.revoke_public("Employees", ("READ",))
    mt.notify_metadata_change("privilege")
    gateway = mt.gateway()
    session = gateway.session(0, optimization="o4", scope="IN (1)")
    direct = mt.connect(0, optimization="o4")
    direct.set_scope("IN (1)")
    sql = "SELECT E_name FROM Employees"
    with pytest.raises(PrivilegeError):
        direct.query(sql)
    with pytest.raises(PrivilegeError):
        session.query(sql)


def test_query_rejects_non_select():
    gateway = build_paper_example().gateway()  # fresh: the INSERT executes first
    session = gateway.session(0)
    with pytest.raises(MTSQLError, match="SELECT"):
        session.query("INSERT INTO Employees VALUES (99, 'X', 0, 1, 1, 1)")
    gateway.close()


def test_reprs_show_tenant_scope_and_level(mt):
    gateway = mt.gateway()
    session = gateway.session(1, optimization="o2", scope="IN (0, 1)")
    assert "client=1" in repr(session)
    assert "IN (0, 1)" in repr(session)
    assert "o2" in repr(session)
    connection = mt.connect(0, optimization="canonical")
    assert "client=0" in repr(connection)
    assert "DEFAULT" in repr(connection)
    assert "canonical" in repr(connection)
    assert "QueryGateway(" in repr(gateway)
    gateway.close()


def test_fingerprint_reuse_across_sessions(mt):
    """Two sessions of the same tenant share cached plans."""
    gateway = mt.gateway()
    first = gateway.session(0, optimization="o4", scope="IN (0, 1)")
    second = gateway.session(0, optimization="o4", scope="IN (0, 1)")
    sql = "SELECT E_name, E_age FROM Employees ORDER BY E_name"
    cold = first.query(sql).rows
    assert second.query(sql).rows == cold
    assert second.stats.cache_hits == 1
    assert fingerprint_statement(sql).digest == fingerprint_statement(f"  {sql}  ").digest
    gateway.close()
