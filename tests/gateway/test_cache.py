"""RewriteCache behaviour: LRU eviction, statistics, invalidation signals."""

import pytest

from repro.core.optimizer.levels import OptimizationLevel
from repro.gateway import CacheKey, RewriteCache, fingerprint_statement
from repro.sql.parser import parse_statement

from tests.conftest import build_paper_example


def make_key(n: int, dataset=(0, 1)) -> CacheKey:
    return CacheKey(
        digest=f"digest-{n}", client=0, dataset=tuple(dataset), level=OptimizationLevel.O4
    )


class _DummyCompiled:
    """Minimal CompiledQuery stand-in: the cache itself only reads .rewritten."""

    def __init__(self):
        self.rewritten = parse_statement("SELECT 1 FROM Employees")


def dummy_plan():
    return _DummyCompiled()


class TestLRU:
    def test_capacity_bound_and_eviction_order(self):
        cache = RewriteCache(capacity=2)
        cache.put(make_key(1), dummy_plan())
        cache.put(make_key(2), dummy_plan())
        cache.put(make_key(3), dummy_plan())
        assert len(cache) == 2
        assert cache.get(make_key(1)) is None  # oldest evicted
        assert cache.get(make_key(2)) is not None
        assert cache.get(make_key(3)) is not None
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = RewriteCache(capacity=2)
        cache.put(make_key(1), dummy_plan())
        cache.put(make_key(2), dummy_plan())
        assert cache.get(make_key(1)) is not None  # 1 becomes most recent
        cache.put(make_key(3), dummy_plan())
        assert cache.get(make_key(1)) is not None
        assert cache.get(make_key(2)) is None

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RewriteCache(capacity=0)


class TestStats:
    def test_hit_miss_accounting(self):
        cache = RewriteCache(capacity=4)
        key = make_key(1)
        assert cache.get(key) is None
        cache.put(key, dummy_plan())
        assert cache.get(key) is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_key_includes_dataset_and_level(self):
        cache = RewriteCache(capacity=8)
        cache.put(make_key(1, dataset=(0, 1)), dummy_plan())
        assert cache.get(make_key(1, dataset=(0,))) is None
        other_level = CacheKey(
            digest="digest-1", client=0, dataset=(0, 1), level=OptimizationLevel.O1
        )
        assert cache.get(other_level) is None

    def test_invalidate_clears_and_records_reason(self):
        cache = RewriteCache(capacity=4)
        cache.put(make_key(1), dummy_plan())
        dropped = cache.invalidate(reason="ddl")
        assert dropped == 1
        assert len(cache) == 0
        assert cache.stats.invalidations == 1
        assert cache.stats.invalidation_reasons == {"ddl": 1}

    def test_stale_version_put_is_rejected(self):
        """Closes the put-after-invalidate race: an entry computed from
        pre-change metadata must not be cached past the flush."""
        version = {"value": 0}
        cache = RewriteCache(capacity=4, version_source=lambda: version["value"])
        snapshot = cache.current_version()
        version["value"] += 1  # metadata changed while the rewrite was running
        plan = cache.put(make_key(1), dummy_plan(), version=snapshot)
        assert plan.rewritten is not None  # caller can still execute it once
        assert len(cache) == 0
        cache.put_info("d", object(), version=snapshot)
        assert cache.get_info("d") is None
        # a put computed after the change is cached normally
        cache.put(make_key(1), dummy_plan(), version=cache.current_version())
        assert len(cache) == 1


class TestMetadataInvalidation:
    """The gateway flushes on every middleware metadata change."""

    @pytest.fixture
    def served(self):
        mt = build_paper_example()
        gateway = mt.gateway(cache_size=32)
        session = gateway.session(0, optimization="o4", scope="IN (0, 1)")
        session.query("SELECT E_name FROM Employees ORDER BY E_name")
        assert len(gateway.cache) == 1
        return mt, gateway, session

    def test_create_table_flushes(self, served):
        mt, gateway, _ = served
        mt.execute_ddl("CREATE TABLE Scratch GLOBAL (S_id INTEGER NOT NULL)")
        assert len(gateway.cache) == 0
        assert gateway.cache_stats.invalidation_reasons.get("ddl") == 1

    def test_drop_table_flushes(self, served):
        mt, gateway, _ = served
        mt.execute_ddl("CREATE TABLE Scratch GLOBAL (S_id INTEGER NOT NULL)")
        before = gateway.cache_stats.invalidations
        mt.execute_ddl("DROP TABLE Scratch")
        assert gateway.cache_stats.invalidations == before + 1

    def test_grant_and_revoke_flush(self, served):
        mt, gateway, _ = served
        grantor = mt.connect(1)
        grantor.set_scope("IN (1)")
        grantor.execute("GRANT READ ON Employees TO 0")
        assert gateway.cache_stats.invalidation_reasons.get("privilege", 0) >= 1
        flushes = gateway.cache_stats.invalidations
        grantor.execute("REVOKE READ ON Employees FROM 0")
        assert gateway.cache_stats.invalidations == flushes + 1

    def test_tenant_registration_flushes(self, served):
        mt, gateway, _ = served
        mt.register_tenant(2, "new-tenant")
        assert gateway.cache_stats.invalidation_reasons.get("tenant") == 1

    def test_create_view_through_a_session_flushes(self, served):
        mt, gateway, session = served
        session.execute("CREATE VIEW Expensive AS SELECT E_name FROM Employees WHERE E_salary > 100000")
        assert gateway.cache_stats.invalidation_reasons.get("ddl") == 1
        assert len(gateway.cache) == 0

    def test_released_session_is_forgotten(self, served):
        _, gateway, session = served
        assert session in gateway.sessions
        session.close()
        assert session not in gateway.sessions
        session.close()  # idempotent

    def test_closed_gateway_stops_listening(self, served):
        mt, gateway, _ = served
        gateway.close()
        before = gateway.cache_stats.invalidations
        mt.execute_ddl("CREATE TABLE Scratch GLOBAL (S_id INTEGER NOT NULL)")
        assert gateway.cache_stats.invalidations == before

    def test_closed_gateway_serves_cold_but_correct(self, served):
        """A detached cache can't see invalidations, so close() disables it:
        orphaned sessions keep working, uncached."""
        mt, gateway, session = served
        sql = "SELECT E_name FROM Employees ORDER BY E_name"
        expected = session.query(sql).rows
        gateway.close()
        assert len(gateway.cache) == 0
        assert session.query(sql).rows == expected
        assert session.query(sql).rows == expected
        assert len(gateway.cache) == 0  # nothing recached after close

    def test_stale_all_tenant_plan_never_served_after_tenant_registration(self):
        """The wrong-answer scenario invalidation exists for: an explicit
        ``IN (0, 1)`` scope equals *all* tenants, so O1+ drops the ttid
        filter from the rewrite.  Registering tenant 2 makes the same D'
        a strict subset — a stale plan would leak tenant 2's rows."""
        mt = build_paper_example()
        gateway = mt.gateway()
        session = gateway.session(0, optimization="o4", scope="IN (0, 1)")
        sql = "SELECT E_name FROM Employees ORDER BY E_name"
        before = session.query(sql).rows
        mt.register_tenant(2, "interloper")
        # tenant 2 loads a row through the middleware's own DML pipeline
        writer = mt.connect(2)
        writer.execute("INSERT INTO Employees VALUES (9, 'Mallory', 0, 1, 1000, 33)")
        mt.allow_cross_tenant_access(privileges=("READ",))
        warm = session.query(sql).rows
        direct = mt.connect(0, optimization="o4")
        direct.set_scope("IN (0, 1)")
        assert warm == direct.query(sql).rows == before
        assert all(row[0] != "Mallory" for row in warm)
