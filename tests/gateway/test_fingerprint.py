"""Statement fingerprinting: normalization, literal extraction, stability."""

from repro.gateway import fingerprint_statement
from repro.sql.parser import parse_statement


class TestNormalization:
    def test_whitespace_and_comments_do_not_change_the_digest(self):
        a = fingerprint_statement("SELECT E_name FROM Employees WHERE E_age > 30")
        b = fingerprint_statement(
            "SELECT   E_name\n  FROM Employees -- trailing comment\n  WHERE E_age > 30"
        )
        c = fingerprint_statement(
            "SELECT /* block */ E_name FROM Employees WHERE E_age > 30"
        )
        assert a.digest == b.digest == c.digest
        assert a.template == b.template == c.template

    def test_identifier_spelling_is_preserved(self):
        # aliases determine result column names, so case-folding identifiers
        # could serve a cached plan with the wrong output header
        a = fingerprint_statement("SELECT E_salary AS Pay FROM Employees")
        b = fingerprint_statement("SELECT E_salary AS pay FROM Employees")
        assert a.digest != b.digest

    def test_parsed_statement_matches_its_printed_text(self):
        text = "SELECT E_name, E_salary FROM Employees WHERE E_age >= 30 ORDER BY E_name"
        assert (
            fingerprint_statement(parse_statement(text)).digest
            == fingerprint_statement(text).digest
        )


class TestLiterals:
    def test_literals_are_extracted_into_the_template(self):
        fp = fingerprint_statement(
            "SELECT E_name FROM Employees WHERE E_age > 30 AND E_name <> 'Bob'"
        )
        assert fp.literals == ("30", "Bob")
        assert "30" not in fp.template
        assert "Bob" not in fp.template

    def test_different_literals_share_the_template_digest(self):
        a = fingerprint_statement("SELECT E_name FROM Employees WHERE E_age > 30")
        b = fingerprint_statement("SELECT E_name FROM Employees WHERE E_age > 65")
        assert a.template_digest == b.template_digest
        assert a.digest != b.digest

    def test_number_and_string_literals_do_not_collide(self):
        a = fingerprint_statement("SELECT E_name FROM Employees WHERE E_name = '1'")
        b = fingerprint_statement("SELECT E_name FROM Employees WHERE E_name = 1")
        assert a.digest != b.digest

    def test_literal_vector_is_position_sensitive(self):
        a = fingerprint_statement("SELECT 1, 2 FROM Employees")
        b = fingerprint_statement("SELECT 2, 1 FROM Employees")
        assert a.digest != b.digest
        assert a.template_digest == b.template_digest

    def test_literal_boundaries_cannot_be_forged(self):
        # same template, literal vectors that concatenate identically
        a = fingerprint_statement("SELECT 'a\x1f', 'b' FROM Employees")
        b = fingerprint_statement("SELECT 'a', '\x1fb' FROM Employees")
        assert a.template_digest == b.template_digest
        assert a.digest != b.digest


class TestRepr:
    def test_repr_is_compact(self):
        fp = fingerprint_statement("SELECT E_name FROM Employees")
        assert "Fingerprint(" in repr(fp)
        assert len(repr(fp)) < 200
