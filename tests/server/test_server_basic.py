"""End-to-end serving: the DB-API surface and the async client over TCP."""

from __future__ import annotations

import asyncio
import socket
import struct

import pytest

import repro.api as api
from repro.errors import (
    InvalidStatementError,
    ParameterError,
    ProtocolError,
    ScopeError,
)
from repro.server import ReproServer, ServerConfig, SyncSession, serve
from repro.server.client import AsyncSession, RemoteRowStream
from repro.server.loopback import loopback_server, shutdown_loopbacks
from repro.server.protocol import encode_frame, read_frame_blocking

from tests.conftest import build_paper_example

SQL_BY_NAME = "SELECT E_name FROM Employees ORDER BY E_name"
SQL_SALARY = (
    "SELECT E_name, E_salary FROM Employees WHERE E_salary > ? ORDER BY E_name"
)


@pytest.fixture(scope="module")
def mt():
    """A read-only paper example shared by the query tests of this module."""
    return build_paper_example()


@pytest.fixture(scope="module")
def server(mt):
    with serve(mt) as live:
        yield live


@pytest.fixture(scope="module")
def spec(server):
    host, port = server.address
    return f"server://{host}:{port}"


def in_process_rows(mt, client, sql, scope="IN (0, 1)", parameters=None):
    connection = mt.connect(client, optimization="o4")
    connection.set_scope(scope)
    return connection.query(sql, parameters=parameters).rows


# ---------------------------------------------------------------------------
# the DB-API surface over the wire
# ---------------------------------------------------------------------------


def test_select_over_the_wire_matches_in_process(mt, spec):
    with api.connect(spec, client=0, optimization="o4", scope="IN (0, 1)") as conn:
        rows = conn.cursor().execute(SQL_BY_NAME).fetchall()
    assert rows == in_process_rows(mt, 0, SQL_BY_NAME)
    assert len(rows) == 6


def test_bind_parameters_travel_and_convert(mt, spec):
    with api.connect(spec, client=1, optimization="o4", scope="IN (0, 1)") as conn:
        cursor = conn.cursor()
        rows = cursor.execute(SQL_SALARY, (100_000,)).fetchall()
        assert rows == in_process_rows(mt, 1, SQL_SALARY, parameters=(100_000,))
        named = cursor.execute(
            "SELECT E_name FROM Employees WHERE E_salary > :floor ORDER BY E_name",
            {"floor": 100_000},
        ).fetchall()
        assert [row[0] for row in rows] == [row[0] for row in named]


def test_incremental_fetch_is_demand_sized(spec):
    with api.connect(spec, client=0, optimization="o4", scope="IN (0, 1)") as conn:
        cursor = conn.cursor().execute(SQL_BY_NAME)
        first = cursor.fetchmany(2)
        second = cursor.fetchmany(2)
        assert len(first) == 2 and len(second) == 2
        assert cursor.fetchone() is not None
        rest = cursor.fetchall()
        assert len(rest) == 1
        assert cursor.fetchone() is None
        assert cursor.rowcount == 6


def test_multiple_interleaved_cursors_on_one_connection(spec):
    with api.connect(spec, client=0, optimization="o4", scope="IN (0, 1)") as conn:
        a = conn.cursor().execute(SQL_BY_NAME)
        b = conn.cursor().execute("SELECT E_age FROM Employees ORDER BY E_age")
        assert a.fetchone() is not None
        assert b.fetchone() is not None
        assert len(a.fetchall()) == 5
        assert len(b.fetchall()) == 5


def test_errors_arrive_as_the_same_exception_classes(spec):
    with api.connect(spec, client=0, optimization="o4", scope="IN (0)") as conn:
        cursor = conn.cursor()
        with pytest.raises(InvalidStatementError):
            cursor.execute("SELEC nope")
        with pytest.raises(ParameterError):
            cursor.execute(SQL_SALARY)  # placeholder without a binding
        with pytest.raises(ScopeError):
            api.connect(spec, client=0, scope="NOT A SCOPE")
        # the connection survives statement errors
        assert len(cursor.execute(SQL_BY_NAME).fetchall()) == 3


def test_dml_through_the_wire_hits_the_mt_pipeline():
    mt = build_paper_example()
    with serve(mt) as live:
        host, port = live.address
        with api.connect(
            f"server://{host}:{port}", client=0, optimization="o4", scope="IN (0)"
        ) as conn:
            cursor = conn.cursor()
            cursor.execute(
                "INSERT INTO Employees VALUES (?, ?, ?, ?, ?, ?)",
                (7, "Zoe", 1, 3, 42_000, 33),
            )
            assert cursor.rowcount >= 1
            rows = cursor.execute(SQL_BY_NAME).fetchall()
            assert ("Zoe",) in rows
    # the write landed in the shared middleware, not in a network-side copy
    assert ("Zoe",) in in_process_rows(mt, 0, SQL_BY_NAME, scope="IN (0)")


def test_sync_session_ducktypes_a_gateway_session(mt, spec, server):
    host, port = server.address
    with SyncSession(host, port, client=0, scope="IN (0, 1)", optimization="o4") as session:
        assert session.session_id >= 0
        handle = session.prepare(SQL_BY_NAME)
        stream = session.execute_incremental(handle)
        assert isinstance(stream, RemoteRowStream)
        assert stream.fetchmany(3) == in_process_rows(mt, 0, SQL_BY_NAME)[:3]
        stream.close()  # early close frees the server-side cursor
        assert session.query(handle).rows == in_process_rows(mt, 0, SQL_BY_NAME)
        session.close_prepared(handle)
        assert "compilation" in session.explain(SQL_BY_NAME)
        session.set_scope("IN (0)")
        assert len(session.query(SQL_BY_NAME).rows) == 3
        session.reset_scope()


def test_server_spec_validation():
    with pytest.raises(Exception, match="requires a client"):
        api.connect("server://localhost:5433")
    for bad in ("server://nohost", "server://host:port", "server://host:0"):
        with pytest.raises(Exception, match="malformed|requires"):
            api.connect(bad, client=0)


# ---------------------------------------------------------------------------
# the async client
# ---------------------------------------------------------------------------


def test_async_session_full_surface(mt, server):
    host, port = server.address

    async def main():
        async with await AsyncSession.open(
            host, port, client=1, scope="IN (0, 1)", optimization="o4"
        ) as session:
            result = await session.execute(SQL_BY_NAME)
            assert result.rows == in_process_rows(mt, 1, SQL_BY_NAME)
            handle = await session.prepare(SQL_SALARY)
            bound = await session.execute(handle, parameters=(100_000,))
            assert bound.rows == in_process_rows(
                mt, 1, SQL_SALARY, parameters=(100_000,)
            )
            assert "compilation" in await session.explain(SQL_BY_NAME)
            await session.set_scope("IN (1)")
            scoped = await session.execute(SQL_BY_NAME)
            assert len(scoped.rows) == 3

    asyncio.run(main())


def test_async_incremental_cursor_protocol(server):
    host, port = server.address

    async def main():
        session = await AsyncSession.open(
            host, port, client=0, scope="IN (0, 1)", optimization="o4"
        )
        reply = await session.begin_execute(SQL_BY_NAME)
        assert reply["kind"] == "rows" and reply["columns"] == ["E_name"]
        rows, eof = await session.fetch(reply["cursor"], 4)
        assert len(rows) == 4 and not eof
        rows, eof = await session.fetch(reply["cursor"], 4)
        assert len(rows) == 2 and eof
        await session.close()

    asyncio.run(main())


# ---------------------------------------------------------------------------
# loopback rerouting (the CI mechanism)
# ---------------------------------------------------------------------------


def test_loopback_reroutes_middleware_and_gateway(monkeypatch):
    monkeypatch.setenv("REPRO_API_VIA_SERVER", "1")
    mt = build_paper_example()
    gateway = mt.gateway()
    try:
        with api.connect(mt, client=0, optimization="o4", scope="IN (0, 1)") as conn:
            target_session = conn._target._session
            assert isinstance(target_session, SyncSession)
            assert len(conn.cursor().execute(SQL_BY_NAME).fetchall()) == 6
        assert loopback_server(mt) is not None
        with api.connect(gateway, client=1, optimization="o4", scope="IN (1)") as conn:
            assert isinstance(conn._target._session, SyncSession)
            assert len(conn.cursor().execute(SQL_BY_NAME).fetchall()) == 3
        assert loopback_server(gateway) is not None
        # one server per target object, reused across connections
        first = loopback_server(mt)
        with api.connect(mt, client=1, optimization="o4") as conn:
            conn.cursor().execute("SELECT COUNT(*) FROM Employees").fetchall()
        assert loopback_server(mt) is first
        # missing client ids still fail fast, before any server boots
        with pytest.raises(Exception, match="requires a client"):
            api.connect(mt)
    finally:
        shutdown_loopbacks()
        gateway.close()


# ---------------------------------------------------------------------------
# lifecycle and protocol robustness
# ---------------------------------------------------------------------------


def test_graceful_stop_drains_and_refuses_further_requests():
    mt = build_paper_example()
    server = ReproServer(mt, config=ServerConfig(drain_timeout=2.0))
    server.start()
    host, port = server.address
    session = SyncSession(host, port, client=0, scope="IN (0)", optimization="o4")
    assert len(session.query(SQL_BY_NAME).rows) == 3
    server.stop()
    server.stop()  # idempotent
    with pytest.raises(Exception):
        session.query(SQL_BY_NAME)
    session.close()


def test_request_before_hello_is_a_protocol_violation():
    mt = build_paper_example()
    with serve(mt) as live:
        host, port = live.address
        with socket.create_connection((host, port)) as raw:
            stream = raw.makefile("rwb")
            stream.write(encode_frame({"op": "prepare", "sql": "SELECT 1"}))
            stream.flush()
            reply = read_frame_blocking(stream)
            assert reply["ok"] is False and reply["error"] == "PROTOCOL"
            # the server closed the connection after the violation
            assert stream.read(1) == b""


def test_oversized_frame_closes_the_connection():
    mt = build_paper_example()
    with serve(mt) as live:
        host, port = live.address
        with socket.create_connection((host, port)) as raw:
            raw.sendall(struct.pack(">I", 1 << 30))
            stream = raw.makefile("rb")
            reply = read_frame_blocking(stream)
            assert reply["ok"] is False and reply["error"] == "PROTOCOL"
            assert stream.read(1) == b""


def test_hello_requires_an_integer_client():
    mt = build_paper_example()
    with serve(mt) as live:
        host, port = live.address
        with pytest.raises(ProtocolError, match="client"):
            SyncSession(host, port, client="zero")  # type: ignore[arg-type]
