"""Server configuration: strict REPRO_SERVER_* environment-knob validation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.server.config import ServerConfig


def test_defaults_without_environment(monkeypatch):
    for name in (
        "REPRO_SERVER_PORT",
        "REPRO_SERVER_QUEUE_DEPTH",
        "REPRO_SERVER_CONCURRENCY",
        "REPRO_SERVER_WORKERS",
        "REPRO_SERVER_TIMEOUT",
    ):
        monkeypatch.delenv(name, raising=False)
    config = ServerConfig.from_env()
    assert config.port == 0
    assert config.queue_depth == 32
    assert config.concurrency == 8
    assert config.workers == 8
    assert config.request_timeout == 30.0


def test_environment_knobs_are_honoured(monkeypatch):
    monkeypatch.setenv("REPRO_SERVER_PORT", "5433")
    monkeypatch.setenv("REPRO_SERVER_QUEUE_DEPTH", "4")
    monkeypatch.setenv("REPRO_SERVER_CONCURRENCY", "2")
    monkeypatch.setenv("REPRO_SERVER_WORKERS", "3")
    monkeypatch.setenv("REPRO_SERVER_TIMEOUT", "1.5")
    config = ServerConfig.from_env()
    assert (config.port, config.queue_depth, config.concurrency) == (5433, 4, 2)
    assert (config.workers, config.request_timeout) == (3, 1.5)


def test_overrides_win_over_the_environment(monkeypatch):
    monkeypatch.setenv("REPRO_SERVER_CONCURRENCY", "2")
    assert ServerConfig.from_env(concurrency=16).concurrency == 16


@pytest.mark.parametrize(
    ("name", "value", "match"),
    [
        ("REPRO_SERVER_PORT", "http", "integer"),
        ("REPRO_SERVER_PORT", "-1", ">= 0"),
        ("REPRO_SERVER_PORT", "70000", "TCP port"),
        ("REPRO_SERVER_QUEUE_DEPTH", "many", "integer"),
        ("REPRO_SERVER_QUEUE_DEPTH", "-3", ">= 0"),
        ("REPRO_SERVER_CONCURRENCY", "0", ">= 1"),
        ("REPRO_SERVER_CONCURRENCY", "2.5", "integer"),
        ("REPRO_SERVER_WORKERS", "0", ">= 1"),
        ("REPRO_SERVER_TIMEOUT", "soon", "seconds"),
        ("REPRO_SERVER_TIMEOUT", "0", "positive"),
        ("REPRO_SERVER_TIMEOUT", "-2", "positive"),
    ],
)
def test_malformed_knobs_raise_configuration_errors(monkeypatch, name, value, match):
    """A typo in a capacity knob must fail loudly, never silently default."""
    monkeypatch.setenv(name, value)
    with pytest.raises(ConfigurationError, match=match):
        ServerConfig.from_env()
