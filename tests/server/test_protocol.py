"""Wire protocol unit tests: framing, the value codec, error codes."""

from __future__ import annotations

import io
import struct

import pytest

from repro.errors import (
    BackendError,
    ExecutionError,
    InvalidStatementError,
    ParameterError,
    ProtocolError,
    ReproError,
    RequestTimeoutError,
    ServerBusyError,
    ServerError,
)
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    WIRE_CODES,
    decode_parameters,
    decode_payload,
    decode_rows,
    encode_frame,
    encode_parameters,
    encode_rows,
    error_code,
    error_frame,
    exception_from_frame,
    payload_length,
    read_frame_blocking,
)
from repro.sql.types import Date


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def test_frame_round_trip_through_a_byte_stream():
    messages = [{"op": "hello", "client": 3}, {"ok": True, "rows": [[1, "x"]]}]
    buffer = io.BytesIO(b"".join(encode_frame(m) for m in messages))
    assert read_frame_blocking(buffer) == messages[0]
    assert read_frame_blocking(buffer) == messages[1]
    assert read_frame_blocking(buffer) is None  # clean EOF


def test_truncated_frame_is_a_protocol_error():
    frame = encode_frame({"op": "hello"})
    with pytest.raises(ProtocolError, match="mid-frame"):
        read_frame_blocking(io.BytesIO(frame[:-2]))


def test_oversized_length_prefix_is_rejected_without_allocating():
    prefix = struct.pack(">I", MAX_FRAME_BYTES + 1)
    with pytest.raises(ProtocolError, match="exceeds"):
        payload_length(prefix)


def test_oversized_outgoing_frame_is_rejected():
    with pytest.raises(ProtocolError, match="exceeds"):
        encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})


def test_non_object_payload_is_a_protocol_error():
    with pytest.raises(ProtocolError, match="JSON object"):
        decode_payload(b"[1, 2, 3]")
    with pytest.raises(ProtocolError, match="undecodable"):
        decode_payload(b"{nope")


# ---------------------------------------------------------------------------
# value codec
# ---------------------------------------------------------------------------


def test_rows_round_trip_exactly_including_dates_and_bytes():
    rows = [
        (1, "name", 2.5, None, True),
        (Date(9131), b"\x00\xffbinary", -0.1),
    ]
    decoded = decode_rows(encode_rows(rows))
    assert decoded == rows
    assert isinstance(decoded[1][0], Date)
    assert isinstance(decoded[1][1], bytes)


def test_floats_round_trip_bit_exactly():
    values = [0.1, 1e-300, 123456.789012345, float(2**53)]
    (decoded,) = decode_rows(encode_rows([tuple(values)]))
    assert list(decoded) == values


def test_positional_parameters_come_back_as_a_tuple():
    assert decode_parameters(encode_parameters((1, "a", Date(10)))) == (1, "a", Date(10))
    assert isinstance(decode_parameters(encode_parameters([1, 2])), tuple)


def test_named_parameters_round_trip_as_a_mapping():
    bound = {"low": 5, "day": Date(42), "blob": b"\x01"}
    assert decode_parameters(encode_parameters(bound)) == bound
    assert decode_parameters(encode_parameters(None)) is None


# ---------------------------------------------------------------------------
# error taxonomy
# ---------------------------------------------------------------------------


def test_error_codes_pick_the_most_specific_class():
    assert error_code(ServerBusyError("x")) == "SERVER_BUSY"
    assert error_code(RequestTimeoutError("x")) == "REQUEST_TIMEOUT"
    assert error_code(ParameterError("x")) == "PARAMETER"
    assert error_code(InvalidStatementError("x")) == "INVALID_STATEMENT"
    assert error_code(ReproError("x")) == "REPRO"
    # an unregistered subclass maps to its nearest registered ancestor
    class CustomExecution(ExecutionError):
        pass

    assert error_code(CustomExecution("x")) == "EXECUTION"
    assert error_code(ValueError("x")) == "SERVER"


def test_error_frames_reconstruct_the_same_exception_class():
    for code, cls in WIRE_CODES.items():
        frame = error_frame(cls("the message"))
        assert frame["ok"] is False
        assert frame["error"] == code
        rebuilt = exception_from_frame(frame)
        assert type(rebuilt) is cls
        assert "the message" in str(rebuilt)


def test_retryability_travels_in_the_frame():
    assert error_frame(ServerBusyError("x"))["retryable"] is True
    assert error_frame(RequestTimeoutError("x"))["retryable"] is True
    assert error_frame(BackendError("x"))["retryable"] is False
    assert exception_from_frame(error_frame(ServerBusyError("x"))).retryable is True


def test_unknown_wire_code_degrades_to_server_error():
    exc = exception_from_frame({"ok": False, "error": "FANCY_NEW", "message": "m"})
    assert isinstance(exc, ServerError)
    assert "m" in str(exc)
