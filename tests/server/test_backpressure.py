"""Backpressure: load shedding, bounded queues, timeouts, no hung clients.

Every scenario here drives a deliberately tiny admission configuration and
asserts the two properties the serving tier promises under overload:

* an over-admitted request gets a **structured, retryable answer**
  (``SERVER_BUSY`` or ``REQUEST_TIMEOUT``) — never a hung connection and
  never a dropped frame, and
* a slow consumer throttles only *its own tenant's* admission — open result
  streams keep their rows intact and in order throughout.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import RequestTimeoutError, ServerBusyError
from repro.server import ReproServer, ServerConfig
from repro.server.client import AsyncSession, SyncSession

from tests.conftest import build_paper_example

SQL = "SELECT E_name, E_salary FROM Employees ORDER BY E_name"


@pytest.fixture
def mt():
    return build_paper_example()


def make_server(mt, **overrides) -> ReproServer:
    defaults = dict(concurrency=1, queue_depth=0, request_timeout=5.0,
                    drain_timeout=2.0, workers=4)
    defaults.update(overrides)
    return ReproServer(mt, config=ServerConfig(**defaults))


async def open_session(server, client=0):
    host, port = server.address
    return await AsyncSession.open(
        host, port, client=client, scope="IN (0, 1)", optimization="o4"
    )


def test_slow_consumer_sheds_its_own_tenant(mt):
    """An open cursor pins the slot; the next request sheds with SERVER_BUSY."""
    server = make_server(mt, concurrency=1, queue_depth=0).start()

    async def main():
        holder = await open_session(server)
        other = await open_session(server)
        reply = await holder.begin_execute(SQL)
        rows, eof = await holder.fetch(reply["cursor"], 1)
        assert len(rows) == 1 and not eof  # cursor open: slot pinned
        with pytest.raises(ServerBusyError) as shed:
            await other.begin_execute(SQL)
        assert shed.value.retryable is True
        # the shed connection is NOT hung: the very same session retries
        # successfully once the slow consumer finishes its stream
        rest, eof = await holder.fetch(reply["cursor"], 100)
        assert eof and len(rest) == 5
        retried = await other.execute(SQL)
        assert len(retried.rows) == 6
        await holder.close()
        await other.close()

    try:
        asyncio.run(main())
    finally:
        server.stop()
    snapshot = server.admission_snapshot()
    assert snapshot.shed >= 1 and snapshot.admitted >= 2


def test_other_tenants_are_not_throttled_by_a_slow_consumer(mt):
    """Admission gates are per tenant: tenant 1 proceeds while 0 is pinned."""
    server = make_server(mt, concurrency=1, queue_depth=0).start()

    async def main():
        slow = await open_session(server, client=0)
        reply = await slow.begin_execute(SQL)
        await slow.fetch(reply["cursor"], 1)  # pin tenant 0's only slot
        bystander = await open_session(server, client=1)
        result = await bystander.execute(SQL)
        assert len(result.rows) == 6
        await slow.close_cursor(reply["cursor"])
        await slow.close()
        await bystander.close()

    try:
        asyncio.run(main())
    finally:
        server.stop()
    assert server.admission.gate(1).shed == 0


def test_admission_burst_sheds_the_overflow_and_no_request_hangs(mt):
    """N >> capacity concurrent EXECUTEs: every one answers, none hangs."""
    concurrency, queue_depth, n = 2, 2, 12
    server = make_server(mt, concurrency=concurrency, queue_depth=queue_depth).start()

    async def one_request():
        session = await open_session(server)
        try:
            result = await session.execute(SQL)
            assert len(result.rows) == 6
            return "ok"
        except ServerBusyError as exc:
            assert exc.retryable is True
            # a shed session keeps working: an immediate-ish retry succeeds
            await asyncio.sleep(0.05)
            for _ in range(50):
                try:
                    retried = await session.execute(SQL)
                    assert len(retried.rows) == 6
                    return "shed-then-ok"
                except ServerBusyError:
                    await asyncio.sleep(0.05)
            raise AssertionError("retry never got through")
        finally:
            await session.close()

    async def main():
        outcomes = await asyncio.gather(*(one_request() for _ in range(n)))
        assert len(outcomes) == n  # every request got a structured answer
        return outcomes

    try:
        outcomes = asyncio.run(asyncio.wait_for(main(), timeout=30))
    finally:
        server.stop()
    snapshot = server.admission_snapshot()
    # retries may shed again before getting through, so shed only bounds below
    assert snapshot.shed >= outcomes.count("shed-then-ok")
    assert snapshot.load.peak_in_flight <= concurrency
    assert snapshot.load.peak_queued <= queue_depth


def test_queued_request_times_out_with_a_retryable_frame(mt):
    """A request stuck in the admission queue answers REQUEST_TIMEOUT."""
    server = make_server(
        mt, concurrency=1, queue_depth=4, request_timeout=0.5
    ).start()

    async def main():
        holder = await open_session(server)
        waiter = await open_session(server)
        reply = await holder.begin_execute(SQL)
        await holder.fetch(reply["cursor"], 1)  # pin the slot
        with pytest.raises(RequestTimeoutError) as timed_out:
            await waiter.begin_execute(SQL)
        assert timed_out.value.retryable is True
        # free the slot; the timed-out connection must still be usable
        await holder.close_cursor(reply["cursor"])
        result = await waiter.execute(SQL)
        assert len(result.rows) == 6
        await holder.close()
        await waiter.close()

    try:
        asyncio.run(asyncio.wait_for(main(), timeout=20))
    finally:
        server.stop()
    assert server.timeouts >= 1


def test_streams_never_drop_frames_under_concurrent_load(mt):
    """Rows of an open stream stay intact while other clients hammer."""
    server = make_server(mt, concurrency=4, queue_depth=8).start()
    host, port = server.address

    expected = None

    async def main():
        nonlocal expected
        reader = await open_session(server)
        baseline = await reader.execute(SQL)
        expected = baseline.rows
        reply = await reader.begin_execute(SQL)

        async def hammer():
            session = await open_session(server)
            for _ in range(5):
                try:
                    await session.execute(SQL)
                except ServerBusyError:
                    await asyncio.sleep(0.01)
            await session.close()

        hammers = [asyncio.ensure_future(hammer()) for _ in range(6)]
        collected = []
        eof = False
        while not eof:
            rows, eof = await reader.fetch(reply["cursor"], 2)
            collected.extend(rows)
            await asyncio.sleep(0.01)  # interleave with the hammering
        await asyncio.gather(*hammers)
        assert collected == expected  # intact, ordered, nothing dropped
        await reader.close()

    try:
        asyncio.run(asyncio.wait_for(main(), timeout=30))
    finally:
        server.stop()


def test_sync_client_surfaces_shedding_identically(mt):
    """The blocking client sees the same retryable SERVER_BUSY errors."""
    server = make_server(mt, concurrency=1, queue_depth=0).start()
    host, port = server.address
    holder = SyncSession(host, port, client=0, scope="IN (0, 1)", optimization="o4")
    other = SyncSession(host, port, client=0, scope="IN (0, 1)", optimization="o4")
    try:
        stream = holder.execute_incremental(SQL)
        assert len(stream.fetchmany(1)) == 1  # slot pinned by the open stream
        with pytest.raises(ServerBusyError) as shed:
            other.execute(SQL)
        assert shed.value.retryable is True
        stream.close()
        assert len(other.query(SQL).rows) == 6  # connection intact after shed
    finally:
        holder.close()
        other.close()
        server.stop()
