"""Unit tests for the tenant placement policies."""

from __future__ import annotations

import pytest

from repro.cluster import ExplicitPlacement, HashPlacement
from repro.errors import ClusterError


class TestHashPlacement:
    def test_deterministic_and_in_range(self):
        placement = HashPlacement(4)
        for ttid in range(1, 1000):
            shard = placement.shard_of(ttid)
            assert 0 <= shard < 4
            assert placement.shard_of(ttid) == shard  # stable

    def test_consecutive_tenants_spread(self):
        """The micro-benchmark populations (ttids 1..N) must not pile up."""
        placement = HashPlacement(4)
        assert {placement.shard_of(ttid) for ttid in (1, 2, 3, 4)} == {0, 1, 2, 3}

    def test_balance_over_many_tenants(self):
        placement = HashPlacement(8)
        counts = [0] * 8
        for ttid in range(1, 10_001):
            counts[placement.shard_of(ttid)] += 1
        assert min(counts) > 0.8 * (10_000 / 8)
        assert max(counts) < 1.2 * (10_000 / 8)

    def test_shards_for_prunes_and_sorts(self):
        placement = HashPlacement(4)
        assert placement.shards_for(None) == (0, 1, 2, 3)
        assert placement.shards_for(()) == (0,)
        single = placement.shards_for([2])
        assert single == (placement.shard_of(2),)
        subset = placement.shards_for([1, 2, 3, 4])
        assert subset == (0, 1, 2, 3)

    def test_rejects_empty_cluster(self):
        with pytest.raises(ClusterError, match="at least one shard"):
            HashPlacement(0)


class TestExplicitPlacement:
    def test_lookup_and_default(self):
        placement = ExplicitPlacement({1: 0, 2: 1, 3: 1}, shard_count=3, default_shard=2)
        assert placement.shard_of(1) == 0
        assert placement.shard_of(2) == 1
        assert placement.shard_of(99) == 2  # default
        assert placement.shards_for([2, 3]) == (1,)

    def test_shard_count_derived_from_assignments(self):
        placement = ExplicitPlacement({1: 0, 2: 3})
        assert placement.shard_count == 4

    def test_unknown_tenant_without_default_raises(self):
        placement = ExplicitPlacement({1: 0}, shard_count=2)
        with pytest.raises(ClusterError, match="no explicit placement"):
            placement.shard_of(7)

    def test_out_of_range_assignment_rejected(self):
        with pytest.raises(ClusterError, match="outside"):
            ExplicitPlacement({1: 5}, shard_count=2)
        with pytest.raises(ClusterError, match="outside"):
            ExplicitPlacement({1: 0}, shard_count=2, default_shard=9)
