"""ShardedBackend behaviour: routing, replication, planning, protocol surface.

The MT-H-wide correctness grid lives in ``test_shard_invariance.py``; these
tests pin down the cluster mechanics on the paper's running example and on
small hand-built schemas.
"""

from __future__ import annotations

import pytest

from repro.backends import ShardedBackend, normalized_rows
from repro.cluster import (
    ExplicitPlacement,
    FederatedPlan,
    PartialAggregatePlan,
    RowStreamPlan,
    SingleShardPlan,
)
from repro.errors import ClusterError


@pytest.fixture(scope="module")
def sharded_paper(paper_example_factory):
    """The running example on a 2-shard cluster with explicit placement."""
    backend = ShardedBackend(
        placement=ExplicitPlacement({0: 0, 1: 1}, shard_count=2)
    )
    return paper_example_factory(backend=backend), backend


class TestRoutingAndReplication:
    def test_tenant_rows_land_on_their_shard(self, sharded_paper):
        _mt, backend = sharded_paper
        connection = backend.connect()
        shard0, shard1 = connection.shard_connections
        # tenant 0 on shard 0, tenant 1 on shard 1 (3 employees each)
        assert shard0.table_rowcount("Employees") == 3
        assert shard1.table_rowcount("Employees") == 3
        assert connection.table_rowcount("Employees") == 6

    def test_global_tables_replicate(self, sharded_paper):
        _mt, backend = sharded_paper
        connection = backend.connect()
        for shard in connection.shard_connections:
            assert shard.table_rowcount("Regions") == 6
        # the logical count is one replica, not the sum
        assert connection.table_rowcount("Regions") == 6

    def test_integrity_holds_per_shard(self, sharded_paper):
        _mt, backend = sharded_paper
        assert backend.connect().check_integrity() == []

    def test_insert_routing_needs_literal_ttid(self, sharded_paper):
        _mt, backend = sharded_paper
        from repro.sql import ast

        connection = backend.connect()
        statement = ast.Insert(
            table="Employees",
            columns=(),
            rows=[tuple(ast.Column(name="$1") for _ in range(7))],
        )
        with pytest.raises(ClusterError, match="literal"):
            connection.execute(statement)


class TestQueryPlanning:
    def test_single_shard_fast_path_for_single_tenant_dataset(self, sharded_paper):
        mt, backend = sharded_paper
        connection = mt.connect(0, optimization="o4")
        connection.set_scope("IN (1)")
        result = connection.query("SELECT E_name, E_salary FROM Employees")
        plan = backend.connect().last_plan
        assert isinstance(plan, SingleShardPlan)
        assert plan.shard == 1  # tenant 1 lives on shard 1
        assert len(result.rows) == 3

    def test_global_only_query_runs_on_one_shard(self, sharded_paper):
        mt, backend = sharded_paper
        connection = mt.connect(0)
        connection.set_scope("IN ()")
        connection.query("SELECT Re_name FROM Regions")
        assert isinstance(backend.connect().last_plan, SingleShardPlan)

    def test_cross_tenant_row_stream_scatters(self, sharded_paper):
        mt, backend = sharded_paper
        connection = mt.connect(0, optimization="o4")
        connection.set_scope("IN ()")
        result = connection.query(
            "SELECT E_name, E_salary FROM Employees ORDER BY E_salary DESC LIMIT 4"
        )
        plan = backend.connect().last_plan
        assert isinstance(plan, RowStreamPlan)
        assert plan.shards == (0, 1)
        assert len(result.rows) == 4
        salaries = [row[1] for row in result.rows]
        assert salaries == sorted(salaries, reverse=True)

    def test_cross_tenant_aggregate_uses_partial_merge(self, sharded_paper):
        mt, backend = sharded_paper
        connection = mt.connect(0, optimization="o4")
        connection.set_scope("IN ()")
        result = connection.query(
            "SELECT E_reg_id, COUNT(*) AS heads, AVG(E_salary) AS pay "
            "FROM Employees GROUP BY E_reg_id ORDER BY E_reg_id"
        )
        assert isinstance(backend.connect().last_plan, PartialAggregatePlan)
        assert result.columns == ["E_reg_id", "heads", "pay"]
        assert sum(row[1] for row in result.rows) == 6

    def test_results_match_single_backend(self, sharded_paper, paper_example_factory):
        mt_sharded, _backend = sharded_paper
        mt_single = paper_example_factory()
        for scope in ("IN (0)", "IN (0, 1)"):
            for text in (
                "SELECT E_name, E_salary FROM Employees",
                "SELECT R_name, COUNT(*) AS n FROM Employees, Roles "
                "WHERE E_role_id = R_role_id GROUP BY R_name ORDER BY n DESC",
                "SELECT MAX(E_salary) FROM Employees",
            ):
                sharded_connection = mt_sharded.connect(0, optimization="o4")
                sharded_connection.set_scope(scope)
                single_connection = mt_single.connect(0, optimization="o4")
                single_connection.set_scope(scope)
                assert normalized_rows(sharded_connection.query(text)) == normalized_rows(
                    single_connection.query(text)
                ), (scope, text)

    def test_scatter_gather_off_forces_federated(self, paper_example_factory):
        backend = ShardedBackend(
            placement=ExplicitPlacement({0: 0, 1: 1}, shard_count=2),
            scatter_gather=False,
        )
        mt = paper_example_factory(backend=backend)
        connection = mt.connect(0, optimization="o4")
        connection.set_scope("IN ()")
        result = connection.query("SELECT COUNT(*) FROM Employees")
        assert isinstance(backend.connect().last_plan, FederatedPlan)
        assert result.scalar() == 6

    def test_complex_scope_resolves_across_shards(self, sharded_paper):
        mt, _backend = sharded_paper
        connection = mt.connect(0, optimization="o4")
        connection.set_scope('FROM Employees E WHERE E.E_salary >= 100000')
        # tenant 0's Alice (150k) and tenant 1's Nancy/Ed qualify in USD terms
        assert sorted(connection.dataset()) == [0, 1]


class TestDML:
    def test_dml_routes_and_matches_single_backend(self, paper_example_factory):
        backend = ShardedBackend(placement=ExplicitPlacement({0: 0, 1: 1}, shard_count=2))
        mt_sharded = paper_example_factory(backend=backend)
        mt_single = paper_example_factory()
        for mt in (mt_single, mt_sharded):
            connection = mt.connect(0, optimization="o4")
            connection.set_scope("IN (0)")
            assert connection.execute(
                "INSERT INTO Employees VALUES (7, 'Zoe', 1, 3, 42000, 33)"
            ).rowcount == 1
            assert connection.execute(
                "UPDATE Employees SET E_salary = 43000 WHERE E_name = 'Zoe'"
            ).rowcount == 1
            assert connection.execute("DELETE FROM Employees WHERE E_age > 40").rowcount == 1
        text = "SELECT E_name, E_salary, E_age FROM Employees"
        assert normalized_rows(mt_sharded.connect(0).query(text)) == normalized_rows(
            mt_single.connect(0).query(text)
        )
        assert mt_sharded.backend.check_integrity() == []

    def test_inserted_row_lands_on_owner_shard(self, paper_example_factory):
        backend = ShardedBackend(placement=ExplicitPlacement({0: 0, 1: 1}, shard_count=2))
        mt = paper_example_factory(backend=backend)
        connection = mt.connect(1, optimization="o4")
        connection.set_scope("IN (1)")
        connection.execute("INSERT INTO Employees VALUES (9, 'Ina', 1, 2, 50000, 40)")
        shard0, shard1 = backend.connect().shard_connections
        assert shard0.table_rowcount("Employees") == 3
        assert shard1.table_rowcount("Employees") == 4


class TestBackendSpecs:
    def test_create_backend_specs(self):
        from repro.backends import create_backend

        cluster = create_backend("sharded:3")
        assert len(cluster.shards) == 3
        assert cluster.shards[0].name == "engine"
        cluster.close()
        cluster = create_backend("sharded:2:sqlite")
        assert cluster.shards[0].name == "sqlite"
        cluster.close()

    def test_nested_sharding_rejected(self):
        from repro.backends import create_backend
        from repro.errors import BackendError

        with pytest.raises(BackendError, match="nest"):
            create_backend("sharded:2:sharded")

    def test_shard_count_conflict_rejected(self):
        with pytest.raises(ClusterError, match="contradicts"):
            ShardedBackend(shards=3, placement=ExplicitPlacement({1: 0}, shard_count=2))

    def test_stats_aggregate_over_shards(self, sharded_paper):
        mt, backend = sharded_paper
        connection = backend.connect()
        connection.reset_stats()
        client = mt.connect(0, optimization="o4")
        client.set_scope("IN ()")
        client.query("SELECT COUNT(*) FROM Employees")
        assert connection.stats.statements == 1  # one logical statement
        assert connection.aggregate_stats().statements >= 2  # fanned out


class TestClusterDMLGuards:
    def test_replicated_dml_reading_partitioned_tables_rejected(self, paper_example_factory):
        """A replica-diverging statement must refuse loudly, not corrupt."""
        backend = ShardedBackend(placement=ExplicitPlacement({0: 0, 1: 1}, shard_count=2))
        paper_example_factory(backend=backend)
        connection = backend.connect()
        with pytest.raises(ClusterError, match="diverge"):
            connection.execute(
                "DELETE FROM Regions WHERE Re_reg_id IN (SELECT E_reg_id FROM Employees)"
            )
        with pytest.raises(ClusterError, match="diverge"):
            connection.execute(
                "UPDATE Regions SET Re_name = 'X' "
                "WHERE Re_reg_id IN (SELECT E_reg_id FROM Employees)"
            )
        # plain replicated DML (no partitioned reads) still broadcasts fine
        result = connection.execute("UPDATE Regions SET Re_name = 'EU' WHERE Re_reg_id = 3")
        assert result.rowcount == 1
        for shard in connection.shard_connections:
            assert shard.query(
                "SELECT Re_name FROM Regions WHERE Re_reg_id = 3"
            ).scalar() == "EU"

    def test_partitioned_dml_with_colocated_subquery_allowed(self, paper_example_factory):
        backend = ShardedBackend(placement=ExplicitPlacement({0: 0, 1: 1}, shard_count=2))
        paper_example_factory(backend=backend)
        connection = backend.connect()
        result = connection.execute(
            "DELETE FROM Employees WHERE E_role_id IN "
            "(SELECT R_role_id FROM Roles WHERE R_name = 'intern')"
        )
        assert result.rowcount == 1  # tenant 1's Allan


class TestFederatedScratch:
    def test_ddl_created_sql_udf_meta_tables_synced(self, paper_example_factory):
        """CREATE FUNCTION ... LANGUAGE SQL bodies name meta tables the query
        text never references; federated execution must sync them too."""
        backend = ShardedBackend(
            placement=ExplicitPlacement({0: 0, 1: 1}, shard_count=2),
            scatter_gather=False,  # force the federated path
        )
        paper_example_factory(backend=backend)
        connection = backend.connect()
        connection.execute(
            "CREATE FUNCTION regio_rate (INTEGER) RETURNS DECIMAL(15,2) AS "
            "'SELECT CT_to_universal FROM CurrencyTransform WHERE CT_currency_key = $1' "
            "LANGUAGE SQL IMMUTABLE"
        )
        result = connection.query(
            "SELECT E_name, regio_rate(E_ttid) FROM Employees WHERE E_emp_id = 0"
        )
        assert isinstance(connection.last_plan, FederatedPlan)
        rates = {name: rate for name, rate in result.rows}
        assert rates["Patrick"] == 1.0 and rates["Allan"] == pytest.approx(1.1)

    def test_scratch_sync_memoized_until_mutation(self, paper_example_factory):
        """Repeated federated reads must not re-pull unchanged tables."""
        backend = ShardedBackend(
            placement=ExplicitPlacement({0: 0, 1: 1}, shard_count=2),
            scatter_gather=False,
        )
        mt = paper_example_factory(backend=backend)
        connection = backend.connect()
        client = mt.connect(0, optimization="o4")
        client.set_scope("IN ()")
        text = "SELECT COUNT(*) FROM Employees"
        assert client.query(text).scalar() == 6
        synced = dict(connection._scratch_state)
        assert "employees" in synced
        # warm repeat: the sync state is untouched (no delete + re-pull)
        scratch_statements_before = connection._scratch.stats.statements
        assert client.query(text).scalar() == 6
        assert connection._scratch_state == synced
        assert connection._scratch.stats.statements == scratch_statements_before + 1
        # a mutation invalidates exactly the touched table
        writer = mt.connect(1, optimization="o4")
        writer.set_scope("IN (1)")
        writer.execute("INSERT INTO Employees VALUES (8, 'Kim', 1, 2, 61000, 29)")
        assert "employees" not in connection._scratch_state
        assert client.query(text).scalar() == 7


class TestCrossShardDMLRejection:
    """Review regressions: DML whose per-shard evaluation diverges must refuse."""

    @pytest.fixture()
    def cluster(self, paper_example_factory):
        backend = ShardedBackend(placement=ExplicitPlacement({0: 0, 1: 1}, shard_count=2))
        paper_example_factory(backend=backend)
        return backend.connect()

    def test_partitioned_dml_with_cross_shard_subquery_rejected(self, cluster):
        with pytest.raises(ClusterError, match="cross-shard"):
            cluster.execute(
                "DELETE FROM Employees WHERE E_salary < "
                "(SELECT AVG(E_salary) FROM Employees)"
            )
        with pytest.raises(ClusterError, match="cross-shard"):
            cluster.execute(
                "UPDATE Employees SET E_age = 1 WHERE E_salary > "
                "(SELECT MAX(E_salary) FROM Employees) - 1"
            )

    def test_view_over_partitioned_table_blocks_replicated_dml(self, cluster):
        cluster.execute(
            "CREATE VIEW emp_regs AS SELECT E_reg_id FROM Employees"
        )
        with pytest.raises(ClusterError, match="diverge"):
            cluster.execute(
                "DELETE FROM Regions WHERE Re_reg_id IN (SELECT E_reg_id FROM emp_regs)"
            )

    def test_ttid_reassignment_rejected(self, cluster):
        with pytest.raises(ClusterError, match="partitioning column"):
            cluster.execute("UPDATE Employees SET E_ttid = 0 WHERE E_emp_id = 0")


def test_merge_evaluator_date_arithmetic():
    """An ORDER BY key like ``d + INTERVAL '1' MONTH`` evaluates post-merge."""
    from repro.cluster import MergeEvaluator
    from repro.sql.parser import parse_query
    from repro.sql.types import Date

    query = parse_query("SELECT d FROM t ORDER BY d + INTERVAL '1' MONTH")
    expr = query.order_by[0].expr
    value = MergeEvaluator({"d": Date.from_string("1998-01-15")}).evaluate(expr)
    assert str(value) == "1998-02-15"
