"""Shard-invariance differential suite: MT-H on clusters vs. a single backend.

The acceptance bar for the sharded execution layer: every MT-H query returns
*row-set-identical* results on a tenant-partitioned cluster — for shards ∈
{1, 2, 4}, both benchmark scenarios (business alliance/uniform, research
institution/zipf) and ``D' = {single, subset, all}`` — compared to the same
data loaded into one backend.  The grid covers every planner strategy:
single-shard fast path, row streams, partial-aggregate re-aggregation and
the federated fallback.
"""

from __future__ import annotations

import pytest

from repro.backends import normalized_rows
from repro.cluster import FederatedPlan, SingleShardPlan
from repro.mth.loader import load_mth
from repro.mth.queries import ALL_QUERY_IDS, CONVERSION_INTENSIVE, query_text

TENANTS = 4
CLIENT = 1
SHARD_COUNTS = (1, 2, 4)

#: the three D' shapes of the acceptance grid
DATASETS = {
    "single": "IN (2)",
    "subset": "IN (1, 3)",
    "all": "IN ()",
}

#: the paper's two scenarios: business alliance (uniform), research (zipf)
SCENARIOS = ("uniform", "zipf")


@pytest.fixture(scope="module", params=SCENARIOS)
def shard_grid(request, tiny_tpch_data):
    """The same MT-H data on one backend and on 1/2/4-shard clusters."""
    single = load_mth(
        data=tiny_tpch_data, tenants=TENANTS, distribution=request.param
    )
    clusters = {
        shard_count: load_mth(
            data=tiny_tpch_data,
            tenants=TENANTS,
            distribution=request.param,
            shards=shard_count,
        )
        for shard_count in SHARD_COUNTS
    }
    yield single, clusters
    for instance in clusters.values():
        instance.middleware.backend.close()


def _connection(instance, scope: str, optimization: str = "o4"):
    connection = instance.middleware.connect(CLIENT, optimization=optimization)
    connection.set_scope(scope)
    return connection


@pytest.mark.parametrize("query_id", ALL_QUERY_IDS)
def test_mth_query_shard_invariant(shard_grid, query_id):
    single, clusters = shard_grid
    text = query_text(query_id)
    for name, scope in DATASETS.items():
        reference = _connection(single, scope).query(text)
        expected = normalized_rows(reference)
        for shard_count, cluster in clusters.items():
            result = _connection(cluster, scope).query(text)
            plan = cluster.middleware.backend.last_plan
            assert len(result.columns) == len(reference.columns), (
                f"Q{query_id} D'={name} shards={shard_count}: column counts differ"
            )
            assert normalized_rows(result) == expected, (
                f"Q{query_id} D'={name} shards={shard_count} "
                f"({plan.describe() if plan else 'no plan'}): row sets differ"
            )


def test_plan_mix_matches_query_taxonomy(shard_grid):
    """Pin the planner's strategy per query (at 4 shards, D' = all).

    This guards plan *quality*: a regression that silently pushed decomposable
    queries onto the federated fallback would stay row-set-correct but lose
    the scatter-gather scaling the layer exists for.
    """
    _single, clusters = shard_grid
    cluster = clusters[4]
    backend = cluster.middleware.backend
    single_shard, federated, scatter = set(), set(), set()
    for query_id in ALL_QUERY_IDS:
        _connection(cluster, "IN ()").query(query_text(query_id))
        plan = backend.last_plan
        if isinstance(plan, SingleShardPlan):
            single_shard.add(query_id)
        elif isinstance(plan, FederatedPlan):
            federated.add(query_id)
        else:
            scatter.add(query_id)
    # Q2/Q11/Q16 touch only global (replicated) tables; Q15/Q17/Q20 aggregate
    # nested on non-colocated keys (suppkey/partkey) and Q22 compares against
    # a global scalar AVG — exactly the shapes that need the federated path
    assert single_shard == {2, 11, 16}
    assert federated == {15, 17, 20, 22}
    assert scatter == set(ALL_QUERY_IDS) - single_shard - federated


@pytest.mark.parametrize("level", ["canonical", "o1"])
def test_conversion_udf_path_shard_invariant(shard_grid, level):
    """Low optimization levels route conversions through the Listings-4-7 SQL
    UDFs; the cluster broadcasts them to every shard (and the federated
    scratch backend syncs their meta tables)."""
    single, clusters = shard_grid
    cluster = clusters[2]
    for query_id in CONVERSION_INTENSIVE:
        text = query_text(query_id)
        expected = normalized_rows(_connection(single, "IN (1, 3)", level).query(text))
        assert normalized_rows(
            _connection(cluster, "IN (1, 3)", level).query(text)
        ) == expected, f"Q{query_id} at {level}: row sets differ"


def test_gateway_over_cluster_matches_direct_connection(shard_grid):
    """Gateway sessions on a sharded backend serve byte-identical results and
    keep cluster cache entries apart from single-backend entries."""
    _single, clusters = shard_grid
    cluster = clusters[2]
    gateway = cluster.middleware.gateway(cache_size=32)
    try:
        session = gateway.session(CLIENT, optimization="o4", scope="IN ()")
        for query_id in (1, 6, 18):
            text = query_text(query_id)
            direct = _connection(cluster, "IN ()").query(text)
            assert session.query(text).rows == direct.rows
        # warm path: repeat executions hit the cache
        before = gateway.cache_stats.hits
        session.query(query_text(6))
        assert gateway.cache_stats.hits == before + 1
        # the cluster dialect name keys the cache entries
        assert {key.dialect for key in gateway.cache._plans} == {"default+2sh"}
    finally:
        gateway.close()


def test_tenant_data_is_disjoint_across_shards(shard_grid):
    """Every tenant-specific row lives on exactly one shard; global tables
    are fully replicated."""
    _single, clusters = shard_grid
    cluster = clusters[4]
    connection = cluster.middleware.backend
    for table in ("customer", "orders", "lineitem"):
        per_shard = [
            shard.table_rowcount(table) for shard in connection.shard_connections
        ]
        assert sum(per_shard) == connection.table_rowcount(table)
    for table in ("region", "nation", "supplier", "part", "partsupp"):
        counts = {
            shard.table_rowcount(table) for shard in connection.shard_connections
        }
        assert len(counts) == 1  # identical replicas
    assert connection.check_integrity() == []
