"""Unit tests for partial-aggregate merging and the merge evaluator."""

from __future__ import annotations

import pytest

from repro.cluster import BatchMergeEvaluator, MergeEvaluator, merge_partial_rows, sort_rows
from repro.cluster.merge import default_scalar_functions
from repro.engine.vector import RowBatch
from repro.errors import ExecutionError
from repro.sql.parser import parse_query
from repro.sql.transform import (
    PartialAggregate,
    split_partial_aggregates,
    split_row_stream,
)


def _merge(rows, key_width, partials):
    groups = merge_partial_rows(rows, key_width, partials)
    return {
        key: tuple(state.result() for state in states)
        for key, states in groups.items()
    }


class TestPartialMerge:
    def test_sum_count_min_max_across_shards(self):
        partials = (
            PartialAggregate(text="SUM(x)", kind="sum", columns=(1,)),
            PartialAggregate(text="COUNT(x)", kind="count", columns=(2,)),
            PartialAggregate(text="MIN(x)", kind="min", columns=(3,)),
            PartialAggregate(text="MAX(x)", kind="max", columns=(4,)),
        )
        rows = [
            ("a", 10.0, 2, 1, 9),  # shard 0
            ("a", 5.0, 1, 0, 5),  # shard 1
            ("b", 7.0, 3, 2, 4),  # shard 1 only
        ]
        merged = _merge(rows, 1, partials)
        assert merged[("a",)] == (15.0, 3, 0, 9)
        assert merged[("b",)] == (7.0, 3, 2, 4)

    def test_avg_is_global_sum_over_global_count(self):
        """AVG must not average the per-shard averages."""
        partials = (PartialAggregate(text="AVG(x)", kind="avg", columns=(0, 1)),)
        # shard 0: one row of 10; shard 1: three rows of 1 -> global AVG 3.25
        merged = _merge([(10.0, 1), (3.0, 3)], 0, partials)
        assert merged[()] == (3.25,)

    def test_null_semantics(self):
        """SUM of an all-NULL group is NULL; AVG of an empty group is NULL;
        COUNT is 0 — matching the engine's aggregates."""
        partials = (
            PartialAggregate(text="SUM(x)", kind="sum", columns=(0,)),
            PartialAggregate(text="COUNT(x)", kind="count", columns=(1,)),
            PartialAggregate(text="AVG(x)", kind="avg", columns=(0, 1)),
            PartialAggregate(text="MIN(x)", kind="min", columns=(2,)),
        )
        merged = _merge([(None, 0, None), (None, 0, None)], 0, partials)
        assert merged[()] == (None, 0, None, None)


class TestMergeEvaluator:
    def test_arithmetic_over_bindings(self):
        query = parse_query("SELECT SUM(a) / SUM(b) AS ratio FROM t")
        expr = query.items[0].expr
        evaluator = MergeEvaluator({"SUM(a)": 10.0, "SUM(b)": 4.0})
        assert evaluator.evaluate(expr) == 2.5

    def test_case_and_comparison(self):
        query = parse_query(
            "SELECT CASE WHEN SUM(a) > 5 THEN 'big' ELSE 'small' END FROM t"
        )
        expr = query.items[0].expr
        assert MergeEvaluator({"SUM(a)": 10}).evaluate(expr) == "big"
        assert MergeEvaluator({"SUM(a)": 1}).evaluate(expr) == "small"

    def test_division_by_zero_matches_engine(self):
        query = parse_query("SELECT SUM(a) / SUM(b) FROM t")
        expr = query.items[0].expr
        with pytest.raises(ExecutionError, match="division by zero"):
            MergeEvaluator({"SUM(a)": 1.0, "SUM(b)": 0}).evaluate(expr)

    def test_null_propagation(self):
        query = parse_query("SELECT SUM(a) * 2 FROM t")
        expr = query.items[0].expr
        assert MergeEvaluator({"SUM(a)": None}).evaluate(expr) is None

    def test_alias_lookup_for_having_and_order(self):
        query = parse_query("SELECT SUM(a) AS total FROM t GROUP BY g HAVING total > 3")
        evaluator = MergeEvaluator({}, aliases={"total": 7})
        assert evaluator.evaluate(query.having) is True

    def test_scalar_functions(self):
        """COALESCE and registered Python UDFs evaluate post-merge."""
        functions = default_scalar_functions()
        functions["my_rate"] = lambda key: {1: 2.0}[key]
        query = parse_query("SELECT COALESCE(SUM(a), 0) * my_rate(1) FROM t")
        expr = query.items[0].expr
        assert MergeEvaluator({"SUM(a)": None}, functions=functions).evaluate(expr) == 0.0
        assert MergeEvaluator({"SUM(a)": 3.0}, functions=functions).evaluate(expr) == 6.0

    def test_unknown_function_raises(self):
        query = parse_query("SELECT mystery(1) FROM t")
        with pytest.raises(ExecutionError, match="cannot evaluate"):
            MergeEvaluator({}).evaluate(query.items[0].expr)


class TestBatchMergeEvaluator:
    """The vectorized merge path mirrors :class:`MergeEvaluator` per column."""

    def _column(self, sql, bindings_rows, binding_texts, aliases=(), functions=None):
        query = parse_query(f"SELECT {sql} FROM t")
        evaluator = BatchMergeEvaluator(
            binding_texts, alias_names=aliases, functions=functions or {}
        )
        kernel = evaluator.compile(query.items[0].expr)
        return kernel(RowBatch(bindings_rows), ())

    def test_compiled_kernel_evaluates_all_groups_at_once(self):
        column = self._column(
            "SUM(a) / SUM(b)",
            [(10.0, 4.0), (9.0, 3.0), (1.0, 2.0)],
            ["SUM(a)", "SUM(b)"],
        )
        assert column == [2.5, 3.0, 0.5]

    def test_matches_row_evaluator_on_mixed_expressions(self):
        functions = default_scalar_functions()
        texts = ["g", "SUM(a)", "COUNT(a)"]
        rows = [(1, 10.0, 4), (2, None, 0), (3, -2.5, 1)]
        for sql in (
            "CASE WHEN SUM(a) > 5 THEN 'big' ELSE 'small' END",
            "COALESCE(SUM(a), 0) + COUNT(a)",
            "g * 2 - COUNT(a)",
            "SUM(a) IS NULL",
            "SUM(a) BETWEEN 0 AND 100",
            "g IN (1, 3)",
            "NOT (COUNT(a) > 2)",
        ):
            query = parse_query(f"SELECT {sql} FROM t")
            expr = query.items[0].expr
            batch_column = self._column(sql, rows, texts, functions=functions)
            row_values = [
                MergeEvaluator(dict(zip(texts, row)), functions=functions).evaluate(expr)
                for row in rows
            ]
            assert batch_column == row_values, sql

    def test_alias_columns_resolve_in_having_position(self):
        query = parse_query(
            "SELECT SUM(a) AS total FROM t GROUP BY g HAVING total > 3"
        )
        evaluator = BatchMergeEvaluator(["g", "SUM(a)"], alias_names=["total"])
        kernel = evaluator.compile(query.having)
        # batch rows: bindings then alias values
        assert kernel(RowBatch([(1, 7.0, 7.0), (2, 1.0, 1.0)]), ()) == [True, False]

    def test_unknown_function_falls_back_to_the_row_error(self):
        query = parse_query("SELECT mystery(SUM(a)) FROM t")
        evaluator = BatchMergeEvaluator(["SUM(a)"])
        kernel = evaluator.compile(query.items[0].expr)
        with pytest.raises(ExecutionError, match="cannot evaluate"):
            kernel(RowBatch([(1.0,)]), ())

    def test_unbound_column_falls_back_to_the_row_error(self):
        query = parse_query("SELECT stray FROM t")
        evaluator = BatchMergeEvaluator(["SUM(a)"])
        kernel = evaluator.compile(query.items[0].expr)
        with pytest.raises(ExecutionError, match="unbound merge column"):
            kernel(RowBatch([(1.0,)]), ())


class TestSortRows:
    def test_stable_multi_key_mixed_directions(self):
        rows = [(1, "b"), (2, "a"), (1, "a"), (2, "b")]
        ordered = sort_rows(rows, [(0, False), (1, True)])
        assert ordered == [(1, "b"), (1, "a"), (2, "b"), (2, "a")]

    def test_nulls_sort_first_like_the_engine(self):
        rows = [(3,), (None,), (1,)]
        assert sort_rows(rows, [(0, False)]) == [(None,), (1,), (3,)]


class TestSplits:
    def test_split_partial_aggregates_layout(self):
        query = parse_query(
            "SELECT g, SUM(a) AS s, AVG(b) AS m, COUNT(*) AS n FROM t GROUP BY g "
            "HAVING SUM(a) > 1 ORDER BY s DESC LIMIT 5"
        )
        split = split_partial_aggregates(query)
        assert split.key_texts == ("g",)
        kinds = [partial.kind for partial in split.partials]
        assert kinds == ["sum", "avg", "count"]
        # shard query: keys first, then partials; merge clauses stripped
        assert split.shard_query.having is None
        assert split.shard_query.order_by == []
        assert split.shard_query.limit is None
        assert len(split.shard_query.items) == 1 + 4  # g + sum + (avg sum, avg count) + count

    def test_split_rejects_distinct_aggregates(self):
        from repro.errors import SplitError

        query = parse_query("SELECT COUNT(DISTINCT a) FROM t")
        with pytest.raises(SplitError, match="not partial-mergeable"):
            split_partial_aggregates(query)

    def test_split_row_stream_hidden_sort_columns(self):
        query = parse_query("SELECT a, b FROM t ORDER BY c DESC, a LIMIT 3")
        split = split_row_stream(query)
        assert split.visible_width == 2
        assert len(split.shard_query.items) == 3  # c appended as hidden key
        assert split.sort_columns == ((2, True), (0, False))
        assert split.limit == 3
        assert split.shard_query.limit is None

    def test_split_row_stream_rejects_distinct_with_hidden_key(self):
        from repro.errors import SplitError

        query = parse_query("SELECT DISTINCT a FROM t ORDER BY b")
        with pytest.raises(SplitError, match="DISTINCT"):
            split_row_stream(query)
