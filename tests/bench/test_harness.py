"""The experiment harness: workload setup, table/figure runners, reporting."""

import pytest

from repro.bench import (
    DEFAULT_TENANT_COUNTS,
    TABLE_CONFIGS,
    WorkloadConfig,
    format_seconds,
    load_workload,
    render_relative_table,
    render_scaling,
    render_table,
    run_table,
    run_tenant_scaling,
)
from repro.bench.workload import clear_workload_cache


@pytest.fixture(scope="module")
def small_workload():
    config = WorkloadConfig(scale_factor=0.0005, tenants=4)
    return load_workload(config)


class TestWorkloadSetup:
    def test_scenario_configs(self):
        scenario1 = WorkloadConfig.scenario1()
        assert scenario1.tenants == 10 and scenario1.distribution == "uniform"
        scenario2 = WorkloadConfig.scenario2(tenants=100)
        assert scenario2.tenants == 100 and scenario2.distribution == "zipf"

    def test_workload_has_both_databases(self, small_workload):
        assert small_workload.backend.table_rowcount("lineitem") == \
            small_workload.baseline.table_rowcount("lineitem")

    def test_connection_helper_sets_scope(self, small_workload):
        connection = small_workload.connection(client=1, optimization="o4", dataset="all")
        assert connection.dataset() == (1, 2, 3, 4)
        single = small_workload.connection(client=1, dataset="IN (2)")
        assert single.dataset() == (2,)

    def test_workload_cache_returns_same_instance(self):
        config = WorkloadConfig(scale_factor=0.0005, tenants=2)
        first = load_workload(config)
        second = load_workload(config)
        assert first is second
        clear_workload_cache()
        third = load_workload(config, use_cache=False)
        assert third is not first

    def test_reset_caches_clears_stats(self, small_workload):
        small_workload.backend.stats.udf_calls = 123
        small_workload.reset_caches()
        assert small_workload.backend.stats.udf_calls == 0

    def test_env_scale_factor_override(self, monkeypatch):
        from repro.bench.workload import env_scale_factor

        assert env_scale_factor(0.002) == 0.002
        monkeypatch.setenv("REPRO_BENCH_SF", "0.01")
        assert env_scale_factor(0.002) == 0.01

    def test_env_backend_override(self, monkeypatch):
        from repro.errors import ConfigurationError
        from repro.bench.workload import env_backend

        monkeypatch.delenv("REPRO_BENCH_BACKEND", raising=False)
        assert env_backend() == "engine"
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "SQLite")
        assert env_backend() == "sqlite"
        assert WorkloadConfig().backend == "sqlite"
        assert WorkloadConfig.scenario1().backend == "sqlite"
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "oracle")
        with pytest.raises(ConfigurationError, match="REPRO_BENCH_BACKEND"):
            env_backend()

    def test_env_level_override(self, monkeypatch):
        from repro.errors import ConfigurationError
        from repro.bench.workload import env_level

        monkeypatch.delenv("REPRO_BENCH_LEVEL", raising=False)
        assert env_level() == "o4"
        monkeypatch.setenv("REPRO_BENCH_LEVEL", "O2")
        assert env_level() == "o2"
        assert WorkloadConfig().level == "o2"
        monkeypatch.setenv("REPRO_BENCH_LEVEL", "inl_only")
        assert env_level() == "inl-only"
        monkeypatch.setenv("REPRO_BENCH_LEVEL", "o9")
        with pytest.raises(ConfigurationError, match="REPRO_BENCH_LEVEL"):
            env_level()

    def test_connection_defaults_to_the_configured_level(self, small_workload):
        from repro.core.optimizer.levels import OptimizationLevel

        configured = OptimizationLevel.from_name(small_workload.config.level)
        assert small_workload.connection(client=1).optimization is configured
        explicit = small_workload.connection(client=1, optimization="canonical")
        assert explicit.optimization is OptimizationLevel.CANONICAL

    def test_sqlite_backend_workload_serves_queries(self):
        config = WorkloadConfig(scale_factor=0.0005, tenants=2, backend="sqlite")
        workload = load_workload(config)
        # under REPRO_BENCH_SHARDS the dialect name carries a "+Nsh" suffix
        assert workload.backend.dialect.name.split("+")[0] == "sqlite"
        assert workload.baseline.dialect.name == "sqlite"
        connection = workload.connection(client=1, dataset="all")
        mt_rows = connection.query("SELECT COUNT(*) FROM lineitem").scalar()
        baseline_rows = workload.baseline.query(
            "SELECT COUNT(*) FROM lineitem"
        ).scalar()
        assert mt_rows == baseline_rows > 0
        session = workload.gateway_session(client=1, dataset="all")
        assert session.query("SELECT COUNT(*) FROM lineitem").scalar() == mt_rows


class TestTableRunner:
    def test_table_configs_cover_the_six_paper_tables(self):
        assert set(TABLE_CONFIGS) == {"3", "4", "5", "7", "8", "9"}
        assert TABLE_CONFIGS["3"]["profile"] == "postgres"
        assert TABLE_CONFIGS["9"]["profile"] == "system_c"
        assert TABLE_CONFIGS["5"]["dataset"] == "all"

    def test_run_table_produces_all_cells(self, small_workload):
        result = run_table("5", query_ids=(6,), workload=small_workload)
        assert set(level for level, _ in result.cells) == {
            "canonical", "o1", "o2", "o3", "o4", "inl-only",
        }
        assert 6 in result.baseline
        assert all(cell.seconds > 0 for cell in result.cells.values())

    def test_relative_numbers_and_rows(self, small_workload):
        result = run_table("5", query_ids=(6,), workload=small_workload)
        relative = result.relative("o4", 6)
        assert relative is not None and relative > 0
        records = result.rows()
        assert len(records) == 6
        assert {"table", "level", "query", "seconds", "relative"} <= set(records[0])

    def test_unknown_table_rejected(self):
        with pytest.raises(KeyError):
            run_table("42", query_ids=(1,))

    def test_canonical_is_not_faster_than_o4_on_q1(self, small_workload):
        result = run_table("5", query_ids=(1,), workload=small_workload, repetitions=2)
        canonical = result.cells[("canonical", 1)].seconds
        optimized = result.cells[("o4", 1)].seconds
        assert canonical >= optimized * 0.8  # allow timing noise, canonical must not win big

    def test_udf_call_counters_reported(self, small_workload):
        result = run_table("5", query_ids=(1,), workload=small_workload)
        assert result.cells[("canonical", 1)].udf_calls > result.cells[("o4", 1)].udf_calls


class TestScalingRunner:
    def test_default_tenant_counts_are_increasing(self):
        assert list(DEFAULT_TENANT_COUNTS) == sorted(DEFAULT_TENANT_COUNTS)

    def test_run_tenant_scaling_produces_series(self):
        result = run_tenant_scaling(
            profile="postgres",
            tenant_counts=(1, 3),
            query_ids=(6,),
            levels=("o4",),
            scale_factor=0.0005,
        )
        assert result.figure_id == "5"
        series = result.series(6, "o4")
        assert [tenants for tenants, _ in series] == [1, 3]
        assert all(value > 0 for _, value in series)

    def test_system_c_profile_maps_to_figure_6(self):
        result = run_tenant_scaling(
            profile="system_c",
            tenant_counts=(1,),
            query_ids=(6,),
            levels=("o4",),
            scale_factor=0.0005,
        )
        assert result.figure_id == "6"
        assert result.rows()[0]["figure"] == "6"


class TestReporting:
    def test_format_seconds_significant_digits(self):
        assert format_seconds(123.4) == "123"
        assert format_seconds(12.34) == "12.3"
        assert format_seconds(1.234) == "1.23"
        assert format_seconds(0.1234) == "0.123"

    def test_render_table_contains_levels_and_queries(self, small_workload):
        result = run_table("5", query_ids=(6,), workload=small_workload)
        text = render_table(result, (6,))
        assert "Q06" in text and "canonical" in text and "tpch" in text
        relative_text = render_relative_table(result, (6,))
        assert "x" in relative_text

    def test_render_scaling(self):
        result = run_tenant_scaling(
            profile="postgres",
            tenant_counts=(1,),
            query_ids=(6,),
            levels=("o4",),
            scale_factor=0.0005,
        )
        text = render_scaling(result)
        assert "Figure 5" in text and "T=1" in text


class TestShardScaling:
    def test_run_shard_scaling_produces_series(self):
        from repro.bench import run_shard_scaling

        result = run_shard_scaling(
            shard_counts=(1, 2),
            query_ids=(6, 11),
            scale_factor=0.0005,
            tenants=4,
        )
        assert result.tenants == 4
        series = result.series(6, dataset="all")
        assert [shards for shards, _ in series] == [1, 2]
        assert all(relative > 0 for _, relative in series)
        plans = {row["plan"] for row in result.rows() if row["query"] == 11}
        assert all(plan.startswith("single-shard") for plan in plans)
        single_points = [row for row in result.rows() if row["dataset"] == "single"]
        assert single_points  # the fast-path leg is part of the sweep

    def test_env_shards_override(self, monkeypatch):
        from repro.bench.workload import env_shards
        from repro.errors import ConfigurationError

        monkeypatch.delenv("REPRO_BENCH_SHARDS", raising=False)
        assert env_shards() == 0
        monkeypatch.setenv("REPRO_BENCH_SHARDS", "2")
        assert env_shards() == 2
        assert WorkloadConfig(scale_factor=0.0005, tenants=2).shards == 2
        monkeypatch.setenv("REPRO_BENCH_SHARDS", "nope")
        with pytest.raises(ConfigurationError, match="REPRO_BENCH_SHARDS"):
            env_shards()
        monkeypatch.setenv("REPRO_BENCH_SHARDS", "-1")
        with pytest.raises(ConfigurationError, match="REPRO_BENCH_SHARDS"):
            env_shards()

    def test_sharded_workload_serves_queries(self):
        from repro.backends import ShardedConnection
        from repro.mth.queries import query_text

        config = WorkloadConfig(scale_factor=0.0005, tenants=4, shards=2)
        workload = load_workload(config)
        assert isinstance(workload.backend, ShardedConnection)
        connection = workload.connection(client=1, optimization="o4", dataset="all")
        assert connection.query(query_text(6)).rows
        # same logical row counts as the unsharded baseline database
        assert workload.backend.table_rowcount("lineitem") == \
            workload.baseline.table_rowcount("lineitem")
