"""Differential suite: the MT-H workload on EngineBackend vs. SQLiteBackend.

The paper's middleware claim is that the rewritten SQL runs unchanged on any
backend.  These tests load the *same* generated MT-H data into the in-memory
engine and into SQLite and assert that every MT-H query — both scenarios,
``D' = {single, subset, all}`` — produces row-set-identical results after
normalization (dates to ISO text, floats to 12 significant digits to absorb
REAL round-trips; see :func:`repro.backends.normalized_rows`).
"""

from __future__ import annotations

import pytest

from repro.backends import SQLiteBackend, normalized_rows
from repro.mth.loader import load_mth
from repro.mth.queries import ALL_QUERY_IDS, CONVERSION_INTENSIVE, query_text

TENANTS = 4
CLIENT = 1

#: the three D' shapes of the acceptance grid
DATASETS = {
    "single": "IN (2)",
    "subset": "IN (1, 3)",
    "all": "IN ()",
}

#: the paper's two scenarios: business alliance (uniform), research (zipf)
SCENARIOS = ("uniform", "zipf")


@pytest.fixture(scope="module", params=SCENARIOS)
def backend_pair(request, tiny_tpch_data):
    """The same MT-H data loaded into both backends, one pair per scenario."""
    engine = load_mth(
        data=tiny_tpch_data, tenants=TENANTS, distribution=request.param
    )
    sqlite_factory = SQLiteBackend()
    sqlite = load_mth(
        data=tiny_tpch_data,
        tenants=TENANTS,
        distribution=request.param,
        backend=sqlite_factory,
    )
    yield engine, sqlite
    sqlite_factory.close()


def _connection(instance, scope: str, optimization: str = "o4"):
    connection = instance.middleware.connect(CLIENT, optimization=optimization)
    connection.set_scope(scope)
    return connection


@pytest.mark.parametrize("query_id", ALL_QUERY_IDS)
def test_mth_query_rowsets_identical(backend_pair, query_id):
    engine, sqlite = backend_pair
    text = query_text(query_id)
    for name, scope in DATASETS.items():
        engine_result = _connection(engine, scope).query(text)
        sqlite_result = _connection(sqlite, scope).query(text)
        assert len(engine_result.columns) == len(sqlite_result.columns), (
            f"Q{query_id} D'={name}: column counts differ"
        )
        assert normalized_rows(engine_result) == normalized_rows(sqlite_result), (
            f"Q{query_id} D'={name}: row sets differ"
        )


@pytest.mark.parametrize("level", ["canonical", "o1"])
def test_sql_udf_conversion_path(backend_pair, level):
    """Low optimization levels call the Listings-4-7 UDFs instead of inlining;
    SQLite serves them through sqlite3.create_function + the side connection."""
    engine, sqlite = backend_pair
    for query_id in CONVERSION_INTENSIVE:
        text = query_text(query_id)
        engine_result = _connection(engine, "IN (2)", optimization=level).query(text)
        sqlite.middleware.backend.reset_stats()
        sqlite_result = _connection(sqlite, "IN (2)", optimization=level).query(text)
        assert normalized_rows(engine_result) == normalized_rows(sqlite_result), (
            f"Q{query_id} at {level}: row sets differ"
        )
    # the conversion UDFs really executed on the SQLite side
    assert sqlite.middleware.backend.stats.udf_calls > 0


def test_gateway_sessions_byte_identical_to_connections(backend_pair):
    """One gateway, two backends: sessions routed to the engine and to SQLite
    return exactly what a direct MTConnection on that backend returns, and the
    rewrite cache keeps per-dialect entries apart."""
    engine, sqlite = backend_pair
    gateway = engine.middleware.gateway(cache_size=64)
    try:
        engine_session = gateway.session(CLIENT, optimization="o4", scope="IN ()")
        sqlite_session = gateway.session(
            CLIENT,
            optimization="o4",
            scope="IN ()",
            backend=sqlite.middleware.backend,
        )
        for query_id in (1, 6, 22):
            text = query_text(query_id)
            direct_engine = _connection(engine, "IN ()").query(text)
            direct_sqlite = _connection(sqlite, "IN ()").query(text)
            via_engine = engine_session.query(text)
            via_sqlite = sqlite_session.query(text)
            # byte-identical per backend: same pipeline, same backend
            assert via_engine.rows == direct_engine.rows
            assert via_sqlite.rows == direct_sqlite.rows
            # row-set-identical across backends
            assert normalized_rows(via_engine) == normalized_rows(via_sqlite)

        # per-dialect cache entries: each (query, D', level) exists twice
        dialects = {key.dialect for key in gateway.cache._plans}
        assert dialects == {"default", "sqlite"}

        # warm path: a repeat execution hits the cache for both dialects
        before = gateway.cache_stats.hits
        engine_session.query(query_text(6))
        sqlite_session.query(query_text(6))
        assert gateway.cache_stats.hits == before + 2
    finally:
        gateway.close()


def test_dml_differential_on_paper_example(paper_example_factory):
    """INSERT/UPDATE/DELETE through the middleware act identically on both
    backends (rowcounts and final table contents)."""
    engine_mt = paper_example_factory()
    sqlite_factory = SQLiteBackend()
    sqlite_mt = paper_example_factory(backend=sqlite_factory)
    try:
        for mt in (engine_mt, sqlite_mt):
            connection = mt.connect(0, optimization="o4")
            connection.set_scope("IN (0)")  # D' = {0}: DML acts on one owner
            inserted = connection.execute(
                "INSERT INTO Employees VALUES (7, 'Zoe', 1, 3, 42000, 33)"
            )
            assert inserted.rowcount == 1
            updated = connection.execute(
                "UPDATE Employees SET E_salary = 43000 WHERE E_name = 'Zoe'"
            )
            assert updated.rowcount == 1
            deleted = connection.execute("DELETE FROM Employees WHERE E_age > 40")
            assert deleted.rowcount == 1

        engine_rows = engine_mt.connect(0).query(
            "SELECT E_name, E_salary, E_age FROM Employees"
        )
        sqlite_rows = sqlite_mt.connect(0).query(
            "SELECT E_name, E_salary, E_age FROM Employees"
        )
        assert normalized_rows(engine_rows) == normalized_rows(sqlite_rows)
        assert engine_mt.backend.check_integrity() == []
        assert sqlite_mt.backend.check_integrity() == []
    finally:
        sqlite_factory.close()


def test_middleware_is_engine_free():
    """Acceptance guard: core/middleware.py must not import the engine."""
    import inspect

    import repro.core.middleware as middleware

    source = inspect.getsource(middleware)
    assert "engine.database" not in source
    assert "from ..engine" not in source


def test_routed_connection_rejects_ddl(backend_pair):
    """DDL must land on the primary backend; routed connections refuse it."""
    from repro.errors import MTSQLError

    engine, sqlite = backend_pair
    routed = engine.middleware.connect(CLIENT, backend=sqlite.middleware.backend)
    routed.set_scope("IN ()")
    for ddl in (
        "CREATE TABLE stray (s_id INTEGER NOT NULL)",
        "DROP TABLE region",
        "CREATE VIEW stray_view AS SELECT n_name FROM nation",
    ):
        with pytest.raises(MTSQLError, match="routed"):
            routed.execute(ddl)
    # reads still work on the routed backend
    assert routed.query("SELECT COUNT(*) FROM nation").scalar() == 25
