"""The backend protocol: both shipped backends satisfy the same contract."""

from __future__ import annotations

import pytest

from repro.backends import (
    BackendConnection,
    EngineBackend,
    SQLiteBackend,
    as_backend_connection,
    create_backend,
    normalize_row,
    normalized_rows,
)
from repro.errors import BackendError, ExecutionError
from repro.result import QueryResult, StatementResult
from repro.sql.types import Date


@pytest.fixture(params=["engine", "sqlite"])
def connection(request):
    backend = create_backend(request.param)
    connection = backend.connect()
    connection.execute(
        "CREATE TABLE items (id INTEGER NOT NULL, price DECIMAL(15,2) NOT NULL, "
        "label VARCHAR(20), added DATE, CONSTRAINT pk_items PRIMARY KEY (id))"
    )
    connection.insert_rows(
        "items",
        [
            (1, 10.5, "alpha", Date.from_string("1994-01-01")),
            (2, 20.0, "beta", Date.from_string("1995-06-15")),
            (3, 30.25, "gamma", Date.from_string("1996-12-31")),
        ],
    )
    yield connection
    backend.close()


class TestExecution:
    def test_select_returns_query_result(self, connection):
        result = connection.query("SELECT id, price FROM items WHERE id <= 2")
        assert isinstance(result, QueryResult)
        assert result.columns == ["id", "price"]
        assert sorted(result.rows) == [(1, 10.5), (2, 20.0)]

    def test_dates_round_trip(self, connection):
        result = connection.query("SELECT added FROM items WHERE id = 1")
        assert result.rows == [(Date.from_string("1994-01-01"),)]

    def test_date_comparison_and_arithmetic(self, connection):
        result = connection.query(
            "SELECT id FROM items "
            "WHERE added < DATE '1994-01-01' + INTERVAL '1' YEAR"
        )
        assert result.column_values("id") == [1]

    def test_dml_rowcounts(self, connection):
        update = connection.execute("UPDATE items SET label = 'x' WHERE id >= 2")
        assert isinstance(update, StatementResult)
        assert update.rowcount == 2
        delete = connection.execute("DELETE FROM items WHERE id = 3")
        assert delete.rowcount == 1
        assert connection.table_rowcount("items") == 2

    def test_parameterized_execution(self, connection):
        result = connection.query(
            "SELECT label FROM items WHERE id = $2 OR price = $1",
            parameters=[10.5, 2],
        )
        assert sorted(result.column_values("label")) == ["alpha", "beta"]

    def test_execute_script(self, connection):
        results = connection.execute_script(
            "INSERT INTO items VALUES (4, 1.0, 'd', DATE '1999-01-01'); "
            "SELECT COUNT(*) FROM items"
        )
        assert results[0].rowcount == 1
        assert results[1].scalar() == 4

    def test_query_rejects_non_select(self, connection):
        with pytest.raises(BackendError, match="SELECT"):
            connection.query("DELETE FROM items")

    def test_statement_counter(self, connection):
        before = connection.stats.statements
        connection.query("SELECT 1 FROM items")
        assert connection.stats.statements == before + 1
        connection.reset_stats()
        assert connection.stats.statements == 0


class TestFunctions:
    def test_python_udf(self, connection):
        connection.register_python_function("twice", lambda value: value * 2)
        result = connection.query("SELECT twice(price) FROM items WHERE id = 1")
        assert result.scalar() == 21.0

    def test_sql_udf(self, connection):
        connection.register_sql_function(
            "pricier", "SELECT MAX(price) FROM items WHERE price > $1"
        )
        result = connection.query("SELECT pricier(15.0) FROM items WHERE id = 1")
        assert result.scalar() == 30.25

    def test_immutable_udf_caching_follows_profile(self):
        for profile, expect_hits in (("postgres", True), ("system_c", False)):
            backend = create_backend("sqlite", profile=profile)
            connection = backend.connect()
            connection.execute("CREATE TABLE t (x INTEGER)")
            connection.insert_rows("t", [(1,), (1,), (1,)])
            connection.register_python_function("probe", lambda v: v + 1, immutable=True)
            connection.query("SELECT probe(x) FROM t")
            assert connection.stats.udf_calls == 3
            if expect_hits:
                assert connection.stats.udf_executions == 1
                assert connection.stats.udf_cache_hits == 2
            else:
                assert connection.stats.udf_executions == 3
            connection.clear_function_caches()
            connection.reset_stats()
            backend.close()


class TestIntegrity:
    def test_clean_database(self, connection):
        assert connection.check_integrity() == []

    def test_duplicate_primary_key(self, connection):
        connection.insert_rows("items", [(1, 99.0, "dup", Date.from_string("2000-01-01"))])
        violations = connection.check_integrity()
        assert any("duplicate primary key" in violation for violation in violations)

    def test_foreign_key_violation(self, connection):
        connection.execute(
            "CREATE TABLE refs (item_id INTEGER, CONSTRAINT fk_refs "
            "FOREIGN KEY (item_id) REFERENCES items (id))"
        )
        connection.insert_rows("refs", [(1,), (99,)])
        violations = connection.check_integrity()
        assert any("foreign key violation" in violation for violation in violations)


class TestLifecycle:
    def test_create_backend_unknown_name(self):
        with pytest.raises(BackendError, match="unknown backend"):
            create_backend("oracle")

    def test_as_backend_connection_normalizes(self):
        backend = EngineBackend()
        assert as_backend_connection(backend) is backend.connect()
        assert as_backend_connection(backend.connect()) is backend.connect()
        assert isinstance(as_backend_connection("engine"), BackendConnection)
        with pytest.raises(BackendError, match="expected a backend"):
            as_backend_connection(42)

    def test_sqlite_close_is_final(self):
        backend = SQLiteBackend()
        connection = backend.connect()
        connection.execute("CREATE TABLE t (x INTEGER)")
        backend.close()
        backend.close()  # idempotent
        with pytest.raises(BackendError, match="closed"):
            connection.query("SELECT 1 FROM t")

    def test_engine_escape_hatch(self):
        connection = EngineBackend().connect()
        # legacy code reaches Database internals through the connection
        assert connection.engine_database.catalog is connection.catalog
        assert connection.dialect.name == "default"
        sqlite = SQLiteBackend()
        assert not hasattr(sqlite.connect(), "engine_database")
        sqlite.close()


class TestQueryResultConveniences:
    def test_iteration_and_truthiness(self):
        result = QueryResult(columns=["a"], rows=[(1,), (2,)])
        assert list(result) == [(1,), (2,)]
        assert bool(result)
        assert not QueryResult(columns=["a"], rows=[])

    def test_ambiguous_column_raises(self):
        result = QueryResult(columns=["a", "B", "A"], rows=[(1, 2, 3)])
        assert result.column_index("b") == 1
        with pytest.raises(ExecutionError, match="ambiguous result column"):
            result.column_index("a")
        with pytest.raises(ExecutionError, match="no column"):
            result.column_index("missing")


class TestNormalization:
    def test_normalize_row(self):
        row = normalize_row((True, 1.0000000000001, Date.from_string("1994-01-01"), "x"))
        assert row == (1, 1.0, "1994-01-01", "x")

    def test_normalized_rows_sort_order_insensitively(self):
        left = QueryResult(columns=["a"], rows=[(2,), (1,), (None,)])
        right = QueryResult(columns=["a"], rows=[(None,), (1,), (2,)])
        assert normalized_rows(left) == normalized_rows(right)


class TestRoutingGuards:
    def test_connect_rejects_backend_names(self):
        from repro.core import MTBase
        from repro.errors import MTSQLError

        mt = MTBase()
        mt.register_tenant(1)
        with pytest.raises(MTSQLError, match="empty database"):
            mt.connect(1, backend="sqlite")

    def test_sqlite_temp_file_removed_without_explicit_close(self):
        import gc
        import os

        backend = SQLiteBackend()
        path = backend.path
        connection = backend.connect()
        connection.execute("CREATE TABLE t (x INTEGER)")
        assert os.path.exists(path)
        del backend, connection
        gc.collect()
        assert not os.path.exists(path)


class TestDateConversionFlag:
    def test_date_sniffing_can_be_disabled(self):
        backend = SQLiteBackend()
        connection = backend.connect()
        connection.execute("CREATE TABLE s (label VARCHAR(10) NOT NULL)")
        connection.insert_rows("s", [("2024-01-01",)])
        assert connection.query("SELECT label FROM s").scalar() == Date.from_string(
            "2024-01-01"
        )
        connection.convert_iso_dates = False
        assert connection.query("SELECT label FROM s").scalar() == "2024-01-01"
        backend.close()
