"""The PEP 249 surface: connect targets, Connection, Cursor semantics.

One cursor API fronts every entry point — bare backends, direct
:class:`MTConnection` clients and gateway sessions.  These tests pin the
DB-API contract: module globals, the exception aliases, ``description`` /
``rowcount``, fetch semantics, iteration, ``executemany`` accumulation,
commit/rollback autocommit semantics and lifecycle errors.
"""

from __future__ import annotations

import pytest

import repro.api as api
from repro.backends import EngineBackend
from repro.errors import (
    BackendError,
    NotSupportedError,
    ParameterError,
    ReproError,
    SQLError,
)

from tests.conftest import build_paper_example


@pytest.fixture
def backend_conn():
    with api.connect("engine") as connection:
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR(10))")
        cursor.executemany(
            "INSERT INTO t (a, b) VALUES (?, ?)",
            [(index, f"row{index}") for index in range(10)],
        )
        yield connection


# ---------------------------------------------------------------------------
# module globals (PEP 249 §module interface)
# ---------------------------------------------------------------------------


def test_module_globals():
    assert api.apilevel == "2.0"
    assert api.threadsafety in (0, 1, 2, 3)
    assert api.paramstyle == "qmark"


def test_exception_hierarchy_aliases_repro_errors():
    assert issubclass(api.Error, ReproError) or api.Error is ReproError
    assert issubclass(api.DatabaseError, api.Error)
    assert issubclass(api.OperationalError, api.DatabaseError)
    assert issubclass(api.IntegrityError, api.DatabaseError)
    assert issubclass(api.ProgrammingError, api.Error)
    # native raises stay catchable under both spellings
    assert issubclass(ParameterError, api.ProgrammingError)
    assert issubclass(SQLError, api.DatabaseError)


def test_type_constructors():
    date = api.Date(1998, 9, 2)
    assert str(date) == "1998-09-02"
    assert api.Binary(b"abc") == b"abc"
    assert api.DateFromTicks(0).year in (1969, 1970)  # timezone-dependent day


# ---------------------------------------------------------------------------
# cursor basics on a bare backend
# ---------------------------------------------------------------------------


def test_executemany_accumulates_rowcount(backend_conn):
    cursor = backend_conn.cursor()
    cursor.executemany(
        "INSERT INTO t (a, b) VALUES (?, ?)", [(100, "x"), (101, "y")]
    )
    assert cursor.rowcount == 2
    assert cursor.description is None


def test_description_and_fetch_semantics(backend_conn):
    cursor = backend_conn.cursor()
    cursor.execute("SELECT a, b FROM t WHERE a < ? ORDER BY a", (4,))
    assert [entry[0] for entry in cursor.description] == ["a", "b"]
    assert all(len(entry) == 7 for entry in cursor.description)
    assert cursor.rowcount == -1  # streaming: unknown until exhausted
    assert cursor.fetchone() == (0, "row0")
    assert cursor.fetchmany(2) == [(1, "row1"), (2, "row2")]
    assert cursor.fetchall() == [(3, "row3")]
    assert cursor.rowcount == 4
    assert cursor.fetchone() is None  # exhausted, not an error


def test_arraysize_drives_default_fetchmany(backend_conn):
    cursor = backend_conn.cursor()
    cursor.arraysize = 3
    cursor.execute("SELECT a FROM t ORDER BY a")
    assert cursor.fetchmany() == [(0,), (1,), (2,)]


def test_cursor_iteration_and_execute_chaining(backend_conn):
    cursor = backend_conn.cursor()
    rows = [row for row in cursor.execute("SELECT a FROM t WHERE a < ?", (3,))]
    assert rows == [(0,), (1,), (2,)]


def test_named_parameters_via_mapping(backend_conn):
    cursor = backend_conn.cursor()
    cursor.execute(
        "SELECT a FROM t WHERE a BETWEEN :low AND :high ORDER BY a",
        {"low": 2, "high": 4},
    )
    assert cursor.fetchall() == [(2,), (3,), (4,)]


def test_fetch_without_result_set_raises(backend_conn):
    cursor = backend_conn.cursor()
    with pytest.raises(BackendError, match="no result set"):
        cursor.fetchone()
    cursor.execute("INSERT INTO t (a, b) VALUES (?, ?)", (50, "z"))
    with pytest.raises(BackendError, match="no result set"):
        cursor.fetchall()


def test_executemany_rejects_result_sets(backend_conn):
    cursor = backend_conn.cursor()
    with pytest.raises(NotSupportedError, match="executemany"):
        cursor.executemany("SELECT a FROM t WHERE a = ?", [(1,), (2,)])


def test_parameter_mismatch_raises_programming_error(backend_conn):
    cursor = backend_conn.cursor()
    with pytest.raises(api.ProgrammingError):
        cursor.execute("SELECT a FROM t WHERE a = ?")
    with pytest.raises(api.ProgrammingError):
        cursor.execute("SELECT a FROM t WHERE a = ?", (1, 2))


def test_invalid_sql_raises_programming_error(backend_conn):
    cursor = backend_conn.cursor()
    with pytest.raises(api.ProgrammingError, match="invalid statement"):
        cursor.execute("SELEC a FROM t")


# ---------------------------------------------------------------------------
# transactions and lifecycle
# ---------------------------------------------------------------------------


def test_commit_is_a_noop_and_rollback_raises(backend_conn):
    backend_conn.commit()  # autocommit: trivially succeeds
    with pytest.raises(NotSupportedError, match="autocommit"):
        backend_conn.rollback()


def test_closed_connection_and_cursor_raise():
    connection = api.connect("engine")
    cursor = connection.cursor()
    connection.close()
    with pytest.raises(BackendError, match="closed"):
        connection.cursor()
    with pytest.raises(BackendError, match="closed"):
        cursor.execute("SELECT 1")
    connection.close()  # idempotent


def test_cursor_context_manager_closes(backend_conn):
    with backend_conn.cursor() as cursor:
        cursor.execute("SELECT a FROM t")
    with pytest.raises(BackendError, match="closed"):
        cursor.fetchone()


# ---------------------------------------------------------------------------
# connect() target resolution
# ---------------------------------------------------------------------------


def test_connect_fronts_middleware_and_gateway():
    mt = build_paper_example()
    gateway = mt.gateway()
    sql = "SELECT E_name FROM Employees ORDER BY E_name"

    with api.connect(mt, client=0, optimization="o4", scope="IN (0, 1)") as direct:
        direct_rows = direct.cursor().execute(sql).fetchall()
    with api.connect(gateway, client=0, optimization="o4", scope="IN (0, 1)") as cached:
        cached_rows = cached.cursor().execute(sql).fetchall()
    assert direct_rows == cached_rows
    assert len(direct_rows) == 6
    gateway.close()


def test_connect_wraps_existing_session_and_connection():
    mt = build_paper_example()
    gateway = mt.gateway()
    session = gateway.session(0, optimization="o4", scope="IN (0)")
    with api.connect(session) as over_session:
        assert len(over_session.cursor().execute(
            "SELECT E_name FROM Employees"
        ).fetchall()) == 3
    # wrapping did not close the caller's session
    assert session.query("SELECT COUNT(*) FROM Employees").scalar() == 3

    mt_connection = mt.connect(1, optimization="o4")
    with api.connect(mt_connection, scope="IN (1)") as over_connection:
        assert len(over_connection.cursor().execute(
            "SELECT E_name FROM Employees"
        ).fetchall()) == 3
    gateway.close()


def test_connect_accepts_backend_objects():
    backend = EngineBackend()
    with api.connect(backend) as over_backend:
        cursor = over_backend.cursor()
        cursor.execute("CREATE TABLE s (x INTEGER NOT NULL)")
        cursor.execute("INSERT INTO s (x) VALUES (1), (2)")
        assert cursor.rowcount == 2
    # connection close did not dispose the caller-owned backend
    assert backend.connect().table_rowcount("s") == 2


def test_connect_rejects_bad_targets_and_argument_mixes():
    mt = build_paper_example()
    with pytest.raises(BackendError, match="requires a client"):
        api.connect(mt)
    with pytest.raises(BackendError, match="requires a client"):
        api.connect(mt.gateway())
    with pytest.raises(BackendError, match="does not accept"):
        api.connect("engine", client=1)
    with pytest.raises(BackendError, match="cannot front"):
        api.connect(42)


def test_dml_with_subquery_parameters(backend_conn):
    """Regression: DML whose parameters live inside a sub-query binds fine."""
    cursor = backend_conn.cursor()
    cursor.execute("CREATE TABLE u (b INTEGER NOT NULL)")
    cursor.execute("INSERT INTO u (b) VALUES (1), (2)")
    cursor.execute(
        "DELETE FROM t WHERE a IN (SELECT b FROM u WHERE b >= ?)", (2,)
    )
    assert cursor.rowcount == 1
    cursor.execute("SELECT COUNT(*) FROM t")
    assert cursor.fetchone() == (9,)


def test_executemany_routes_partitioned_inserts_on_a_sharded_backend():
    """Regression: a parameterized ttid value binds before shard routing."""
    from repro.backends import ShardedBackend

    backend = ShardedBackend(shards=2)
    connection = backend.connect()
    connection.execute(
        "CREATE TABLE p (ttid INTEGER NOT NULL, v INTEGER NOT NULL)"
    )
    connection.register_partitioned_table("p", "ttid")
    with api.connect(connection) as dbapi:
        cursor = dbapi.cursor()
        cursor.executemany(
            "INSERT INTO p (ttid, v) VALUES (?, ?)",
            [(ttid, ttid * 10) for ttid in range(4)],
        )
        assert cursor.rowcount == 4
        cursor.execute("SELECT ttid, v FROM p ORDER BY ttid")
        assert cursor.fetchall() == [(ttid, ttid * 10) for ttid in range(4)]
    # rows really landed on their owners' shards, not on one replica
    per_shard = [shard.table_rowcount("p") for shard in connection.shard_connections]
    assert sum(per_shard) == 4 and all(count > 0 for count in per_shard)
    backend.close()


def test_gateway_target_prepared_handles_are_bounded():
    """A literal-churn workload must not grow the prepared-handle map forever."""
    from repro.api.connection import _GatewayTarget

    mt = build_paper_example()
    gateway = mt.gateway()
    connection = api.connect(gateway, client=0, scope="IN (0)")
    target = connection._target
    assert isinstance(target, _GatewayTarget)
    cursor = connection.cursor()
    limit = _GatewayTarget.MAX_PREPARED
    for value in range(limit + 20):
        cursor.execute(f"SELECT E_name FROM Employees WHERE E_salary > {value}")
    assert len(target._handles) == limit
    connection.close()
    gateway.close()


def test_dml_through_the_mt_pipeline():
    """Cursor DML goes through the per-owner MTSQL rewrite, not raw SQL."""
    mt = build_paper_example()
    with api.connect(mt, client=0, scope="IN (0)", optimization="o4") as connection:
        cursor = connection.cursor()
        cursor.execute(
            "INSERT INTO Employees VALUES (?, ?, ?, ?, ?, ?)",
            (7, "Zoe", 1, 3, 42000, 33),
        )
        assert cursor.rowcount == 1
        cursor.execute(
            "UPDATE Employees SET E_salary = :salary WHERE E_name = :name",
            {"salary": 43000, "name": "Zoe"},
        )
        assert cursor.rowcount == 1
        cursor.execute("SELECT E_salary FROM Employees WHERE E_name = ?", ("Zoe",))
        assert cursor.fetchall() == [(43000,)]
        cursor.execute("DELETE FROM Employees WHERE E_name = ?", ("Zoe",))
        assert cursor.rowcount == 1
