"""Parameterized differential suite + prepared-statement cache acceptance.

A sample of MT-H queries has its literals lifted into ``?``/``:name``
parameters; executed through DB-API cursors on {engine, sqlite, sharded:2}
each must be row-set-identical to its unparameterized original on the same
backend (and across backends after normalization).

The cache half pins the PR's acceptance criterion: a parameterized query
executed N times for M client connections through the gateway performs
exactly one compilation — the cache key is the *parameterized* fingerprint,
so every binding after the first is a warm hit.
"""

from __future__ import annotations

import pytest

import repro.api as api
from repro.backends import normalized_rows
from repro.mth.queries import query_text

D90 = api.Date(1998, 9, 2)  # DATE '1998-12-01' - 90 days, precomputed

#: query id -> (parameterized text, bindings) with literals lifted; the
#: parameterized text must be semantically identical to query_text(id)
PARAM_QUERIES = {
    1: (
        """
        SELECT l_returnflag, l_linestatus,
               SUM(l_quantity) AS sum_qty,
               SUM(l_extendedprice) AS sum_base_price,
               SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
               SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
               AVG(l_quantity) AS avg_qty,
               AVG(l_extendedprice) AS avg_price,
               AVG(l_discount) AS avg_disc,
               COUNT(*) AS count_order
        FROM lineitem
        WHERE l_shipdate <= ?
        GROUP BY l_returnflag, l_linestatus
        ORDER BY l_returnflag, l_linestatus
        """,
        (D90,),
    ),
    3: (
        """
        SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue,
               o_orderdate, o_shippriority
        FROM customer, orders, lineitem
        WHERE c_mktsegment = :segment AND c_custkey = o_custkey AND l_orderkey = o_orderkey
          AND o_orderdate < :cutoff AND l_shipdate > :cutoff
        GROUP BY l_orderkey, o_orderdate, o_shippriority
        ORDER BY revenue DESC, o_orderdate
        LIMIT 10
        """,
        {"segment": "BUILDING", "cutoff": api.Date(1995, 3, 15)},
    ),
    6: (
        """
        SELECT SUM(l_extendedprice * l_discount) AS revenue
        FROM lineitem
        WHERE l_shipdate >= ?1 AND l_shipdate < ?1 + INTERVAL '1' YEAR
          AND l_discount BETWEEN ?2 AND ?3 AND l_quantity < ?4
        """,
        (api.Date(1994, 1, 1), 0.05, 0.07, 24),
    ),
    10: (
        """
        SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue,
               c_acctbal, n_name, c_address, c_phone, c_comment
        FROM customer, orders, lineitem, nation
        WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
          AND o_orderdate >= :start AND o_orderdate < :start + INTERVAL '3' MONTH
          AND l_returnflag = :flag AND c_nationkey = n_nationkey
        GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
        ORDER BY revenue DESC
        LIMIT 20
        """,
        {"start": api.Date(1993, 10, 1), "flag": "R"},
    ),
    14: (
        """
        SELECT 100.00 * SUM(CASE WHEN p_type LIKE ?2 THEN l_extendedprice * (1 - l_discount)
                                 ELSE 0 END) / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
        FROM lineitem, part
        WHERE l_partkey = p_partkey
          AND l_shipdate >= ?1 AND l_shipdate < ?1 + INTERVAL '1' MONTH
        """,
        (api.Date(1995, 9, 1), "PROMO%"),
    ),
    22: (
        """
        SELECT cntrycode, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal
        FROM (SELECT SUBSTRING(c_phone FROM 1 FOR 2) AS cntrycode, c_acctbal
              FROM customer
              WHERE SUBSTRING(c_phone FROM 1 FOR 2) IN (?1, ?2, ?3, ?4, ?5, ?6, ?7)
                AND c_acctbal > (SELECT AVG(c_acctbal) FROM customer
                                 WHERE c_acctbal > 0.00
                                   AND SUBSTRING(c_phone FROM 1 FOR 2) IN (?1, ?2, ?3, ?4, ?5, ?6, ?7))
                AND c_custkey NOT IN (SELECT o_custkey FROM orders)) AS custsale
        GROUP BY cntrycode
        ORDER BY cntrycode
        """,
        ("13", "31", "23", "29", "30", "18", "17"),
    ),
}

DATASETS = {"single": "IN (2)", "all": "IN ()"}

CLIENT = 1


def _fixture_names():
    return ("tiny_mth_engine", "tiny_mth_sqlite", "tiny_mth_sharded")


@pytest.fixture(params=_fixture_names())
def mth_instance(request):
    """One MT-H instance per backend family (engine, sqlite, sharded:2)."""
    return request.getfixturevalue(request.param)


@pytest.mark.parametrize("query_id", sorted(PARAM_QUERIES))
def test_parameterized_queries_match_originals(mth_instance, query_id):
    """Literal-lifted queries are row-set-identical to the originals."""
    sql, bindings = PARAM_QUERIES[query_id]
    for name, scope in DATASETS.items():
        connection = mth_instance.middleware.connect(CLIENT, optimization="o4")
        connection.set_scope(scope)
        reference = connection.query(query_text(query_id))
        with api.connect(
            mth_instance.middleware, client=CLIENT, optimization="o4", scope=scope
        ) as dbapi:
            cursor = dbapi.cursor()
            cursor.execute(sql, bindings)
            parameterized = cursor.fetchall()
        assert normalized_rows(parameterized) == normalized_rows(reference), (
            f"Q{query_id} D'={name}: parameterized row set differs from original"
        )


def test_parameterized_rowsets_identical_across_backends(
    tiny_mth_engine, tiny_mth_sqlite, tiny_mth_sharded
):
    """The same parameterized cursor execution agrees across all backends."""
    for query_id, (sql, bindings) in sorted(PARAM_QUERIES.items()):
        results = []
        for instance in (tiny_mth_engine, tiny_mth_sqlite, tiny_mth_sharded):
            with api.connect(
                instance.middleware, client=CLIENT, optimization="o4", scope="IN ()"
            ) as dbapi:
                results.append(dbapi.cursor().execute(sql, bindings).fetchall())
        engine_rows, sqlite_rows, sharded_rows = map(normalized_rows, results)
        assert engine_rows == sqlite_rows == sharded_rows, (
            f"Q{query_id}: backends disagree on the parameterized row set"
        )


# ---------------------------------------------------------------------------
# prepared-statement cache: one compilation serves N bindings x M clients
# ---------------------------------------------------------------------------

PARAM_SQL = (
    "SELECT o_orderpriority, COUNT(*) AS n FROM orders "
    "WHERE o_totalprice > ? GROUP BY o_orderpriority ORDER BY o_orderpriority"
)

BINDINGS = [(1000.0,), (5000.0,), (20000.0,), (100000.0,)]


def test_one_compilation_serves_n_bindings_for_m_clients(tiny_mth_engine):
    """The PR's acceptance criterion, asserted on the compiler's counters."""
    middleware = tiny_mth_engine.middleware
    gateway = middleware.gateway(cache_size=64)
    try:
        connections = [
            api.connect(gateway, client=CLIENT, optimization="o4", scope="IN ()")
            for _ in range(3)  # M = 3 client connections of the same tenant
        ]
        compilations_before = middleware.compiler.stats.compilations
        hits_before = gateway.cache_stats.hits
        results = []
        for connection in connections:
            cursor = connection.cursor()
            for bindings in BINDINGS:  # N = 4 bindings each
                cursor.execute(PARAM_SQL, bindings)
                results.append(cursor.fetchall())
        executions = len(connections) * len(BINDINGS)
        assert (
            middleware.compiler.stats.compilations - compilations_before == 1
        ), "a parameterized statement must compile exactly once"
        assert gateway.cache_stats.hits - hits_before == executions - 1
        # different bindings really produce different answers
        counts = [sum(row[1] for row in rows) for rows in results[: len(BINDINGS)]]
        assert counts == sorted(counts, reverse=True) and counts[0] > counts[-1]
        for connection in connections:
            connection.close()
    finally:
        gateway.close()


def test_literal_spellings_compile_per_distinct_statement(tiny_mth_engine):
    """Contrast case: inlined literals miss the cache once per distinct text."""
    middleware = tiny_mth_engine.middleware
    gateway = middleware.gateway(cache_size=64)
    try:
        session = gateway.session(CLIENT, optimization="o4", scope="IN ()")
        before = middleware.compiler.stats.compilations
        for (value,) in BINDINGS:
            session.query(PARAM_SQL.replace("?", repr(value)))
        assert middleware.compiler.stats.compilations - before == len(BINDINGS)
    finally:
        gateway.close()


def test_compiled_artifact_records_parameter_slots(tiny_mth_engine):
    connection = tiny_mth_engine.middleware.connect(CLIENT, optimization="o4")
    connection.set_scope("IN ()")
    compiled = connection.compile(PARAM_SQL)
    assert [slot.index for slot in compiled.parameters] == [1]
    unparameterized = connection.compile("SELECT COUNT(*) FROM orders")
    assert unparameterized.parameters == ()


def test_cluster_plan_is_memoized_across_bindings(tiny_mth_sharded):
    """Warm executions with new bindings reuse the memoized cluster plan."""
    middleware = tiny_mth_sharded.middleware
    gateway = middleware.gateway(cache_size=64)
    try:
        session = gateway.session(CLIENT, optimization="o4", scope="IN ()")
        backend = tiny_mth_sharded.backend
        session.query(PARAM_SQL, parameters=BINDINGS[0])  # cold: plan + cache
        reuses_before = backend.plan_reuses
        for bindings in BINDINGS[1:]:
            session.query(PARAM_SQL, parameters=bindings)
        assert backend.plan_reuses - reuses_before == len(BINDINGS) - 1
    finally:
        gateway.close()
