"""Units for the bind-parameter substrate: lexing, parsing, printing, binding.

The grammar side of the PR: ``?`` / ``?NNN`` / ``:name`` placeholders lex to
one token type, parse to :class:`repro.sql.ast.Parameter` slots, print per
dialect (client spelling vs. SQLite ``?NNN``), and bind — by value
resolution (:func:`resolve_parameters`) and by literal substitution
(:func:`bind_parameters`).  Plus the error-normalization satellite: every
statement-accepting entry point raises one
:class:`~repro.errors.InvalidStatementError` for unparsable SQL.
"""

from __future__ import annotations

import pytest

from repro.errors import InvalidStatementError, ParameterError, ParseError
from repro.sql import ast
from repro.sql.dialect import DEFAULT_DIALECT, SQLITE_DIALECT
from repro.sql.params import (
    ParameterSlot,
    bind_parameters,
    resolve_parameters,
    statement_parameters,
)
from repro.sql.parser import parse_statement, parse_submitted_statement
from repro.sql.printer import to_sql

from tests.conftest import build_paper_example


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------


def test_positional_placeholders_take_consecutive_slots():
    statement = parse_statement("SELECT a FROM t WHERE x < ? AND y > ?")
    slots = statement_parameters(statement)
    assert slots == (ParameterSlot(1), ParameterSlot(2))


def test_explicit_numbered_placeholders_pin_slots():
    statement = parse_statement("SELECT a FROM t WHERE x < ?2 AND y > ?1 AND z = ?2")
    slots = statement_parameters(statement)
    assert slots == (ParameterSlot(1), ParameterSlot(2))


def test_named_placeholders_share_one_slot_per_name():
    statement = parse_statement(
        "SELECT a FROM t WHERE x BETWEEN :low AND :high AND y = :low"
    )
    slots = statement_parameters(statement)
    assert slots == (
        ParameterSlot(1, "low"),
        ParameterSlot(2, "high"),
    )


def test_parameters_are_found_in_subqueries_and_in_lists():
    statement = parse_statement(
        "SELECT a FROM t WHERE b IN (?, ?) AND c > (SELECT AVG(c) FROM t WHERE d = ?)"
    )
    assert len(statement_parameters(statement)) == 3


def test_parameters_in_dml():
    insert = parse_statement("INSERT INTO t (a, b) VALUES (?, ?)")
    update = parse_statement("UPDATE t SET b = :b WHERE a = :a")
    delete = parse_statement("DELETE FROM t WHERE a < ?")
    assert len(statement_parameters(insert)) == 2
    assert [slot.name for slot in statement_parameters(update)] == ["b", "a"]
    assert len(statement_parameters(delete)) == 1


def test_parameters_inside_dml_subqueries():
    """Slot discovery descends into sub-queries of DML predicates/values,
    matching where bind_parameters substitutes (regression: they disagreed)."""
    delete = parse_statement(
        "DELETE FROM t WHERE a IN (SELECT b FROM u WHERE c = ?)"
    )
    assert statement_parameters(delete) == (ParameterSlot(1),)
    bound = bind_parameters(delete, (5,))
    assert statement_parameters(bound) == ()
    assert "c = 5" in to_sql(bound)

    update = parse_statement(
        "UPDATE t SET b = (SELECT MAX(b) FROM u WHERE c = :cap) WHERE a > :floor"
    )
    assert [slot.name for slot in statement_parameters(update)] == ["cap", "floor"]


def test_script_statements_do_not_share_slot_indexes():
    """Regression: ';'-separated scripts restart slot numbering per statement."""
    from repro.sql.parser import parse_statements

    first, second = parse_statements(
        "SELECT a FROM t WHERE a = ?; SELECT b FROM u WHERE b = ?"
    )
    assert statement_parameters(first) == (ParameterSlot(1),)
    assert statement_parameters(second) == (ParameterSlot(1),)


def test_non_contiguous_explicit_indexes_are_rejected():
    statement = parse_statement("SELECT a FROM t WHERE x = ?1 AND y = ?3")
    with pytest.raises(ParameterError, match="contiguous"):
        statement_parameters(statement)


def test_zero_index_placeholder_is_a_parse_error():
    with pytest.raises(ParseError, match="positive"):
        parse_statement("SELECT a FROM t WHERE x = ?0")


# ---------------------------------------------------------------------------
# printing
# ---------------------------------------------------------------------------


def test_default_dialect_prints_client_spelling_and_round_trips():
    text = "SELECT a FROM t WHERE x < ?1 AND y = :name"
    statement = parse_statement(text)
    printed = to_sql(statement, DEFAULT_DIALECT)
    assert "?1" in printed and ":name" in printed
    assert statement_parameters(parse_statement(printed)) == statement_parameters(
        statement
    )


def test_sqlite_dialect_prints_numbered_placeholders_for_named():
    statement = parse_statement("SELECT a FROM t WHERE x = :x AND y BETWEEN :x AND :y")
    printed = to_sql(statement, SQLITE_DIALECT)
    assert ":x" not in printed
    assert "?1" in printed and "?2" in printed


# ---------------------------------------------------------------------------
# value resolution and literal substitution
# ---------------------------------------------------------------------------


def test_resolve_positional_values():
    slots = (ParameterSlot(1), ParameterSlot(2))
    assert resolve_parameters(slots, (10, 20)) == (10, 20)


def test_resolve_named_values_in_slot_order():
    slots = (ParameterSlot(1, "b"), ParameterSlot(2, "a"))
    assert resolve_parameters(slots, {"a": 1, "b": 2}) == (2, 1)


@pytest.mark.parametrize(
    "slots, values, message",
    [
        ((ParameterSlot(1),), None, "no values"),
        ((ParameterSlot(1),), (1, 2), "2 value"),
        ((), (1,), "takes no parameters"),
        ((ParameterSlot(1),), {"x": 1}, "positional slot"),
        ((ParameterSlot(1, "a"),), {"b": 1}, "missing value"),
        ((ParameterSlot(1, "a"),), {"a": 1, "b": 2}, "unknown parameter"),
    ],
)
def test_resolution_errors(slots, values, message):
    with pytest.raises(ParameterError, match=message):
        resolve_parameters(slots, values)


def test_bind_parameters_substitutes_literals_everywhere():
    statement = parse_statement(
        "SELECT a FROM t WHERE b IN (?, ?) AND c > (SELECT AVG(c) FROM t WHERE d = ?)"
    )
    bound = bind_parameters(statement, (1, 2, 3))
    assert statement_parameters(bound) == ()
    assert "IN (1, 2)" in to_sql(bound)
    assert "d = 3" in to_sql(bound)


def test_executing_unbound_parameters_fails_clearly():
    from repro.engine import Database
    from repro.errors import ExecutionError

    database = Database()
    database.execute("CREATE TABLE t (a INTEGER NOT NULL)")
    with pytest.raises(ExecutionError, match="unbound parameter"):
        database.execute("SELECT a FROM t WHERE a = ?")


# ---------------------------------------------------------------------------
# fingerprints: one digest per parameterized text, across bindings
# ---------------------------------------------------------------------------


def test_parameterized_text_fingerprint_is_binding_independent():
    from repro.gateway.fingerprint import fingerprint_statement

    parameterized = fingerprint_statement("SELECT a FROM t WHERE x < ?")
    assert parameterized.digest == fingerprint_statement(
        "SELECT  a  FROM t WHERE x < ?"
    ).digest
    # a literal spelling is a *different* statement (different digest)
    assert parameterized.digest != fingerprint_statement(
        "SELECT a FROM t WHERE x < 5"
    ).digest


# ---------------------------------------------------------------------------
# error normalization: GatewaySession.prepare == MTConnection.compile
# ---------------------------------------------------------------------------

BAD_STATEMENTS = (
    "SELEC E_name FROM Employees",  # parser: unsupported statement
    "SELECT E_name FROM",  # parser: missing table
    "SELECT E_name FROM Employees WHERE E_salary > 'unterminated",  # lexer
)


@pytest.mark.parametrize("sql", BAD_STATEMENTS)
def test_prepare_and_compile_raise_the_same_normalized_error(sql):
    mt = build_paper_example()
    gateway = mt.gateway()
    session = gateway.session(0, optimization="o4")
    connection = mt.connect(0, optimization="o4")

    with pytest.raises(InvalidStatementError) as from_prepare:
        session.prepare(sql)
    with pytest.raises(InvalidStatementError) as from_compile:
        connection.compile(sql)

    # both carry the offending fragment, and both stay catchable as ParseError
    for failure in (from_prepare, from_compile):
        assert "invalid statement near" in str(failure.value)
        assert isinstance(failure.value, ParseError)
    gateway.close()


def test_normalized_error_quotes_the_offending_fragment():
    with pytest.raises(InvalidStatementError, match="GRUOP"):
        parse_submitted_statement(
            "SELECT E_name FROM Employees GRUOP BY E_name"
        )


def test_parameter_nodes_survive_ast_transforms():
    from repro.sql.transform import clone_select, count_nodes

    statement = parse_statement("SELECT a FROM t WHERE x = :x")
    clone = clone_select(statement)
    assert to_sql(clone) == to_sql(statement)
    assert count_nodes(statement) == count_nodes(clone)
    parameter = statement.where.right
    assert isinstance(parameter, ast.Parameter)
    assert parameter.name == "x"
