"""Streaming acceptance: first rows without materializing the result set.

The proof strategy is a counting UDF in the SELECT list: the projection runs
once per *produced* row (row mode) or once per row of a *pulled batch*
(vectorized mode, ``REPRO_ENGINE_BATCH`` rows at a time), so if ``fetchmany``
returns the first rows while the counter is at most one batch — far below
the table's row count — the backend demonstrably did not materialize the
result.  Covered: the engine's lazy pipeline, SQLite's incremental cursor,
the cluster's single-shard fast path delegation, plus the
:class:`~repro.result.RowStream` container semantics and the lazy
``iter_dicts`` protocol.
"""

from __future__ import annotations

import pytest

import repro.api as api
from repro.backends import EngineBackend, SQLiteBackend
from repro.errors import ExecutionError
from repro.result import QueryResult, RowStream

ROWS = 600


class _Probe:
    """A pass-through UDF counting how many rows were actually evaluated."""

    def __init__(self) -> None:
        self.calls = 0

    def __call__(self, value):
        self.calls += 1
        return value


def _loaded(connection) -> None:
    cursor = connection.cursor()
    cursor.execute("CREATE TABLE t (a INTEGER NOT NULL)")
    cursor.executemany(
        "INSERT INTO t (a) VALUES (?)", [(index,) for index in range(ROWS)]
    )


BATCH = 64


def test_engine_fetchmany_is_batch_bounded(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE_BATCH", str(BATCH))
    backend = EngineBackend()
    probe = _Probe()
    backend.connect().register_python_function("probe", probe)
    with api.connect(backend) as connection:
        _loaded(connection)
        cursor = connection.cursor()
        cursor.execute("SELECT probe(a) FROM t")
        assert cursor.fetchmany(3) == [(0,), (1,), (2,)]
        # the engine's lazy pipeline evaluated at most one pulled batch
        # (exactly the fetched rows in row-at-a-time mode)
        assert probe.calls <= BATCH
        assert cursor.fetchall() == [(index,) for index in range(3, ROWS)]
        assert probe.calls == ROWS
        assert cursor.rowcount == ROWS


def test_engine_limit_stops_the_pull_early(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE_BATCH", str(BATCH))
    backend = EngineBackend()
    probe = _Probe()
    backend.connect().register_python_function("probe", probe)
    with api.connect(backend) as connection:
        _loaded(connection)
        cursor = connection.cursor()
        cursor.execute("SELECT probe(a) FROM t LIMIT 5")
        assert cursor.fetchall() == [(index,) for index in range(5)]
        # LIMIT 5 touched at most one batch, not the 600-row table
        assert probe.calls <= BATCH


def test_sqlite_fetchmany_pulls_incremental_batches():
    backend = SQLiteBackend()
    try:
        probe = _Probe()
        backend.connect().register_python_function("probe", probe)
        with api.connect(backend.connect()) as connection:
            _loaded(connection)
            cursor = connection.cursor()
            cursor.execute("SELECT probe(a) FROM t")
            assert cursor.fetchmany(5) == [(index,) for index in range(5)]
            # one stream batch at most — far below the full table
            assert probe.calls < ROWS
            assert len(cursor.fetchall()) == ROWS - 5
    finally:
        backend.close()


def test_engine_barrier_shapes_still_stream_correct_rows():
    """ORDER BY/GROUP BY/DISTINCT materialize internally but replay fine."""
    with api.connect("engine") as connection:
        _loaded(connection)
        cursor = connection.cursor()
        cursor.execute("SELECT a FROM t ORDER BY a DESC LIMIT 4")
        assert cursor.fetchmany(2) == [(599,), (598,)]
        assert cursor.fetchall() == [(597,), (596,)]
        cursor.execute("SELECT COUNT(*) FROM t")
        assert cursor.fetchone() == (ROWS,)


def test_cluster_single_shard_path_delegates_the_stream(tiny_mth_sharded):
    """On a cluster, D' on one shard streams through that shard's backend."""
    from repro.cluster.planner import SingleShardPlan

    mth = tiny_mth_sharded
    gateway = mth.middleware.gateway()
    try:
        session = gateway.session(1, optimization="o4", scope="IN (1)")
        stream = session.execute_stream(
            "SELECT o_orderkey FROM orders WHERE o_totalprice > ?",
            parameters=(0.0,),
        )
        assert isinstance(stream, RowStream)
        first = stream.fetch()
        assert first is not None
        assert isinstance(mth.backend.last_plan, SingleShardPlan)
        stream.close()
        # scatter-gather shapes materialize but stay row-identical
        merged = session.execute_stream(
            "SELECT l_returnflag, SUM(l_quantity) FROM lineitem "
            "WHERE l_quantity < ? GROUP BY l_returnflag",
            scope="IN ()",
            parameters=(30,),
        ).materialize()
        reference = session.query(
            "SELECT l_returnflag, SUM(l_quantity) FROM lineitem "
            "WHERE l_quantity < 30 GROUP BY l_returnflag"
        )
        assert sorted(merged.rows) == sorted(reference.rows)
    finally:
        gateway.close()


# ---------------------------------------------------------------------------
# RowStream container semantics
# ---------------------------------------------------------------------------


def test_row_stream_fetch_and_materialize():
    stream = RowStream(["a"], iter([(1,), (2,), (3,)]))
    assert stream.fetch() == (1,)
    assert stream.fetchmany(5) == [(2,), (3,)]
    assert stream.fetch() is None  # exhaustion is not an error
    assert stream.rows_produced == 3


def test_row_stream_materialize_drains_the_remainder():
    stream = RowStream(["a", "b"], iter([(1, "x"), (2, "y")]))
    assert stream.fetch() == (1, "x")
    result = stream.materialize()
    assert isinstance(result, QueryResult)
    assert result.rows == [(2, "y")]


def test_row_stream_close_releases_and_blocks_reads():
    released = []
    stream = RowStream(["a"], iter([(1,)]), on_close=lambda: released.append(True))
    stream.close()
    assert released == [True]
    with pytest.raises(ExecutionError, match="closed"):
        stream.fetch()
    stream.close()  # idempotent, on_close fires once
    assert released == [True]


def test_column_access_protocol_without_rows():
    stream = RowStream(["A", "b"], iter(()))
    assert stream.column_index("a") == 0
    with pytest.raises(ExecutionError, match="no column"):
        stream.column_index("missing")


def test_iter_dicts_is_lazy_on_streams():
    def explode():
        yield (1,)
        raise AssertionError("second row must not be produced")

    stream = RowStream(["a"], explode())
    dicts = stream.iter_dicts()
    assert next(dicts) == {"a": 1}


def test_query_result_as_dicts_uses_the_shared_protocol():
    result = QueryResult(columns=["a", "b"], rows=[(1, 2)])
    assert result.as_dicts() == [{"a": 1, "b": 2}]
    assert list(result.iter_dicts()) == [{"a": 1, "b": 2}]
    assert result.column_index("B") == 1
