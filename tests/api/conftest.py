"""Fixtures for the DB-API suite: shared MT-H instances per backend family."""

from __future__ import annotations

import pytest

from repro.backends import SQLiteBackend
from repro.mth.loader import load_mth

TENANTS = 4


@pytest.fixture(scope="package")
def tiny_mth_engine(tiny_tpch_data):
    """MT-H on the in-memory engine (package-shared, read-only)."""
    return load_mth(data=tiny_tpch_data, tenants=TENANTS, distribution="uniform")


@pytest.fixture(scope="package")
def tiny_mth_sqlite(tiny_tpch_data):
    """The same MT-H data on a real DBMS (SQLite)."""
    factory = SQLiteBackend()
    instance = load_mth(
        data=tiny_tpch_data, tenants=TENANTS, distribution="uniform", backend=factory
    )
    yield instance
    factory.close()


@pytest.fixture(scope="package")
def tiny_mth_sharded(tiny_tpch_data):
    """The same MT-H data on a 2-shard tenant-partitioned engine cluster."""
    return load_mth(
        data=tiny_tpch_data, tenants=TENANTS, distribution="uniform", shards=2
    )
