"""The 22 MT-H queries: parsing, rewriting and baseline execution."""

import pytest

from repro.mth import ALL_QUERY_IDS, CONVERSION_INTENSIVE, query_text
from repro.sql import ast
from repro.sql.parser import parse_query


class TestQueryDefinitions:
    def test_exactly_22_queries(self):
        assert ALL_QUERY_IDS == tuple(range(1, 23))

    def test_unknown_query_id_rejected(self):
        with pytest.raises(KeyError):
            query_text(23)

    def test_conversion_intensive_queries_match_the_figures(self):
        assert CONVERSION_INTENSIVE == (1, 6, 22)

    @pytest.mark.parametrize("query_id", ALL_QUERY_IDS)
    def test_every_query_parses(self, query_id):
        query = parse_query(query_text(query_id))
        assert isinstance(query, ast.Select)
        assert query.items

    def test_q1_touches_only_lineitem(self):
        query = parse_query(query_text(1))
        assert [item.name for item in query.from_items] == ["lineitem"]

    def test_q13_uses_a_left_join(self):
        text = query_text(13).upper()
        assert "LEFT JOIN" in text


class TestQueriesOnBaseline:
    """All 22 queries run on the single-tenant TPC-H baseline and return data."""

    @pytest.mark.parametrize("query_id", ALL_QUERY_IDS)
    def test_query_executes(self, tiny_baseline, query_id):
        result = tiny_baseline.query(query_text(query_id))
        assert result.columns

    @pytest.mark.parametrize("query_id", (1, 3, 6, 10, 12, 13, 14, 19, 22))
    def test_selective_queries_return_rows(self, tiny_baseline, query_id):
        result = tiny_baseline.query(query_text(query_id))
        assert len(result.rows) > 0

    def test_q1_aggregates_are_internally_consistent(self, tiny_baseline):
        result = tiny_baseline.query(query_text(1))
        for row in result.as_dicts():
            assert row["avg_qty"] == pytest.approx(row["sum_qty"] / row["count_order"], rel=1e-6)
            assert row["avg_price"] == pytest.approx(
                row["sum_base_price"] / row["count_order"], rel=1e-6
            )
            assert row["sum_disc_price"] <= row["sum_base_price"]
            assert row["sum_charge"] >= row["sum_disc_price"]

    def test_q1_covers_the_four_flag_status_groups(self, tiny_baseline):
        result = tiny_baseline.query(query_text(1))
        groups = {(row[0], row[1]) for row in result.rows}
        assert groups == {("A", "F"), ("N", "F"), ("N", "O"), ("R", "F")}

    def test_q6_revenue_matches_manual_computation(self, tiny_baseline, tiny_tpch_data):
        from repro.sql.types import Date

        low, high = Date.from_ymd(1994, 1, 1), Date.from_ymd(1995, 1, 1)
        expected = sum(
            item[5] * item[6]
            for item in tiny_tpch_data.lineitem
            if low <= item[10] < high and 0.05 <= item[6] <= 0.07 and item[4] < 24
        )
        result = tiny_baseline.query(query_text(6)).scalar()
        assert result == pytest.approx(expected, rel=1e-9)

    def test_q13_counts_all_customers(self, tiny_baseline, tiny_tpch_data):
        result = tiny_baseline.query(query_text(13))
        assert sum(row[1] for row in result.rows) == len(tiny_tpch_data.customer)

    def test_q22_customers_have_no_orders(self, tiny_baseline):
        # every counted customer must have no orders at all
        numcust = sum(row[1] for row in tiny_baseline.query(query_text(22)).rows)
        without_orders = tiny_baseline.query(
            "SELECT COUNT(*) AS c FROM customer WHERE c_custkey NOT IN (SELECT o_custkey FROM orders)"
        ).scalar()
        assert numcust <= without_orders


class TestQueriesThroughMiddleware:
    @pytest.mark.parametrize("query_id", (1, 6, 22))
    def test_conversion_intensive_queries_run_at_o4(self, tiny_mth, query_id):
        connection = tiny_mth.middleware.connect(1, optimization="o4")
        connection.set_scope("IN ()")
        result = connection.query(query_text(query_id))
        assert result.columns

    def test_rewritten_q1_contains_dataset_semantics(self, tiny_mth):
        connection = tiny_mth.middleware.connect(1, optimization="canonical")
        connection.set_scope("IN (1, 2)")
        rewritten = connection.rewrite_sql(query_text(1))
        assert "l_ttid IN (1, 2)" in rewritten
        assert "currencyFromUniversal" in rewritten

    def test_rewritten_q3_joins_on_ttid(self, tiny_mth):
        connection = tiny_mth.middleware.connect(1, optimization="canonical")
        connection.set_scope("IN ()")
        rewritten = connection.rewrite_sql(query_text(3))
        assert "customer.c_ttid = orders.o_ttid" in rewritten
        assert "lineitem.l_ttid = orders.o_ttid" in rewritten

    def test_o3_distributes_q1_aggregates(self, tiny_mth):
        connection = tiny_mth.middleware.connect(1, optimization="o3")
        connection.set_scope("IN ()")
        rewritten = connection.rewrite_sql(query_text(1))
        assert "mt_part" in rewritten
        assert "GROUP BY l_returnflag, l_linestatus, lineitem.l_ttid" in rewritten

    def test_d_filter_scales_with_dataset(self, tiny_mth):
        connection = tiny_mth.middleware.connect(1, optimization="o1")
        connection.set_scope("IN (2)")
        rewritten = connection.rewrite_sql(query_text(6))
        assert "l_ttid IN (2)" in rewritten
        connection.set_scope("IN ()")
        rewritten_all = connection.rewrite_sql(query_text(6))
        assert "l_ttid IN" not in rewritten_all  # trivial optimization: D = all tenants
