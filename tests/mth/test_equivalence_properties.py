"""Property-based equivalence: optimization never changes query results.

Random (but well-formed) MTSQL queries over the running example are executed
at every optimization level; all levels must agree with the canonical
rewrite.  This is the executable counterpart of the paper's §3.2 correctness
argument plus the claim that the §4 optimizations are semantics preserving.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from tests.conftest import build_paper_example

LEVELS = ("canonical", "o1", "o2", "o3", "o4", "inl-only")

_middleware = None


def middleware():
    global _middleware
    if _middleware is None:
        _middleware = build_paper_example()
    return _middleware


_numeric_columns = st.sampled_from(["E_salary", "E_age", "E_reg_id"])
_aggregates = st.sampled_from(["SUM", "AVG", "MIN", "MAX", "COUNT"])
_group_keys = st.sampled_from(["E_reg_id", "E_age", "E_name"])
_comparison_ops = st.sampled_from([">", ">=", "<", "<=", "=", "<>"])


# Thresholds compared against the *convertible* E_salary column must not hit
# a stored salary exactly (all salaries are multiples of 1000): the canonical
# rewrite round-trips the value through toUniversal/fromUniversal, perturbing
# it by a few ULPs, while the o2+ push-up compares the stored value directly —
# at the exact boundary the levels legitimately disagree by one row.
_salary_thresholds = st.integers(min_value=0, max_value=1_200_000).filter(
    lambda value: value % 1000 != 0
)


@st.composite
def aggregate_queries(draw):
    aggregate = draw(_aggregates)
    column = draw(_numeric_columns)
    group_key = draw(st.none() | _group_keys)
    threshold = draw(_salary_thresholds)
    operator = draw(_comparison_ops)
    where = f"WHERE E_salary {operator} {threshold}" if draw(st.booleans()) else ""
    if group_key is None:
        return f"SELECT {aggregate}({column}) AS agg FROM Employees {where}"
    return (
        f"SELECT {group_key}, {aggregate}({column}) AS agg FROM Employees {where} "
        f"GROUP BY {group_key} ORDER BY {group_key}"
    )


@st.composite
def filter_queries(draw):
    column = draw(_numeric_columns)
    operator = draw(_comparison_ops)
    # comparable columns (E_age, E_reg_id) are never converted, so any
    # threshold is safe for them; the convertible salary needs the boundary
    # guard above
    if column == "E_salary":
        threshold = draw(_salary_thresholds)
    else:
        threshold = draw(st.integers(min_value=0, max_value=1_200_000))
    return (
        f"SELECT E_name, {column} FROM Employees WHERE {column} {operator} {threshold} "
        "ORDER BY E_name"
    )


@st.composite
def join_queries(draw):
    aggregate = draw(_aggregates)
    threshold = draw(st.integers(min_value=0, max_value=80))
    return (
        f"SELECT R_name, {aggregate}(E_salary) AS agg FROM Employees, Roles "
        f"WHERE E_role_id = R_role_id AND E_age >= {threshold} "
        "GROUP BY R_name ORDER BY R_name"
    )


def run_at_all_levels(sql, client, dataset):
    rows_by_level = {}
    for level in LEVELS:
        connection = middleware().connect(client, optimization=level)
        connection.set_scope(dataset)
        rows_by_level[level] = connection.query(sql).rows
    return rows_by_level


def assert_all_levels_agree(rows_by_level):
    reference = rows_by_level["canonical"]
    for level, rows in rows_by_level.items():
        assert len(rows) == len(reference), f"{level}: row count mismatch"
        for expected_row, actual_row in zip(reference, rows):
            for expected, actual in zip(expected_row, actual_row):
                if isinstance(expected, float) or isinstance(actual, float):
                    assert float(actual) == pytest.approx(float(expected), rel=1e-6, abs=1e-6), level
                else:
                    assert actual == expected, level


common_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@common_settings
@given(sql=aggregate_queries(), client=st.sampled_from([0, 1]))
def test_aggregate_queries_agree_across_levels(sql, client):
    assert_all_levels_agree(run_at_all_levels(sql, client, "IN (0, 1)"))


@common_settings
@given(sql=filter_queries(), client=st.sampled_from([0, 1]))
def test_filter_queries_agree_across_levels(sql, client):
    assert_all_levels_agree(run_at_all_levels(sql, client, "IN (0, 1)"))


@common_settings
@given(sql=join_queries(), client=st.sampled_from([0, 1]))
def test_join_queries_agree_across_levels(sql, client):
    assert_all_levels_agree(run_at_all_levels(sql, client, "IN (0, 1)"))


@settings(max_examples=20, deadline=None)
@given(sql=aggregate_queries(), dataset=st.sampled_from(['IN (0)', 'IN (1)', 'IN (0, 1)']))
def test_dataset_choice_does_not_break_equivalence(sql, dataset):
    assert_all_levels_agree(run_at_all_levels(sql, 0, dataset))


@settings(max_examples=25, deadline=None)
@given(sql=aggregate_queries())
def test_client_format_conversion_is_consistent(sql):
    """Tenant 0 (USD) and tenant 1 (EUR) see the same data, scaled by the rate.

    Only checked for SUM/MIN/MAX/AVG over the convertible salary column where
    the relationship is exact; other queries are covered by the level tests.
    Queries with a WHERE clause are excluded: the generated predicates compare
    E_salary against a constant, and constants are interpreted in each
    client's *own* currency (§2.4), so the two clients legitimately select
    different rows.
    """
    if "E_salary" not in sql.split("FROM")[0] or "COUNT" in sql or "WHERE" in sql:
        return
    usd = middleware().connect(0, optimization="o4")
    usd.set_scope("IN (0, 1)")
    eur = middleware().connect(1, optimization="o4")
    eur.set_scope("IN (0, 1)")
    usd_rows = usd.query(sql).rows
    eur_rows = eur.query(sql).rows
    assert len(usd_rows) == len(eur_rows)
    for usd_row, eur_row in zip(usd_rows, eur_rows):
        usd_value, eur_value = usd_row[-1], eur_row[-1]
        if usd_value is None or eur_value is None:
            assert usd_value is None and eur_value is None
            continue
        assert float(usd_value) == pytest.approx(float(eur_value) * 1.1, rel=1e-6, abs=1e-3)
