"""The MT-H data generator and tenant-share assignment."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mth.conversions import (
    CURRENCIES,
    PHONE_FORMATS,
    currency_for_tenant,
    money_from_universal,
    money_to_universal,
    phone_format_for_tenant,
    phone_from_universal,
    phone_to_universal,
)
from repro.mth.dbgen import GeneratorSizes, generate
from repro.mth.tenancy import assign_tenants, share_summary, tenant_shares


class TestGenerator:
    @pytest.fixture(scope="class")
    def data(self):
        return generate(scale_factor=0.001, seed=42)

    def test_row_counts_follow_tpch_proportions(self, data):
        counts = data.row_counts()
        assert counts["region"] == 5
        assert counts["nation"] == 25
        assert counts["customer"] == 150
        assert counts["orders"] > counts["customer"]
        assert counts["lineitem"] > counts["orders"]
        assert counts["partsupp"] <= 4 * counts["part"]

    def test_generation_is_deterministic(self, data):
        again = generate(scale_factor=0.001, seed=42)
        assert again.lineitem == data.lineitem
        assert again.customer == data.customer

    def test_different_seeds_differ(self, data):
        other = generate(scale_factor=0.001, seed=43)
        assert other.lineitem != data.lineitem

    def test_orders_reference_existing_customers(self, data):
        custkeys = {row[0] for row in data.customer}
        assert all(order[1] in custkeys for order in data.orders)

    def test_lineitems_reference_existing_orders_parts_suppliers(self, data):
        orderkeys = {row[0] for row in data.orders}
        partkeys = {row[0] for row in data.part}
        suppkeys = {row[0] for row in data.supplier}
        for item in data.lineitem:
            assert item[0] in orderkeys
            assert item[1] in partkeys
            assert item[2] in suppkeys

    def test_order_total_price_consistent_with_lineitems(self, data):
        order = data.orders[0]
        items = [item for item in data.lineitem if item[0] == order[0]]
        total = sum(item[5] * (1 + item[7]) * (1 - item[6]) for item in items)
        assert order[3] == pytest.approx(total, rel=1e-6)

    def test_dates_within_tpch_range(self, data):
        from repro.sql.types import Date

        low, high = Date.from_ymd(1992, 1, 1), Date.from_ymd(1998, 12, 31)
        assert all(low <= order[4] <= high for order in data.orders)
        assert all(low <= item[10] <= high for item in data.lineitem[:200])

    def test_returnflag_consistent_with_receiptdate(self, data):
        from repro.sql.types import Date

        cutoff = Date.from_ymd(1995, 6, 17)
        for item in data.lineitem[:500]:
            if item[8] == "N":
                assert item[12] > cutoff
            else:
                assert item[12] <= cutoff

    def test_sizes_have_lower_bounds(self):
        sizes = GeneratorSizes.for_scale(0.000001)
        assert sizes.suppliers >= 20 and sizes.parts >= 50 and sizes.customers >= 30


class TestTenantShares:
    def test_uniform_shares_are_even(self):
        shares = tenant_shares(100, 10, "uniform")
        assert sum(shares) == 100
        assert max(shares) - min(shares) <= 1

    def test_zipf_shares_are_skewed_and_monotone(self):
        shares = tenant_shares(1000, 10, "zipf")
        assert sum(shares) == 1000
        assert shares[0] == max(shares)
        assert all(shares[i] >= shares[i + 1] for i in range(len(shares) - 1))

    def test_every_tenant_gets_at_least_one_record(self):
        shares = tenant_shares(50, 10, "zipf", s=2.0)
        assert min(shares) >= 1

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            tenant_shares(10, 2, "normal")
        with pytest.raises(ValueError):
            tenant_shares(10, 0)

    def test_assignment_length_and_range(self):
        assignment = assign_tenants(200, 7, "zipf")
        assert len(assignment) == 200
        assert set(assignment) <= set(range(1, 8))

    def test_share_summary(self):
        summary = share_summary(tenant_shares(100, 4))
        assert summary["tenants"] == 4 and summary["total"] == 100

    @settings(max_examples=60, deadline=None)
    @given(
        total=st.integers(min_value=0, max_value=5000),
        tenants=st.integers(min_value=1, max_value=64),
        distribution=st.sampled_from(["uniform", "zipf"]),
    )
    def test_shares_always_sum_to_total(self, total, tenants, distribution):
        shares = tenant_shares(total, tenants, distribution)
        assert sum(shares) == total
        assert len(shares) == tenants
        assert all(share >= 0 for share in shares)

    @settings(max_examples=40, deadline=None)
    @given(
        total=st.integers(min_value=1, max_value=2000),
        tenants=st.integers(min_value=1, max_value=50),
    )
    def test_assignment_matches_shares(self, total, tenants):
        shares = tenant_shares(total, tenants, "zipf")
        assignment = assign_tenants(total, tenants, "zipf")
        counted = [assignment.count(ttid) for ttid in range(1, tenants + 1)]
        assert counted == shares


class TestConversionHelpers:
    def test_tenant_1_gets_universal_formats(self):
        assert currency_for_tenant(1).code == "USD"
        assert phone_format_for_tenant(1).prefix == ""

    def test_assignment_is_deterministic(self):
        assert currency_for_tenant(17) is currency_for_tenant(17)
        assert phone_format_for_tenant(23) is phone_format_for_tenant(23)

    def test_money_round_trip(self):
        for ttid in (1, 2, 5, 42):
            assert money_to_universal(money_from_universal(123.45, ttid), ttid) == pytest.approx(
                123.45, rel=1e-3
            )

    def test_phone_round_trip(self):
        for ttid in (1, 2, 3, 9):
            universal = "13-555-111-2222"
            local = phone_from_universal(universal, ttid)
            assert phone_to_universal(local, ttid) == universal

    def test_currency_and_phone_tables_have_universal_entries(self):
        assert CURRENCIES[0].to_universal == 1.0
        assert PHONE_FORMATS[0].prefix == ""
