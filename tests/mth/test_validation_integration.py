"""§5 query validation: MT-H (C=1, D=all) must equal plain TPC-H, per level.

This is the repository's main integration test: every MT-H query is executed
through the full middleware pipeline (scope resolution, privilege pruning,
canonical rewrite, optimization passes, engine execution) at every
optimization level and compared against the single-tenant baseline running
the identical SQL text on the identical generated data.
"""

import pytest

from repro.mth import ALL_QUERY_IDS, query_text, validate_queries
from repro.mth.validation import ValidationReport, normalize_value, results_match

LEVELS = ("canonical", "o1", "o2", "o3", "o4", "inl-only")


@pytest.fixture(scope="module", params=LEVELS)
def validated_connection(request, tiny_mth):
    connection = tiny_mth.middleware.connect(1, optimization=request.param)
    connection.set_scope("IN ()")
    return request.param, connection


@pytest.mark.parametrize("query_id", ALL_QUERY_IDS)
def test_query_matches_baseline(validated_connection, tiny_baseline, query_id):
    level, connection = validated_connection
    text = query_text(query_id)
    mismatch = results_match(connection.query(text), tiny_baseline.query(text))
    assert mismatch is None, f"Q{query_id} at {level}: {mismatch}"


class TestValidationHarness:
    def test_validate_queries_reports_success(self, tiny_mth, tiny_baseline):
        connection = tiny_mth.middleware.connect(1, optimization="o4")
        connection.set_scope("IN ()")
        report = validate_queries(connection, tiny_baseline, query_ids=(1, 6, 22))
        assert report.ok
        assert report.passed == [1, 6, 22]
        assert "3 queries validated" in report.summary()

    def test_validation_detects_mismatches(self, tiny_mth, tiny_baseline):
        connection = tiny_mth.middleware.connect(2, optimization="o4")  # EUR-like client
        connection.set_scope("IN ()")
        report = validate_queries(connection, tiny_baseline, query_ids=(1,))
        # a non-universal client sees converted values: results must differ
        assert not report.ok
        assert 1 in report.failed
        assert "failures" in report.summary()

    def test_results_match_detects_row_count_difference(self, tiny_baseline):
        small = tiny_baseline.query("SELECT n_name FROM nation LIMIT 3")
        large = tiny_baseline.query("SELECT n_name FROM nation LIMIT 5")
        assert "row count differs" in results_match(small, large)

    def test_results_match_detects_value_difference(self, tiny_baseline):
        first = tiny_baseline.query("SELECT 1 AS x")
        second = tiny_baseline.query("SELECT 2 AS x")
        assert "column 0" in results_match(first, second)

    def test_results_match_tolerates_rounding(self, tiny_baseline):
        first = tiny_baseline.query("SELECT 100.000001 AS x")
        second = tiny_baseline.query("SELECT 100.0 AS x")
        assert results_match(first, second) is None

    def test_normalize_value(self):
        from repro.sql.types import Date

        assert normalize_value(1.23456) == 1.23
        assert normalize_value(Date.from_string("1994-01-01")) == "1994-01-01"
        assert normalize_value("text") == "text"

    def test_report_dataclass(self):
        report = ValidationReport(passed=[1, 2], failed={})
        assert report.ok


class TestDifferentWorkloadShapes:
    """Validation holds for a zipfian share distribution and more tenants too."""

    def test_zipf_distribution_still_validates(self, tiny_tpch_data):
        from repro.mth import load_mth, load_tpch_baseline

        mth = load_mth(data=tiny_tpch_data, tenants=7, distribution="zipf")
        baseline = load_tpch_baseline(data=tiny_tpch_data)
        connection = mth.middleware.connect(1, optimization="o4")
        connection.set_scope("IN ()")
        report = validate_queries(connection, baseline, query_ids=(1, 3, 6, 13, 18, 22))
        assert report.ok, report.summary()

    def test_single_tenant_instance_validates(self, tiny_tpch_data):
        from repro.mth import load_mth, load_tpch_baseline

        mth = load_mth(data=tiny_tpch_data, tenants=1)
        baseline = load_tpch_baseline(data=tiny_tpch_data)
        connection = mth.middleware.connect(1, optimization="o4")
        connection.set_scope("IN ()")
        report = validate_queries(connection, baseline, query_ids=(1, 6, 22))
        assert report.ok, report.summary()

    def test_system_c_profile_validates(self, tiny_tpch_data):
        from repro.mth import load_mth, load_tpch_baseline

        mth = load_mth(data=tiny_tpch_data, tenants=4, profile="system_c")
        baseline = load_tpch_baseline(data=tiny_tpch_data, profile="system_c")
        connection = mth.middleware.connect(1, optimization="canonical")
        connection.set_scope("IN ()")
        report = validate_queries(connection, baseline, query_ids=(1, 6, 22))
        assert report.ok, report.summary()

    def test_subset_dataset_returns_subset_of_rows(self, tiny_mth):
        all_connection = tiny_mth.middleware.connect(1, optimization="o4")
        all_connection.set_scope("IN ()")
        one_connection = tiny_mth.middleware.connect(1, optimization="o4")
        one_connection.set_scope("IN (1)")
        total = all_connection.query(
            "SELECT COUNT(*) AS c FROM lineitem"
        ).scalar()
        own = one_connection.query("SELECT COUNT(*) AS c FROM lineitem").scalar()
        assert 0 < own < total
