"""Deployment of the MT-H conversion infrastructure (meta tables, UDFs, pairs)."""

import pytest

from repro.core import MTBase, distributes_over, verify_conversion_pair
from repro.mth.conversions import (
    currency_for_tenant,
    deploy_conversions,
    phone_format_for_tenant,
)


@pytest.fixture(scope="module")
def deployed():
    middleware = MTBase()
    tenants = list(range(1, 9))
    pairs = deploy_conversions(middleware, tenants)
    return middleware, tenants, pairs


class TestDeployment:
    def test_meta_tables_created_and_populated(self, deployed):
        middleware, tenants, _ = deployed
        database = middleware.database
        assert database.table_rowcount("Tenant") == len(tenants)
        assert database.table_rowcount("CurrencyTransform") > 0
        assert database.table_rowcount("PhoneTransform") > 0

    def test_tenant_rows_match_assignment(self, deployed):
        middleware, tenants, _ = deployed
        rows = middleware.database.query(
            "SELECT T_tenant_key, T_currency_key, T_phone_prefix_key FROM Tenant ORDER BY T_tenant_key"
        ).rows
        for ttid, currency_key, phone_key in rows:
            assert currency_key == currency_for_tenant(ttid).key
            assert phone_key == phone_format_for_tenant(ttid).key

    def test_conversion_pairs_registered(self, deployed):
        middleware, _, pairs = deployed
        assert middleware.conversions.has("currency")
        assert middleware.conversions.has("phone")
        assert pairs["currency"].constant_factor
        assert not pairs["phone"].order_preserving

    def test_table_2_distributability_of_the_mth_pairs(self, deployed):
        _, _, pairs = deployed
        currency, phone = pairs["currency"], pairs["phone"]
        # "the pair for currency format distributes over all standard SQL
        #  aggregation functions ... the pair for phone format does not"
        for aggregate in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
            assert distributes_over(aggregate, currency)
        assert distributes_over("COUNT", phone)
        for aggregate in ("SUM", "AVG", "MIN", "MAX"):
            assert not distributes_over(aggregate, phone)


class TestSqlUdfSemantics:
    """Definition 1 checked on the deployed SQL-bodied UDFs themselves."""

    def call(self, middleware):
        context = middleware.database.executor.context
        return lambda name, args: context.call_function(name, list(args))

    def test_currency_pair_satisfies_definition_1(self, deployed):
        middleware, tenants, pairs = deployed
        violations = verify_conversion_pair(
            self.call(middleware), pairs["currency"], tenants=tenants[:5],
            samples=[0.0, 1.0, 1234.56, -99.5],
        )
        assert violations == []

    def test_currency_udf_matches_python_rates(self, deployed):
        middleware, tenants, _ = deployed
        call = self.call(middleware)
        for ttid in tenants:
            rate = currency_for_tenant(ttid).to_universal
            assert call("currencyToUniversal", [100.0, ttid]) == pytest.approx(100.0 * rate)
            round_trip = call(
                "currencyFromUniversal", [call("currencyToUniversal", [250.0, ttid]), ttid]
            )
            assert round_trip == pytest.approx(250.0, rel=1e-9)

    def test_phone_udf_strips_and_prepends_prefix(self, deployed):
        middleware, tenants, _ = deployed
        call = self.call(middleware)
        for ttid in tenants:
            prefix = phone_format_for_tenant(ttid).prefix
            local = prefix + "13-555-111-2222"
            assert call("phoneToUniversal", [local, ttid]) == "13-555-111-2222"
            assert call("phoneFromUniversal", ["13-555-111-2222", ttid]) == local

    def test_rate_lookup_helpers_agree_with_udfs(self, deployed):
        middleware, tenants, _ = deployed
        call = self.call(middleware)
        for ttid in tenants[:4]:
            assert call("mt_currency_rate_to_universal", [ttid]) == pytest.approx(
                currency_for_tenant(ttid).to_universal
            )
            assert call("mt_phone_prefix", [ttid]) == phone_format_for_tenant(ttid).prefix

    def test_inline_expressions_evaluate_like_the_udfs(self, deployed):
        """The o4 inline form and the SQL UDF form must agree value by value."""
        middleware, tenants, pairs = deployed
        database = middleware.database
        for ttid in tenants[:4]:
            udf = database.query(
                f"SELECT currencyToUniversal(123.45, {ttid}) AS v"
            ).scalar()
            inline = database.query(
                f"SELECT 123.45 * mt_currency_rate_to_universal({ttid}) AS v"
            ).scalar()
            assert udf == pytest.approx(inline, rel=1e-9)
