"""MT-H schema annotations and the loader (multi-tenant + baseline databases)."""

import pytest

from repro.mth import (
    GLOBAL_TABLES,
    MT_DDL,
    TENANT_SPECIFIC_TABLES,
    TTID_COLUMNS,
    currency_for_tenant,
)
from repro.mth.loader import CONVERTIBLE_COLUMNS
from repro.mth.schema import CREATION_ORDER, plain_ddl
from repro.sql import ast
from repro.sql.parser import parse_statement


class TestSchemaDefinitions:
    def test_table_partitioning_matches_the_paper(self):
        assert set(GLOBAL_TABLES) == {"region", "nation", "supplier", "part", "partsupp"}
        assert set(TENANT_SPECIFIC_TABLES) == {"customer", "orders", "lineitem"}

    @pytest.mark.parametrize("table", CREATION_ORDER)
    def test_mt_ddl_parses(self, table):
        statement = parse_statement(MT_DDL[table])
        assert isinstance(statement, ast.CreateTable)
        expected = (
            ast.TableGenerality.SPECIFIC
            if table in TENANT_SPECIFIC_TABLES
            else ast.TableGenerality.GLOBAL
        )
        assert statement.generality is expected

    @pytest.mark.parametrize("table", CREATION_ORDER)
    def test_plain_ddl_parses_without_mt_keywords(self, table):
        statement = parse_statement(plain_ddl(table))
        assert isinstance(statement, ast.CreateTable)
        assert statement.generality is None
        for column in statement.columns:
            assert column.comparability is None

    def test_convertible_attributes_match_section_5(self):
        customer = parse_statement(MT_DDL["customer"])
        convertible = {
            column.name.lower(): column.to_universal
            for column in customer.columns
            if column.comparability is ast.Comparability.CONVERTIBLE
        }
        assert convertible == {
            "c_phone": "phoneToUniversal",
            "c_acctbal": "currencyToUniversal",
        }
        lineitem = parse_statement(MT_DDL["lineitem"])
        convertible_lineitem = [
            column.name.lower()
            for column in lineitem.columns
            if column.comparability is ast.Comparability.CONVERTIBLE
        ]
        assert convertible_lineitem == ["l_extendedprice"]

    def test_tenant_specific_keys(self):
        orders = parse_statement(MT_DDL["orders"])
        specific = [
            column.name.lower()
            for column in orders.columns
            if column.comparability is ast.Comparability.SPECIFIC
        ]
        assert specific == ["o_orderkey", "o_custkey"]

    def test_convertible_column_positions_match_generated_layout(self):
        # the loader converts by position; make sure positions match the DDL
        customer = parse_statement(MT_DDL["customer"])
        names = [column.name.lower() for column in customer.columns]
        assert names[CONVERTIBLE_COLUMNS["customer"]["currency"][0]] == "c_acctbal"
        assert names[CONVERTIBLE_COLUMNS["customer"]["phone"][0]] == "c_phone"
        orders = parse_statement(MT_DDL["orders"])
        assert [c.name.lower() for c in orders.columns][
            CONVERTIBLE_COLUMNS["orders"]["currency"][0]
        ] == "o_totalprice"
        lineitem = parse_statement(MT_DDL["lineitem"])
        assert [c.name.lower() for c in lineitem.columns][
            CONVERTIBLE_COLUMNS["lineitem"]["currency"][0]
        ] == "l_extendedprice"


class TestLoadedInstance:
    def test_tenant_specific_tables_have_ttid_columns(self, tiny_mth):
        catalog = tiny_mth.database.catalog
        for table in TENANT_SPECIFIC_TABLES:
            assert catalog.table(table).schema.column_names[0] == TTID_COLUMNS[table]
        for table in GLOBAL_TABLES:
            assert "ttid" not in [c.lower() for c in catalog.table(table).schema.column_names]

    def test_all_rows_loaded(self, tiny_mth, tiny_tpch_data):
        for table in CREATION_ORDER:
            assert tiny_mth.database.table_rowcount(table) == len(tiny_tpch_data.table(table))

    def test_orders_follow_their_customer_tenant(self, tiny_mth):
        mismatches = tiny_mth.database.query(
            "SELECT COUNT(*) AS c FROM customer, orders "
            "WHERE c_custkey = o_custkey AND c_ttid <> o_ttid"
        ).scalar()
        assert mismatches == 0

    def test_lineitems_follow_their_order_tenant(self, tiny_mth):
        mismatches = tiny_mth.database.query(
            "SELECT COUNT(*) AS c FROM orders, lineitem "
            "WHERE o_orderkey = l_orderkey AND o_ttid <> l_ttid"
        ).scalar()
        assert mismatches == 0

    def test_every_tenant_owns_customers(self, tiny_mth):
        counts = tiny_mth.database.query(
            "SELECT c_ttid, COUNT(*) AS c FROM customer GROUP BY c_ttid"
        ).rows
        assert len(counts) == tiny_mth.tenants
        assert all(count > 0 for _, count in counts)

    def test_monetary_values_stored_in_owner_currency(self, tiny_mth, tiny_tpch_data):
        # tenant 1 keeps universal values; other tenants store converted values
        stored = {
            row[0]: row[1]
            for row in tiny_mth.database.query(
                "SELECT o_orderkey, o_totalprice FROM orders"
            ).rows
        }
        owners = {
            row[0]: row[1]
            for row in tiny_mth.database.query("SELECT o_orderkey, o_ttid FROM orders").rows
        }
        for orderkey, custkey, _, totalprice, *_ in tiny_tpch_data.orders[:50]:
            ttid = owners[orderkey]
            expected = totalprice * currency_for_tenant(ttid).from_universal
            assert stored[orderkey] == pytest.approx(expected, rel=1e-3)

    def test_referential_integrity_of_loaded_database(self, tiny_mth):
        assert tiny_mth.database.check_integrity() == []

    def test_baseline_holds_same_data_in_universal_format(self, tiny_baseline, tiny_tpch_data):
        assert tiny_baseline.table_rowcount("lineitem") == len(tiny_tpch_data.lineitem)
        total = tiny_baseline.query("SELECT SUM(o_totalprice) AS s FROM orders").scalar()
        expected = sum(order[3] for order in tiny_tpch_data.orders)
        assert total == pytest.approx(expected, rel=1e-6)

    def test_meta_tables_deployed(self, tiny_mth):
        catalog = tiny_mth.database.catalog
        for table in ("Tenant", "CurrencyTransform", "PhoneTransform"):
            assert catalog.has_table(table)
        for function in (
            "currencyToUniversal",
            "currencyFromUniversal",
            "phoneToUniversal",
            "phoneFromUniversal",
            "mt_currency_rate_to_universal",
            "mt_phone_prefix",
        ):
            assert catalog.has_function(function)

    def test_cross_tenant_read_granted(self, tiny_mth):
        connection = tiny_mth.middleware.connect(1)
        connection.set_scope("IN ()")
        assert connection.dataset() == tuple(range(1, tiny_mth.tenants + 1))
        count = connection.query("SELECT COUNT(*) AS c FROM customer").scalar()
        assert count == tiny_mth.database.table_rowcount("customer")
