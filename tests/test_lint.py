"""The repo lint suite: green on the repo, and each rule catches a seed.

Gates ``tools/lint/`` into tier-1 twice over: the three checkers must find
nothing in the repository as committed (the same result the CI ``lint``
job enforces), and each rule must still *detect* a seeded violation — a
checker that silently stopped matching would otherwise stay green
forever.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from lint import Violation, envknobs, execguard, lockcheck  # noqa: E402


def _write(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


@pytest.fixture
def local_paths(monkeypatch, tmp_path):
    """Point every checker's path rendering at the tmp dir.

    The checkers render repo-relative paths; seeded files live outside the
    repo, so the test swaps ``relative`` for the bare file name.
    """
    for module in (envknobs, execguard, lockcheck):
        monkeypatch.setattr(module, "relative", lambda path: path.name)
    return tmp_path


# ---------------------------------------------------------------------------
# the repository itself is clean (what the CI lint job enforces)
# ---------------------------------------------------------------------------


def test_envknobs_clean_on_repo():
    assert envknobs.check() == []


def test_execguard_clean_on_repo():
    assert execguard.check() == []


def test_lockcheck_clean_on_repo():
    assert lockcheck.check() == []


def test_lint_runner_exits_zero():
    completed = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "lint" / "run.py")],
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    for name in ("envknobs", "execguard", "lockcheck"):
        assert f"{name}: OK" in completed.stdout


def test_violation_renders_compiler_style():
    assert Violation("a/b.py", 7, "boom").render() == "a/b.py:7: boom"


# ---------------------------------------------------------------------------
# envknobs: lenient or undocumented REPRO_* reads are caught
# ---------------------------------------------------------------------------


def test_envknobs_flags_module_level_read(local_paths):
    _write(
        local_paths,
        "bad_module_level.py",
        """
        import os

        FLAG = os.environ.get("REPRO_ENGINE_TYPED", "1")
        """,
    )
    findings = envknobs.check(roots=(local_paths,))
    assert any("module level" in v.message for v in findings)


def test_envknobs_flags_lenient_parser(local_paths):
    _write(
        local_paths,
        "bad_lenient.py",
        """
        import os

        def enabled():
            return os.getenv("REPRO_ENGINE_TYPED") == "1"
        """,
    )
    findings = envknobs.check(roots=(local_paths,))
    assert any(
        "never raises ConfigurationError" in v.message for v in findings
    )


def test_envknobs_flags_undocumented_name(local_paths):
    _write(
        local_paths,
        "bad_undocumented.py",
        """
        import os

        def parse():
            value = os.environ.get("REPRO_NO_SUCH_KNOB_XYZ", "")
            if value not in ("", "0", "1"):
                raise ConfigurationError(value)
            return value == "1"
        """,
    )
    findings = envknobs.check(roots=(local_paths,))
    assert any(
        "REPRO_NO_SUCH_KNOB_XYZ" in v.message and "documented" in v.message
        for v in findings
    )


def test_envknobs_accepts_strict_documented_parser(local_paths):
    _write(
        local_paths,
        "good_strict.py",
        """
        import os

        def enabled():
            if "REPRO_ENGINE_TYPED" in os.environ:  # membership probe: exempt
                pass
            value = os.environ.get("REPRO_ENGINE_TYPED", "").strip()
            if value not in ("", "0", "1"):
                raise ConfigurationError(value)
            return value != "0"
        """,
    )
    assert envknobs.check(roots=(local_paths,)) == []


# ---------------------------------------------------------------------------
# execguard: unvetted exec/eval is caught
# ---------------------------------------------------------------------------


def test_execguard_bans_eval_everywhere(local_paths):
    _write(local_paths, "bad_eval.py", "x = eval('1 + 1')\n")
    findings = execguard.check(roots=(local_paths,))
    assert any("eval() is banned" in v.message for v in findings)


def test_execguard_flags_exec_outside_allowlist(local_paths):
    _write(
        local_paths,
        "bad_exec.py",
        """
        source = "x = 1"
        exec(compile(source, "<kernel>", "exec"), {"__builtins__": {}})
        """,
    )
    findings = execguard.check(roots=(local_paths,))
    assert any("outside the vetted kernel modules" in v.message for v in findings)


def test_execguard_enforces_sandbox_inside_allowlist(local_paths, monkeypatch):
    path = _write(
        local_paths,
        "vector.py",
        """
        source = "x = 1"
        exec(compile(source, "<kernel>", "exec"), {"no": "builtins"})
        exec(compile("x = " + str(1), "<kernel>", "exec"), {"__builtins__": {}})
        exec(compile(source, "<kernel>", "exec"))
        """,
    )
    # make the seeded file count as the vetted module
    monkeypatch.setattr(execguard, "relative", lambda p: "src/repro/engine/vector.py")
    messages = [v.message for v in execguard.check(roots=(local_paths,))]
    assert any("'__builtins__': {}" in m for m in messages)  # wrong globals
    assert any("pre-assembled source" in m for m in messages)  # inline literal
    assert any("without an explicit globals" in m for m in messages)
    assert path.exists()


def test_execguard_accepts_the_vetted_shape(local_paths, monkeypatch):
    _write(
        local_paths,
        "vector.py",
        """
        source = "x = 1"
        namespace = {"__builtins__": {}, "helper": len}
        exec(compile(source, "<repro-kernel>", "exec"), namespace)
        exec(compile(header + source, "<repro-kernel>", "exec"), {"__builtins__": {}})
        """,
    )
    monkeypatch.setattr(execguard, "relative", lambda p: "src/repro/engine/vector.py")
    findings = execguard.check(roots=(local_paths,))
    # the first call's namespace is a name, not a dict literal — still flagged;
    # the second (literal sandbox, assembled source) is the accepted shape
    assert len(findings) == 1


# ---------------------------------------------------------------------------
# lockcheck: unlocked mutations of registered classes are caught
# ---------------------------------------------------------------------------

SEEDED_CLASS = """
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0          # construction: no lock needed
        self.index = {}

    def record(self, key):
        self.hits += 1         # BAD: unlocked mutation
        with self._lock:
            self.index[key] = self.hits   # guarded: fine

    def reset(self):
        with self._lock:
            self.hits = 0      # guarded: fine
        self.index = {}        # BAD: after the with-block ends
"""


def test_lockcheck_flags_unlocked_mutations(local_paths, monkeypatch):
    _write(local_paths, "seeded.py", SEEDED_CLASS)
    monkeypatch.setattr(lockcheck, "SRC", local_paths)
    findings = lockcheck.check(registry=(("seeded.py", "Counter"),))
    assert len(findings) == 2
    assert all("outside 'with self._lock'" in v.message for v in findings)
    assert {v.line for v in findings} == {11, 18}


def test_lockcheck_flags_missing_registered_class(local_paths, monkeypatch):
    _write(local_paths, "seeded.py", "class Other:\n    pass\n")
    monkeypatch.setattr(lockcheck, "SRC", local_paths)
    findings = lockcheck.check(registry=(("seeded.py", "Counter"),))
    assert any("registered class missing" in v.message for v in findings)
    findings = lockcheck.check(registry=(("gone.py", "Counter"),))
    assert any("registered module missing" in v.message for v in findings)
