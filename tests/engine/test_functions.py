"""Tests for built-in functions, aggregates, UDFs and UDF result caching."""

import pytest

from repro.engine import Database
from repro.engine.functions import (
    AvgAggregate,
    CountAggregate,
    DistinctAggregate,
    MaxAggregate,
    MinAggregate,
    SumAggregate,
    make_aggregate,
)
from repro.errors import FunctionError
from repro.sql import ast


class TestAggregateAccumulators:
    def test_count_star_counts_everything(self):
        aggregate = CountAggregate(count_star=True)
        for value in (1, None, "x"):
            aggregate.add(value)
        assert aggregate.result() == 3

    def test_count_column_skips_nulls(self):
        aggregate = CountAggregate()
        for value in (1, None, 2):
            aggregate.add(value)
        assert aggregate.result() == 2

    def test_sum_ignores_nulls_and_empty_is_null(self):
        aggregate = SumAggregate()
        assert aggregate.result() is None
        for value in (1, None, 2.5):
            aggregate.add(value)
        assert aggregate.result() == 3.5

    def test_avg(self):
        aggregate = AvgAggregate()
        assert aggregate.result() is None
        for value in (2, 4, None):
            aggregate.add(value)
        assert aggregate.result() == 3

    def test_min_max(self):
        low, high = MinAggregate(), MaxAggregate()
        for value in (5, None, 2, 9):
            low.add(value)
            high.add(value)
        assert (low.result(), high.result()) == (2, 9)

    def test_distinct_wrapper(self):
        aggregate = DistinctAggregate(SumAggregate())
        for value in (3, 3, 4, None):
            aggregate.add(value)
        assert aggregate.result() == 7

    def test_make_aggregate_dispatch(self):
        call = ast.FunctionCall(name="AVG", args=(ast.Column("x"),))
        assert isinstance(make_aggregate(call), AvgAggregate)
        distinct = ast.FunctionCall(name="SUM", args=(ast.Column("x"),), distinct=True)
        assert isinstance(make_aggregate(distinct), DistinctAggregate)
        with pytest.raises(FunctionError):
            make_aggregate(ast.FunctionCall(name="MEDIAN", args=(ast.Column("x"),)))


class TestBuiltinScalars:
    @pytest.fixture
    def db(self):
        database = Database()
        database.execute("CREATE TABLE t (s VARCHAR(20), n DECIMAL(10,2))")
        database.execute("INSERT INTO t VALUES ('hello', 3.7), (NULL, -2.0)")
        return database

    def test_string_builtins(self, db):
        row = db.query(
            "SELECT CONCAT(s, '!') AS c, CHAR_LENGTH(s) AS l, UPPER(s) AS u, LOWER('ABC') AS lo "
            "FROM t WHERE s IS NOT NULL"
        ).rows[0]
        assert row == ("hello!", 5, "HELLO", "abc")

    def test_numeric_builtins(self, db):
        row = db.query(
            "SELECT ABS(n) AS a, ROUND(n) AS r, FLOOR(n) AS f, CEIL(n) AS c, MOD(7, 3) AS m "
            "FROM t WHERE n < 0"
        ).rows[0]
        assert row == (2.0, -2.0, -2, -2, 1)

    def test_coalesce(self, db):
        assert db.query("SELECT COALESCE(s, 'fallback') AS v FROM t WHERE s IS NULL").rows == [
            ("fallback",)
        ]

    def test_null_propagation_through_builtins(self, db):
        assert db.query("SELECT CHAR_LENGTH(s) AS l FROM t WHERE s IS NULL").rows == [(None,)]

    def test_unknown_function_raises(self, db):
        with pytest.raises(FunctionError):
            db.query("SELECT NO_SUCH_FUNCTION(1) AS x FROM t")


class TestUserDefinedFunctions:
    def test_python_function(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (2), (5)")
        db.register_python_function("triple", lambda x: x * 3)
        assert db.query("SELECT triple(x) AS t FROM t ORDER BY t").rows == [(6,), (15,)]

    def test_sql_function_with_parameters(self):
        db = Database()
        db.execute("CREATE TABLE rates (k INTEGER NOT NULL, factor DECIMAL(10,4) NOT NULL,"
                   " CONSTRAINT pk PRIMARY KEY (k))")
        db.execute("INSERT INTO rates VALUES (1, 2.0), (2, 10.0)")
        db.execute(
            "CREATE FUNCTION scale (DECIMAL(10,2), INTEGER) RETURNS DECIMAL(10,2) AS "
            "'SELECT factor * $1 FROM rates WHERE k = $2' LANGUAGE SQL IMMUTABLE"
        )
        db.execute("CREATE TABLE v (amount DECIMAL(10,2), rate_key INTEGER)")
        db.execute("INSERT INTO v VALUES (3, 1), (3, 2)")
        assert db.query("SELECT scale(amount, rate_key) AS s FROM v ORDER BY s").rows == [
            (6.0,), (30.0,)
        ]

    def test_sql_function_returns_null_when_no_row_matches(self):
        db = Database()
        db.execute("CREATE TABLE rates (k INTEGER NOT NULL, factor DECIMAL(10,4) NOT NULL)")
        db.execute(
            "CREATE FUNCTION scale (DECIMAL(10,2), INTEGER) RETURNS DECIMAL(10,2) AS "
            "'SELECT factor * $1 FROM rates WHERE k = $2' LANGUAGE SQL"
        )
        assert db.query("SELECT scale(1.0, 99) AS s").rows == [(None,)]

    def test_non_sql_language_rejected(self):
        db = Database()
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            db.execute(
                "CREATE FUNCTION f (INTEGER) RETURNS INTEGER AS 'whatever' LANGUAGE PLPGSQL"
            )


class TestUdfResultCaching:
    """The postgres profile memoizes immutable UDFs; system_c never does (§6.1)."""

    def _run(self, profile: str):
        db = Database(profile)
        calls = []

        def expensive(value):
            calls.append(value)
            return value * 2

        db.register_python_function("expensive", expensive, immutable=True)
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES " + ", ".join(f"({i % 3})" for i in range(30)))
        db.query("SELECT expensive(x) AS y FROM t")
        return db, calls

    def test_postgres_profile_caches_immutable_functions(self):
        db, calls = self._run("postgres")
        assert len(calls) == 3  # one execution per distinct argument
        assert db.stats.udf_calls == 30
        assert db.stats.udf_cache_hits == 27

    def test_system_c_profile_never_caches(self):
        db, calls = self._run("system_c")
        assert len(calls) == 30
        assert db.stats.udf_cache_hits == 0

    def test_mutable_function_not_cached_even_on_postgres(self):
        db = Database("postgres")
        counter = []
        db.register_python_function("impure", lambda x: counter.append(x) or len(counter))
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (1), (1)")
        db.query("SELECT impure(x) AS y FROM t")
        assert len(counter) == 3

    def test_clear_function_caches(self):
        db, calls = self._run("postgres")
        db.clear_function_caches()
        db.query("SELECT expensive(x) AS y FROM t")
        assert len(calls) == 6

    def test_unknown_profile_rejected(self):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            Database("oracle")
