"""DDL / DML execution and integrity checking."""

import pytest

from repro.engine import Database
from repro.errors import CatalogError, ConstraintViolation


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE customer (id INTEGER NOT NULL, name VARCHAR(20) NOT NULL,"
        " balance DECIMAL(10,2) DEFAULT 0, CONSTRAINT pk PRIMARY KEY (id))"
    )
    database.execute(
        "CREATE TABLE orders (id INTEGER NOT NULL, cust INTEGER NOT NULL,"
        " CONSTRAINT pk_o PRIMARY KEY (id),"
        " CONSTRAINT fk_o FOREIGN KEY (cust) REFERENCES customer (id))"
    )
    return database


class TestDDL:
    def test_create_table_registers_schema(self, db):
        table = db.catalog.table("customer")
        assert table.schema.column_names == ["id", "name", "balance"]
        assert table.schema.primary_key == ("id",)

    def test_foreign_key_registered(self, db):
        assert db.catalog.foreign_keys("orders")[0].ref_table == "customer"

    def test_drop_table(self, db):
        db.execute("DROP TABLE orders")
        assert not db.catalog.has_table("orders")

    def test_create_view_and_drop_view(self, db):
        db.execute("INSERT INTO customer (id, name) VALUES (1, 'ada')")
        db.execute("CREATE VIEW names AS SELECT name FROM customer")
        assert db.query("SELECT * FROM names").rows == [("ada",)]
        db.execute("DROP VIEW names")
        assert not db.catalog.has_view("names")

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE customer (id INTEGER)")

    def test_execute_script(self, db):
        results = db.execute_script(
            "INSERT INTO customer (id, name) VALUES (1, 'ada');"
            "INSERT INTO customer (id, name) VALUES (2, 'bob');"
            "SELECT COUNT(*) AS c FROM customer;"
        )
        assert results[-1].scalar() == 2


class TestInsert:
    def test_insert_full_rows(self, db):
        result = db.execute("INSERT INTO customer VALUES (1, 'ada', 10.5), (2, 'bob', 0)")
        assert result.rowcount == 2
        assert db.table_rowcount("customer") == 2

    def test_insert_with_column_list_uses_defaults(self, db):
        db.execute("INSERT INTO customer (id, name) VALUES (1, 'ada')")
        assert db.query("SELECT balance FROM customer").rows == [(0,)]

    def test_insert_select(self, db):
        db.execute("INSERT INTO customer VALUES (1, 'ada', 10), (2, 'bob', 20)")
        db.execute("INSERT INTO orders (id, cust) SELECT id + 100, id FROM customer")
        assert db.table_rowcount("orders") == 2

    def test_insert_not_null_violation(self, db):
        with pytest.raises(ConstraintViolation):
            db.execute("INSERT INTO customer VALUES (1, NULL, 0)")

    def test_insert_expression_values(self, db):
        db.execute("INSERT INTO customer VALUES (1 + 1, UPPER('ada'), 2 * 5)")
        assert db.query("SELECT id, name, balance FROM customer").rows == [(2, "ADA", 10)]


class TestUpdateDelete:
    def test_update_with_where(self, db):
        db.execute("INSERT INTO customer VALUES (1, 'ada', 10), (2, 'bob', 20)")
        result = db.execute("UPDATE customer SET balance = balance * 2 WHERE id = 2")
        assert result.rowcount == 1
        assert db.query("SELECT balance FROM customer WHERE id = 2").scalar() == 40

    def test_update_all_rows(self, db):
        db.execute("INSERT INTO customer VALUES (1, 'ada', 10), (2, 'bob', 20)")
        assert db.execute("UPDATE customer SET balance = 0").rowcount == 2

    def test_update_not_null_enforced(self, db):
        db.execute("INSERT INTO customer VALUES (1, 'ada', 10)")
        with pytest.raises(ConstraintViolation):
            db.execute("UPDATE customer SET name = NULL")

    def test_delete_with_where(self, db):
        db.execute("INSERT INTO customer VALUES (1, 'ada', 10), (2, 'bob', 20)")
        assert db.execute("DELETE FROM customer WHERE balance < 15").rowcount == 1
        assert db.table_rowcount("customer") == 1

    def test_delete_all(self, db):
        db.execute("INSERT INTO customer VALUES (1, 'ada', 10)")
        assert db.execute("DELETE FROM customer").rowcount == 1
        assert db.table_rowcount("customer") == 0

    def test_update_visible_to_subsequent_queries_with_key_lookup(self, db):
        """Primary-key hash indexes must be invalidated by UPDATE (version bump)."""
        db.execute("INSERT INTO customer VALUES (1, 'ada', 10), (2, 'bob', 20)")
        assert db.query("SELECT name FROM customer WHERE id = 2").rows == [("bob",)]
        db.execute("UPDATE customer SET name = 'robert' WHERE id = 2")
        assert db.query("SELECT name FROM customer WHERE id = 2").rows == [("robert",)]


class TestIntegrityChecking:
    def test_clean_database_has_no_violations(self, db):
        db.execute("INSERT INTO customer VALUES (1, 'ada', 0)")
        db.execute("INSERT INTO orders VALUES (10, 1)")
        assert db.check_integrity() == []

    def test_duplicate_primary_key_detected(self, db):
        db.execute("INSERT INTO customer VALUES (1, 'ada', 0), (1, 'dup', 0)")
        violations = db.check_integrity()
        assert any("duplicate primary key" in violation for violation in violations)

    def test_foreign_key_violation_detected(self, db):
        db.execute("INSERT INTO orders VALUES (10, 99)")
        violations = db.check_integrity()
        assert any("foreign key violation" in violation for violation in violations)
