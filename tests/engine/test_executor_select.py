"""Executor tests: scans, joins, aggregation, sub-queries, ordering, DISTINCT."""

import pytest

from repro.engine import Database
from repro.errors import ExecutionError
from repro.sql.types import Date


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE emp (id INTEGER NOT NULL, name VARCHAR(20) NOT NULL, dept INTEGER,"
        " salary DECIMAL(10,2), hired DATE, CONSTRAINT pk PRIMARY KEY (id))"
    )
    database.execute(
        "CREATE TABLE dept (id INTEGER NOT NULL, name VARCHAR(20) NOT NULL,"
        " CONSTRAINT pk_d PRIMARY KEY (id))"
    )
    database.execute(
        "INSERT INTO emp VALUES"
        " (1, 'ada', 10, 1000, DATE '2001-01-15'),"
        " (2, 'bob', 10, 2000, DATE '2003-06-01'),"
        " (3, 'cyd', 20, 3000, DATE '2002-03-10'),"
        " (4, 'dan', 20, 4000, DATE '2004-12-31'),"
        " (5, 'eve', NULL, NULL, NULL)"
    )
    database.execute("INSERT INTO dept VALUES (10, 'sales'), (20, 'tech'), (30, 'empty')")
    return database


class TestProjectionAndFilters:
    def test_simple_projection(self, db):
        result = db.query("SELECT name, salary FROM emp WHERE salary >= 2000 ORDER BY salary")
        assert result.rows == [("bob", 2000), ("cyd", 3000), ("dan", 4000)]
        assert result.columns == ["name", "salary"]

    def test_star_expansion(self, db):
        result = db.query("SELECT * FROM dept ORDER BY id")
        assert result.columns == ["id", "name"]
        assert len(result.rows) == 3

    def test_expressions_and_aliases(self, db):
        result = db.query("SELECT name, salary * 1.1 AS raised FROM emp WHERE id = 1")
        assert result.columns == ["name", "raised"]
        assert result.rows[0][1] == pytest.approx(1100)

    def test_null_predicate_filters_row_out(self, db):
        result = db.query("SELECT name FROM emp WHERE salary > 0")
        assert "eve" not in [row[0] for row in result.rows]

    def test_is_null(self, db):
        assert db.query("SELECT name FROM emp WHERE salary IS NULL").rows == [("eve",)]
        assert len(db.query("SELECT name FROM emp WHERE salary IS NOT NULL").rows) == 4

    def test_between_and_in(self, db):
        result = db.query("SELECT name FROM emp WHERE salary BETWEEN 2000 AND 3000 ORDER BY name")
        assert result.rows == [("bob",), ("cyd",)]
        result = db.query("SELECT name FROM emp WHERE dept IN (20) ORDER BY name")
        assert result.rows == [("cyd",), ("dan",)]

    def test_like(self, db):
        assert db.query("SELECT name FROM emp WHERE name LIKE '%a%' ORDER BY name").rows == [
            ("ada",), ("dan",)
        ]
        assert db.query("SELECT name FROM emp WHERE name LIKE '_o_'").rows == [("bob",)]

    def test_case_expression(self, db):
        result = db.query(
            "SELECT name, CASE WHEN salary >= 3000 THEN 'high' WHEN salary >= 2000 THEN 'mid'"
            " ELSE 'low' END AS band FROM emp WHERE id <= 4 ORDER BY id"
        )
        assert [row[1] for row in result.rows] == ["low", "mid", "high", "high"]

    def test_date_comparison_and_arithmetic(self, db):
        result = db.query(
            "SELECT name FROM emp WHERE hired < DATE '2003-01-01' + INTERVAL '6' MONTH ORDER BY name"
        )
        assert result.rows == [("ada",), ("bob",), ("cyd",)]
        earlier = db.query(
            "SELECT name FROM emp WHERE hired < DATE '2003-01-01' - INTERVAL '6' MONTH ORDER BY name"
        )
        assert earlier.rows == [("ada",), ("cyd",)]

    def test_extract_year(self, db):
        result = db.query("SELECT name, EXTRACT(YEAR FROM hired) AS y FROM emp WHERE id = 2")
        assert result.rows == [("bob", 2003)]

    def test_select_without_from(self, db):
        assert db.query("SELECT 1 + 2 AS three").rows == [(3,)]

    def test_limit(self, db):
        assert len(db.query("SELECT id FROM emp ORDER BY id LIMIT 2").rows) == 2

    def test_unknown_column_raises(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT missing FROM emp")

    def test_unknown_table_raises(self, db):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            db.query("SELECT 1 FROM missing")


class TestJoins:
    def test_inner_join_comma_syntax(self, db):
        result = db.query(
            "SELECT emp.name, dept.name FROM emp, dept WHERE emp.dept = dept.id ORDER BY emp.name"
        )
        assert result.rows == [("ada", "sales"), ("bob", "sales"), ("cyd", "tech"), ("dan", "tech")]

    def test_explicit_inner_join(self, db):
        result = db.query("SELECT COUNT(*) AS c FROM emp JOIN dept ON emp.dept = dept.id")
        assert result.scalar() == 4

    def test_left_join_keeps_unmatched(self, db):
        result = db.query(
            "SELECT dept.name, COUNT(emp.id) AS staff FROM dept LEFT JOIN emp ON emp.dept = dept.id "
            "GROUP BY dept.name ORDER BY dept.name"
        )
        assert result.rows == [("empty", 0), ("sales", 2), ("tech", 2)]

    def test_self_join_with_aliases(self, db):
        result = db.query(
            "SELECT a.name, b.name FROM emp a, emp b "
            "WHERE a.dept = b.dept AND a.salary < b.salary ORDER BY a.name"
        )
        assert result.rows == [("ada", "bob"), ("cyd", "dan")]

    def test_cross_join_count(self, db):
        assert db.query("SELECT COUNT(*) AS c FROM emp, dept").scalar() == 15

    def test_non_equi_join_predicate(self, db):
        result = db.query(
            "SELECT COUNT(*) AS c FROM emp a, emp b WHERE a.salary > b.salary"
        )
        assert result.scalar() == 6

    def test_three_way_join(self, db):
        db.execute("CREATE TABLE loc (dept_id INTEGER, city VARCHAR(10))")
        db.execute("INSERT INTO loc VALUES (10, 'zurich'), (20, 'basel')")
        result = db.query(
            "SELECT emp.name, loc.city FROM emp, dept, loc "
            "WHERE emp.dept = dept.id AND dept.id = loc.dept_id AND emp.salary > 2500 ORDER BY emp.name"
        )
        assert result.rows == [("cyd", "basel"), ("dan", "basel")]


class TestAggregation:
    def test_global_aggregates(self, db):
        result = db.query(
            "SELECT COUNT(*) AS c, COUNT(salary) AS cs, SUM(salary) AS s, AVG(salary) AS a,"
            " MIN(salary) AS lo, MAX(salary) AS hi FROM emp"
        )
        count_all, count_salary, total, average, low, high = result.rows[0]
        assert (count_all, count_salary, total, low, high) == (5, 4, 10000, 1000, 4000)
        assert average == pytest.approx(2500)

    def test_group_by_with_having(self, db):
        result = db.query(
            "SELECT dept, COUNT(*) AS c, SUM(salary) AS s FROM emp WHERE dept IS NOT NULL "
            "GROUP BY dept HAVING SUM(salary) > 3500 ORDER BY dept"
        )
        assert result.rows == [(20, 2, 7000)]

    def test_group_by_expression(self, db):
        result = db.query(
            "SELECT EXTRACT(YEAR FROM hired) AS y, COUNT(*) AS c FROM emp "
            "WHERE hired IS NOT NULL GROUP BY EXTRACT(YEAR FROM hired) ORDER BY y"
        )
        assert result.rows == [(2001, 1), (2002, 1), (2003, 1), (2004, 1)]

    def test_aggregate_over_empty_input(self, db):
        result = db.query("SELECT COUNT(*) AS c, SUM(salary) AS s FROM emp WHERE id > 100")
        assert result.rows == [(0, None)]

    def test_group_by_empty_input_yields_no_groups(self, db):
        result = db.query("SELECT dept, COUNT(*) AS c FROM emp WHERE id > 100 GROUP BY dept")
        assert result.rows == []

    def test_count_distinct(self, db):
        assert db.query("SELECT COUNT(DISTINCT dept) AS d FROM emp").scalar() == 2

    def test_order_by_aggregate_alias(self, db):
        result = db.query(
            "SELECT dept, SUM(salary) AS total FROM emp WHERE dept IS NOT NULL "
            "GROUP BY dept ORDER BY total DESC"
        )
        assert result.rows[0][0] == 20

    def test_aggregate_expression_combination(self, db):
        result = db.query(
            "SELECT SUM(salary) / COUNT(salary) AS manual_avg, AVG(salary) AS built_in FROM emp"
        )
        manual, built_in = result.rows[0]
        assert manual == pytest.approx(built_in)

    def test_having_without_group_by_on_global_aggregate(self, db):
        result = db.query("SELECT COUNT(*) AS c FROM emp HAVING COUNT(*) > 100")
        assert result.rows == []


class TestSubqueries:
    def test_scalar_subquery(self, db):
        result = db.query(
            "SELECT name FROM emp WHERE salary > (SELECT AVG(salary) FROM emp) ORDER BY name"
        )
        assert result.rows == [("cyd",), ("dan",)]

    def test_in_subquery(self, db):
        result = db.query(
            "SELECT name FROM emp WHERE dept IN (SELECT id FROM dept WHERE name = 'tech') ORDER BY name"
        )
        assert result.rows == [("cyd",), ("dan",)]

    def test_not_in_subquery(self, db):
        result = db.query(
            "SELECT dept.name FROM dept WHERE id NOT IN (SELECT dept FROM emp WHERE dept IS NOT NULL)"
        )
        assert result.rows == [("empty",)]

    def test_correlated_exists(self, db):
        result = db.query(
            "SELECT dept.name FROM dept WHERE EXISTS "
            "(SELECT 1 FROM emp WHERE emp.dept = dept.id AND emp.salary > 2500) ORDER BY dept.name"
        )
        assert result.rows == [("tech",)]

    def test_correlated_not_exists(self, db):
        result = db.query(
            "SELECT dept.name FROM dept WHERE NOT EXISTS "
            "(SELECT 1 FROM emp WHERE emp.dept = dept.id)"
        )
        assert result.rows == [("empty",)]

    def test_correlated_scalar_subquery(self, db):
        result = db.query(
            "SELECT name FROM emp e WHERE salary = "
            "(SELECT MAX(salary) FROM emp i WHERE i.dept = e.dept) ORDER BY name"
        )
        assert result.rows == [("bob",), ("dan",)]

    def test_derived_table(self, db):
        result = db.query(
            "SELECT d, total FROM (SELECT dept AS d, SUM(salary) AS total FROM emp "
            "WHERE dept IS NOT NULL GROUP BY dept) AS sums ORDER BY total DESC"
        )
        assert result.rows == [(20, 7000), (10, 3000)]

    def test_nested_derived_tables(self, db):
        result = db.query(
            "SELECT MAX(total) AS best FROM (SELECT dept AS d, SUM(salary) AS total FROM emp "
            "WHERE dept IS NOT NULL GROUP BY dept) AS sums"
        )
        assert result.scalar() == 7000

    def test_uncorrelated_subquery_cached(self, db):
        db.reset_stats()
        db.query("SELECT name FROM emp WHERE salary > (SELECT AVG(salary) FROM emp)")
        # the scalar sub-query runs once, not once per row
        assert db.stats.subquery_runs <= 3


class TestDistinctAndOrdering:
    def test_distinct(self, db):
        result = db.query("SELECT DISTINCT dept FROM emp WHERE dept IS NOT NULL ORDER BY dept")
        assert result.rows == [(10,), (20,)]

    def test_order_by_multiple_keys_mixed_direction(self, db):
        result = db.query("SELECT dept, name FROM emp WHERE dept IS NOT NULL ORDER BY dept DESC, name")
        assert result.rows == [(20, "cyd"), (20, "dan"), (10, "ada"), (10, "bob")]

    def test_order_by_nulls_first(self, db):
        result = db.query("SELECT salary FROM emp ORDER BY salary")
        assert result.rows[0] == (None,)

    def test_order_by_select_alias(self, db):
        result = db.query("SELECT name, salary * 2 AS double_pay FROM emp WHERE id <= 2 ORDER BY double_pay DESC")
        assert result.rows[0][0] == "bob"


class TestViews:
    def test_view_executes_like_a_table(self, db):
        db.execute("CREATE VIEW rich AS SELECT name, salary FROM emp WHERE salary >= 3000")
        result = db.query("SELECT COUNT(*) AS c FROM rich")
        assert result.scalar() == 2

    def test_view_joins_with_tables(self, db):
        db.execute("CREATE VIEW techies AS SELECT id, name, dept FROM emp WHERE dept = 20")
        result = db.query(
            "SELECT techies.name, dept.name FROM techies, dept WHERE techies.dept = dept.id ORDER BY techies.name"
        )
        assert result.rows == [("cyd", "tech"), ("dan", "tech")]

    def test_query_result_helpers(self, db):
        result = db.query("SELECT id, name FROM emp ORDER BY id LIMIT 2")
        assert result.column_values("name") == ["ada", "bob"]
        assert result.as_dicts()[0] == {"id": 1, "name": "ada"}
        assert result.first() == (1, "ada")
        with pytest.raises(ExecutionError):
            result.column_index("nope")
