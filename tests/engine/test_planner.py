"""Planner behaviour: push-down, hash joins, primary-key look-ups, correctness."""

import pytest

from repro.engine import Database


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE big (id INTEGER NOT NULL, ref INTEGER NOT NULL, payload INTEGER,"
        " CONSTRAINT pk_big PRIMARY KEY (id))"
    )
    database.execute(
        "CREATE TABLE small (id INTEGER NOT NULL, label VARCHAR(10) NOT NULL,"
        " CONSTRAINT pk_small PRIMARY KEY (id))"
    )
    database.execute(
        "INSERT INTO small VALUES " + ", ".join(f"({i}, 'label{i}')" for i in range(10))
    )
    database.execute(
        "INSERT INTO big VALUES "
        + ", ".join(f"({i}, {i % 10}, {i * 7 % 100})" for i in range(500))
    )
    return database


class TestHashJoinPlanning:
    def test_equi_join_result_is_correct(self, db):
        result = db.query(
            "SELECT small.label, COUNT(*) AS c FROM big, small WHERE big.ref = small.id "
            "GROUP BY small.label ORDER BY small.label"
        )
        assert len(result.rows) == 10
        assert all(count == 50 for _, count in result.rows)

    def test_hash_join_scales_roughly_linearly(self, db):
        """A nested-loop join would do 500 x 10 x 10 work; the plan must stay flat."""
        import time

        start = time.perf_counter()
        for _ in range(5):
            db.query("SELECT COUNT(*) AS c FROM big, small WHERE big.ref = small.id")
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0

    def test_join_with_composite_key(self, db):
        db.execute("CREATE TABLE pairs (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO pairs VALUES (1, 7), (2, 14), (3, 21)")
        result = db.query(
            "SELECT COUNT(*) AS c FROM big, pairs WHERE big.ref = pairs.a AND big.payload = pairs.b"
        )
        # rows with ref==1 and payload==7: ids 1, 101, 201, ... -> payload = id*7%100
        assert result.scalar() >= 1

    def test_filters_pushed_below_join(self, db):
        result = db.query(
            "SELECT COUNT(*) AS c FROM big, small "
            "WHERE big.ref = small.id AND small.label = 'label3' AND big.payload > 50"
        )
        expected = db.query(
            "SELECT COUNT(*) AS c FROM big WHERE big.ref = 3 AND big.payload > 50"
        ).scalar()
        assert result.scalar() == expected

    def test_disconnected_tables_fall_back_to_cross_product(self, db):
        db.execute("CREATE TABLE tiny (x INTEGER)")
        db.execute("INSERT INTO tiny VALUES (1), (2)")
        assert db.query("SELECT COUNT(*) AS c FROM small, tiny").scalar() == 20

    def test_join_edge_between_placed_sources_becomes_filter(self, db):
        """Triangle joins (a=b, b=c, a=c) must not lose the third predicate."""
        db.execute("CREATE TABLE t1 (v INTEGER)")
        db.execute("CREATE TABLE t2 (v INTEGER)")
        db.execute("CREATE TABLE t3 (v INTEGER)")
        for table in ("t1", "t2", "t3"):
            db.execute(f"INSERT INTO {table} VALUES (1), (2), (3)")
        result = db.query(
            "SELECT COUNT(*) AS c FROM t1, t2, t3 "
            "WHERE t1.v = t2.v AND t2.v = t3.v AND t1.v = t3.v"
        )
        assert result.scalar() == 3


class TestPrimaryKeyLookup:
    def test_point_query_uses_index_and_is_fast(self, db):
        import time

        db.query("SELECT payload FROM big WHERE id = 5")  # warm the index
        start = time.perf_counter()
        for key in range(300):
            db.query(f"SELECT payload FROM big WHERE id = {key}")
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0

    def test_point_query_result_correct(self, db):
        assert db.query("SELECT payload FROM big WHERE id = 13").scalar() == 13 * 7 % 100

    def test_key_lookup_not_used_when_value_references_same_table(self, db):
        result = db.query("SELECT COUNT(*) AS c FROM big WHERE id = payload")
        manual = sum(1 for i in range(500) if i == i * 7 % 100)
        assert result.scalar() == manual

    def test_sql_function_lookup_through_parameter(self, db):
        db.execute(
            "CREATE FUNCTION label_of (INTEGER) RETURNS VARCHAR(10) AS "
            "'SELECT label FROM small WHERE id = $1' LANGUAGE SQL IMMUTABLE"
        )
        assert db.query("SELECT label_of(4) AS l").rows == [("label4",)]


class TestCorrelationDetection:
    def test_correlated_subquery_not_cached(self, db):
        result = db.query(
            "SELECT small.id FROM small WHERE EXISTS "
            "(SELECT 1 FROM big WHERE big.ref = small.id AND big.payload > 90) ORDER BY small.id"
        )
        expected = sorted(
            {i % 10 for i in range(500) if i * 7 % 100 > 90}
        )
        assert [row[0] for row in result.rows] == expected

    def test_outer_reference_two_levels_deep(self, db):
        result = db.query(
            "SELECT small.id FROM small WHERE small.id = "
            "(SELECT MIN(ref) FROM big WHERE big.ref = small.id)"
        )
        assert len(result.rows) == 10
