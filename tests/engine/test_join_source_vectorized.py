"""Direct unit coverage for the vectorized ``JoinSource`` ON-clause path.

PR 7 vectorized the comma-join pipeline but deliberately left explicit
``A [LEFT] JOIN B ON cond`` row-based; the typed-columns PR batch-compiles
that last row-at-a-time loop too.  These tests pin its contracts directly —
LEFT-join unmatched padding, multi-key ON clauses, residual conditions that
would raise if they were (wrongly) evaluated over unmatched or non-candidate
rows — each asserted bit-identical against the row-mode oracle on the same
data, in both the typed and the generic-vectorized configuration.
"""

from __future__ import annotations

import pytest

from repro.engine import Database, VectorConfig
from repro.errors import ExecutionError

#: small batch so multi-batch behaviour is exercised by the larger fixtures
BATCH = 4

MODES = {
    "typed": VectorConfig(enabled=True, batch_size=BATCH, typed=True),
    "generic": VectorConfig(enabled=True, batch_size=BATCH, typed=False),
    "row": VectorConfig(enabled=False, batch_size=BATCH),
}


def _load(vector: VectorConfig) -> Database:
    db = Database(vector=vector)
    db.execute(
        "CREATE TABLE orders (o_id INTEGER NOT NULL, o_cust INTEGER, "
        "o_total DECIMAL(10,2), PRIMARY KEY (o_id))"
    )
    db.execute(
        "CREATE TABLE customers (c_id INTEGER NOT NULL, c_region INTEGER, "
        "c_name VARCHAR(20), c_limit DECIMAL(10,2), PRIMARY KEY (c_id))"
    )
    db.insert_rows(
        "orders",
        [
            (1, 10, 100.0),
            (2, 11, 50.0),
            (3, 99, 75.0),  # no matching customer: LEFT padding
            (4, 10, 20.0),
            (5, None, 10.0),  # NULL key never matches
            (6, 12, 60.0),
            (7, 11, 40.0),
            (8, 13, 30.0),  # matches a customer with c_limit 0 (raise bait)
        ],
    )
    db.insert_rows(
        "customers",
        [
            (10, 1, "alpha", 500.0),
            (11, 1, "beta", 45.0),
            (11, 2, "beta2", 500.0),  # duplicate key: one-to-many fan-out
            (12, 2, "gamma", None),
            (14, 3, "delta", 0.0),  # unmatched build row with zero limit
        ],
    )
    return db


@pytest.fixture(scope="module")
def databases() -> dict[str, Database]:
    return {name: _load(vector) for name, vector in MODES.items()}


def _all_modes(databases, sql: str):
    results = {name: db.query(sql).rows for name, db in databases.items()}
    assert results["typed"] == results["generic"] == results["row"]
    return results["typed"]


def test_left_join_pads_unmatched_rows(databases):
    rows = _all_modes(
        databases,
        "SELECT o.o_id, c.c_name FROM orders o LEFT JOIN customers c "
        "ON o.o_cust = c.c_id",
    )
    padded = {o_id for o_id, name in rows if name is None}
    # order 3 (missing key), order 5 (NULL key), order 8 only matches c_id 13
    assert padded == {3, 5, 8}
    # one-to-many fan-out keeps both matches of customer key 11, in build order
    assert [name for o_id, name in rows if o_id == 2] == ["beta", "beta2"]


def test_inner_join_drops_unmatched_rows(databases):
    rows = _all_modes(
        databases,
        "SELECT o.o_id, c.c_name FROM orders o JOIN customers c "
        "ON o.o_cust = c.c_id",
    )
    assert all(name is not None for _, name in rows)
    assert {o_id for o_id, _ in rows} == {1, 2, 4, 6, 7}


def test_multi_key_on_clause(databases):
    # both conjuncts become hash-join key pairs: (o_cust, o_id) vs (c_id, c_region)
    rows = _all_modes(
        databases,
        "SELECT o.o_id, c.c_name FROM orders o LEFT JOIN customers c "
        "ON o.o_cust = c.c_id AND o.o_id = c.c_region",
    )
    # order 1 matches (10, 1)=alpha; order 2 matches (11, 2)=beta2; rest pad
    assert [name for o_id, name in rows if o_id == 1] == ["alpha"]
    assert [name for o_id, name in rows if o_id == 2] == ["beta2"]
    assert sum(1 for _, name in rows if name is None) == len(rows) - 2


def test_residual_on_condition_filters_candidates(databases):
    # equi key + non-equi residual: residual keeps only affordable orders
    rows = _all_modes(
        databases,
        "SELECT o.o_id, c.c_name FROM orders o LEFT JOIN customers c "
        "ON o.o_cust = c.c_id AND o.o_total <= c.c_limit",
    )
    by_id = {}
    for o_id, name in rows:
        by_id.setdefault(o_id, []).append(name)
    assert by_id[1] == ["alpha"]  # 100.0 <= 500.0
    # order 2 (50.0): fails beta's 45.0 limit, passes beta2's 500.0
    assert by_id[2] == ["beta2"]
    # order 6 matches gamma but c_limit IS NULL -> residual NULL -> padded
    assert by_id[6] == [None]


def test_raising_residual_never_sees_unmatched_rows(databases):
    """A residual that raises on some *non-candidate* rows must not raise.

    ``100 / c.c_limit`` divides by zero for customer 14 (c_limit 0.0) — but
    no order joins to key 14, so row mode never evaluates the residual over
    that row.  The batched residual must restrict itself to the key-matched
    candidate rows exactly the same way, in every mode.
    """
    rows = _all_modes(
        databases,
        "SELECT o.o_id, c.c_name FROM orders o LEFT JOIN customers c "
        "ON o.o_cust = c.c_id AND 100 / c.c_limit > 0.1",
    )
    assert [name for o_id, name in rows if o_id == 1] == ["alpha"]


def test_raising_residual_does_raise_on_matched_rows(databases):
    """The same division *must* still raise when a candidate row hits it."""
    db_orders = [(20, 14, 5.0)]
    for db in databases.values():
        db.insert_rows("orders", db_orders)
    try:
        for db in databases.values():
            with pytest.raises(ExecutionError, match="division by zero"):
                db.query(
                    "SELECT o.o_id FROM orders o LEFT JOIN customers c "
                    "ON o.o_cust = c.c_id AND 100 / c.c_limit > 0.1"
                )
    finally:
        for db in databases.values():
            db.execute("DELETE FROM orders WHERE o_id = 20")


def test_cross_on_condition_without_keys(databases):
    # ON clause with no equi conjunct: candidate set is the cross product
    rows = _all_modes(
        databases,
        "SELECT o.o_id, c.c_id FROM orders o LEFT JOIN customers c "
        "ON o.o_total < c.c_limit",
    )
    row_ids = [o_id for o_id, _ in rows]
    # left order is preserved and every left row appears at least once
    assert row_ids == sorted(row_ids)
    assert set(row_ids) == {1, 2, 3, 4, 5, 6, 7, 8}
