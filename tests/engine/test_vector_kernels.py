"""Unit tests pinning the batch kernels' semantics and configuration.

The differential suite proves the vectorized engine equals the row oracle
on whole MT-H queries; these tests pin the *local* contracts that proof
rests on: three-valued logic inside batch kernels, NULL-skipping batch
aggregation, memo-batched conversion-UDF dispatch with exact counter
parity, the strict ``REPRO_ENGINE_*`` knob validation, and the
batch-bounded streaming guarantee (LIMIT + ``fetchmany`` consume at most
one extra batch).
"""

from __future__ import annotations

import pytest

import repro.api as api
from repro.backends import EngineBackend
from repro.engine import Database, VectorConfig
from repro.engine.config import env_batch_size, env_vectorize
from repro.errors import ConfigurationError


def _db(enabled: bool = True, batch_size: int = 4, profile: str = "postgres"):
    return Database(profile, vector=VectorConfig(enabled=enabled, batch_size=batch_size))


def _both_modes(setup, query: str):
    """Run ``query`` on a vectorized and a row-mode database built by ``setup``."""
    results = []
    for enabled in (True, False):
        db = _db(enabled=enabled)
        setup(db)
        results.append(db.query(query).rows)
    return results


def _null_table(db) -> None:
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER, s VARCHAR(10))")
    db.insert_rows(
        "t",
        [
            (1, 10, "alpha"),
            (2, None, "beta"),
            (None, 30, None),
            (4, None, "delta"),
            (None, None, "alpha"),
        ],
    )


# ---------------------------------------------------------------------------
# three-valued logic
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "predicate",
    [
        "a < 3",
        "a <> 2",
        "a = b",
        "a < b OR b IS NULL",
        "a > 1 AND b > 5",
        "NOT (a > 1)",
        "a IN (1, 4)",
        "a IN (1, NULL)",
        "a NOT IN (2, NULL)",
        "a BETWEEN 1 AND 3",
        "s LIKE 'a%'",
        "s IS NOT NULL",
        "a + b > 10",
        "CASE WHEN a IS NULL THEN b ELSE a END > 2",
    ],
)
def test_null_predicates_match_row_oracle(predicate):
    """NULL-involving predicates keep exactly the rows row mode keeps."""
    query = f"SELECT a, b, s FROM t WHERE {predicate}"
    vectorized, row_mode = _both_modes(_null_table, query)
    assert vectorized == row_mode


def test_null_propagation_in_projections():
    query = (
        "SELECT a + b, a = b, a < b, -a, NOT (a > 2), s || '!', "
        "CASE WHEN a > 2 THEN 'big' END FROM t"
    )
    vectorized, row_mode = _both_modes(_null_table, query)
    assert vectorized == row_mode
    # pin the 3VL values themselves, not just mode agreement
    assert vectorized[1] == (None, None, None, -2, True, "beta!", None)
    assert vectorized[2] == (None, None, None, None, None, None, None)


def test_case_branches_see_only_their_rows():
    """The sub-batched CASE must not evaluate a branch on foreign rows —
    here the THEN division would raise on the rows the WHEN filters out."""

    def setup(db):
        db.execute("CREATE TABLE t (a INTEGER, d INTEGER)")
        db.insert_rows("t", [(10, 2), (20, 0), (30, 5), (40, 0)])

    query = "SELECT CASE WHEN d > 0 THEN a / d ELSE -1 END FROM t"
    vectorized, row_mode = _both_modes(setup, query)
    assert vectorized == row_mode == [(5.0,), (-1,), (6.0,), (-1,)]


# ---------------------------------------------------------------------------
# NULL-skipping batch aggregation
# ---------------------------------------------------------------------------


def test_aggregates_skip_nulls_like_row_mode():
    query = (
        "SELECT COUNT(*), COUNT(b), SUM(b), AVG(b), MIN(b), MAX(b), "
        "COUNT(DISTINCT s) FROM t"
    )
    vectorized, row_mode = _both_modes(_null_table, query)
    assert vectorized == row_mode
    assert vectorized == [(5, 2, 40, 20.0, 10, 30, 3)]


def test_all_null_group_aggregates_are_null():
    def setup(db):
        db.execute("CREATE TABLE t (k INTEGER, v INTEGER)")
        db.insert_rows("t", [(1, None), (1, None), (2, 7)])

    query = "SELECT k, SUM(v), AVG(v), MIN(v), COUNT(v) FROM t GROUP BY k ORDER BY k"
    vectorized, row_mode = _both_modes(setup, query)
    assert vectorized == row_mode
    assert vectorized == [(1, None, None, None, 0), (2, 7, 7.0, 7, 1)]


def test_grouped_sums_are_bit_identical():
    """Batch accumulators fold in row order, so float sums match exactly."""

    def setup(db):
        db.execute("CREATE TABLE t (k INTEGER, v DOUBLE)")
        db.insert_rows(
            "t", [(i % 3, 0.1 * i) for i in range(1000)]
        )

    query = "SELECT k, SUM(v), AVG(v) FROM t GROUP BY k ORDER BY k"
    vectorized, row_mode = _both_modes(setup, query)
    assert vectorized == row_mode  # == : bit-identical floats, same order


# ---------------------------------------------------------------------------
# memo-batched conversion UDFs
# ---------------------------------------------------------------------------

_UDF_DDL = (
    "CREATE FUNCTION double_it (INTEGER) RETURNS INTEGER AS "
    "'SELECT $1 + $1' LANGUAGE SQL IMMUTABLE"
)


def _udf_workload(profile: str, enabled: bool):
    db = _db(enabled=enabled, profile=profile)
    db.execute("CREATE TABLE t (v INTEGER)")
    # 12 rows, 3 distinct argument values -> the memo collapses 12 calls
    db.insert_rows("t", [(i % 3,) for i in range(12)])
    db.execute(_UDF_DDL)
    db.query("SELECT double_it(v) FROM t")
    stats = db.stats
    return (stats.udf_calls, stats.udf_executions, stats.udf_cache_hits)


@pytest.mark.parametrize("profile", ["postgres", "system_c"])
def test_udf_counters_have_parity(profile):
    """Both modes report identical call/execution/cache-hit counts."""
    assert _udf_workload(profile, enabled=True) == _udf_workload(
        profile, enabled=False
    )


def test_postgres_memo_dedupes_within_a_batch():
    calls, executions, hits = _udf_workload("postgres", enabled=True)
    assert calls == 12
    assert executions == 3  # one per distinct argument
    assert hits == 9


def test_system_c_profile_never_caches():
    calls, executions, hits = _udf_workload("system_c", enabled=True)
    assert calls == 12
    assert executions == 12
    assert hits == 0


# ---------------------------------------------------------------------------
# configuration knobs
# ---------------------------------------------------------------------------


def test_env_vectorize_accepts_only_the_two_flags(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE_VECTORIZE", "1")
    assert env_vectorize() is True
    monkeypatch.setenv("REPRO_ENGINE_VECTORIZE", "0")
    assert env_vectorize() is False
    monkeypatch.setenv("REPRO_ENGINE_VECTORIZE", "yes")
    with pytest.raises(ConfigurationError, match="REPRO_ENGINE_VECTORIZE"):
        env_vectorize()


@pytest.mark.parametrize("bad", ["x", "0", "-3", "1.5"])
def test_env_batch_size_rejects_malformed_values(monkeypatch, bad):
    monkeypatch.setenv("REPRO_ENGINE_BATCH", bad)
    with pytest.raises(ConfigurationError, match="REPRO_ENGINE_BATCH"):
        env_batch_size()


def test_vector_config_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE_VECTORIZE", "0")
    monkeypatch.setenv("REPRO_ENGINE_BATCH", "256")
    monkeypatch.setenv("REPRO_ENGINE_TYPED", "0")
    config = VectorConfig.from_env()
    assert config == VectorConfig(enabled=False, batch_size=256, typed=False)
    monkeypatch.setenv("REPRO_ENGINE_TYPED", "1")
    assert VectorConfig.from_env().typed is True
    # keyword overrides win over the environment
    assert VectorConfig.from_env(enabled=True).batch_size == 256
    assert VectorConfig.from_env(typed=False).typed is False


def test_set_vectorize_flips_the_mode_and_replans():
    db = _db(enabled=True, batch_size=8)
    db.execute("CREATE TABLE t (a INTEGER)")
    db.insert_rows("t", [(i,) for i in range(20)])
    before = db.query("SELECT SUM(a) FROM t").rows
    db.set_vectorize(False)
    assert db.vector.enabled is False
    assert db.vector.batch_size == 8  # batch size survives the flip
    assert db.query("SELECT SUM(a) FROM t").rows == before
    db.set_vectorize(True, batch_size=16)
    assert db.vector == VectorConfig(enabled=True, batch_size=16)
    assert db.query("SELECT SUM(a) FROM t").rows == before


# ---------------------------------------------------------------------------
# operator profiles
# ---------------------------------------------------------------------------


def test_operator_profiles_record_batched_execution():
    db = _db(enabled=True, batch_size=8)
    db.execute("CREATE TABLE t (a INTEGER)")
    db.insert_rows("t", [(i,) for i in range(40)])
    db.stats.reset()
    db.query("SELECT a + 1 FROM t WHERE a >= 0 ORDER BY a")
    profiles = {p.operator: p for p in db.stats.operator_snapshot()}
    assert profiles["scan+join"].rows == 40
    assert profiles["project"].rows == 40
    assert profiles["project"].batches == 5  # 40 rows / 8 per batch
    assert profiles["project"].rows_per_batch == 8.0
    assert profiles["order"].rows == 40
    for profile in profiles.values():
        assert profile.seconds >= 0.0
        assert "rows/batch" in profile.describe()


# ---------------------------------------------------------------------------
# batch-bounded streaming
# ---------------------------------------------------------------------------


class _Probe:
    def __init__(self) -> None:
        self.calls = 0

    def __call__(self, value):
        self.calls += 1
        return value


def test_limit_and_fetchmany_consume_at_most_one_extra_batch():
    """The streaming contract: a pull of N rows evaluates at most the
    batches spanning those N rows — never the whole table."""
    batch = 32
    backend = EngineBackend(
        database=Database(vector=VectorConfig(enabled=True, batch_size=batch))
    )
    probe = _Probe()
    backend.connect().register_python_function("probe", probe)
    with api.connect(backend) as connection:
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE t (a INTEGER NOT NULL)")
        cursor.executemany(
            "INSERT INTO t (a) VALUES (?)", [(i,) for i in range(1000)]
        )
        cursor.execute("SELECT probe(a) FROM t LIMIT 10")
        assert cursor.fetchall() == [(i,) for i in range(10)]
        assert probe.calls <= batch  # LIMIT 10 touched one batch of 1000 rows

        probe.calls = 0
        cursor.execute("SELECT probe(a) FROM t")
        assert cursor.fetchmany(40) == [(i,) for i in range(40)]
        # 40 rows span two 32-row batches: one extra batch at most
        assert probe.calls <= 2 * batch
        assert len(cursor.fetchall()) == 960
        assert probe.calls == 1000
