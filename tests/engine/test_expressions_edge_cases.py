"""Expression-evaluation edge cases: NULL logic, errors, LIKE, date arithmetic."""

import pytest

from repro.engine import Database
from repro.errors import ExecutionError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (a INTEGER, b INTEGER, s VARCHAR(20), d DATE)")
    database.execute(
        "INSERT INTO t VALUES (1, NULL, 'alpha', DATE '2000-02-29'),"
        " (2, 0, 'Beta_x', NULL), (NULL, 3, NULL, DATE '1999-12-31')"
    )
    return database


class TestThreeValuedLogic:
    def test_null_comparison_filters_row(self, db):
        assert db.query("SELECT a FROM t WHERE b > 1").rows == [(None,)]

    def test_null_in_arithmetic_propagates(self, db):
        assert db.query("SELECT a + b AS x FROM t WHERE a = 1").rows == [(None,)]
        assert db.query("SELECT a + b AS x FROM t WHERE a = 2").rows == [(2,)]

    def test_not_of_null_is_null(self, db):
        # NOT (b > 1) is NULL for the NULL row: the row must not qualify
        names = db.query("SELECT a FROM t WHERE NOT (b > 1)").rows
        assert names == [(2,)]

    def test_and_or_kleene_logic(self, db):
        # b IS NULL OR b > 1: row1 (b NULL) -> TRUE, row3 (b=3) -> TRUE
        assert len(db.query("SELECT a FROM t WHERE b IS NULL OR b > 1").rows) == 2
        # a > 0 AND b > 0: NULL AND TRUE -> NULL (filtered)
        assert db.query("SELECT s FROM t WHERE a > 0 AND b > 0").rows == []

    def test_in_list_with_null_semantics(self, db):
        # 2 IN (0) -> FALSE; NOT IN with NULL item -> NULL (filtered)
        assert db.query("SELECT a FROM t WHERE a IN (2, 99)").rows == [(2,)]
        assert db.query("SELECT a FROM t WHERE a NOT IN (1, NULL)").rows == []

    def test_case_with_null_condition_falls_through(self, db):
        rows = db.query(
            "SELECT CASE WHEN b > 1 THEN 'big' WHEN b = 0 THEN 'zero' END AS label FROM t ORDER BY a"
        ).rows
        assert (None,) in rows  # the NULL-condition row gets NULL (no ELSE)

    def test_coalesce_ordering(self, db):
        rows = db.query("SELECT COALESCE(b, a, -1) AS v FROM t ORDER BY v").rows
        assert sorted(value for (value,) in rows) == [0, 1, 3]


class TestStringsAndLike:
    def test_like_is_case_sensitive(self, db):
        assert db.query("SELECT s FROM t WHERE s LIKE 'beta%'").rows == []
        assert db.query("SELECT s FROM t WHERE s LIKE 'Beta%'").rows == [("Beta_x",)]

    def test_like_underscore_matches_single_character(self, db):
        assert db.query("SELECT s FROM t WHERE s LIKE 'Beta__'").rows == [("Beta_x",)]
        assert db.query("SELECT s FROM t WHERE s LIKE 'Beta_'").rows == []

    def test_like_on_null_is_null(self, db):
        assert db.query("SELECT a FROM t WHERE s LIKE '%'").rows != [(None,)]
        assert len(db.query("SELECT a FROM t WHERE s NOT LIKE 'zzz%'").rows) == 2

    def test_like_special_regex_characters_are_literal(self, db):
        db.execute("INSERT INTO t VALUES (9, 9, 'a.c+d', NULL)")
        assert db.query("SELECT a FROM t WHERE s LIKE 'a.c+d'").rows == [(9,)]
        assert db.query("SELECT a FROM t WHERE s LIKE 'axc+d'").rows == []

    def test_concat_operator_and_function(self, db):
        rows = db.query("SELECT s || '!' AS x FROM t WHERE a = 1").rows
        assert rows == [("alpha!",)]

    def test_substring_beyond_length(self, db):
        assert db.query("SELECT SUBSTRING(s FROM 4 FOR 10) AS x FROM t WHERE a = 1").rows == [("ha",)]


class TestErrorsAndDates:
    def test_division_by_zero_raises(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT a / b AS x FROM t WHERE a = 2")

    def test_comparing_string_with_number_raises(self, db):
        from repro.errors import TypeMismatchError

        with pytest.raises(TypeMismatchError):
            db.query("SELECT a FROM t WHERE s > 5")

    def test_leap_day_date_round_trip(self, db):
        rows = db.query("SELECT EXTRACT(DAY FROM d) AS day FROM t WHERE a = 1").rows
        assert rows == [(29,)]

    def test_date_difference_in_days(self, db):
        rows = db.query(
            "SELECT d - DATE '2000-02-01' AS delta FROM t WHERE a = 1"
        ).rows
        assert rows == [(28,)]

    def test_interval_year_arithmetic(self, db):
        rows = db.query(
            "SELECT a FROM t WHERE d >= DATE '1999-02-01' + INTERVAL '1' YEAR"
        ).rows
        assert rows == [(1,)]

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT a FROM t WHERE SUM(a) > 1")

    def test_star_outside_select_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT a FROM t WHERE * > 1")

    def test_unknown_extract_part_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT EXTRACT(EPOCH FROM d) AS e FROM t WHERE d IS NOT NULL")


class TestNumericBehaviour:
    def test_integer_and_float_mix(self, db):
        rows = db.query("SELECT a * 2.5 AS x FROM t WHERE a = 2").rows
        assert rows == [(5.0,)]

    def test_unary_minus(self, db):
        assert db.query("SELECT -a AS x FROM t WHERE a = 1").rows == [(-1,)]

    def test_modulo(self, db):
        assert db.query("SELECT a % 2 AS x FROM t WHERE a = 2").rows == [(0,)]

    def test_between_inclusive(self, db):
        assert len(db.query("SELECT a FROM t WHERE a BETWEEN 1 AND 2").rows) == 2
        assert db.query("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 1").rows == [(2,)]
