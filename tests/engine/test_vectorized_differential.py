"""Differential suite: proven vs. observed-typed vs. generic vs. row.

The engine's four execution legs, each the oracle for the one above it:

* **proven** — the default: typed kernels plus the type checker's
  proven-NOT-NULL facts selecting null-check-free kernel variants,
* **observed** — typed kernels without facts (``compiler.typecheck``
  off): nullability is observed per ``TypedColumn``, never proven,
* **generic** — ``REPRO_ENGINE_TYPED=0``: the generic object-list batch
  kernels,
* **row** — ``REPRO_ENGINE_VECTORIZE=0``: the row-at-a-time interpreter.

These tests load the *same* generated MT-H data into four engine
instances (with a small batch size, so every query crosses batch
boundaries) and assert that every MT-H query, both scenarios, ``D' =
{single, subset, all}``, produces *exactly* identical results: same rows,
same order, same float bits (the batch aggregates accumulate in row order
on purpose, so no normalization is needed).  Q1/Q6 additionally pin that
the proven leg really dispatches proven kernels — the counters that
``EXPLAIN ANALYZE`` reports as ``kernels ... proven=P``.
"""

from __future__ import annotations

import pytest

from repro.backends import EngineBackend
from repro.engine import Database, VectorConfig
from repro.mth.loader import load_mth
from repro.mth.queries import ALL_QUERY_IDS, CONVERSION_INTENSIVE, query_text

TENANTS = 4
CLIENT = 1

#: small enough that the tiny MT-H tables span several batches
BATCH = 128

#: the three D' shapes of the acceptance grid
DATASETS = {
    "single": "IN (2)",
    "subset": "IN (1, 3)",
    "all": "IN ()",
}

#: the paper's two scenarios: business alliance (uniform), research (zipf)
SCENARIOS = ("uniform", "zipf")


def _engine_instance(tiny_tpch_data, scenario: str, enabled: bool, typed: bool = True):
    database = Database(
        vector=VectorConfig(enabled=enabled, batch_size=BATCH, typed=typed)
    )
    return load_mth(
        data=tiny_tpch_data,
        tenants=TENANTS,
        distribution=scenario,
        backend=EngineBackend(database=database),
    )


@pytest.fixture(scope="module", params=SCENARIOS)
def engine_quartet(request, tiny_tpch_data):
    """The same MT-H data in proven, observed-typed, generic and row engines."""
    proven = _engine_instance(tiny_tpch_data, request.param, enabled=True)
    observed = _engine_instance(tiny_tpch_data, request.param, enabled=True)
    # same engine configuration, but no SemanticFacts: nullability stays
    # observed per TypedColumn, the proven kernel variants never fire
    observed.middleware.compiler.typecheck = False
    generic = _engine_instance(tiny_tpch_data, request.param, enabled=True, typed=False)
    row_mode = _engine_instance(tiny_tpch_data, request.param, enabled=False)
    # the facts legs pin the checker on explicitly, so the quartet keeps its
    # shape even on the CI leg that exports REPRO_COMPILE_TYPECHECK=0
    for instance in (proven, generic, row_mode):
        instance.middleware.compiler.typecheck = True
    return proven, observed, generic, row_mode


def _connection(instance, scope: str, optimization: str = "o4"):
    connection = instance.middleware.connect(CLIENT, optimization=optimization)
    connection.set_scope(scope)
    return connection


@pytest.mark.parametrize("query_id", ALL_QUERY_IDS)
def test_mth_query_results_bit_identical(engine_quartet, query_id):
    proven, observed, generic, row_mode = engine_quartet
    text = query_text(query_id)
    for name, scope in DATASETS.items():
        proven_result = _connection(proven, scope).query(text)
        observed_result = _connection(observed, scope).query(text)
        generic_result = _connection(generic, scope).query(text)
        row_result = _connection(row_mode, scope).query(text)
        assert (
            proven_result.columns
            == observed_result.columns
            == generic_result.columns
            == row_result.columns
        ), f"Q{query_id} D'={name}: columns differ"
        assert proven_result.rows == observed_result.rows, (
            f"Q{query_id} D'={name}: proven kernels diverge from observed-typed"
        )
        assert observed_result.rows == generic_result.rows, (
            f"Q{query_id} D'={name}: typed kernels diverge from generic kernels"
        )
        assert generic_result.rows == row_result.rows, (
            f"Q{query_id} D'={name}: rows differ between execution modes"
        )


@pytest.mark.parametrize("level", ["canonical", "o1"])
def test_udf_counters_identical_across_modes(engine_quartet, level):
    """Memo-batched UDF dispatch keeps counter parity with row mode.

    At low optimization levels the conversion UDFs execute instead of being
    inlined; the batch path dedupes ``(function, args)`` per batch but must
    report the *same* call/execution/cache-hit counts the row mode reports
    (satellite #6: distinct conversion evaluations counted identically).
    """
    for query_id in CONVERSION_INTENSIVE:
        text = query_text(query_id)
        counters = []
        for instance in engine_quartet:
            instance.middleware.backend.reset_stats()
            _connection(instance, "IN (1, 3)", optimization=level).query(text)
            stats = instance.middleware.backend.stats
            counters.append(
                (stats.udf_calls, stats.udf_executions, stats.udf_cache_hits)
            )
        assert len(set(counters)) == 1, (
            f"Q{query_id} at {level}: UDF counters diverge between modes"
        )
    # the suite exercised the conversion path at all
    assert counters[0][0] > 0


def test_streaming_results_identical_across_modes(engine_quartet):
    """`execute_stream` yields the same rows in the same order in all modes."""
    proven, *others = engine_quartet
    rewritten = _connection(proven, "IN ()").rewrite(query_text(6))
    proven_rows = proven.middleware.backend.execute_stream(rewritten).materialize().rows
    for instance in others:
        rows = instance.middleware.backend.execute_stream(rewritten).materialize().rows
        assert rows == proven_rows


@pytest.mark.parametrize("query_id", [1, 6])
def test_proven_kernels_dispatch_on_scan_heavy_queries(engine_quartet, query_id):
    """Q1/Q6 really take the null-check-free proven kernel variants.

    ``explain(analyze=True)`` reports the per-operator dispatch split; on
    the proven leg every dispatch that would have been merely *typed* is
    proven (MT-H declares every column NOT NULL), and on the observed leg
    (no SemanticFacts) the proven bucket stays empty.
    """
    proven, observed, _, _ = engine_quartet
    text = query_text(query_id)

    report = _connection(proven, "IN (1, 3)").explain(text, analyze=True)
    proven_kernels = sum(op.proven_kernels for op in report.operators)
    typed_kernels = sum(op.typed_kernels for op in report.operators)
    assert proven_kernels > 0, f"Q{query_id}: no proven kernel dispatches"
    assert typed_kernels == 0, (
        f"Q{query_id}: {typed_kernels} dispatches fell back to observed "
        f"nullability despite schema-proven NOT NULL columns"
    )

    report = _connection(observed, "IN (1, 3)").explain(text, analyze=True)
    assert sum(op.proven_kernels for op in report.operators) == 0
    assert sum(op.typed_kernels for op in report.operators) > 0
