"""Differential suite: typed vs. generic-vectorized vs. row execution.

``REPRO_ENGINE_VECTORIZE=0`` keeps the row-at-a-time interpreter around as
the differential oracle for the batch kernels, and ``REPRO_ENGINE_TYPED=0``
keeps the generic object-list kernels as the middle leg under the typed
specialization layer.  These tests load the *same* generated MT-H data into
three engine instances — typed-vectorized, generic-vectorized and row mode
(with a small batch size, so every query crosses batch boundaries) — and
assert that every MT-H query, both scenarios, ``D' = {single, subset,
all}``, produces *exactly* identical results: same rows, same order, same
float bits (the batch aggregates accumulate in row order on purpose, so no
normalization is needed).
"""

from __future__ import annotations

import pytest

from repro.backends import EngineBackend
from repro.engine import Database, VectorConfig
from repro.mth.loader import load_mth
from repro.mth.queries import ALL_QUERY_IDS, CONVERSION_INTENSIVE, query_text

TENANTS = 4
CLIENT = 1

#: small enough that the tiny MT-H tables span several batches
BATCH = 128

#: the three D' shapes of the acceptance grid
DATASETS = {
    "single": "IN (2)",
    "subset": "IN (1, 3)",
    "all": "IN ()",
}

#: the paper's two scenarios: business alliance (uniform), research (zipf)
SCENARIOS = ("uniform", "zipf")


def _engine_instance(tiny_tpch_data, scenario: str, enabled: bool, typed: bool = True):
    database = Database(
        vector=VectorConfig(enabled=enabled, batch_size=BATCH, typed=typed)
    )
    return load_mth(
        data=tiny_tpch_data,
        tenants=TENANTS,
        distribution=scenario,
        backend=EngineBackend(database=database),
    )


@pytest.fixture(scope="module", params=SCENARIOS)
def engine_trio(request, tiny_tpch_data):
    """The same MT-H data in typed, generic-vectorized and row-mode engines."""
    typed = _engine_instance(tiny_tpch_data, request.param, enabled=True)
    generic = _engine_instance(tiny_tpch_data, request.param, enabled=True, typed=False)
    row_mode = _engine_instance(tiny_tpch_data, request.param, enabled=False)
    return typed, generic, row_mode


def _connection(instance, scope: str, optimization: str = "o4"):
    connection = instance.middleware.connect(CLIENT, optimization=optimization)
    connection.set_scope(scope)
    return connection


@pytest.mark.parametrize("query_id", ALL_QUERY_IDS)
def test_mth_query_results_bit_identical(engine_trio, query_id):
    typed, generic, row_mode = engine_trio
    text = query_text(query_id)
    for name, scope in DATASETS.items():
        typed_result = _connection(typed, scope).query(text)
        generic_result = _connection(generic, scope).query(text)
        row_result = _connection(row_mode, scope).query(text)
        assert typed_result.columns == generic_result.columns == row_result.columns, (
            f"Q{query_id} D'={name}: columns differ"
        )
        assert typed_result.rows == generic_result.rows, (
            f"Q{query_id} D'={name}: typed kernels diverge from generic kernels"
        )
        assert generic_result.rows == row_result.rows, (
            f"Q{query_id} D'={name}: rows differ between execution modes"
        )


@pytest.mark.parametrize("level", ["canonical", "o1"])
def test_udf_counters_identical_across_modes(engine_trio, level):
    """Memo-batched UDF dispatch keeps counter parity with row mode.

    At low optimization levels the conversion UDFs execute instead of being
    inlined; the batch path dedupes ``(function, args)`` per batch but must
    report the *same* call/execution/cache-hit counts the row mode reports
    (satellite #6: distinct conversion evaluations counted identically).
    """
    typed, generic, row_mode = engine_trio
    for query_id in CONVERSION_INTENSIVE:
        text = query_text(query_id)
        counters = []
        for instance in (typed, generic, row_mode):
            instance.middleware.backend.reset_stats()
            _connection(instance, "IN (1, 3)", optimization=level).query(text)
            stats = instance.middleware.backend.stats
            counters.append(
                (stats.udf_calls, stats.udf_executions, stats.udf_cache_hits)
            )
        assert counters[0] == counters[1] == counters[2], (
            f"Q{query_id} at {level}: UDF counters diverge between modes"
        )
    # the suite exercised the conversion path at all
    assert counters[0][0] > 0


def test_streaming_results_identical_across_modes(engine_trio):
    """`execute_stream` yields the same rows in the same order in all modes."""
    typed, generic, row_mode = engine_trio
    rewritten = _connection(typed, "IN ()").rewrite(query_text(6))
    typed_stream = typed.middleware.backend.execute_stream(rewritten)
    generic_stream = generic.middleware.backend.execute_stream(rewritten)
    row_stream = row_mode.middleware.backend.execute_stream(rewritten)
    typed_rows = typed_stream.materialize().rows
    assert typed_rows == generic_stream.materialize().rows
    assert typed_rows == row_stream.materialize().rows
