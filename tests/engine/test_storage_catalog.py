"""Unit tests for storage (tables, schemas) and the catalog."""

import pytest

from repro.engine.catalog import Catalog
from repro.engine.functions import PythonFunction
from repro.engine.storage import ColumnSchema, ForeignKey, Table, TableSchema
from repro.errors import CatalogError, ConstraintViolation
from repro.sql import ast
from repro.sql.parser import parse_query
from repro.sql.types import SQLType


def make_schema():
    return TableSchema(
        name="People",
        columns=[
            ColumnSchema("id", SQLType.INTEGER, not_null=True),
            ColumnSchema("name", SQLType.VARCHAR, not_null=True),
            ColumnSchema("age", SQLType.INTEGER, default=0),
        ],
        primary_key=("id",),
    )


class TestTableSchema:
    def test_column_lookup_is_case_insensitive(self):
        schema = make_schema()
        assert schema.column_index("NAME") == 1
        assert schema.column("AGE").name == "age"
        assert schema.has_column("Id")

    def test_unknown_column_raises(self):
        with pytest.raises(CatalogError):
            make_schema().column_index("missing")

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema(
                name="t",
                columns=[ColumnSchema("a", SQLType.INTEGER), ColumnSchema("A", SQLType.INTEGER)],
            )

    def test_add_column(self):
        schema = make_schema()
        schema.add_column(ColumnSchema("extra", SQLType.VARCHAR))
        assert schema.column_index("extra") == 3
        with pytest.raises(CatalogError):
            schema.add_column(ColumnSchema("extra", SQLType.VARCHAR))


class TestTable:
    def test_insert_and_length(self):
        table = Table(make_schema())
        table.insert_row((1, "ada", 36))
        table.insert_many([(2, "bob", 20), (3, "cyd", 25)])
        assert len(table) == 3

    def test_insert_wrong_arity_rejected(self):
        with pytest.raises(ConstraintViolation):
            Table(make_schema()).insert_row((1, "ada"))

    def test_not_null_enforced(self):
        with pytest.raises(ConstraintViolation):
            Table(make_schema()).insert_row((1, None, 10))

    def test_insert_named_uses_defaults(self):
        table = Table(make_schema())
        table.insert_named(("id", "name"), (1, "ada"))
        assert table.rows[0] == (1, "ada", 0)

    def test_insert_named_arity_mismatch(self):
        with pytest.raises(ConstraintViolation):
            Table(make_schema()).insert_named(("id",), (1, 2))

    def test_version_bumps_on_mutation(self):
        table = Table(make_schema())
        before = table.version
        table.insert_row((1, "ada", 36))
        assert table.version > before
        before = table.version
        table.truncate()
        assert table.version > before


class TestCatalog:
    def test_create_and_drop_table(self):
        catalog = Catalog()
        catalog.create_table(make_schema())
        assert catalog.has_table("people")
        assert "People" in catalog.table_names()
        catalog.drop_table("PEOPLE")
        assert not catalog.has_table("people")

    def test_duplicate_relation_rejected(self):
        catalog = Catalog()
        catalog.create_table(make_schema())
        with pytest.raises(CatalogError):
            catalog.create_table(make_schema())
        with pytest.raises(CatalogError):
            catalog.create_view("people", parse_query("SELECT 1"))

    def test_drop_missing_table(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.drop_table("nope")
        catalog.drop_table("nope", if_exists=True)  # no error

    def test_views(self):
        catalog = Catalog()
        catalog.create_view("v", parse_query("SELECT 1 AS one"))
        assert catalog.has_view("V")
        assert isinstance(catalog.view("v"), ast.Select)
        catalog.drop_view("v")
        assert not catalog.has_view("v")
        with pytest.raises(CatalogError):
            catalog.drop_view("v")

    def test_functions(self):
        catalog = Catalog()
        catalog.register_function(PythonFunction("double", lambda x: x * 2))
        assert catalog.has_function("DOUBLE")
        assert catalog.function("double").name == "double"
        with pytest.raises(CatalogError):
            catalog.function("triple")

    def test_foreign_keys_filtered_by_table(self):
        catalog = Catalog()
        catalog.add_foreign_key(ForeignKey(None, "orders", ("custkey",), "customer", ("custkey",)))
        catalog.add_foreign_key(ForeignKey(None, "lineitem", ("orderkey",), "orders", ("orderkey",)))
        assert len(catalog.foreign_keys()) == 2
        assert len(catalog.foreign_keys("orders")) == 1
