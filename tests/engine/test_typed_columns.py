"""Unit tests for the typed-column layer and its kernel-dispatch contracts.

:mod:`repro.engine.columns` promises *observed* stability: a column types
only when every stored value round-trips exactly through the compact
payload, and any doubt refuses (``None``) back to the generic object-list
kernels.  These tests pin the refusal rules (``bool`` is not ``int``,
int64 overflow, mixed types, unparseable date strings), the per-version
storage cache, the ``REPRO_ENGINE_TYPED`` knob, and the typed/generic
kernel counters surfaced through ``EXPLAIN ANALYZE``.
"""

from __future__ import annotations

import pytest

from repro.engine import Database, VectorConfig
from repro.engine.columns import build_typed_column
from repro.engine.config import env_typed
from repro.errors import ConfigurationError
from repro.sql.types import Date, SQLType


# ---------------------------------------------------------------------------
# build_typed_column: payloads and refusals
# ---------------------------------------------------------------------------


def test_integer_column_types_as_int64_array():
    column = build_typed_column(SQLType.INTEGER, [1, 2, 3])
    assert column is not None
    assert column.kind == "int"
    assert column.values.typecode == "q"
    assert list(column.values) == [1, 2, 3]
    assert column.null_free
    assert column.object_values() is column.values


def test_decimal_column_types_as_double_array():
    column = build_typed_column(SQLType.DECIMAL, [0.5, -1.25, 3.0])
    assert column is not None
    assert column.kind == "float"
    assert column.values.typecode == "d"
    assert list(column.values) == [0.5, -1.25, 3.0]


def test_nulls_become_explicit_positions_with_zero_padding():
    column = build_typed_column(SQLType.INTEGER, [7, None, 9, None])
    assert column is not None
    assert column.nulls == frozenset({1, 3})
    assert list(column.values) == [7, 0, 9, 0]
    assert not column.null_free
    # padded payload is NOT the object column: generic callers must gather
    assert column.object_values() is None


def test_bool_never_masquerades_as_int():
    assert build_typed_column(SQLType.INTEGER, [1, True, 3]) is None


def test_int_out_of_int64_range_refuses():
    assert build_typed_column(SQLType.INTEGER, [1, 2**63]) is None
    assert build_typed_column(SQLType.INTEGER, [-(2**63) - 1]) is None
    # the boundary values themselves are fine
    edge = build_typed_column(SQLType.INTEGER, [2**63 - 1, -(2**63)])
    assert edge is not None and list(edge.values) == [2**63 - 1, -(2**63)]


def test_mixed_numeric_types_refuse():
    assert build_typed_column(SQLType.INTEGER, [1, 2.0]) is None
    assert build_typed_column(SQLType.DECIMAL, [1.0, 2]) is None


def test_date_column_stores_day_ordinals():
    column = build_typed_column(
        SQLType.DATE, [Date.from_string("1970-01-02"), "2020-01-05", None]
    )
    assert column is not None
    assert column.kind == "date"
    assert column.values[0] == 1  # one day past the 1970-01-01 epoch
    assert column.values[1] == Date.from_string("2020-01-05").days
    assert column.nulls == frozenset({2})
    # day ordinals are not the stored objects: no zero-copy object view
    assert column.object_values() is None


def test_unparseable_date_string_refuses():
    assert build_typed_column(SQLType.DATE, ["2020-01-05", "not a date"]) is None


def test_varchar_column_is_zero_copy():
    values = ["a", None, "c"]
    column = build_typed_column(SQLType.VARCHAR, values)
    assert column is not None
    assert column.kind == "str"
    assert column.values is values  # by reference, no copy
    assert column.nulls == frozenset({1})
    assert column.object_values() is values
    assert build_typed_column(SQLType.VARCHAR, ["a", 1]) is None


# ---------------------------------------------------------------------------
# storage: per-version typed cache
# ---------------------------------------------------------------------------


def _table(db: Database):
    db.execute("CREATE TABLE t (a INTEGER, s VARCHAR(10))")
    db.insert_rows("t", [(1, "x"), (2, "y")])
    return db.catalog.table("t")


def test_typed_cache_is_reused_within_a_version():
    table = _table(Database(vector=VectorConfig(enabled=True)))
    first = table.typed_column(0)
    assert first is not None and list(first.values) == [1, 2]
    assert table.typed_column(0) is first  # cached, not rebuilt


def test_typed_cache_invalidates_on_mutation():
    db = Database(vector=VectorConfig(enabled=True))
    table = _table(db)
    before = table.typed_column(0)
    db.insert_rows("t", [(3, "z")])
    after = table.typed_column(0)
    assert after is not before
    assert list(after.values) == [1, 2, 3]


def test_typed_cache_remembers_refusals():
    db = Database(vector=VectorConfig(enabled=True))
    table = _table(db)
    db.insert_rows("t", [(True, "w")])  # destabilize column 0
    assert table.typed_column(0) is None
    assert 0 in table._typed_cache  # the refusal itself is cached


# ---------------------------------------------------------------------------
# configuration: env knob and runtime switch
# ---------------------------------------------------------------------------


def test_env_typed_accepts_only_the_two_flags(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE_TYPED", "1")
    assert env_typed() is True
    monkeypatch.setenv("REPRO_ENGINE_TYPED", "0")
    assert env_typed() is False
    monkeypatch.setenv("REPRO_ENGINE_TYPED", "true")
    with pytest.raises(ConfigurationError, match="REPRO_ENGINE_TYPED"):
        env_typed()


def _kernel_db(typed: bool) -> Database:
    db = Database(vector=VectorConfig(enabled=True, batch_size=4, typed=typed))
    db.execute("CREATE TABLE t (a INTEGER, b DECIMAL(10,2))")
    db.insert_rows("t", [(i, float(i)) for i in range(10)])
    return db


def _kernels(db: Database, query: str) -> tuple[int, int]:
    db.stats.reset()
    rows = db.query(query).rows
    kernels = db.stats.kernels
    return rows, (kernels.typed, kernels.generic)


def test_typed_kernels_dispatch_only_when_enabled():
    query = "SELECT SUM(b * 2.0) FROM t WHERE a > 3"
    rows_on, (typed_on, _) = _kernels(_kernel_db(typed=True), query)
    rows_off, (typed_off, generic_off) = _kernels(_kernel_db(typed=False), query)
    assert rows_on == rows_off
    assert typed_on > 0
    # typed=False compiles no typed-capable kernels at all: both counters
    # stay zero (generic counts only *runtime fallbacks* from typed kernels)
    assert typed_off == 0 and generic_off == 0


def test_set_typed_flips_dispatch_and_replans():
    db = _kernel_db(typed=True)
    query = "SELECT COUNT(*) FROM t WHERE a > 3"
    rows_before, (typed, _) = _kernels(db, query)
    assert typed > 0
    db.set_typed(False)
    assert db.vector.typed is False
    assert db.vector.enabled is True  # only the typed layer switches off
    rows_after, (typed, generic) = _kernels(db, query)
    assert rows_after == rows_before
    assert typed == 0 and generic == 0
    db.set_typed(True)
    _, (typed, _) = _kernels(db, query)
    assert typed > 0


def test_set_vectorize_preserves_the_typed_flag():
    db = _kernel_db(typed=False)
    db.set_vectorize(False)
    db.set_vectorize(True)
    assert db.vector.typed is False


def test_unstable_column_falls_back_per_batch():
    """A destabilized column refuses typing but stays correct generically."""
    db = _kernel_db(typed=True)
    db.insert_rows("t", [(True, 10.0)])  # bool destabilizes column a
    query = "SELECT COUNT(*) FROM t WHERE a >= 3"
    rows, (typed, generic) = _kernels(db, query)
    assert rows == [(7,)]  # ints 3..9 match; True >= 3 is False
    assert typed == 0 and generic > 0


def test_operator_profiles_report_kernel_counts():
    db = _kernel_db(typed=True)
    db.stats.reset()
    db.query("SELECT a FROM t WHERE a > 3")
    profiles = {p.operator: p for p in db.stats.operator_snapshot()}
    scan = profiles["scan+join"]
    assert scan.typed_kernels >= 1
    assert "kernels typed=" in scan.describe()
