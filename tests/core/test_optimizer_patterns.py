"""Pattern recognition helpers shared by the optimization passes."""

import pytest

from repro.core.conversion import ConversionRegistry, make_currency_pair, make_phone_pair
from repro.core.optimizer.patterns import (
    contains_conversion_call,
    find_wraps,
    match_from_wrap,
    match_full_wrap,
    match_to_wrap,
    on_multiplicative_path,
)
from repro.sql.parser import parse_expression


@pytest.fixture(scope="module")
def registry():
    reg = ConversionRegistry()
    reg.register(make_currency_pair())
    reg.register(make_phone_pair())
    return reg


def expr(text):
    return parse_expression(text)


class TestWrapMatching:
    def test_full_wrap(self, registry):
        node = expr("currencyFromUniversal(currencyToUniversal(E_salary, E_ttid), 0)")
        wrap = match_full_wrap(node, registry)
        assert wrap is not None
        assert wrap.pair.name == "currency"
        assert wrap.value.name == "E_salary"
        assert wrap.ttid.name == "E_ttid"
        assert match_from_wrap(node, registry) is None  # not double reported

    def test_from_wrap(self, registry):
        node = expr("currencyFromUniversal(volume, 0)")
        wrap = match_from_wrap(node, registry)
        assert wrap is not None and wrap.value.name == "volume"
        assert match_full_wrap(node, registry) is None

    def test_to_wrap(self, registry):
        node = expr("currencyToUniversal(E_salary, E_ttid)")
        wrap = match_to_wrap(node, registry)
        assert wrap is not None and wrap.pair.name == "currency"

    def test_mixed_pair_is_not_a_full_wrap(self, registry):
        node = expr("currencyFromUniversal(phoneToUniversal(E_phone, E_ttid), 0)")
        assert match_full_wrap(node, registry) is None
        # it still is a from-wrap of the currency pair around something
        assert match_from_wrap(node, registry) is not None

    def test_non_conversion_function_ignored(self, registry):
        assert match_full_wrap(expr("COALESCE(a, b)"), registry) is None
        assert match_from_wrap(expr("SUM(a)"), registry) is None

    def test_find_wraps_counts_each_wrap_once(self, registry):
        node = expr(
            "currencyFromUniversal(currencyToUniversal(a, t), 0) * (1 - d)"
            " + currencyFromUniversal(u, 0)"
        )
        full, partial = find_wraps(node, registry)
        assert len(full) == 1 and len(partial) == 1

    def test_find_wraps_does_not_enter_subqueries(self, registry):
        node = expr("x IN (SELECT currencyFromUniversal(currencyToUniversal(a, t), 0) FROM e)")
        full, partial = find_wraps(node, registry)
        assert full == [] and partial == []

    def test_contains_conversion_call(self, registry):
        assert contains_conversion_call(expr("currencyToUniversal(a, t) + 1"), registry)
        assert not contains_conversion_call(expr("SUM(a) + 1"), registry)


class TestMultiplicativePath:
    def wrap_in(self, template, registry):
        node = expr(template.format(wrap="currencyFromUniversal(currencyToUniversal(a, t), 0)"))
        full, _ = find_wraps(node, registry)
        assert len(full) == 1
        return node, full[0].node

    @pytest.mark.parametrize(
        "template",
        [
            "{wrap}",
            "{wrap} * (1 - d)",
            "(1 - d) * {wrap}",
            "{wrap} * (1 - d) * (1 + t)",
            "{wrap} / 7.0",
            "-{wrap}",
            "CASE WHEN p LIKE 'PROMO%' THEN {wrap} * (1 - d) ELSE 0 END",
        ],
    )
    def test_valid_multiplicative_paths(self, registry, template):
        root, target = self.wrap_in(template, registry)
        assert on_multiplicative_path(root, target)

    @pytest.mark.parametrize(
        "template",
        [
            "{wrap} + 1",
            "{wrap} - cost * qty",
            "1 - {wrap}",
            "7.0 / {wrap}",
            "CASE WHEN p = 'x' THEN {wrap} ELSE other END",
            "CASE WHEN {wrap} > 1 THEN 1 ELSE 0 END",
            "CHAR_LENGTH({wrap})",
        ],
    )
    def test_invalid_paths_rejected(self, registry, template):
        root, target = self.wrap_in(template, registry)
        assert not on_multiplicative_path(root, target)

    def test_target_not_in_tree(self, registry):
        other = expr("a + b")
        _, target = self.wrap_in("{wrap}", registry)
        assert not on_multiplicative_path(other, target)
