"""Scopes (§2.1) and the tenant-aware access control (§2.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.privileges import PrivilegeManager
from repro.core.scope import (
    ComplexScope,
    DefaultScope,
    SimpleScope,
    parse_scope,
    scope_dataset,
)
from repro.errors import PrivilegeError, ScopeError


class TestScopeParsing:
    def test_simple_scope(self):
        scope = parse_scope("IN (1, 3, 42)")
        assert isinstance(scope, SimpleScope)
        assert scope.ttids == (1, 3, 42)
        assert not scope.is_all

    def test_empty_in_list_means_all_tenants(self):
        scope = parse_scope("IN ()")
        assert scope.is_all

    def test_empty_string_means_all_tenants(self):
        assert parse_scope("").is_all

    def test_complex_scope(self):
        scope = parse_scope("FROM Employees WHERE E_salary > 180000")
        assert isinstance(scope, ComplexScope)
        assert scope.query.from_items[0].name == "Employees"

    def test_invalid_scope_rejected(self):
        with pytest.raises(ScopeError):
            parse_scope("SELECT 1")
        with pytest.raises(ScopeError):
            parse_scope("IN (1")

    def test_describe(self):
        assert parse_scope("IN (1, 2)").describe() == "IN (1, 2)"
        assert DefaultScope().describe() == "DEFAULT"


class TestScopeDataset:
    def test_default_scope_is_the_client(self):
        assert scope_dataset(DefaultScope(), client=7, all_tenants=[1, 2, 7]) == (7,)

    def test_simple_scope_sorted_and_deduplicated(self):
        scope = SimpleScope((3, 1, 3))
        assert scope_dataset(scope, client=1, all_tenants=[1, 2, 3]) == (1, 3)

    def test_empty_scope_expands_to_all_tenants(self):
        scope = SimpleScope(())
        assert scope_dataset(scope, client=1, all_tenants=[3, 1, 2]) == (1, 2, 3)

    def test_complex_scope_uses_resolver(self):
        scope = parse_scope("FROM Employees WHERE E_salary > 0")
        resolved = scope_dataset(
            scope, client=1, all_tenants=[1, 2, 3], complex_resolver=lambda s: [2, 3, 2]
        )
        assert resolved == (2, 3)

    def test_complex_scope_without_resolver_rejected(self):
        with pytest.raises(ScopeError):
            scope_dataset(parse_scope("FROM t"), client=1, all_tenants=[1])

    @given(st.lists(st.integers(min_value=1, max_value=50), max_size=10))
    def test_simple_scope_dataset_is_sorted_unique(self, ttids):
        result = scope_dataset(SimpleScope(tuple(ttids)), client=1, all_tenants=range(1, 51))
        assert list(result) == sorted(set(result))


class TestPrivileges:
    def test_own_data_always_accessible(self):
        manager = PrivilegeManager()
        manager.register_tenant(1)
        assert manager.has_privilege(client=1, owner=1, table="t", privilege="READ")
        assert manager.has_privilege(client=1, owner=1, table="t", privilege="DELETE")

    def test_grant_and_revoke(self):
        manager = PrivilegeManager()
        manager.register_tenant(1)
        manager.register_tenant(2)
        manager.grant(owner=2, table="Employees", grantee=1, privileges=["READ"])
        assert manager.has_privilege(1, 2, "employees", "READ")
        assert not manager.has_privilege(1, 2, "employees", "UPDATE")
        manager.revoke(owner=2, table="Employees", grantee=1, privileges=["READ"])
        assert not manager.has_privilege(1, 2, "employees", "READ")

    def test_grant_to_all_uses_the_dataset(self):
        manager = PrivilegeManager()
        for ttid in (1, 2, 3, 4):
            manager.register_tenant(ttid)
        manager.grant(owner=1, table="t", grantee="ALL", privileges=["READ"], dataset=(2, 3))
        assert manager.has_privilege(2, 1, "t", "READ")
        assert manager.has_privilege(3, 1, "t", "READ")
        assert not manager.has_privilege(4, 1, "t", "READ")

    def test_select_is_a_synonym_for_read(self):
        manager = PrivilegeManager()
        manager.grant(owner=2, table="t", grantee=1, privileges=["SELECT"])
        assert manager.has_privilege(1, 2, "t", "READ")

    def test_unknown_privilege_rejected(self):
        manager = PrivilegeManager()
        with pytest.raises(PrivilegeError):
            manager.grant(owner=1, table="t", grantee=2, privileges=["FLY"])

    def test_invalid_grantee_rejected(self):
        manager = PrivilegeManager()
        with pytest.raises(PrivilegeError):
            manager.grant(owner=1, table="t", grantee="bob", privileges=["READ"])

    def test_public_grants(self):
        manager = PrivilegeManager()
        manager.grant_public("lineitem", ["READ"])
        assert manager.has_privilege(5, 9, "lineitem", "READ")
        manager.revoke_public("lineitem", ["READ"])
        assert not manager.has_privilege(5, 9, "lineitem", "READ")

    def test_prune_dataset(self):
        manager = PrivilegeManager()
        for ttid in (1, 2, 3):
            manager.register_tenant(ttid)
        manager.grant(owner=2, table="orders", grantee=1, privileges=["READ"])
        manager.grant(owner=2, table="lineitem", grantee=1, privileges=["READ"])
        manager.grant(owner=3, table="orders", grantee=1, privileges=["READ"])
        # tenant 3 did not grant lineitem -> pruned when both tables are touched
        pruned = manager.prune_dataset(client=1, dataset=(1, 2, 3), tables=["orders", "lineitem"])
        assert pruned == (1, 2)
        # a statement touching only orders keeps tenant 3
        assert manager.prune_dataset(1, (1, 2, 3), ["orders"]) == (1, 2, 3)

    def test_prune_with_no_tenant_specific_tables_keeps_everything(self):
        manager = PrivilegeManager()
        assert manager.prune_dataset(1, (1, 2, 3), []) == (1, 2, 3)

    def test_grants_for_owner(self):
        manager = PrivilegeManager()
        manager.grant(owner=1, table="t", grantee=2, privileges=["READ", "UPDATE"])
        grants = manager.grants_for(1)
        assert grants == [("t", 2, {"READ", "UPDATE"})]

    def test_unknown_tenant_lookup_raises(self):
        manager = PrivilegeManager()
        with pytest.raises(PrivilegeError):
            manager.tenant(99)

    @given(st.sets(st.integers(min_value=1, max_value=30), max_size=10))
    def test_pruning_never_adds_tenants(self, dataset):
        manager = PrivilegeManager()
        pruned = manager.prune_dataset(client=1, dataset=tuple(dataset), tables=["t"])
        assert set(pruned) <= set(dataset) | {1}
        assert set(pruned) <= set(dataset)
