"""The canonical MTSQL→SQL rewrite algorithm (§3.1) on the running example."""

import pytest

from repro.core import CanonicalRewriter, RewriteContext, RewriteOptions
from repro.core.optimizer.levels import OptimizationLevel
from repro.errors import RewriteError
from repro.sql.parser import parse_query
from repro.sql.printer import to_sql


def make_rewriter(middleware, client=0, dataset=(0, 1), options=None):
    context = RewriteContext(
        client=client,
        dataset=tuple(dataset),
        schema=middleware.schema,
        conversions=middleware.conversions,
        options=options or RewriteOptions.canonical(),
        all_tenants=middleware.tenants(),
    )
    return CanonicalRewriter(context)


def rewrite_sql(middleware, sql, **kwargs) -> str:
    return to_sql(make_rewriter(middleware, **kwargs).rewrite_query(parse_query(sql)))


class TestSelectClauseRewriting:
    def test_convertible_attribute_wrapped_in_conversion_pair(self, paper_mt_session):
        rewritten = rewrite_sql(paper_mt_session, "SELECT E_salary FROM Employees")
        assert "currencyFromUniversal(currencyToUniversal(E_salary, employees.E_ttid), 0)" in rewritten
        # the converted value keeps the original attribute name (Listing 10)
        assert "AS E_salary" in rewritten

    def test_client_format_literal_is_the_connection_client(self, paper_mt_session):
        rewritten = rewrite_sql(paper_mt_session, "SELECT E_salary FROM Employees", client=1)
        assert "currencyFromUniversal(currencyToUniversal(E_salary, employees.E_ttid), 1)" in rewritten

    def test_aggregated_select_expression(self, paper_mt_session):
        rewritten = rewrite_sql(paper_mt_session, "SELECT AVG(E_salary) AS avg_sal FROM Employees")
        assert "AVG(currencyFromUniversal(currencyToUniversal(E_salary" in rewritten

    def test_comparable_attributes_untouched(self, paper_mt_session):
        rewritten = rewrite_sql(paper_mt_session, "SELECT E_name, E_age FROM Employees")
        assert "currencyToUniversal" not in rewritten

    def test_star_expansion_hides_ttid(self, paper_mt_session):
        rewritten = rewrite_sql(paper_mt_session, "SELECT * FROM Employees")
        assert "E_ttid" in rewritten  # used inside conversion calls and the D-filter ...
        assert "SELECT employees.E_ttid" not in rewritten  # ... but never projected
        assert "employees.E_emp_id" in rewritten
        assert "employees.E_name" in rewritten

    def test_star_expansion_of_global_table(self, paper_mt_session):
        rewritten = rewrite_sql(paper_mt_session, "SELECT * FROM Regions")
        assert "ttid" not in rewritten.lower()
        assert "regions.Re_name" in rewritten


class TestWhereClauseRewriting:
    def test_dataset_filter_added_per_tenant_specific_table(self, paper_mt_session):
        rewritten = rewrite_sql(paper_mt_session, "SELECT E_name FROM Employees WHERE E_age > 40")
        assert "employees.E_ttid IN (0, 1)" in rewritten

    def test_no_dataset_filter_for_global_tables(self, paper_mt_session):
        rewritten = rewrite_sql(paper_mt_session, "SELECT Re_name FROM Regions")
        assert "IN (0, 1)" not in rewritten

    def test_conversion_added_to_predicates_on_convertible_attributes(self, paper_mt_session):
        rewritten = rewrite_sql(
            paper_mt_session, "SELECT E_name FROM Employees WHERE E_salary > 100000"
        )
        assert "currencyFromUniversal(currencyToUniversal(E_salary" in rewritten
        # the constant stays untouched in the canonical rewrite (it is already in C's format)
        assert "100000" in rewritten

    def test_ttid_predicate_added_to_tenant_specific_joins(self, paper_mt_session):
        rewritten = rewrite_sql(
            paper_mt_session,
            "SELECT E_name, R_name FROM Employees, Roles WHERE E_role_id = R_role_id",
        )
        assert "employees.E_ttid = roles.R_ttid" in rewritten

    def test_no_ttid_predicate_for_comparable_join(self, paper_mt_session):
        rewritten = rewrite_sql(
            paper_mt_session,
            "SELECT E1.E_name FROM Employees E1, Employees E2 WHERE E1.E_age = E2.E_age",
        )
        assert "e1.E_ttid = e2.E_ttid" not in rewritten

    def test_unqualified_ambiguous_column_rejected(self, paper_mt_session):
        with pytest.raises(RewriteError):
            rewrite_sql(
                paper_mt_session,
                "SELECT E_name FROM Employees E1, Employees E2 WHERE E1.E_age = E2.E_age",
            )

    def test_self_join_on_tenant_specific_attribute_adds_ttid_predicate(self, paper_mt_session):
        rewritten = rewrite_sql(
            paper_mt_session,
            "SELECT E1.E_name FROM Employees E1, Employees E2 WHERE E1.E_role_id = E2.E_role_id",
        )
        assert "e1.E_ttid = e2.E_ttid" in rewritten

    def test_mixing_tenant_specific_and_comparable_rejected(self, paper_mt_session):
        with pytest.raises(RewriteError):
            rewrite_sql(
                paper_mt_session,
                "SELECT E_name FROM Employees WHERE E_role_id = E_age",
            )

    def test_mixing_tenant_specific_and_convertible_rejected(self, paper_mt_session):
        with pytest.raises(RewriteError):
            rewrite_sql(
                paper_mt_session,
                "SELECT E_name FROM Employees WHERE E_role_id = E_salary",
            )

    def test_tenant_specific_vs_constant_allowed(self, paper_mt_session):
        rewritten = rewrite_sql(
            paper_mt_session, "SELECT E_name FROM Employees WHERE E_role_id = 2"
        )
        assert "E_role_id = 2" in rewritten


class TestSubqueriesAndJoins:
    def test_from_subquery_rewritten_recursively(self, paper_mt_session):
        rewritten = rewrite_sql(
            paper_mt_session,
            "SELECT avg_sal FROM (SELECT AVG(E_salary) AS avg_sal FROM Employees) AS stats",
        )
        assert "currencyToUniversal" in rewritten
        assert rewritten.count("IN (0, 1)") == 1

    def test_scalar_subquery_in_where_rewritten(self, paper_mt_session):
        rewritten = rewrite_sql(
            paper_mt_session,
            "SELECT E_name FROM Employees WHERE E_salary > (SELECT AVG(E_salary) FROM Employees)",
        )
        # both the outer reference and the inner aggregate are converted,
        # and both Employees occurrences get a D-filter
        assert rewritten.count("currencyToUniversal") >= 2
        assert rewritten.count("employees.E_ttid IN (0, 1)") == 2

    def test_explicit_join_condition_rewritten(self, paper_mt_session):
        rewritten = rewrite_sql(
            paper_mt_session,
            "SELECT E_name, R_name FROM Employees JOIN Roles ON E_role_id = R_role_id",
        )
        assert "employees.E_ttid = roles.R_ttid" in rewritten

    def test_left_join_dataset_filter_moves_into_on_clause(self, paper_mt_session):
        rewritten = rewrite_sql(
            paper_mt_session,
            "SELECT R_name, COUNT(E_emp_id) AS c FROM Roles LEFT JOIN Employees "
            "ON E_role_id = R_role_id GROUP BY R_name",
        )
        on_clause = rewritten.split(" ON ", 1)[1].split(" WHERE ", 1)[0]
        assert "employees.E_ttid IN (0, 1)" in on_clause
        where_clause = rewritten.split(" WHERE ", 1)[1] if " WHERE " in rewritten else ""
        assert "employees.E_ttid IN (0, 1)" not in where_clause

    def test_group_by_and_having_rewritten(self, paper_mt_session):
        rewritten = rewrite_sql(
            paper_mt_session,
            "SELECT E_salary, COUNT(*) AS c FROM Employees GROUP BY E_salary HAVING COUNT(*) > 1",
        )
        # the grouping key is the converted salary
        group_clause = rewritten.split("GROUP BY", 1)[1]
        assert "currencyToUniversal" in group_clause

    def test_order_by_left_unchanged(self, paper_mt_session):
        rewritten = rewrite_sql(
            paper_mt_session,
            "SELECT E_name, E_salary FROM Employees ORDER BY E_salary DESC",
        )
        order_clause = rewritten.split("ORDER BY", 1)[1]
        assert "currencyToUniversal" not in order_clause


class TestTrivialOptimizationFlags:
    def test_flags_for_all_tenants(self, paper_mt_session):
        options = RewriteOptions.trivially_optimized(0, (0, 1), (0, 1))
        assert options.add_dataset_filters is False
        assert options.add_ttid_join_predicates is True
        assert options.wrap_conversions is True

    def test_flags_for_single_foreign_tenant(self, paper_mt_session):
        options = RewriteOptions.trivially_optimized(0, (1,), (0, 1))
        assert options.add_dataset_filters is True
        assert options.add_ttid_join_predicates is False
        assert options.wrap_conversions is True

    def test_flags_for_own_data(self, paper_mt_session):
        options = RewriteOptions.trivially_optimized(0, (0,), (0, 1))
        assert options.wrap_conversions is False
        assert options.add_ttid_join_predicates is False
        assert options.add_dataset_filters is True

    def test_dropping_dataset_filter(self, paper_mt_session):
        options = RewriteOptions.trivially_optimized(0, (0, 1), (0, 1))
        rewritten = rewrite_sql(
            paper_mt_session, "SELECT E_age FROM Employees", options=options
        )
        assert "IN (0, 1)" not in rewritten

    def test_dropping_conversions_for_own_data(self, paper_mt_session):
        options = RewriteOptions.trivially_optimized(0, (0,), (0, 1))
        rewritten = rewrite_sql(
            paper_mt_session, "SELECT E_salary FROM Employees", dataset=(0,), options=options
        )
        assert "currencyToUniversal" not in rewritten
        assert "employees.E_ttid IN (0)" in rewritten

    def test_validity_check_still_applies_with_single_tenant(self, paper_mt_session):
        options = RewriteOptions.trivially_optimized(0, (0,), (0, 1))
        with pytest.raises(RewriteError):
            rewrite_sql(
                paper_mt_session,
                "SELECT E_name FROM Employees WHERE E_role_id = E_age",
                dataset=(0,),
                options=options,
            )


class TestScopeQueryRewriting:
    def test_complex_scope_projects_ttids(self, paper_mt_session):
        from repro.core.scope import parse_scope

        scope = parse_scope("FROM Employees WHERE E_salary > 180000")
        rewriter = make_rewriter(paper_mt_session, client=0, dataset=(0, 1))
        rewritten = rewriter.rewrite_scope_query(scope.query)
        text = to_sql(rewritten)
        assert text.startswith("SELECT DISTINCT employees.E_ttid")
        assert "currencyToUniversal" in text
        assert "IN (0, 1)" not in text  # the scope query itself is not D-filtered

    def test_scope_query_without_tenant_specific_table_rejected(self, paper_mt_session):
        from repro.core.scope import parse_scope

        scope = parse_scope("FROM Regions WHERE Re_reg_id > 0")
        rewriter = make_rewriter(paper_mt_session)
        with pytest.raises(RewriteError):
            rewriter.rewrite_scope_query(scope.query)


class TestRewriteCorrectnessOnData:
    """Execute canonical rewrites and compare with hand-computed expectations."""

    def test_average_salary_in_client_format(self, paper_mt_session):
        connection = paper_mt_session.connect(0, optimization="canonical")
        connection.set_scope("IN (0, 1)")
        average = connection.query("SELECT AVG(E_salary) AS a FROM Employees").scalar()
        expected = (50_000 + 70_000 + 150_000 + (80_000 + 200_000 + 1_000_000) * 1.1) / 6
        assert average == pytest.approx(expected, rel=1e-6)

    def test_same_query_in_eur_for_tenant_1(self, paper_mt_session):
        connection = paper_mt_session.connect(1, optimization="canonical")
        connection.set_scope("IN (0, 1)")
        average = connection.query("SELECT AVG(E_salary) AS a FROM Employees").scalar()
        expected = ((50_000 + 70_000 + 150_000) / 1.1 + 80_000 + 200_000 + 1_000_000) / 6
        assert average == pytest.approx(expected, rel=1e-6)

    def test_join_respects_tenant_boundaries(self, paper_mt_session):
        connection = paper_mt_session.connect(0, optimization="canonical")
        connection.set_scope("IN (0, 1)")
        rows = connection.query(
            "SELECT E_name, R_name FROM Employees, Roles WHERE E_role_id = R_role_id ORDER BY E_name"
        ).rows
        assert ("Ed", "intern") in rows  # tenant 1's role 0 is 'intern'
        assert ("Ed", "phD stud.") not in rows  # never joined with tenant 0's role 0
        assert len(rows) == 6

    def test_age_join_crosses_tenants(self, paper_mt_session):
        connection = paper_mt_session.connect(0, optimization="canonical")
        connection.set_scope("IN (0, 1)")
        rows = connection.query(
            "SELECT E1.E_name, E2.E_name FROM Employees E1, Employees E2 "
            "WHERE E1.E_age = E2.E_age AND E1.E_name < E2.E_name"
        ).rows
        assert rows == [("Alice", "Ed")]
