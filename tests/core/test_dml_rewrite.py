"""MTSQL DML semantics (§2.5, Appendix A.2): per-owner application and conversion."""

import pytest

from repro.errors import PrivilegeError


def salary_of(middleware, name):
    return middleware.database.query(
        f"SELECT E_salary FROM Employees WHERE E_name = '{name}'"
    ).scalar()


class TestInsert:
    def test_insert_into_own_data(self, paper_mt):
        connection = paper_mt.connect(0)
        result = connection.execute(
            "INSERT INTO Employees (E_emp_id, E_name, E_role_id, E_reg_id, E_salary, E_age) "
            "VALUES (10, 'Zoe', 0, 3, 90000, 33)"
        )
        assert result.rowcount == 1
        stored = paper_mt.database.query(
            "SELECT E_ttid, E_salary FROM Employees WHERE E_name = 'Zoe'"
        ).rows[0]
        assert stored == (0, 90000)

    def test_insert_on_behalf_of_other_tenant_converts_values(self, paper_mt):
        connection = paper_mt.connect(0)  # client thinks in USD
        connection.set_scope("IN (1)")  # inserting into tenant 1's data (EUR)
        connection.execute(
            "INSERT INTO Employees (E_emp_id, E_name, E_role_id, E_reg_id, E_salary, E_age) "
            "VALUES (11, 'Yan', 0, 2, 110000, 41)"
        )
        stored = paper_mt.database.query(
            "SELECT E_ttid, E_salary FROM Employees WHERE E_name = 'Yan'"
        ).rows[0]
        assert stored[0] == 1
        assert stored[1] == pytest.approx(100_000)  # 110k USD -> 100k EUR

    def test_insert_into_several_tenants_inserts_one_row_each(self, paper_mt):
        connection = paper_mt.connect(0)
        connection.set_scope("IN (0, 1)")
        result = connection.execute(
            "INSERT INTO Employees (E_emp_id, E_name, E_role_id, E_reg_id, E_salary, E_age) "
            "VALUES (12, 'Pat', 1, 0, 55000, 29)"
        )
        assert result.rowcount == 2
        rows = paper_mt.database.query(
            "SELECT E_ttid, E_salary FROM Employees WHERE E_name = 'Pat' ORDER BY E_ttid"
        ).rows
        assert rows[0] == (0, 55000)
        assert rows[1][1] == pytest.approx(50_000)

    def test_insert_select_copies_and_converts(self, paper_mt):
        """Appendix A.2: copying records on behalf of another tenant."""
        connection = paper_mt.connect(0)
        connection.set_scope("IN (1)")
        result = connection.execute(
            "INSERT INTO Employees (E_emp_id, E_name, E_role_id, E_reg_id, E_salary, E_age) ("
            "SELECT E_emp_id + 100, E_name, E_role_id, E_reg_id, E_salary, E_age "
            "FROM Employees WHERE E_age > 40)"
        )
        # the sub-query runs with D = {1} as well: Ed and Nancy qualify
        assert result.rowcount == 2
        count = paper_mt.database.query(
            "SELECT COUNT(*) AS c FROM Employees WHERE E_ttid = 1"
        ).scalar()
        assert count == 5
        # salaries were already in tenant 1's format and stay unchanged
        copies = paper_mt.database.query(
            "SELECT E_salary FROM Employees WHERE E_ttid = 1 AND E_emp_id > 100 ORDER BY E_salary"
        ).rows
        assert [value for (value,) in copies] == [pytest.approx(200_000), pytest.approx(1_000_000)]

    def test_insert_select_without_not_null_key_fails(self, paper_mt):
        """Appendix A.2 caveat: NOT NULL tenant-specific keys need explicit values."""
        from repro.errors import ConstraintViolation

        connection = paper_mt.connect(0)
        connection.set_scope("IN (1)")
        with pytest.raises(ConstraintViolation):
            connection.execute(
                "INSERT INTO Employees (E_name, E_role_id, E_reg_id, E_salary, E_age) ("
                "SELECT E_name, E_role_id, E_reg_id, E_salary, E_age FROM Employees WHERE E_age > 40)"
            )


class TestUpdate:
    def test_update_own_rows(self, paper_mt):
        connection = paper_mt.connect(0)
        result = connection.execute("UPDATE Employees SET E_salary = 60000 WHERE E_name = 'Patrick'")
        assert result.rowcount == 1
        assert salary_of(paper_mt, "Patrick") == 60000

    def test_update_other_tenant_converts_constant(self, paper_mt):
        connection = paper_mt.connect(0)
        connection.set_scope("IN (1)")
        connection.execute("UPDATE Employees SET E_salary = 110000 WHERE E_name = 'Allan'")
        # 110k USD written by a USD client lands as 100k EUR in tenant 1's rows
        assert salary_of(paper_mt, "Allan") == pytest.approx(100_000)

    def test_update_where_clause_interpreted_in_client_format(self, paper_mt):
        connection = paper_mt.connect(0)
        connection.set_scope("IN (0, 1)")
        # 190k USD threshold: hits Alice? no (150k); hits Nancy (200k EUR = 220k USD) and Ed
        result = connection.execute(
            "UPDATE Employees SET E_age = 99 WHERE E_salary > 190000"
        )
        assert result.rowcount == 2
        ages = paper_mt.database.query(
            "SELECT E_name FROM Employees WHERE E_age = 99 ORDER BY E_name"
        ).rows
        assert ages == [("Ed",), ("Nancy",)]

    def test_update_only_touches_dataset(self, paper_mt):
        connection = paper_mt.connect(0)  # default scope {0}
        result = connection.execute("UPDATE Employees SET E_age = E_age + 1")
        assert result.rowcount == 3
        untouched = paper_mt.database.query(
            "SELECT E_age FROM Employees WHERE E_name = 'Allan'"
        ).scalar()
        assert untouched == 25


class TestDelete:
    def test_delete_own_rows_only(self, paper_mt):
        connection = paper_mt.connect(0)
        result = connection.execute("DELETE FROM Employees WHERE E_age > 40")
        assert result.rowcount == 1  # Alice
        remaining = paper_mt.database.query("SELECT COUNT(*) AS c FROM Employees").scalar()
        assert remaining == 5

    def test_delete_across_tenants_with_converted_predicate(self, paper_mt):
        connection = paper_mt.connect(0)
        connection.set_scope("IN (0, 1)")
        result = connection.execute("DELETE FROM Employees WHERE E_salary > 500000")
        # only Ed (1M EUR = 1.1M USD) exceeds 500k USD
        assert result.rowcount == 1
        assert paper_mt.database.query(
            "SELECT COUNT(*) AS c FROM Employees WHERE E_name = 'Ed'"
        ).scalar() == 0

    def test_delete_requires_privilege(self, paper_mt):
        paper_mt.privileges.revoke_public("Employees", ["DELETE"])
        connection = paper_mt.connect(0)
        connection.set_scope("IN (1)")
        with pytest.raises(PrivilegeError):
            connection.execute("DELETE FROM Employees WHERE E_age > 0")


class TestDMLRewriteShapes:
    def test_update_generates_one_statement_per_owner(self, paper_mt):
        connection = paper_mt.connect(0)
        connection.set_scope("IN (0, 1)")
        connection.execute("UPDATE Employees SET E_age = E_age WHERE E_age > 200")
        assert len(connection.last_rewritten) == 2
        texts = [statement.to_sql() for statement in connection.last_rewritten]
        assert any("E_ttid IN (0)" in text for text in texts)
        assert any("E_ttid IN (1)" in text for text in texts)

    def test_delete_is_a_single_statement_with_dataset_filter(self, paper_mt):
        connection = paper_mt.connect(0)
        connection.set_scope("IN (0, 1)")
        connection.execute("DELETE FROM Employees WHERE E_age > 200")
        assert len(connection.last_rewritten) == 1
        assert "E_ttid IN (0, 1)" in connection.last_rewritten[0].to_sql()

    def test_insert_conversion_only_for_foreign_owners(self, paper_mt):
        connection = paper_mt.connect(0)
        connection.set_scope("IN (0, 1)")
        connection.execute(
            "INSERT INTO Employees (E_emp_id, E_name, E_role_id, E_reg_id, E_salary, E_age) "
            "VALUES (20, 'Quinn', 2, 1, 70000, 35)"
        )
        texts = [statement.to_sql() for statement in connection.last_rewritten]
        own = next(text for text in texts if ", 0)" in text.split("VALUES")[1])
        other = next(text for text in texts if text is not own)
        assert "currencyFromUniversal" not in own
        assert "currencyFromUniversal" in other
