"""MT schema metadata and conversion-function pairs (Tables 1 and 2 of the paper)."""

import pytest

from repro.core.conversion import (
    ConversionPair,
    ConversionRegistry,
    distributes_over,
    make_currency_pair,
    make_phone_pair,
    verify_conversion_pair,
)
from repro.core.mtschema import MTSchema, TableInfo
from repro.errors import CatalogError, ConversionError, MTSQLError
from repro.sql import ast
from repro.sql.parser import parse_statement


def employees_ddl(convertible: bool = True) -> ast.CreateTable:
    salary = (
        "E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,"
        if convertible
        else "E_salary DECIMAL(15,2) NOT NULL COMPARABLE,"
    )
    return parse_statement(
        f"""CREATE TABLE Employees SPECIFIC (
            E_emp_id INTEGER NOT NULL SPECIFIC,
            E_name VARCHAR(25) NOT NULL COMPARABLE,
            {salary}
            E_age INTEGER NOT NULL COMPARABLE
        )"""
    )


class TestMTSchema:
    def test_defaults_follow_section_2_2(self):
        schema = MTSchema()
        specific = parse_statement(
            "CREATE TABLE t SPECIFIC (a INTEGER NOT NULL, b INTEGER NOT NULL COMPARABLE)"
        )
        info = schema.add_from_create_table(specific)
        assert info.is_tenant_specific
        # attributes of tenant-specific tables default to tenant-specific
        assert info.attribute("a").comparability is ast.Comparability.SPECIFIC
        assert info.attribute("b").comparability is ast.Comparability.COMPARABLE

        global_table = parse_statement("CREATE TABLE g (x INTEGER NOT NULL)")
        global_info = schema.add_from_create_table(global_table)
        assert not global_info.is_tenant_specific
        # attributes of global tables default to comparable
        assert global_info.attribute("x").comparability is ast.Comparability.COMPARABLE

    def test_convertible_attribute_records_conversion_pair(self):
        schema = MTSchema()
        info = schema.add_from_create_table(employees_ddl(), ttid_column="E_ttid")
        attribute = info.attribute("E_salary")
        assert attribute.comparability is ast.Comparability.CONVERTIBLE
        assert attribute.conversion == "currencyToUniversal"
        assert info.ttid_column == "E_ttid"

    def test_convertible_without_functions_rejected(self):
        schema = MTSchema()
        statement = employees_ddl()
        for column in statement.columns:
            if column.name == "E_salary":
                column.to_universal = None
        with pytest.raises(MTSQLError):
            schema.add_from_create_table(statement)

    def test_lookup_helpers(self):
        schema = MTSchema()
        schema.add_from_create_table(employees_ddl(), ttid_column="E_ttid")
        assert schema.has_table("EMPLOYEES")
        assert schema.comparability("employees", "e_age") is ast.Comparability.COMPARABLE
        assert schema.conversion_name("employees", "E_salary") == "currencyToUniversal"
        assert schema.ttid_column("employees") == "E_ttid"
        assert schema.tenant_specific_tables()[0].name == "Employees"
        assert schema.global_tables() == []

    def test_duplicate_table_rejected(self):
        schema = MTSchema()
        schema.add_from_create_table(employees_ddl())
        with pytest.raises(CatalogError):
            schema.add_from_create_table(employees_ddl())

    def test_unknown_attribute_raises(self):
        schema = MTSchema()
        schema.add_from_create_table(employees_ddl())
        with pytest.raises(CatalogError):
            schema.table("employees").attribute("nope")

    def test_find_attribute_table(self):
        schema = MTSchema()
        schema.add_from_create_table(employees_ddl())
        schema.add_from_create_table(parse_statement("CREATE TABLE g (x INTEGER)"))
        assert schema.find_attribute_table("E_name", ["employees", "g"]) == "employees"
        assert schema.find_attribute_table("missing", ["employees", "g"]) is None

    def test_drop_table(self):
        schema = MTSchema()
        schema.add_from_create_table(employees_ddl())
        schema.drop_table("employees")
        assert not schema.has_table("employees")

    def test_attribute_groups(self):
        schema = MTSchema()
        info = schema.add_from_create_table(employees_ddl())
        assert {a.name for a in info.convertible_attributes()} == {"E_salary"}
        assert {a.name for a in info.tenant_specific_attributes()} == {"E_emp_id"}


class TestConversionPairs:
    def test_constant_factor_implies_linear_and_order_preserving(self):
        pair = ConversionPair("c", "to", "from", constant_factor=True)
        assert pair.linear and pair.order_preserving

    def test_distributability_matrix_matches_table_2(self):
        constant = ConversionPair("currency", "to", "from", constant_factor=True)
        linear = ConversionPair("temperature", "to", "from", linear=True)
        order_only = ConversionPair("rank", "to", "from", order_preserving=True)
        equality_only = ConversionPair("phone", "to", "from")

        # COUNT distributes over everything
        for pair in (constant, linear, order_only, equality_only):
            assert distributes_over("COUNT", pair)
        # MIN / MAX need order preservation
        for aggregate in ("MIN", "MAX"):
            assert distributes_over(aggregate, constant)
            assert distributes_over(aggregate, linear)
            assert distributes_over(aggregate, order_only)
            assert not distributes_over(aggregate, equality_only)
        # SUM / AVG need linearity
        for aggregate in ("SUM", "AVG"):
            assert distributes_over(aggregate, constant)
            assert distributes_over(aggregate, linear)
            assert not distributes_over(aggregate, order_only)
            assert not distributes_over(aggregate, equality_only)
        # holistic aggregates never distribute
        assert not distributes_over("MEDIAN", constant)

    def test_registry_lookup_by_name_and_function(self):
        registry = ConversionRegistry()
        pair = registry.register(make_currency_pair())
        assert registry.has("currency")
        assert registry.get("CURRENCY") is pair
        assert registry.by_function("currencyToUniversal") is pair
        assert registry.by_function("currencyFromUniversal") is pair
        assert registry.resolve("currencyToUniversal") is pair
        assert registry.by_function("unknown") is None
        with pytest.raises(ConversionError):
            registry.resolve("unknown")
        with pytest.raises(ConversionError):
            registry.register(make_currency_pair())

    def test_currency_pair_supports_inlining(self):
        pair = make_currency_pair()
        assert pair.supports_inlining
        inline = pair.inline_to(ast.Column("x"), ast.Column("t"))
        assert isinstance(inline, ast.BinaryOp) and inline.op == "*"

    def test_phone_pair_is_not_order_preserving(self):
        pair = make_phone_pair()
        assert not pair.order_preserving
        assert pair.supports_inlining
        inline = pair.inline_from(ast.Column("x"), ast.Column("t"))
        assert isinstance(inline, ast.FunctionCall) and inline.name == "CONCAT"


class TestVerifyConversionPair:
    """Definition 1 checked on concrete function implementations."""

    @staticmethod
    def _currency_call(name, args):
        rates = {0: 1.0, 1: 1.1, 2: 0.5}
        value, tenant = args
        if name == "to":
            return value * rates[tenant]
        return value / rates[tenant]

    def test_valid_pair_passes(self):
        pair = ConversionPair("currency", "to", "from", constant_factor=True)
        violations = verify_conversion_pair(
            self._currency_call, pair, tenants=[0, 1, 2], samples=[0.0, 1.5, 100.0, -3.25]
        )
        assert violations == []

    def test_non_invertible_pair_detected(self):
        def lossy(name, args):
            value, tenant = args
            return round(value) if name == "to" else value

        pair = ConversionPair("lossy", "to", "from")
        violations = verify_conversion_pair(lossy, pair, tenants=[0, 1], samples=[1.4, 2.6])
        assert violations

    def test_non_equality_preserving_detected(self):
        def collapsing(name, args):
            value, tenant = args
            return 0 if name == "to" else value

        pair = ConversionPair("collapse", "to", "from")
        violations = verify_conversion_pair(collapsing, pair, tenants=[0], samples=[1, 2])
        assert any("equality" in violation or "toUniversal" in violation for violation in violations)

    def test_phone_pair_on_running_example(self, paper_mt_phone):
        # samples must be in every sampled tenant's own format (Definition 1's
        # bijectivity is over each tenant's domain); '+...' numbers are valid
        # for both the no-prefix tenant 0 and the '+'-prefix tenant 1
        middleware = paper_mt_phone
        context = middleware.database.executor.context
        pair = middleware.conversions.get("phone")
        violations = verify_conversion_pair(
            lambda name, args: context.call_function(name, list(args)),
            pair,
            tenants=[0, 1],
            samples=["+411555001", "+498887766"],
        )
        assert violations == []

    def test_phone_pair_direct_conversions(self, paper_mt_phone):
        context = paper_mt_phone.database.executor.context
        assert context.call_function("phoneToUniversal", ["+411555", 1]) == "411555"
        assert context.call_function("phoneFromUniversal", ["411555", 1]) == "+411555"
        assert context.call_function("phoneToUniversal", ["411555", 0]) == "411555"

    def test_currency_pair_on_running_example(self, paper_mt_session):
        middleware = paper_mt_session
        context = middleware.database.executor.context
        pair = middleware.conversions.get("currency")
        violations = verify_conversion_pair(
            lambda name, args: context.call_function(name, list(args)),
            pair,
            tenants=[0, 1],
            samples=[0.0, 50_000.0, 123.45],
        )
        assert violations == []
