"""The MTBase middleware and client connections (Figure 4 pipeline)."""

import pytest

from repro.core import MTBase, OptimizationLevel
from repro.engine.database import StatementResult
from repro.errors import MTSQLError, PrivilegeError, RewriteError
from repro.sql import ast


class TestMiddlewareDDL:
    def test_tenant_specific_table_gets_ttid_column(self, paper_mt_session):
        table = paper_mt_session.database.catalog.table("Employees")
        assert table.schema.column_names[0] == "E_ttid"
        assert paper_mt_session.schema.table("Employees").is_tenant_specific

    def test_global_table_has_no_ttid_column(self, paper_mt_session):
        table = paper_mt_session.database.catalog.table("Regions")
        assert "ttid" not in [column.lower() for column in table.schema.column_names]

    def test_primary_key_extended_with_ttid(self, paper_mt_session):
        table = paper_mt_session.database.catalog.table("Employees")
        assert table.schema.primary_key == ("E_ttid", "E_emp_id")

    def test_foreign_key_extended_with_ttid(self, paper_mt_session):
        foreign_keys = paper_mt_session.database.catalog.foreign_keys("Employees")
        assert foreign_keys
        assert "E_ttid" in foreign_keys[0].columns
        assert "R_ttid" in foreign_keys[0].ref_columns

    def test_unregistered_tenant_cannot_connect(self, paper_mt_session):
        with pytest.raises(MTSQLError):
            paper_mt_session.connect(99)

    def test_connect_accepts_level_objects_and_names(self, paper_mt_session):
        assert paper_mt_session.connect(0, optimization=OptimizationLevel.O2).optimization is OptimizationLevel.O2
        assert paper_mt_session.connect(0, optimization="o1").optimization is OptimizationLevel.O1
        assert paper_mt_session.connect(0).optimization is OptimizationLevel.O4

    def test_create_table_via_execute_ddl_text(self):
        middleware = MTBase()
        middleware.execute_ddl("CREATE TABLE notes GLOBAL (n_id INTEGER NOT NULL, n_text VARCHAR(50))")
        assert middleware.database.catalog.has_table("notes")
        middleware.execute_ddl("DROP TABLE notes")
        assert not middleware.database.catalog.has_table("notes")

    def test_non_ddl_statement_rejected_by_execute_ddl(self):
        middleware = MTBase()
        with pytest.raises(MTSQLError):
            middleware.execute_ddl("DELETE FROM t")


class TestConnectionScopesAndPrivileges:
    def test_default_scope_is_own_data(self, paper_mt_session):
        connection = paper_mt_session.connect(0)
        assert connection.dataset() == (0,)
        assert connection.query("SELECT COUNT(*) AS c FROM Employees").scalar() == 3

    def test_set_scope_statement(self, paper_mt_session):
        connection = paper_mt_session.connect(0)
        result = connection.execute('SET SCOPE = "IN (0, 1)"')
        assert isinstance(result, StatementResult)
        assert connection.dataset() == (0, 1)
        connection.reset_scope()
        assert connection.dataset() == (0,)

    def test_empty_scope_means_all_tenants(self, paper_mt_session):
        connection = paper_mt_session.connect(1)
        connection.set_scope("IN ()")
        assert connection.dataset() == (0, 1)

    def test_complex_scope_resolution(self, paper_mt_session):
        connection = paper_mt_session.connect(0)
        connection.execute('SET SCOPE = "FROM Employees WHERE E_salary > 180000"')
        # 180k USD: only tenant 1 has salaries above it (200k, 1M EUR -> 220k, 1.1M USD)
        assert connection.dataset() == (1,)

    def test_complex_scope_in_client_format(self, paper_mt_session):
        connection = paper_mt_session.connect(1)
        connection.execute('SET SCOPE = "FROM Employees WHERE E_salary > 180000"')
        # 180k EUR = 198k USD: tenant 1 qualifies (200k, 1M); tenant 0 does not (max 150k)
        assert connection.dataset() == (1,)

    def test_privilege_pruning_blocks_unshared_tenants(self):
        from tests.conftest import build_paper_example

        middleware = build_paper_example()
        # replace the public grant with nothing: tenants only see their own data
        middleware.privileges.revoke_public("Employees", ["READ", "INSERT", "UPDATE", "DELETE"])
        middleware.privileges.revoke_public("Roles", ["READ", "INSERT", "UPDATE", "DELETE"])
        connection = middleware.connect(0)
        connection.set_scope("IN (0, 1)")
        assert connection.query("SELECT COUNT(*) AS c FROM Employees").scalar() == 3
        # an explicit grant opens tenant 1's rows
        grantor = middleware.connect(1)
        grantor.execute("GRANT READ ON Employees TO 0")
        assert connection.query("SELECT COUNT(*) AS c FROM Employees").scalar() == 6

    def test_query_with_no_readable_tenant_raises(self):
        from tests.conftest import build_paper_example

        middleware = build_paper_example()
        middleware.privileges.revoke_public("Employees", ["READ", "INSERT", "UPDATE", "DELETE"])
        connection = middleware.connect(0)
        connection.set_scope("IN (1)")
        with pytest.raises(PrivilegeError):
            connection.query("SELECT COUNT(*) AS c FROM Employees")

    def test_revoke_takes_effect(self):
        from tests.conftest import build_paper_example

        middleware = build_paper_example()
        middleware.privileges.revoke_public("Employees", ["READ", "INSERT", "UPDATE", "DELETE"])
        grantor = middleware.connect(1)
        grantor.execute("GRANT READ ON Employees TO 0")
        reader = middleware.connect(0)
        reader.set_scope("IN (0, 1)")
        assert reader.query("SELECT COUNT(*) AS c FROM Employees").scalar() == 6
        grantor.execute("REVOKE READ ON Employees FROM 0")
        assert reader.query("SELECT COUNT(*) AS c FROM Employees").scalar() == 3


class TestResultPresentation:
    def test_results_presented_in_client_format(self, paper_mt_session):
        usd = paper_mt_session.connect(0)
        usd.set_scope("IN (1)")
        eur = paper_mt_session.connect(1)
        eur.set_scope("IN (1)")
        usd_value = usd.query("SELECT MAX(E_salary) AS top FROM Employees").scalar()
        eur_value = eur.query("SELECT MAX(E_salary) AS top FROM Employees").scalar()
        assert usd_value == pytest.approx(1_000_000 * 1.1)
        assert eur_value == pytest.approx(1_000_000)

    def test_star_select_hides_ttid_from_clients(self, paper_mt_session):
        connection = paper_mt_session.connect(0)
        connection.set_scope("IN (0, 1)")
        result = connection.query("SELECT * FROM Roles ORDER BY R_name LIMIT 1")
        assert [column.lower() for column in result.columns] == ["r_role_id", "r_name"]

    def test_rewrite_sql_exposes_statement_sent_to_dbms(self, paper_mt_session):
        connection = paper_mt_session.connect(0, optimization="canonical")
        connection.set_scope("IN (0, 1)")
        text = connection.rewrite_sql("SELECT E_salary FROM Employees")
        assert "currencyFromUniversal" in text
        assert connection.rewrite("SELECT E_salary FROM Employees")  # AST form

    def test_last_rewritten_recorded(self, paper_mt_session):
        connection = paper_mt_session.connect(0)
        connection.set_scope("IN (0, 1)")
        connection.query("SELECT COUNT(*) AS c FROM Employees")
        assert len(connection.last_rewritten) == 1
        assert isinstance(connection.last_rewritten[0], ast.Select)

    def test_rewrite_rejects_non_select(self, paper_mt_session):
        connection = paper_mt_session.connect(0)
        with pytest.raises(MTSQLError):
            connection.rewrite("DELETE FROM Employees")


class TestViews:
    def test_tenant_view_is_scoped_and_client_formatted(self, paper_mt):
        connection = paper_mt.connect(0)
        connection.execute(
            "CREATE VIEW my_seniors AS SELECT E_name, E_salary FROM Employees WHERE E_age > 40"
        )
        rows = paper_mt.database.query("SELECT * FROM my_seniors ORDER BY E_name").rows
        # only tenant 0's seniors (default scope), salary already in USD
        assert rows == [("Alice", 150_000)]

    def test_cross_tenant_view(self, paper_mt):
        connection = paper_mt.connect(0)
        connection.set_scope("IN (0, 1)")
        connection.execute(
            "CREATE VIEW all_seniors AS SELECT E_name, E_salary FROM Employees WHERE E_age > 40"
        )
        rows = paper_mt.database.query("SELECT * FROM all_seniors ORDER BY E_name").rows
        names = [name for name, _ in rows]
        assert names == ["Alice", "Ed", "Nancy"]
        salaries = dict(rows)
        assert salaries["Ed"] == pytest.approx(1_100_000)
