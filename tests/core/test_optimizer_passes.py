"""The §4.2 optimization passes: push-up, aggregation distribution, inlining.

Every test checks two things: the structural effect on the rewritten SQL (the
optimization actually fired) and result equivalence with the canonical
rewrite (the optimization is semantics preserving).
"""

import pytest

from repro.compile import LEVEL_PASSES, applies_trivial
from repro.core.optimizer.levels import ALL_LEVELS, OptimizationLevel


def connections(middleware, levels=("canonical", "o2", "o3", "o4", "inl-only"), client=0, scope="IN (0, 1)"):
    for level in levels:
        connection = middleware.connect(client, optimization=level)
        connection.set_scope(scope)
        yield level, connection


def assert_levels_agree(middleware, sql, client=0, scope="IN (0, 1)"):
    reference = None
    for level, connection in connections(middleware, client=client, scope=scope):
        rows = connection.query(sql).rows
        if reference is None:
            reference = (level, rows)
            continue
        assert len(rows) == len(reference[1]), f"{level} row count differs from {reference[0]}"
        for expected, actual in zip(reference[1], rows):
            for left, right in zip(expected, actual):
                if isinstance(left, float) or isinstance(right, float):
                    assert float(left) == pytest.approx(float(right), rel=1e-6)
                else:
                    assert left == right, f"{level} differs from {reference[0]}"


class TestOptimizationLevels:
    def test_level_parsing(self):
        assert OptimizationLevel.from_name("o4") is OptimizationLevel.O4
        assert OptimizationLevel.from_name("INL-ONLY") is OptimizationLevel.INL_ONLY
        assert OptimizationLevel.from_name("inl_only") is OptimizationLevel.INL_ONLY
        # the error lists every valid level name (bench/CLI arg parsing relies
        # on the same list via OptimizationLevel.levels())
        with pytest.raises(ValueError, match="canonical, o1, o2, o3, o4, inl-only"):
            OptimizationLevel.from_name("o9")

    def test_levels_helper_lists_table_6_order(self):
        assert OptimizationLevel.levels() == (
            "canonical", "o1", "o2", "o3", "o4", "inl-only",
        )

    def test_pass_mapping_matches_table_6(self):
        assert LEVEL_PASSES[OptimizationLevel.CANONICAL] == ()
        assert LEVEL_PASSES[OptimizationLevel.O1] == ()
        assert LEVEL_PASSES[OptimizationLevel.O2] == ("pushup",)
        assert LEVEL_PASSES[OptimizationLevel.O3] == ("pushup", "distribution")
        assert LEVEL_PASSES[OptimizationLevel.O4] == ("pushup", "distribution", "inlining")
        assert LEVEL_PASSES[OptimizationLevel.INL_ONLY] == ("inlining",)
        # §4.1 is not a pass: every level but CANONICAL enables it as flags
        assert not applies_trivial(OptimizationLevel.CANONICAL)
        assert all(
            applies_trivial(level)
            for level in ALL_LEVELS
            if level is not OptimizationLevel.CANONICAL
        )
        assert set(LEVEL_PASSES) == set(ALL_LEVELS)
        assert len(ALL_LEVELS) == 6


class TestConversionPushUp:
    def test_constant_comparison_converts_the_constant(self, paper_mt_session):
        connection = paper_mt_session.connect(0, optimization="o2")
        connection.set_scope("IN (0, 1)")
        rewritten = connection.rewrite_sql(
            "SELECT E_name FROM Employees WHERE E_salary > 100000"
        )
        # the attribute is no longer converted; the constant is (Listing 15)
        assert "currencyToUniversal(E_salary" not in rewritten
        assert "currencyToUniversal(100000, 0)" in rewritten

    def test_attribute_to_attribute_comparison_in_universal_format(self, paper_mt_session):
        connection = paper_mt_session.connect(0, optimization="o2")
        connection.set_scope("IN (0, 1)")
        rewritten = connection.rewrite_sql(
            "SELECT E1.E_name FROM Employees E1, Employees E2 WHERE E1.E_salary > E2.E_salary"
        )
        # client presentation push-up drops the fromUniversal calls in the predicate
        where_clause = rewritten.split("WHERE", 1)[1]
        assert "currencyFromUniversal" not in where_clause.split("ORDER BY")[0]
        assert where_clause.count("currencyToUniversal") >= 2

    def test_phone_equality_with_constant_still_pushed(self, paper_mt_phone):
        connection = paper_mt_phone.connect(0, optimization="o2")
        connection.set_scope("IN (0, 1)")
        rewritten = connection.rewrite_sql(
            "SELECT E_name FROM Employees WHERE E_phone = '411555000'"
        )
        assert "phoneToUniversal('411555000', 0)" in rewritten

    def test_phone_inequality_not_pushed_not_order_preserving(self, paper_mt_phone):
        connection = paper_mt_phone.connect(0, optimization="o2")
        connection.set_scope("IN (0, 1)")
        rewritten = connection.rewrite_sql(
            "SELECT E_name FROM Employees WHERE E_phone > '411555000'"
        )
        # the attribute conversion must stay: phone conversion is not order preserving
        assert "phoneToUniversal(E_phone" in rewritten

    def test_between_pushed_for_order_preserving_pair(self, paper_mt_session):
        connection = paper_mt_session.connect(0, optimization="o2")
        connection.set_scope("IN (0, 1)")
        rewritten = connection.rewrite_sql(
            "SELECT E_name FROM Employees WHERE E_salary BETWEEN 60000 AND 90000"
        )
        assert "currencyToUniversal(E_salary" not in rewritten
        assert rewritten.count("currencyToUniversal(60000, 0)") == 1

    def test_pushup_preserves_results(self, paper_mt_session):
        assert_levels_agree(
            paper_mt_session,
            "SELECT E_name, E_salary FROM Employees WHERE E_salary > 100000 ORDER BY E_name",
        )
        assert_levels_agree(
            paper_mt_session,
            "SELECT E1.E_name FROM Employees E1, Employees E2 "
            "WHERE E1.E_salary > E2.E_salary AND E1.E_name < E2.E_name ORDER BY E1.E_name",
        )

    def test_scalar_subquery_treated_as_client_constant(self, paper_mt_session):
        connection = paper_mt_session.connect(0, optimization="o2")
        connection.set_scope("IN (0, 1)")
        sql = (
            "SELECT E_name FROM Employees WHERE E_salary > (SELECT AVG(E_salary) FROM Employees)"
        )
        rewritten = connection.rewrite_sql(sql)
        # the outer attribute is compared raw; the sub-query result is converted per tenant
        outer_where = rewritten.split("WHERE", 1)[1]
        assert "currencyToUniversal(E_salary, employees.E_ttid)" not in outer_where.split("(SELECT")[0]
        assert_levels_agree(paper_mt_session, sql + " ORDER BY E_name")


class TestAggregationDistribution:
    def test_sum_distributed_over_tenants(self, paper_mt_session):
        connection = paper_mt_session.connect(0, optimization="o3")
        connection.set_scope("IN (0, 1)")
        rewritten = connection.rewrite_sql("SELECT SUM(E_salary) AS total FROM Employees")
        # Listing 16 shape: inner per-tenant partials, outer combination
        assert "GROUP BY employees.E_ttid" in rewritten
        assert "currencyToUniversal(SUM(E_salary)" in rewritten
        assert "currencyFromUniversal(SUM(" in rewritten

    def test_avg_distributed_as_sum_over_count(self, paper_mt_session):
        connection = paper_mt_session.connect(0, optimization="o3")
        connection.set_scope("IN (0, 1)")
        rewritten = connection.rewrite_sql("SELECT AVG(E_salary) AS a FROM Employees")
        assert "SUM(mt_p0_sum) / SUM(mt_p0_cnt)" in rewritten

    def test_distribution_preserves_group_keys(self, paper_mt_session):
        sql = (
            "SELECT E_age, COUNT(*) AS c, SUM(E_salary) AS total, MIN(E_salary) AS lo, "
            "MAX(E_salary) AS hi, AVG(E_salary) AS mean FROM Employees "
            "GROUP BY E_age ORDER BY E_age"
        )
        connection = paper_mt_session.connect(0, optimization="o3")
        connection.set_scope("IN (0, 1)")
        assert "mt_part" in connection.rewrite_sql(sql)
        assert_levels_agree(paper_mt_session, sql)

    def test_phone_aggregation_not_distributed(self, paper_mt_phone):
        connection = paper_mt_phone.connect(0, optimization="o3")
        connection.set_scope("IN (0, 1)")
        rewritten = connection.rewrite_sql("SELECT MIN(E_phone) AS first_phone FROM Employees")
        # the phone pair is not order preserving: no distribution
        assert "mt_part" not in rewritten

    def test_count_distinct_not_distributed(self, paper_mt_session):
        connection = paper_mt_session.connect(0, optimization="o3")
        connection.set_scope("IN (0, 1)")
        rewritten = connection.rewrite_sql(
            "SELECT COUNT(DISTINCT E_salary) AS distinct_salaries FROM Employees"
        )
        assert "mt_part" not in rewritten

    def test_additive_argument_not_distributed(self, paper_mt_session):
        # salary - age is not a pure multiplicative use of the converted value
        connection = paper_mt_session.connect(0, optimization="o3")
        connection.set_scope("IN (0, 1)")
        rewritten = connection.rewrite_sql("SELECT SUM(E_salary - E_age) AS x FROM Employees")
        assert "mt_part" not in rewritten
        assert_levels_agree(paper_mt_session, "SELECT SUM(E_salary - E_age) AS x FROM Employees")

    def test_multiplicative_argument_distributed(self, paper_mt_session):
        sql = "SELECT SUM(E_salary * (1 - 0.1)) AS discounted FROM Employees"
        connection = paper_mt_session.connect(0, optimization="o3")
        connection.set_scope("IN (0, 1)")
        assert "mt_part" in connection.rewrite_sql(sql)
        assert_levels_agree(paper_mt_session, sql)

    def test_distribution_with_having_and_order(self, paper_mt_session):
        sql = (
            "SELECT E_reg_id, SUM(E_salary) AS total FROM Employees "
            "GROUP BY E_reg_id HAVING COUNT(*) >= 1 ORDER BY total DESC"
        )
        assert_levels_agree(paper_mt_session, sql)

    def test_global_aggregates_over_empty_input_keep_count_semantics(self, paper_mt_session):
        """Regression: COUNT over zero qualifying rows must stay 0 after distribution."""
        sql = (
            "SELECT COUNT(E_salary) AS c, SUM(E_salary) AS s, AVG(E_salary) AS a "
            "FROM Employees WHERE E_salary < 0"
        )
        for level in ("canonical", "o3", "o4"):
            connection = paper_mt_session.connect(0, optimization=level)
            connection.set_scope("IN (0, 1)")
            rows = connection.query(sql).rows
            assert rows == [(0, None, None)], level

    def test_distribution_reduces_conversion_calls(self, paper_mt_session):
        database = paper_mt_session.database
        sql = "SELECT SUM(E_salary) AS total FROM Employees"

        def run(level):
            connection = paper_mt_session.connect(0, optimization=level)
            connection.set_scope("IN (0, 1)")
            database.clear_function_caches()
            database.reset_stats()
            connection.query(sql)
            return database.stats.udf_calls

        canonical_calls = run("canonical")
        distributed_calls = run("o3")
        # canonical: 2 calls per employee (12); distributed: T + 1 = 3
        assert canonical_calls == 12
        assert distributed_calls == 3


class TestInlining:
    def test_conversion_calls_replaced_by_inline_expressions(self, paper_mt_session):
        connection = paper_mt_session.connect(0, optimization="inl-only")
        connection.set_scope("IN (0, 1)")
        rewritten = connection.rewrite_sql("SELECT E_salary FROM Employees")
        assert "currencyToUniversal" not in rewritten
        assert "mt_currency_rate_to_universal(employees.E_ttid)" in rewritten
        assert "mt_currency_rate_from_universal(0)" in rewritten

    def test_phone_inlining_uses_substring_and_concat(self, paper_mt_phone):
        connection = paper_mt_phone.connect(0, optimization="inl-only")
        connection.set_scope("IN (0, 1)")
        rewritten = connection.rewrite_sql("SELECT E_phone FROM Employees")
        assert "phoneToUniversal" not in rewritten
        assert "SUBSTRING" in rewritten and "CONCAT" in rewritten
        assert "mt_phone_prefix" in rewritten

    def test_o4_combines_distribution_and_inlining(self, paper_mt_session):
        connection = paper_mt_session.connect(0, optimization="o4")
        connection.set_scope("IN (0, 1)")
        rewritten = connection.rewrite_sql("SELECT SUM(E_salary) AS total FROM Employees")
        assert "mt_part" in rewritten
        assert "currencyToUniversal" not in rewritten
        assert "mt_currency_rate_to_universal" in rewritten

    def test_inlining_preserves_results(self, paper_mt_phone):
        assert_levels_agree(
            paper_mt_phone,
            "SELECT E_name, E_phone, E_salary FROM Employees ORDER BY E_name",
        )

    def test_every_level_agrees_on_a_mixed_query(self, paper_mt_session):
        assert_levels_agree(
            paper_mt_session,
            "SELECT E_reg_id, COUNT(*) AS c, AVG(E_salary) AS mean FROM Employees "
            "WHERE E_age >= 25 AND E_salary > 60000 GROUP BY E_reg_id ORDER BY E_reg_id",
        )

    def test_every_level_agrees_for_eur_client(self, paper_mt_session):
        assert_levels_agree(
            paper_mt_session,
            "SELECT SUM(E_salary) AS total FROM Employees WHERE E_age < 50",
            client=1,
        )
