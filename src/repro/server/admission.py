"""Per-tenant admission control: bounded queues, concurrency caps, shedding.

Every EXECUTE/FETCH request passes through the connection's tenant gate
before it may touch a worker thread:

* up to ``concurrency`` requests of one tenant run (or hold an open cursor)
  at once,
* up to ``queue_depth`` more may *wait* for a slot,
* anything beyond that is **shed immediately** with a retryable
  ``SERVER_BUSY`` error frame — the request never consumes backend
  resources, and the client knows a backoff-and-retry is safe.

Slots are held for the whole life of a request **including its result
stream**: a client that executes a large SELECT and stops fetching keeps its
slot pinned until the cursor is exhausted or closed, so one slow consumer
throttles *its own tenant* (further statements shed) instead of stalling the
event loop or other tenants — that is the backpressure story.

Load is tracked with the same :class:`~repro.gateway.metrics.LoadGauge` the
thread-pool :class:`~repro.gateway.executor.ConcurrentExecutor` uses, so the
two serving tiers report comparable in-flight/queue-depth numbers.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional

from ..errors import ServerBusyError
from ..gateway.metrics import LoadGauge, LoadSnapshot


@dataclass(frozen=True)
class AdmissionSnapshot:
    """Point-in-time counters of one gate (or the whole controller)."""

    admitted: int
    shed: int
    load: LoadSnapshot

    def describe(self) -> str:
        """One-line human-readable admission summary."""
        return f"admitted {self.admitted}, shed {self.shed}, {self.load.describe()}"


class TenantGate:
    """One tenant's bounded admission queue + concurrency cap.

    Single-loop discipline: ``admit``/``release`` run on the event-loop
    thread (worker threads release via ``loop.call_soon_threadsafe``), so the
    counters need no locking; the shared :class:`LoadGauge` is thread-safe on
    its own.
    """

    def __init__(self, ttid: int, concurrency: int, queue_depth: int) -> None:
        self.ttid = ttid
        self.concurrency = concurrency
        self.queue_depth = queue_depth
        self.gauge = LoadGauge()
        self.admitted = 0
        self.shed = 0
        self._in_flight = 0
        self._waiters: list[asyncio.Future] = []

    async def admit(self) -> None:
        """Take one execution slot, waiting in the bounded queue if needed.

        Raises :class:`~repro.errors.ServerBusyError` without waiting when
        the queue is already full — the load-shedding path.
        """
        if self._in_flight < self.concurrency and not self._waiters:
            self._grant()
            return
        if len(self._waiters) >= self.queue_depth:
            self.shed += 1
            raise ServerBusyError(
                f"tenant {self.ttid} is at capacity ({self._in_flight} in "
                f"flight, {len(self._waiters)} queued); retry after a backoff"
            )
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        self.gauge.enqueue()
        try:
            await waiter
        except asyncio.CancelledError:
            if waiter in self._waiters:
                # timed out / disconnected while still queued: withdraw
                self._waiters.remove(waiter)
                self.gauge.dequeue()
            elif waiter.done() and not waiter.cancelled():
                # granted in the same instant the wait was cancelled: hand
                # the slot straight back (to the next waiter, if any)
                self.gauge.dequeue()
                self._release_slot()
            # else: _release_slot already saw the cancelled waiter and
            # dequeued it on our behalf
            raise
        self.gauge.dequeue()

    def _grant(self) -> None:
        self._in_flight += 1
        self.admitted += 1
        self.gauge.enter()

    def release(self) -> None:
        """Give one slot back; a queued waiter (if any) takes it over."""
        self._release_slot()

    def _release_slot(self) -> None:
        self._in_flight -= 1
        self.gauge.exit()
        while self._waiters:
            waiter = self._waiters.pop(0)
            if waiter.cancelled():
                self.gauge.dequeue()
                continue
            self._grant()
            waiter.set_result(None)
            return

    @property
    def in_flight(self) -> int:
        """Requests of this tenant currently executing or holding a cursor."""
        return self._in_flight

    @property
    def queued(self) -> int:
        """Requests of this tenant currently waiting for a slot."""
        return len(self._waiters)

    def snapshot(self) -> AdmissionSnapshot:
        """This gate's counters plus its gauge reading."""
        return AdmissionSnapshot(
            admitted=self.admitted, shed=self.shed, load=self.gauge.snapshot()
        )


class AdmissionController:
    """The server's tenant-gate registry (lazily one gate per tenant)."""

    def __init__(self, concurrency: int, queue_depth: int) -> None:
        self.concurrency = concurrency
        self.queue_depth = queue_depth
        self._gates: dict[int, TenantGate] = {}

    def gate(self, ttid: int) -> TenantGate:
        """The (lazily created) gate of tenant ``ttid``."""
        gate = self._gates.get(ttid)
        if gate is None:
            gate = TenantGate(ttid, self.concurrency, self.queue_depth)
            self._gates[ttid] = gate
        return gate

    def snapshot(self) -> AdmissionSnapshot:
        """Aggregate counters across every tenant gate.

        Peaks sum per-gate peaks, so the aggregate is an upper bound (the
        per-tenant peaks need not have coincided) — fine for the "how close
        to capacity did we get" question the number answers.
        """
        gates = list(self._gates.values())
        snapshots = [gate.snapshot() for gate in gates]
        return AdmissionSnapshot(
            admitted=sum(s.admitted for s in snapshots),
            shed=sum(s.shed for s in snapshots),
            load=LoadSnapshot(
                in_flight=sum(s.load.in_flight for s in snapshots),
                queued=sum(s.load.queued for s in snapshots),
                peak_in_flight=sum(s.load.peak_in_flight for s in snapshots),
                peak_queued=sum(s.load.peak_queued for s in snapshots),
            ),
        )

    def tenant_snapshot(self, ttid: int) -> Optional[AdmissionSnapshot]:
        """One tenant's counters, or ``None`` if it never connected."""
        gate = self._gates.get(ttid)
        return gate.snapshot() if gate is not None else None
