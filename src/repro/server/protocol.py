"""The wire protocol of the serving tier: framing, value codec, error codes.

Every message is one **frame**: a 4-byte big-endian payload length followed
by a UTF-8 JSON object.  Requests carry an ``op`` field (HELLO, PREPARE,
EXECUTE, FETCH, EXPLAIN, CLOSE_CURSOR, CLOSE); responses either repeat the
request's shape with ``ok: true`` or are **error frames**::

    {"ok": false, "error": "SERVER_BUSY", "message": "...", "retryable": true}

``error`` is a stable wire code mapped 1:1 onto the :mod:`repro.errors`
taxonomy (:data:`WIRE_CODES`), so a client reconstructs the *same* exception
class the server raised — ``except ParameterError`` works identically on
both sides of the socket.

Row and bind-parameter values travel JSON-natively except for the two types
JSON cannot express: :class:`~repro.sql.types.Date` becomes
``{"$date": days}`` and ``bytes`` becomes ``{"$bytes": hex}`` — both exact
round-trips, so wire results are value-identical to in-process results.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Optional

from ..errors import (
    BackendError,
    CatalogError,
    ClusterError,
    ConfigurationError,
    ConstraintViolation,
    ConversionError,
    ExecutionError,
    FunctionError,
    InvalidStatementError,
    LexerError,
    MTSQLError,
    NotSupportedError,
    ParameterError,
    ParseError,
    PrivilegeError,
    ProtocolError,
    ReproError,
    RequestTimeoutError,
    RewriteError,
    ScopeError,
    ServerBusyError,
    ServerError,
    SQLError,
    TypeCheckError,
    TypeMismatchError,
)
from ..sql.types import Date

#: protocol revision negotiated in HELLO; bumped on incompatible changes
PROTOCOL_VERSION = 1

#: hard ceiling on one frame's payload (a malformed length prefix must not
#: make either end allocate gigabytes)
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: wire code -> exception class; the *server-side* taxonomy a client can see.
#: Order matters for encoding: the first entry whose class matches (exact
#: type, then subclass walk) wins, so specific codes precede their bases.
WIRE_CODES: dict[str, type] = {
    "SERVER_BUSY": ServerBusyError,
    "REQUEST_TIMEOUT": RequestTimeoutError,
    "PROTOCOL": ProtocolError,
    "SERVER": ServerError,
    "INVALID_STATEMENT": InvalidStatementError,
    "PARSE": ParseError,
    "LEXER": LexerError,
    "PARAMETER": ParameterError,
    "CATALOG": CatalogError,
    "TYPE_MISMATCH": TypeMismatchError,
    "CONSTRAINT": ConstraintViolation,
    "FUNCTION": FunctionError,
    "EXECUTION": ExecutionError,
    "NOT_SUPPORTED": NotSupportedError,
    "SCOPE": ScopeError,
    "PRIVILEGE": PrivilegeError,
    "REWRITE": RewriteError,
    "CONVERSION": ConversionError,
    "MTSQL": MTSQLError,
    "CLUSTER": ClusterError,
    "BACKEND": BackendError,
    "CONFIGURATION": ConfigurationError,
    "TYPECHECK": TypeCheckError,
    "SQL": SQLError,
    "REPRO": ReproError,
}

_CLASS_TO_CODE = {cls: code for code, cls in WIRE_CODES.items()}


def error_code(exc: BaseException) -> str:
    """The wire code for an exception (nearest registered ancestor class)."""
    for cls in type(exc).__mro__:
        code = _CLASS_TO_CODE.get(cls)
        if code is not None:
            return code
    return "SERVER"


def error_frame(exc: BaseException) -> dict[str, Any]:
    """Build the error frame describing ``exc`` (taxonomy code + retryability)."""
    return {
        "ok": False,
        "error": error_code(exc),
        "message": str(exc),
        "retryable": bool(getattr(exc, "retryable", False)),
    }


def exception_from_frame(frame: dict[str, Any]) -> ReproError:
    """Reconstruct the server's exception from an error frame.

    Unknown codes (a newer server) degrade to :class:`ServerError` rather
    than failing, keeping old clients usable against new servers.
    """
    cls = WIRE_CODES.get(str(frame.get("error", "")), ServerError)
    message = str(frame.get("message", "server error"))
    try:
        exc = cls(message)
    except TypeError:  # pragma: no cover - all registered classes accept one arg
        exc = ServerError(message)
    return exc


# -- value codec -------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """Encode one cell/bind value into its JSON-representable form."""
    if isinstance(value, Date):
        return {"$date": value.days}
    if isinstance(value, (bytes, bytearray)):
        return {"$bytes": bytes(value).hex()}
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): encode_value(item) for key, item in value.items()}
    return value


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value` (lists stay lists; rows re-tuple upstream)."""
    if isinstance(value, dict):
        if set(value) == {"$date"}:
            return Date(int(value["$date"]))
        if set(value) == {"$bytes"}:
            return bytes.fromhex(value["$bytes"])
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


def encode_rows(rows: list[tuple]) -> list[list[Any]]:
    """Encode a row batch for a FETCH response frame."""
    return [[encode_value(value) for value in row] for row in rows]


def decode_rows(rows: list[list[Any]]) -> list[tuple]:
    """Decode a FETCH response frame's row batch back into row tuples."""
    return [tuple(decode_value(value) for value in row) for row in rows]


def encode_parameters(parameters: Any) -> Any:
    """Encode bind parameters (positional sequence or name mapping) or None."""
    if parameters is None:
        return None
    return encode_value(parameters)


def decode_parameters(parameters: Any) -> Any:
    """Decode bind parameters; positional bindings come back as a tuple."""
    if parameters is None:
        return None
    decoded = decode_value(parameters)
    if isinstance(decoded, list):
        return tuple(decoded)
    return decoded


# -- framing -----------------------------------------------------------------


def encode_frame(message: dict[str, Any]) -> bytes:
    """Serialize one message into a length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict[str, Any]:
    """Parse one frame payload; anything but a JSON object is a violation."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


def payload_length(prefix: bytes) -> int:
    """Validate a 4-byte length prefix and return the payload length."""
    if len(prefix) != _LENGTH.size:
        raise ProtocolError("truncated frame length prefix")
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return length


async def read_frame(reader) -> Optional[dict[str, Any]]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    import asyncio

    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from exc
    length = payload_length(prefix)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_payload(payload)


def read_frame_blocking(stream) -> Optional[dict[str, Any]]:
    """Read one frame from a blocking binary file object; ``None`` on EOF."""
    prefix = stream.read(_LENGTH.size)
    if not prefix:
        return None
    length = payload_length(prefix)
    payload = stream.read(length)
    if payload is None or len(payload) != length:
        raise ProtocolError("connection closed mid-frame")
    return decode_payload(payload)
