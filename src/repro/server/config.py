"""Serving-tier configuration: admission, worker-pool and timeout knobs.

A :class:`ServerConfig` gathers every tunable of :class:`repro.server.
ReproServer`.  Deployments configure through environment variables — the
same convention (and the same strictness) as the benchmark harness's
``REPRO_BENCH_*`` family: a malformed value raises
:class:`~repro.errors.ConfigurationError` instead of being silently replaced
by a default, because a typo in an admission bound must not quietly run a
server with the wrong capacity.

+--------------------------------+-----------------------------------------+
| variable                       | meaning                                 |
+================================+=========================================+
| ``REPRO_SERVER_PORT``          | TCP port to bind (0 = ephemeral)        |
| ``REPRO_SERVER_QUEUE_DEPTH``   | per-tenant bounded admission queue      |
| ``REPRO_SERVER_CONCURRENCY``   | per-tenant in-flight request limit      |
| ``REPRO_SERVER_WORKERS``       | blocking-backend worker threads         |
| ``REPRO_SERVER_TIMEOUT``       | per-request timeout in seconds          |
+--------------------------------+-----------------------------------------+
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError


def _env_int(name: str, default: int, minimum: int) -> int:
    """Read an integer knob; malformed/out-of-range values are configuration
    errors, mirroring the ``REPRO_BENCH_SF`` handling."""
    value = os.environ.get(name, "").strip()
    if not value:
        return default
    try:
        parsed = int(value)
    except ValueError:
        raise ConfigurationError(
            f"the {name} environment variable must be an integer "
            f"(got {value!r})"
        ) from None
    if parsed < minimum:
        raise ConfigurationError(
            f"the {name} environment variable must be >= {minimum} "
            f"(got {parsed})"
        )
    return parsed


def _env_seconds(name: str, default: float) -> float:
    """Read a positive duration knob (seconds) with strict validation."""
    value = os.environ.get(name, "").strip()
    if not value:
        return default
    try:
        parsed = float(value)
    except ValueError:
        raise ConfigurationError(
            f"the {name} environment variable must be a number of seconds "
            f"(got {value!r})"
        ) from None
    if parsed <= 0:
        raise ConfigurationError(
            f"the {name} environment variable must be positive (got {parsed})"
        )
    return parsed


def env_port(default: int = 0) -> int:
    """Port override via ``REPRO_SERVER_PORT`` (0 picks an ephemeral port)."""
    port = _env_int("REPRO_SERVER_PORT", default, minimum=0)
    if port > 65535:
        raise ConfigurationError(
            f"the REPRO_SERVER_PORT environment variable must be a TCP port "
            f"(0-65535, got {port})"
        )
    return port


def env_queue_depth(default: int = 32) -> int:
    """Per-tenant admission queue bound via ``REPRO_SERVER_QUEUE_DEPTH``."""
    return _env_int("REPRO_SERVER_QUEUE_DEPTH", default, minimum=0)


def env_concurrency(default: int = 8) -> int:
    """Per-tenant in-flight limit via ``REPRO_SERVER_CONCURRENCY``."""
    return _env_int("REPRO_SERVER_CONCURRENCY", default, minimum=1)


def env_workers(default: int = 8) -> int:
    """Worker-thread count via ``REPRO_SERVER_WORKERS``."""
    return _env_int("REPRO_SERVER_WORKERS", default, minimum=1)


def env_timeout(default: float = 30.0) -> float:
    """Per-request timeout via ``REPRO_SERVER_TIMEOUT`` (seconds)."""
    return _env_seconds("REPRO_SERVER_TIMEOUT", default)


@dataclass(frozen=True)
class ServerConfig:
    """Every tunable of the serving tier, with deployment-sane defaults.

    ``queue_depth`` bounds how many requests *per tenant* may wait behind the
    ``concurrency`` in-flight ones before admission sheds with
    ``SERVER_BUSY``; ``request_timeout`` bounds one request's wall time
    (admission wait included); ``drain_timeout`` bounds the graceful
    shutdown's wait for in-flight work.
    """

    host: str = "127.0.0.1"
    port: int = 0
    queue_depth: int = 32
    concurrency: int = 8
    workers: int = 8
    request_timeout: float = 30.0
    drain_timeout: float = 5.0

    @classmethod
    def from_env(cls, **overrides) -> "ServerConfig":
        """Build a config from the ``REPRO_SERVER_*`` environment knobs.

        Keyword ``overrides`` win over the environment (the constructor-arg
        escape hatch for tests and embedded servers).
        """
        values = {
            "port": env_port(),
            "queue_depth": env_queue_depth(),
            "concurrency": env_concurrency(),
            "workers": env_workers(),
            "request_timeout": env_timeout(),
        }
        values.update(overrides)
        return cls(**values)
