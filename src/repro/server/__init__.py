"""repro.server — the asyncio network serving tier.

The layer that turns the in-process serving stack into a database *service*:
an asyncio TCP server speaking a length-prefixed JSON frame protocol
(HELLO / PREPARE / EXECUTE / FETCH / EXPLAIN / CLOSE), with per-tenant
admission control — bounded queues, concurrency caps, retryable
``SERVER_BUSY`` shedding, per-request timeouts — and graceful drain.
Blocking backend work runs on a worker-thread pool behind the event loop;
SELECT results stream to clients in demand-sized FETCH batches, and an open
result cursor keeps holding its tenant's admission slot, which is what turns
a slow consumer into backpressure on *that tenant* instead of server-side
buffering.

Server side::

    from repro.server import serve

    with serve(middleware, port=5433) as server:   # or a QueryGateway
        ...                                         # server.address is live

Client side — natively async, or the unchanged DB-API surface::

    from repro.server import AsyncSession
    session = await AsyncSession.open("db.host", 5433, client=3)

    from repro import api
    connection = api.connect("server://db.host:5433", client=3)

Setting ``REPRO_API_VIA_SERVER=1`` makes ``api.connect`` front middleware and
gateway targets with an in-process loopback server transparently (see
:mod:`repro.server.loopback`) — how CI runs the whole api suite over the
wire.  See ``docs/server.md`` for the protocol and operational details.
"""

from .admission import AdmissionController, AdmissionSnapshot, TenantGate
from .client import AsyncSession, RemoteRowStream, SyncSession
from .config import ServerConfig
from .loopback import ensure_loopback, loopback_enabled, shutdown_loopbacks
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    WIRE_CODES,
    error_code,
    error_frame,
    exception_from_frame,
)
from .server import ReproServer, serve

__all__ = [
    "ReproServer",
    "serve",
    "ServerConfig",
    "AsyncSession",
    "SyncSession",
    "RemoteRowStream",
    "AdmissionController",
    "AdmissionSnapshot",
    "TenantGate",
    "ensure_loopback",
    "loopback_enabled",
    "shutdown_loopbacks",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "WIRE_CODES",
    "error_code",
    "error_frame",
    "exception_from_frame",
]
