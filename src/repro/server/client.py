"""Network clients for the serving tier: an async client and a sync adapter.

Two clients over the same frame protocol:

* :class:`AsyncSession` — the native asyncio client (one coroutine-safe
  request pipeline per connection); what the load generator and the
  backpressure tests drive.
* :class:`SyncSession` — a blocking adapter that **duck-types**
  :class:`~repro.gateway.session.GatewaySession` (``prepare`` /
  ``execute_incremental`` / ``close_prepared`` / ``set_scope`` / ``close``),
  so the DB-API layer's ``_GatewayTarget`` — and therefore the whole
  ``repro.api`` surface — runs unchanged over the network:
  ``api.connect("server://host:port", client=...)``.

SELECT results stay streams across the wire: EXECUTE returns a
:class:`RemoteRowStream` holding a server-side cursor, and every
``fetchmany(n)`` turns into one FETCH frame asking for **exactly** ``n``
rows — the client never over-fetches, so server-side row production tracks
client consumption row-for-row (the property the streaming tests pin down,
and the reason a stalled consumer exerts backpressure instead of filling a
buffer).

Error frames reconstruct the server's exception class
(:func:`~repro.server.protocol.exception_from_frame`), so ``except
ParameterError`` behaves identically in-process and over the network.
"""

from __future__ import annotations

import asyncio
import contextlib
import socket
import threading
from typing import Any, Optional, Union

from ..errors import MTSQLError, ProtocolError, ServerError
from ..result import QueryResult, RowStream, StatementResult
from .protocol import (
    decode_rows,
    encode_frame,
    encode_parameters,
    exception_from_frame,
    read_frame,
    read_frame_blocking,
)


def _scope_text(scope) -> Optional[str]:
    """Normalize a scope argument (text or Scope object) for the wire."""
    if scope is None or isinstance(scope, str):
        return scope
    describe = getattr(scope, "describe", None)
    if callable(describe):
        return describe()
    raise ProtocolError(
        f"cannot send a {type(scope).__name__} scope over the wire; pass the "
        f"scope expression text"
    )


class RemoteRowStream(RowStream):
    """A :class:`~repro.result.RowStream` whose producer is a server cursor.

    Rows are pulled with FETCH frames sized to the consumer's demand:
    ``fetchmany(n)`` fetches exactly ``n`` rows, ``fetch()`` exactly one —
    no read-ahead.  :meth:`materialize` switches to large drain batches
    since everything will be consumed anyway.  Closing the stream before
    exhaustion sends CLOSE_CURSOR so the server frees the admission slot.
    """

    #: FETCH batch size once the consumer committed to draining everything
    DRAIN_BATCH = 512

    def __init__(self, session: "SyncSession", cursor_id: int, columns: list[str]) -> None:
        self._session = session
        self._cursor_id = cursor_id
        self._eof = False
        self._hint = 1
        self._drain = False
        super().__init__(columns, self._pull(), on_close=self._release)

    def _pull(self):
        while not self._eof:
            want = self.DRAIN_BATCH if self._drain else max(1, self._hint)
            self._hint = 1
            rows, eof = self._session._fetch(self._cursor_id, want)
            if eof:
                self._eof = True
            for row in rows:
                yield row

    def fetchmany(self, size: int) -> list[tuple]:
        """Fetch up to ``size`` rows with a single right-sized FETCH frame."""
        self._hint = size
        return super().fetchmany(size)

    def materialize(self) -> QueryResult:
        """Drain the remainder in large batches into a :class:`QueryResult`."""
        self._drain = True
        return super().materialize()

    def _release(self) -> None:
        # on eof the server already retired the cursor with the final batch;
        # an early close must tell it to free the cursor's admission slot
        if not self._eof:
            self._eof = True
            with contextlib.suppress(Exception):
                self._session._close_cursor(self._cursor_id)


class SyncSession:
    """A blocking network session, API-compatible with ``GatewaySession``.

    One TCP connection, one server-side gateway session (bound by HELLO at
    construction).  Requests are serialized with a lock — the same
    one-statement-at-a-time discipline a real ``GatewaySession`` enforces —
    so a ``SyncSession`` can safely sit under a shared DB-API connection.
    """

    def __init__(
        self,
        host: str,
        port: int,
        client: int,
        scope=None,
        optimization: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self._lock = threading.RLock()
        self._closed = False
        self.host = host
        self.port = port
        try:
            self._socket = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServerError(f"cannot reach server at {host}:{port}: {exc}") from exc
        self._socket.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._stream = self._socket.makefile("rwb")
        try:
            hello = self._request(
                {
                    "op": "hello",
                    "client": client,
                    "scope": _scope_text(scope),
                    "optimization": optimization,
                }
            )
        except BaseException:
            self._teardown()
            raise
        #: server-assigned gateway session id (mirrors ``GatewaySession``)
        self.session_id: int = hello["session_id"]
        #: the session's tenant C (mirrors ``GatewaySession``)
        self.client: int = client

    # -- wire ----------------------------------------------------------------

    def _request(self, message: dict[str, Any]) -> dict[str, Any]:
        """One request/response round trip; error frames raise."""
        with self._lock:
            if self._closed:
                raise ServerError("this network session is closed")
            self._stream.write(encode_frame(message))
            self._stream.flush()
            reply = read_frame_blocking(self._stream)
        if reply is None:
            self._teardown()
            raise ProtocolError("server closed the connection")
        if not reply.get("ok"):
            raise exception_from_frame(reply)
        return reply

    def _fetch(self, cursor_id: int, n: int) -> tuple[list[tuple], bool]:
        reply = self._request({"op": "fetch", "cursor": cursor_id, "n": n})
        return decode_rows(reply.get("rows", [])), bool(reply.get("eof"))

    def _close_cursor(self, cursor_id: int) -> None:
        self._request({"op": "close_cursor", "cursor": cursor_id})

    # -- GatewaySession surface ----------------------------------------------

    def prepare(self, sql: str) -> int:
        """Parse ``sql`` server-side once; returns the statement handle."""
        return self._request({"op": "prepare", "sql": sql})["handle"]

    def close_prepared(self, handle: int) -> None:
        """Drop one server-side prepared-statement handle (idempotent)."""
        if self._closed:
            return
        with contextlib.suppress(ProtocolError):
            self._request({"op": "close_prepared", "handle": handle})

    def execute_incremental(
        self, statement: Union[str, int], scope=None, parameters=None
    ):
        """Execute text or a prepared handle; SELECTs return a live stream.

        The DB-API entry point: the returned :class:`RemoteRowStream` pulls
        rows on demand, holding a server-side cursor (and its admission
        slot) until exhausted or closed.
        """
        reply = self._request(
            {
                "op": "execute",
                "statement": statement,
                "scope": _scope_text(scope),
                "parameters": encode_parameters(parameters),
            }
        )
        if reply.get("kind") == "rows":
            return RemoteRowStream(self, reply["cursor"], list(reply["columns"]))
        return StatementResult(
            statement_type=reply.get("type", "STATEMENT"),
            rowcount=int(reply.get("rowcount", 0)),
        )

    def execute(self, statement: Union[str, int], scope=None, parameters=None):
        """Execute and materialize (SELECT rows drained in large batches)."""
        result = self.execute_incremental(statement, scope=scope, parameters=parameters)
        if isinstance(result, RowStream):
            return result.materialize()
        return result

    def query(self, statement: Union[str, int], scope=None, parameters=None) -> QueryResult:
        """Execute a SELECT and materialize it (non-SELECTs are an error)."""
        result = self.execute(statement, scope=scope, parameters=parameters)
        if not isinstance(result, QueryResult):
            raise MTSQLError("query() expects a SELECT statement")
        return result

    def set_scope(self, scope) -> None:
        """``SET SCOPE`` for the server-side session."""
        self._request({"op": "set_scope", "scope": _scope_text(scope)})

    def reset_scope(self) -> None:
        """Restore the server-side session's default scope (D = {C})."""
        self._request({"op": "set_scope", "scope": None})

    def explain(self, sql: str) -> str:
        """The server's rendered compilation report for ``sql``."""
        return self._request({"op": "explain", "statement": sql})["text"]

    def close(self) -> None:
        """Announce CLOSE (best effort) and drop the connection; idempotent."""
        if self._closed:
            return
        with contextlib.suppress(Exception):
            self._request({"op": "close"})
        self._teardown()

    def _teardown(self) -> None:
        self._closed = True
        with contextlib.suppress(OSError):
            self._stream.close()
        with contextlib.suppress(OSError):
            self._socket.close()

    def __enter__(self) -> "SyncSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"SyncSession({self.host}:{self.port}, client={self.client}, "
            f"session={self.session_id}, {state})"
        )


class AsyncSession:
    """The native asyncio client: one connection, coroutine-safe requests.

    Create with :meth:`open`.  High-level :meth:`execute` drains SELECTs
    into a :class:`~repro.result.QueryResult`; the low-level
    :meth:`begin_execute` / :meth:`fetch` / :meth:`close_cursor` triple
    exposes the raw cursor protocol — what a load generator needs to hold
    many result streams open concurrently (and what the backpressure tests
    use to pin admission slots on purpose).
    """

    def __init__(self, reader, writer, client: int) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()
        self._closed = False
        self.client = client
        self.session_id: Optional[int] = None

    @classmethod
    async def open(
        cls,
        host: str,
        port: int,
        client: int,
        scope=None,
        optimization: Optional[str] = None,
    ) -> "AsyncSession":
        """Connect, HELLO-bind tenant ``client`` and return the session."""
        reader, writer = await asyncio.open_connection(host, port)
        session = cls(reader, writer, client)
        try:
            hello = await session.request(
                {
                    "op": "hello",
                    "client": client,
                    "scope": _scope_text(scope),
                    "optimization": optimization,
                }
            )
        except BaseException:
            await session._teardown()
            raise
        session.session_id = hello["session_id"]
        return session

    async def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """One request/response round trip; error frames raise."""
        async with self._lock:
            if self._closed:
                raise ServerError("this network session is closed")
            self._writer.write(encode_frame(message))
            await self._writer.drain()
            reply = await read_frame(self._reader)
        if reply is None:
            await self._teardown()
            raise ProtocolError("server closed the connection")
        if not reply.get("ok"):
            raise exception_from_frame(reply)
        return reply

    # -- low-level cursor protocol -------------------------------------------

    async def begin_execute(
        self, statement: Union[str, int], scope=None, parameters=None
    ) -> dict[str, Any]:
        """Send EXECUTE and return the raw reply frame (cursor not drained).

        A ``rows`` reply holds a server-side cursor — and its admission
        slot — until :meth:`fetch` hits eof or :meth:`close_cursor` runs.
        """
        return await self.request(
            {
                "op": "execute",
                "statement": statement,
                "scope": _scope_text(scope),
                "parameters": encode_parameters(parameters),
            }
        )

    async def fetch(self, cursor: int, n: int) -> tuple[list[tuple], bool]:
        """Fetch up to ``n`` rows from a cursor; returns ``(rows, eof)``."""
        reply = await self.request({"op": "fetch", "cursor": cursor, "n": n})
        return decode_rows(reply.get("rows", [])), bool(reply.get("eof"))

    async def close_cursor(self, cursor: int) -> None:
        """Close a server-side cursor early, freeing its admission slot."""
        await self.request({"op": "close_cursor", "cursor": cursor})

    # -- high-level statements -------------------------------------------------

    async def prepare(self, sql: str) -> int:
        """Parse ``sql`` server-side once; returns the statement handle."""
        return (await self.request({"op": "prepare", "sql": sql}))["handle"]

    async def execute(
        self,
        statement: Union[str, int],
        scope=None,
        parameters=None,
        batch: int = 256,
    ):
        """Execute and materialize: SELECTs drain in ``batch``-row FETCHes."""
        reply = await self.begin_execute(statement, scope=scope, parameters=parameters)
        if reply.get("kind") != "rows":
            return StatementResult(
                statement_type=reply.get("type", "STATEMENT"),
                rowcount=int(reply.get("rowcount", 0)),
            )
        rows: list[tuple] = []
        eof = False
        while not eof:
            chunk, eof = await self.fetch(reply["cursor"], batch)
            rows.extend(chunk)
        return QueryResult(columns=list(reply["columns"]), rows=rows)

    async def set_scope(self, scope) -> None:
        """``SET SCOPE`` (or reset, with ``None``) for the server session."""
        await self.request({"op": "set_scope", "scope": _scope_text(scope)})

    async def explain(self, sql: str) -> str:
        """The server's rendered compilation report for ``sql``."""
        return (await self.request({"op": "explain", "statement": sql}))["text"]

    async def close(self) -> None:
        """Announce CLOSE (best effort) and drop the connection; idempotent."""
        if self._closed:
            return
        with contextlib.suppress(Exception):
            await self.request({"op": "close"})
        await self._teardown()

    async def _teardown(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        with contextlib.suppress(Exception):
            await self._writer.wait_closed()

    async def __aenter__(self) -> "AsyncSession":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"AsyncSession(client={self.client}, session={self.session_id}, {state})"
