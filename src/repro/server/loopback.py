"""Transparent loopback serving: run the api suite over a real socket.

When the ``REPRO_API_VIA_SERVER`` environment variable is ``1``,
``repro.api.connect`` routes middleware/gateway targets through an
**in-process loopback server**: a real :class:`~repro.server.ReproServer`
bound to ``127.0.0.1`` on an ephemeral port, one per distinct target object,
started lazily on first use.  The DB-API connection then runs over an actual
TCP socket and the full frame protocol — the same code path a remote client
exercises — while the test (or program) keeps calling
``connect(middleware, client=...)`` exactly as before.

This is how CI runs the unchanged ``tests/api`` suite through the network
tier: ``REPRO_API_VIA_SERVER=1 pytest tests/api``.

The registry pins its targets: a loopback server (and the middleware it
fronts) lives until :func:`shutdown_loopbacks` or interpreter exit — the
right lifetime for the fixture-shaped objects this mode serves, and one
server per *distinct target object* bounds the population.  Server loops
are daemon threads, so they never block exit.
"""

from __future__ import annotations

import atexit
import os
import threading
from typing import Optional

from ..errors import ConfigurationError
from .server import ReproServer

_lock = threading.Lock()
#: id(target) -> (the target itself, its loopback server); holding the
#: target strongly both keeps the id stable and pins the serving stack
_servers: dict[int, tuple[object, ReproServer]] = {}


def loopback_enabled() -> bool:
    """Whether ``REPRO_API_VIA_SERVER`` asks for loopback network serving.

    Strict like every other ``REPRO_*`` knob: only the literal flags ``1``
    and ``0`` (or unset/empty) parse — a CI leg that set ``yes`` and
    silently ran in-process would pass without ever touching a socket.
    """
    value = os.environ.get("REPRO_API_VIA_SERVER", "").strip()
    if not value:
        return False
    if value == "1":
        return True
    if value == "0":
        return False
    raise ConfigurationError(
        f"the REPRO_API_VIA_SERVER environment variable must be '0' or '1' "
        f"(got {value!r})"
    )


def ensure_loopback(target) -> tuple[str, int]:
    """The ``(host, port)`` of the loopback server fronting ``target``.

    ``target`` is an ``MTBase`` or ``QueryGateway``; the first call for a
    given object boots a server, later calls reuse it.  Identity is by
    object (two gateways over one middleware get two servers — matching the
    two in-process serving stacks they are).
    """
    with _lock:
        entry = _servers.get(id(target))
        if entry is not None:
            return entry[1].address
        server = ReproServer(target, host="127.0.0.1", port=0)
        server.start()
        _servers[id(target)] = (target, server)
        return server.address


def loopback_server(target) -> Optional[ReproServer]:
    """The live loopback server fronting ``target``, or ``None``."""
    with _lock:
        entry = _servers.get(id(target))
        return entry[1] if entry is not None else None


def shutdown_loopbacks() -> None:
    """Stop every loopback server (test teardown / embedder cleanup)."""
    with _lock:
        entries = list(_servers.values())
        _servers.clear()
    for _target, server in entries:
        server.stop()


atexit.register(shutdown_loopbacks)
