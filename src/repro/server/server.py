"""The asyncio TCP server fronting a query gateway.

:class:`ReproServer` turns the in-process serving stack (gateway → compile →
backend/cluster) into a network service.  One asyncio event loop accepts
connections and speaks the frame protocol of :mod:`repro.server.protocol`;
**all blocking backend work runs on a worker-thread pool behind the loop**
(``ThreadPoolExecutor``), so one slow tenant statement can never stall frame
handling for everybody else.

Per connection the server holds one
:class:`~repro.gateway.session.GatewaySession` (bound by HELLO) plus the
connection's open server-side cursors.  EXECUTE requests pass through
per-tenant admission gates (:mod:`repro.server.admission`): bounded queues,
concurrency caps, ``SERVER_BUSY`` shedding and per-request timeouts — an
admission slot is held for the whole life of a request *including its result
stream*, which is what gives slow consumers backpressure instead of
unbounded server-side buffering.

SELECT results stream: EXECUTE answers with column metadata only, FETCH
frames pull row batches straight off the backend's
:class:`~repro.result.RowStream` — the server never materializes a result
set on behalf of a client.

The server runs on a background thread (:meth:`start`/:meth:`stop`, or the
:func:`serve` context manager), so synchronous programs and tests can embed
it; :meth:`stop` drains gracefully — in-flight requests finish (up to the
configured drain timeout) before the loop shuts down.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional, Union

from ..errors import (
    BackendError,
    ProtocolError,
    ReproError,
    RequestTimeoutError,
    ServerError,
)
from ..result import QueryResult, RowStream, StatementResult
from .admission import AdmissionController, AdmissionSnapshot, TenantGate
from .config import ServerConfig
from .protocol import (
    PROTOCOL_VERSION,
    decode_parameters,
    encode_frame,
    encode_rows,
    error_frame,
    read_frame,
)

logger = logging.getLogger("repro.server")


class _ReleaseOnce:
    """Idempotent admission-slot release shared between paths of one request."""

    def __init__(self, gate: TenantGate) -> None:
        self._gate = gate
        self._released = False

    def release(self) -> None:
        """Release the slot (first call wins; later calls are no-ops)."""
        if not self._released:
            self._released = True
            self._gate.release()


class _Cursor:
    """One server-side open cursor: a row stream pinned to its tenant slot."""

    def __init__(
        self, cursor_id: int, stream: RowStream, release: Callable[[], None]
    ) -> None:
        self.cursor_id = cursor_id
        self.stream = stream
        self.release = release


class _Connection:
    """Per-TCP-connection state: the bound session and its open cursors."""

    def __init__(self) -> None:
        self.session = None  # GatewaySession, set by HELLO
        self.gate: Optional[TenantGate] = None
        self.cursors: dict[int, _Cursor] = {}
        self.next_cursor = 1

    def add_cursor(self, stream: RowStream, release: Callable[[], None]) -> _Cursor:
        cursor = _Cursor(self.next_cursor, stream, release)
        self.next_cursor += 1
        self.cursors[cursor.cursor_id] = cursor
        return cursor


class ReproServer:
    """An asyncio TCP serving tier over a gateway (or a bare middleware).

    ``target`` is either a :class:`~repro.gateway.gateway.QueryGateway`
    (shared with in-process callers — cache counters and sessions are the
    same objects) or an :class:`~repro.core.middleware.MTBase`, for which the
    server opens (and owns) a gateway of its own.
    """

    def __init__(
        self,
        target,
        host: Optional[str] = None,
        port: Optional[int] = None,
        config: Optional[ServerConfig] = None,
    ) -> None:
        from ..core.middleware import MTBase
        from ..gateway.gateway import QueryGateway

        self.config = config or ServerConfig.from_env()
        self.host = host if host is not None else self.config.host
        self.port = port if port is not None else self.config.port
        if isinstance(target, QueryGateway):
            self.gateway = target
            self._owns_gateway = False
        elif isinstance(target, MTBase):
            self.gateway = target.gateway()
            self._owns_gateway = True
        else:
            raise BackendError(
                f"ReproServer cannot serve a {type(target).__name__}; expected "
                f"an MTBase or a QueryGateway"
            )
        self.admission = AdmissionController(
            concurrency=self.config.concurrency, queue_depth=self.config.queue_depth
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-server"
        )
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._handlers: set[asyncio.Task] = set()
        self._stopped = False
        # monotonic counters (plain ints under the GIL: safe to read anywhere)
        self.connections_accepted = 0
        self.requests_served = 0
        self.timeouts = 0

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "ReproServer":
        """Boot the serving loop on a background thread; returns when bound.

        After this returns, :attr:`address` is the live ``(host, port)`` —
        with ``port=0`` the kernel-assigned ephemeral port is filled in.
        """
        if self._thread is not None:
            raise ServerError("this server has already been started")
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-server-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join()
            raise ServerError(f"server failed to start: {error}") from error
        return self

    def stop(self) -> None:
        """Gracefully drain and shut the server down; idempotent.

        New connections are refused immediately; requests already in flight
        get up to ``config.drain_timeout`` seconds to finish and answer.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._loop is not None and self._stop_event is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=self.config.drain_timeout + 10.0)
        self._pool.shutdown(wait=False)
        if self._owns_gateway:
            self.gateway.close()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid once :meth:`start` returned)."""
        return (self.host, self.port)

    def admission_snapshot(self) -> AdmissionSnapshot:
        """Aggregate admission counters across all tenants (thread-safe)."""
        return self.admission.snapshot()

    def __enter__(self) -> "ReproServer":
        return self.start() if self._thread is None else self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "stopped" if self._stopped else ("live" if self._ready.is_set() else "new")
        return (
            f"ReproServer({self.host}:{self.port}, {state}, "
            f"served={self.requests_served}, timeouts={self.timeouts})"
        )

    # -- event loop ---------------------------------------------------------------

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - loop crash safety net
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
            else:
                logger.exception("server loop crashed: %s", exc)

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._on_connection, host=self.host, port=self.port
            )
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        await self._stop_event.wait()
        server.close()
        await server.wait_closed()
        # graceful drain: handlers answer their in-flight request, idle ones
        # notice the stop event and exit between requests
        pending = {task for task in self._handlers if not task.done()}
        if pending:
            await asyncio.wait(pending, timeout=self.config.drain_timeout)
        for task in list(self._handlers):
            if not task.done():
                task.cancel()
        if self._handlers:
            await asyncio.gather(*list(self._handlers), return_exceptions=True)

    def _on_connection(self, reader, writer) -> None:
        self.connections_accepted += 1
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._handlers.add(task)
        task.add_done_callback(self._handlers.discard)

    async def _serve_connection(self, reader, writer) -> None:
        conn = _Connection()
        stop_wait = asyncio.ensure_future(self._stop_event.wait())
        try:
            while not self._stop_event.is_set():
                read = asyncio.ensure_future(read_frame(reader))
                await asyncio.wait(
                    {read, stop_wait}, return_when=asyncio.FIRST_COMPLETED
                )
                if not read.done():  # draining: stop between requests
                    await _reap(read)
                    break
                frame = read.result()  # a ProtocolError here closes below
                if frame is None:  # clean EOF
                    break
                self.requests_served += 1
                try:
                    reply, close = await self._dispatch(conn, frame)
                except ProtocolError as exc:
                    reply, close = error_frame(exc), True
                except ReproError as exc:
                    reply, close = error_frame(exc), False
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 - must answer the client
                    logger.exception("unexpected error handling %r", frame.get("op"))
                    reply, close = error_frame(ServerError(str(exc))), False
                writer.write(encode_frame(reply))
                await writer.drain()
                if close:
                    break
        except ProtocolError as exc:
            # the byte stream is unusable: best-effort error frame, then close
            with contextlib.suppress(Exception):
                writer.write(encode_frame(error_frame(exc)))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            await _reap(stop_wait)
            self._cleanup_connection(conn)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _cleanup_connection(self, conn: _Connection) -> None:
        """Release every resource a dropped/closed connection still holds."""
        for cursor in list(conn.cursors.values()):
            with contextlib.suppress(Exception):
                cursor.stream.close()
            cursor.release()
        conn.cursors.clear()
        if conn.session is not None:
            conn.session.close()
            conn.session = None

    # -- request dispatch ---------------------------------------------------------

    async def _dispatch(
        self, conn: _Connection, frame: dict[str, Any]
    ) -> tuple[dict[str, Any], bool]:
        op = frame.get("op")
        if not isinstance(op, str):
            raise ProtocolError("request frame is missing its 'op' field")
        if op == "close":
            return {"ok": True, "bye": True}, True
        if op == "hello":
            return await self._op_hello(conn, frame), False
        if conn.session is None:
            raise ProtocolError(f"request {op!r} before HELLO bound a session")
        handler = {
            "prepare": self._op_prepare,
            "execute": self._op_execute,
            "fetch": self._op_fetch,
            "close_cursor": self._op_close_cursor,
            "close_prepared": self._op_close_prepared,
            "set_scope": self._op_set_scope,
            "explain": self._op_explain,
        }.get(op)
        if handler is None:
            raise ProtocolError(f"unknown request op {op!r}")
        return await handler(conn, frame), False

    async def _op_hello(self, conn: _Connection, frame: dict) -> dict:
        if conn.session is not None:
            raise ProtocolError("duplicate HELLO on this connection")
        client = frame.get("client")
        if isinstance(client, bool) or not isinstance(client, int):
            raise ProtocolError("HELLO requires an integer 'client' tenant id")
        scope = frame.get("scope")
        optimization = frame.get("optimization")
        session = await self._call(
            lambda: self.gateway.session(
                client, optimization=optimization, scope=scope
            ),
            timeout=self.config.request_timeout,
        )
        conn.session = session
        conn.gate = self.admission.gate(client)
        return {
            "ok": True,
            "session_id": session.session_id,
            "protocol": PROTOCOL_VERSION,
        }

    async def _op_prepare(self, conn: _Connection, frame: dict) -> dict:
        sql = _required_str(frame, "sql")
        handle = await self._call(
            lambda: conn.session.prepare(sql), timeout=self.config.request_timeout
        )
        return {"ok": True, "handle": handle}

    async def _op_close_prepared(self, conn: _Connection, frame: dict) -> dict:
        handle = _required_int(frame, "handle")
        conn.session.close_prepared(handle)
        return {"ok": True}

    async def _op_set_scope(self, conn: _Connection, frame: dict) -> dict:
        scope = frame.get("scope")
        if scope is None:
            conn.session.reset_scope()
        else:
            await self._call(
                lambda: conn.session.set_scope(scope),
                timeout=self.config.request_timeout,
            )
        return {"ok": True}

    async def _op_execute(self, conn: _Connection, frame: dict) -> dict:
        raw = frame.get("statement")
        if isinstance(raw, bool) or not isinstance(raw, (str, int)):
            raise ProtocolError("EXECUTE requires a 'statement' (SQL text or handle)")
        statement: Union[str, int] = raw
        parameters = decode_parameters(frame.get("parameters"))
        scope = frame.get("scope")
        session = conn.session
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.request_timeout
        await self._admit(conn.gate, deadline)
        release = _ReleaseOnce(conn.gate)
        try:
            result = await self._call(
                lambda: session.execute_incremental(
                    statement, scope=scope, parameters=parameters
                ),
                timeout=deadline - loop.time(),
                abandoned=lambda value: self._abandon_result(value, release),
            )
        except RequestTimeoutError as exc:
            # the worker is still running: the abandoned callback releases
            # the slot when it finishes — unless the work never started
            if not getattr(exc, "work_pending", False):
                release.release()
            raise
        except BaseException:
            release.release()
            raise
        if isinstance(result, RowStream):
            # the slot stays pinned until the cursor hits eof or is closed
            cursor = conn.add_cursor(result, release.release)
            return {"ok": True, "kind": "rows", "cursor": cursor.cursor_id,
                    "columns": list(result.columns)}
        release.release()
        if isinstance(result, QueryResult):
            # a shape that had to materialize: replay the rows as a cursor
            stream = RowStream(columns=result.columns, rows=result.rows)
            cursor = conn.add_cursor(stream, lambda: None)
            return {"ok": True, "kind": "rows", "cursor": cursor.cursor_id,
                    "columns": list(stream.columns)}
        if isinstance(result, StatementResult):
            return {"ok": True, "kind": "statement",
                    "rowcount": result.rowcount, "type": result.statement_type}
        raise ServerError(f"unexpected execution result {type(result).__name__}")

    async def _op_fetch(self, conn: _Connection, frame: dict) -> dict:
        cursor = self._cursor_for(conn, frame)
        n = _required_int(frame, "n")
        if n <= 0:
            raise ProtocolError("FETCH requires a positive row count 'n'")
        try:
            rows = await self._call(
                lambda: cursor.stream.fetchmany(n),
                timeout=self.config.request_timeout,
                abandoned=lambda _value: self._abandon_cursor(cursor),
            )
        except RequestTimeoutError:
            # retire the cursor now so a retry cannot race the stuck worker;
            # the abandoned callback closes the stream and frees the slot
            conn.cursors.pop(cursor.cursor_id, None)
            raise
        except BaseException:
            # a failing producer poisons the cursor: release and drop it
            self._drop_cursor(conn, cursor)
            raise
        eof = len(rows) < n
        if eof:
            self._drop_cursor(conn, cursor)
        return {"ok": True, "rows": encode_rows(rows), "eof": eof}

    async def _op_close_cursor(self, conn: _Connection, frame: dict) -> dict:
        cursor = self._cursor_for(conn, frame)
        await self._call(
            lambda: cursor.stream.close(), timeout=self.config.request_timeout
        )
        self._drop_cursor(conn, cursor)
        return {"ok": True}

    async def _op_explain(self, conn: _Connection, frame: dict) -> dict:
        sql = _required_str(frame, "statement")
        session = conn.session
        text = await self._call(
            lambda: session.connection.explain(sql).render(),
            timeout=self.config.request_timeout,
        )
        return {"ok": True, "text": text}

    # -- helpers ------------------------------------------------------------------

    def _cursor_for(self, conn: _Connection, frame: dict) -> _Cursor:
        cursor_id = _required_int(frame, "cursor")
        cursor = conn.cursors.get(cursor_id)
        if cursor is None:
            raise BackendError(f"unknown (or already closed) cursor {cursor_id}")
        return cursor

    def _drop_cursor(self, conn: _Connection, cursor: _Cursor) -> None:
        conn.cursors.pop(cursor.cursor_id, None)
        cursor.release()

    def _abandon_cursor(self, cursor: _Cursor) -> None:
        """A timed-out FETCH finally finished on its worker: retire the cursor."""
        with contextlib.suppress(Exception):
            cursor.stream.close()
        cursor.release()

    def _abandon_result(self, value, release: _ReleaseOnce) -> None:
        """A timed-out EXECUTE finally produced a result nobody will read."""
        if isinstance(value, RowStream):
            with contextlib.suppress(Exception):
                value.close()
        release.release()

    async def _admit(self, gate: TenantGate, deadline: float) -> None:
        """Admission with the request deadline: shed fast, queue bounded."""
        loop = asyncio.get_running_loop()
        remaining = deadline - loop.time()
        if remaining <= 0:
            self.timeouts += 1
            raise RequestTimeoutError("request timed out before admission")
        try:
            await asyncio.wait_for(gate.admit(), timeout=remaining)
        except asyncio.TimeoutError:
            self.timeouts += 1
            raise RequestTimeoutError(
                f"request spent {self.config.request_timeout:.1f}s queued for "
                f"tenant {gate.ttid} without getting a slot"
            ) from None

    async def _call(
        self,
        fn: Callable[[], Any],
        timeout: float,
        abandoned: Optional[Callable[[Any], None]] = None,
    ) -> Any:
        """Run blocking backend work on the pool, bounded by ``timeout``.

        On timeout the worker thread cannot be killed — the call is
        *abandoned*: the client gets a ``REQUEST_TIMEOUT`` frame now, and
        ``abandoned(result)`` runs on the event loop when the work eventually
        finishes (to close streams / free admission slots), so a timeout can
        never leak a slot or over-admit.  The raised error carries
        ``work_pending=True`` when an abandoned callback will fire later.
        """
        loop = asyncio.get_running_loop()
        if timeout <= 0:
            self.timeouts += 1
            raise RequestTimeoutError("request deadline already passed")
        future = self._pool.submit(fn)
        wrapped = asyncio.wrap_future(future, loop=loop)
        try:
            return await asyncio.wait_for(asyncio.shield(wrapped), timeout=timeout)
        except asyncio.TimeoutError:
            self.timeouts += 1

            def _on_done(done_future) -> None:
                try:
                    value = done_future.result()
                except BaseException:  # noqa: BLE001 - abandoned failure
                    value = None
                if abandoned is not None:
                    loop.call_soon_threadsafe(abandoned, value)

            future.add_done_callback(_on_done)
            # consume the wrapped future's exception (if any) quietly
            wrapped.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None
            )
            error = RequestTimeoutError(
                f"request exceeded the {self.config.request_timeout:.1f}s "
                f"per-request timeout; the backend work was abandoned"
            )
            error.work_pending = abandoned is not None
            raise error from None


async def _reap(future: "asyncio.Future") -> None:
    """Cancel a pending future and absorb its outcome (CancelledError too)."""
    future.cancel()
    with contextlib.suppress(asyncio.CancelledError, Exception):
        await future


def _required_str(frame: dict, field: str) -> str:
    value = frame.get(field)
    if not isinstance(value, str):
        raise ProtocolError(f"request requires a string {field!r} field")
    return value


def _required_int(frame: dict, field: str) -> int:
    value = frame.get(field)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"request requires an integer {field!r} field")
    return value


@contextlib.contextmanager
def serve(
    target,
    host: Optional[str] = None,
    port: Optional[int] = None,
    config: Optional[ServerConfig] = None,
):
    """Context manager: a started :class:`ReproServer`, stopped on exit."""
    server = ReproServer(target, host=host, port=port, config=config)
    server.start()
    try:
        yield server
    finally:
        server.stop()
