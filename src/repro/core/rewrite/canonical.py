"""The canonical MTSQL→SQL rewrite algorithm (§3.1, Algorithms 1 and 2).

The rewriter walks the query top-down and maintains the paper's invariant for
every (sub-)query: *its result is filtered according to D' and presented in
the format required by the client C*.  Concretely it

* wraps every reference to a *convertible* attribute in
  ``fromUniversal(toUniversal(attr, <ttid column>), C)``,
* adds ``a.ttid = b.ttid`` predicates to comparisons that join
  *tenant-specific* attributes of different tables,
* rejects comparisons that mix tenant-specific attributes with comparable or
  convertible ones (§2.4.2),
* adds a D-filter ``t.ttid IN (d1, ..., dn)`` for every tenant-specific base
  table in the FROM clause,
* hides the ttid columns when expanding ``*`` and recursively rewrites every
  sub-query (FROM derived tables, IN/EXISTS/scalar sub-queries).

The trivial semantic optimizations of §4.1 are expressed as
:class:`~repro.core.rewrite.context.RewriteOptions` flags that switch off the
corresponding part of the rewrite when C and D allow it.
"""

from __future__ import annotations

import copy
from dataclasses import replace
from typing import Optional

from ...errors import RewriteError
from ...sql import ast
from ...sql.transform import transform_expression
from ..conversion import ConversionPair
from .bindings import BindingInfo, QueryBindings, ResolvedAttribute
from .context import RewriteContext

_COMPARISON_OPS = {"=", "<>", "<", "<=", ">", ">="}


class CanonicalRewriter:
    """Rewrites MTSQL queries into plain SQL for a fixed (C, D', options)."""

    def __init__(self, context: RewriteContext) -> None:
        self.context = context

    # -- public API ------------------------------------------------------------

    def rewrite_query(self, query: ast.Select, top_level: bool = True) -> ast.Select:
        """Algorithm 1: rewrite each clause of the query, recursing into sub-queries."""
        bindings = QueryBindings(self.context.schema, query.from_items)
        rewritten = copy.copy(query)
        rewritten.from_items = self._rewrite_from(query.from_items, bindings)
        rewritten.items = self._rewrite_select_items(query, bindings, top_level)
        rewritten.where = self._rewrite_where(query, bindings)
        rewritten.group_by = [
            self._rewrite_expression(expr, bindings) for expr in query.group_by
        ]
        rewritten.having = (
            self._rewrite_expression(query.having, bindings)
            if query.having is not None
            else None
        )
        # ORDER BY clauses need not be rewritten (§3.1): they reference output
        # aliases, which already carry the converted values.
        rewritten.order_by = [
            ast.OrderItem(expr=order.expr, descending=order.descending)
            for order in query.order_by
        ]
        return rewritten

    def rewrite_scope_query(self, scope_query: ast.Select) -> ast.Select:
        """Listing 12: turn a complex scope into a SELECT of the owners' ttids.

        The FROM and WHERE clauses are rewritten like a sub-query; the SELECT
        clause projects the (distinct) ttids of the tenant-specific tables.
        """
        bindings = QueryBindings(self.context.schema, scope_query.from_items)
        tenant_bindings = bindings.tenant_specific_bindings()
        if not tenant_bindings:
            raise RewriteError("complex scope must reference a tenant-specific table")
        projected = tenant_bindings[0].ttid_expression()
        rewritten = copy.copy(scope_query)
        rewritten.items = [ast.SelectItem(expr=projected, alias="ttid")]
        rewritten.distinct = True
        rewritten.from_items = self._rewrite_from(scope_query.from_items, bindings)
        # the scope query must see every tenant's rows: no D-filter, but the
        # predicates are still evaluated in C's format
        rewritten.where = self._rewrite_where(
            scope_query, bindings, add_dataset_filters=False
        )
        rewritten.group_by = list(scope_query.group_by)
        rewritten.having = scope_query.having
        rewritten.order_by = []
        return rewritten

    # -- FROM (Algorithm 2) ------------------------------------------------------

    def _rewrite_from(
        self, from_items: list[ast.FromItem], bindings: QueryBindings
    ) -> list[ast.FromItem]:
        return [self._rewrite_from_item(item, bindings) for item in from_items]

    def _rewrite_from_item(self, item: ast.FromItem, bindings: QueryBindings) -> ast.FromItem:
        if isinstance(item, ast.TableRef):
            return ast.TableRef(name=item.name, alias=item.alias)
        if isinstance(item, ast.SubqueryRef):
            return ast.SubqueryRef(
                query=self.rewrite_query(item.query, top_level=False), alias=item.alias
            )
        if isinstance(item, ast.Join):
            condition = item.condition
            new_condition = None
            if condition is not None:
                rewritten = self._rewrite_expression(condition, bindings)
                extra = self._ttid_join_predicates(condition, bindings)
                new_condition = ast.and_(rewritten, *extra)
            if item.join_type is ast.JoinType.LEFT and self.context.options.add_dataset_filters:
                # the D-filter for the nullable side must live in the ON clause;
                # putting it in the WHERE would turn the outer join into an
                # inner join (NULL-extended rows would be filtered out)
                right_filters = [
                    self._dataset_filter_for(binding)
                    for binding in self._tenant_specific_in_item(item.right, bindings)
                ]
                new_condition = ast.and_(new_condition, *right_filters)
            return ast.Join(
                left=self._rewrite_from_item(item.left, bindings),
                right=self._rewrite_from_item(item.right, bindings),
                join_type=item.join_type,
                condition=new_condition,
                alias=item.alias,
            )
        raise RewriteError(f"unsupported FROM item {type(item).__name__}")

    def _tenant_specific_in_item(
        self, item: ast.FromItem, bindings: QueryBindings
    ) -> list[BindingInfo]:
        """Tenant-specific base-table bindings appearing in a FROM subtree."""
        if isinstance(item, ast.TableRef):
            binding = bindings.get(item.alias or item.name)
            if binding is not None and binding.is_tenant_specific:
                return [binding]
            return []
        if isinstance(item, ast.Join):
            return self._tenant_specific_in_item(item.left, bindings) + self._tenant_specific_in_item(
                item.right, bindings
            )
        return []

    def _protected_bindings(self, from_items: list[ast.FromItem], bindings: QueryBindings) -> set[str]:
        """Bindings whose D-filter is emitted inside a LEFT JOIN's ON clause."""
        protected: set[str] = set()

        def visit(item: ast.FromItem) -> None:
            if isinstance(item, ast.Join):
                if item.join_type is ast.JoinType.LEFT:
                    for binding in self._tenant_specific_in_item(item.right, bindings):
                        protected.add(binding.name)
                visit(item.left)
                visit(item.right)

        for item in from_items:
            visit(item)
        return protected

    # -- SELECT --------------------------------------------------------------------

    def _rewrite_select_items(
        self, query: ast.Select, bindings: QueryBindings, top_level: bool
    ) -> list[ast.SelectItem]:
        expanded = self._expand_stars(query.items, bindings)
        items: list[ast.SelectItem] = []
        for item in expanded:
            rewritten_expr = self._rewrite_expression(item.expr, bindings)
            alias = item.alias
            if alias is None and rewritten_expr is not item.expr and isinstance(item.expr, ast.Column):
                # keep the original attribute name visible to super-queries /
                # the client (Listing 10, line 3)
                alias = item.expr.name
            items.append(ast.SelectItem(expr=rewritten_expr, alias=alias))
        return items

    def _expand_stars(
        self, items: list[ast.SelectItem], bindings: QueryBindings
    ) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if not isinstance(item.expr, ast.Star):
                expanded.append(item)
                continue
            targets = bindings.bindings()
            if item.expr.table is not None:
                binding = bindings.get(item.expr.table)
                if binding is None:
                    raise RewriteError(f"unknown binding {item.expr.table!r} in star expansion")
                targets = [binding]
            for binding in targets:
                expanded.extend(self._star_columns(binding))
        return expanded

    def _star_columns(self, binding: BindingInfo) -> list[ast.SelectItem]:
        # ttid columns stay invisible to the client (Listing 10, line 9)
        items: list[ast.SelectItem] = []
        if binding.table is not None:
            for attribute in binding.table.attributes.values():
                items.append(
                    ast.SelectItem(
                        expr=ast.Column(name=attribute.name, table=binding.name), alias=None
                    )
                )
        else:
            for column in binding.columns:
                items.append(
                    ast.SelectItem(expr=ast.Column(name=column, table=binding.name), alias=None)
                )
        return items

    # -- WHERE -----------------------------------------------------------------------

    def _rewrite_where(
        self,
        query: ast.Select,
        bindings: QueryBindings,
        add_dataset_filters: Optional[bool] = None,
    ) -> Optional[ast.Expression]:
        if add_dataset_filters is None:
            add_dataset_filters = self.context.options.add_dataset_filters
        conjuncts = [
            self._rewrite_expression(conjunct, bindings)
            for conjunct in ast.split_conjuncts(query.where)
        ]
        extra = self._ttid_join_predicates(query.where, bindings)
        dataset_filters = []
        if add_dataset_filters:
            protected = self._protected_bindings(query.from_items, bindings)
            dataset_filters = self._dataset_filters(bindings, exclude=protected)
        return ast.and_(*(conjuncts + extra + dataset_filters))

    def _dataset_filters(
        self, bindings: QueryBindings, exclude: Optional[set[str]] = None
    ) -> list[ast.Expression]:
        filters: list[ast.Expression] = []
        for binding in bindings.tenant_specific_bindings():
            if exclude and binding.name in exclude:
                continue
            filters.append(self._dataset_filter_for(binding))
        return filters

    def _dataset_filter_for(self, binding: BindingInfo) -> ast.Expression:
        ttid = binding.ttid_expression()
        items = tuple(ast.Literal(int(ttid_value)) for ttid_value in self.context.dataset)
        return ast.InList(expr=ttid, items=items)

    def _ttid_join_predicates(
        self, predicate: Optional[ast.Expression], bindings: QueryBindings
    ) -> list[ast.Expression]:
        """Extra ``a.ttid = b.ttid`` predicates for tenant-specific comparisons."""
        if predicate is None or not self.context.options.add_ttid_join_predicates:
            # the comparability validity check still applies even when the
            # predicates themselves are not needed (|D| = 1)
            if predicate is not None:
                for comparison in self._comparisons(predicate):
                    self._validate_comparison(comparison, bindings)
            return []
        added: list[ast.Expression] = []
        seen: set[tuple[str, str]] = set()
        for comparison in self._comparisons(predicate):
            tenant_bindings = self._validate_comparison(comparison, bindings)
            if len(tenant_bindings) < 2:
                continue
            ordered = sorted(tenant_bindings)
            for first, second in zip(ordered, ordered[1:]):
                if (first, second) in seen:
                    continue
                seen.add((first, second))
                left_binding = bindings.get(first)
                right_binding = bindings.get(second)
                added.append(
                    ast.BinaryOp(
                        "=",
                        left_binding.ttid_expression(),
                        right_binding.ttid_expression(),
                    )
                )
        return added

    def _comparisons(self, predicate: ast.Expression) -> list[ast.Expression]:
        """All comparison-shaped sub-expressions of a predicate."""
        comparisons: list[ast.Expression] = []

        def visit(expr: Optional[ast.Expression]) -> None:
            if expr is None:
                return
            if isinstance(expr, ast.BinaryOp):
                if expr.op in _COMPARISON_OPS:
                    comparisons.append(expr)
                    return
                visit(expr.left)
                visit(expr.right)
            elif isinstance(expr, ast.UnaryOp):
                visit(expr.operand)
            elif isinstance(expr, (ast.InList, ast.Between, ast.Like)):
                comparisons.append(expr)
            elif isinstance(expr, ast.InSubquery):
                comparisons.append(expr)

        for conjunct in ast.split_conjuncts(predicate):
            visit(conjunct)
        return comparisons

    def _validate_comparison(
        self, comparison: ast.Expression, bindings: QueryBindings
    ) -> set[str]:
        """§2.4.2 validity check; returns the tenant-specific bindings involved.

        Only base-table attributes participate in the check: constants and
        derived-table columns (which, by the rewrite invariant, are already
        D'-filtered and in client format) may be compared with anything.
        """
        from .bindings import BindingKind

        resolved: list[ResolvedAttribute] = []
        for column in _comparison_columns(comparison):
            attribute = bindings.resolve(column)
            if attribute is not None and attribute.binding.kind is BindingKind.BASE_TABLE:
                resolved.append(attribute)
        tenant_specific = [attr for attr in resolved if attr.is_tenant_specific]
        other = [attr for attr in resolved if not attr.is_tenant_specific]
        if tenant_specific and other:
            raise RewriteError(
                "cannot compare tenant-specific attribute "
                f"{tenant_specific[0].column.qualified!r} with "
                f"{other[0].column.qualified!r}"
            )
        return {attr.binding.name for attr in tenant_specific}

    # -- expression rewriting -----------------------------------------------------------

    def _rewrite_expression(
        self, expr: Optional[ast.Expression], bindings: QueryBindings
    ) -> Optional[ast.Expression]:
        """Wrap convertible attributes in conversion calls; recurse into sub-queries."""
        if expr is None:
            return None

        def replacer(node: ast.Expression) -> Optional[ast.Expression]:
            if isinstance(node, ast.Column):
                return self._wrap_column(node, bindings)
            if isinstance(node, ast.ScalarSubquery):
                return ast.ScalarSubquery(query=self.rewrite_query(node.query, top_level=False))
            if isinstance(node, ast.InSubquery):
                return ast.InSubquery(
                    expr=self._rewrite_expression(node.expr, bindings),
                    query=self.rewrite_query(node.query, top_level=False),
                    negated=node.negated,
                )
            if isinstance(node, ast.Exists):
                return ast.Exists(
                    query=self.rewrite_query(node.query, top_level=False), negated=node.negated
                )
            return None

        return transform_expression(expr, replacer)

    def _wrap_column(self, column: ast.Column, bindings: QueryBindings) -> Optional[ast.Expression]:
        if not self.context.options.wrap_conversions:
            return None
        resolved = bindings.resolve(column)
        if resolved is None or not resolved.is_convertible:
            return None
        pair = self.context.conversions.resolve(resolved.conversion)
        return self.wrap_value(column, resolved.binding.ttid_expression(), pair)

    def wrap_value(
        self, value: ast.Expression, ttid: ast.Expression, pair: ConversionPair
    ) -> ast.Expression:
        """``fromUniversal(toUniversal(value, ttid), C)``."""
        to_universal = ast.func(pair.to_universal, value, ttid)
        return ast.func(pair.from_universal, to_universal, ast.Literal(self.context.client))


def _comparison_columns(comparison: ast.Expression) -> list[ast.Column]:
    """Column references taking part in a comparison (excluding sub-queries)."""
    from ...engine.expressions import referenced_columns

    if isinstance(comparison, ast.InSubquery):
        return referenced_columns(comparison.expr)
    return referenced_columns(comparison)
