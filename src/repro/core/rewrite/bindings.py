"""Resolution of column references against a query's FROM clause.

The rewriter needs to know, for every column reference, which FROM-clause
binding it belongs to, whether that binding is a tenant-specific base table
(and which column carries the ttid) and how the attribute is classified
(comparable / convertible / tenant-specific).  Derived tables obey the
rewrite invariant — their output is already filtered by D' and presented in
client format — so their columns are treated like comparable attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ...errors import RewriteError
from ...sql import ast
from ..mtschema import MTSchema, TableInfo


class BindingKind(Enum):
    BASE_TABLE = "base table"
    DERIVED = "derived"


@dataclass
class BindingInfo:
    """One FROM-clause entry visible to column resolution."""

    name: str  # binding name (alias or table name), lower case
    kind: BindingKind
    table: Optional[TableInfo] = None  # for base tables registered in the MT schema
    columns: tuple[str, ...] = ()  # lower-cased column names (derived tables)

    @property
    def is_tenant_specific(self) -> bool:
        return self.table is not None and self.table.is_tenant_specific

    @property
    def ttid_column(self) -> Optional[str]:
        if self.table is not None and self.table.is_tenant_specific:
            return self.table.ttid_column
        return None

    def ttid_expression(self) -> ast.Column:
        if self.ttid_column is None:
            raise RewriteError(f"binding {self.name!r} has no ttid column")
        return ast.Column(name=self.ttid_column, table=self.name)

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        if self.table is not None:
            if self.table.has_attribute(lowered):
                return True
            ttid = self.ttid_column
            return ttid is not None and lowered == ttid.lower()
        return lowered in self.columns


@dataclass
class ResolvedAttribute:
    """The result of resolving a column reference."""

    binding: BindingInfo
    column: ast.Column
    comparability: ast.Comparability
    conversion: Optional[str] = None

    @property
    def is_convertible(self) -> bool:
        return self.comparability is ast.Comparability.CONVERTIBLE

    @property
    def is_tenant_specific(self) -> bool:
        return self.comparability is ast.Comparability.SPECIFIC


class QueryBindings:
    """All bindings of one (sub-)query's FROM clause."""

    def __init__(self, schema: MTSchema, from_items: list[ast.FromItem]) -> None:
        self._schema = schema
        self._bindings: dict[str, BindingInfo] = {}
        for item in from_items:
            self._collect(item)

    # -- collection --------------------------------------------------------------

    def _collect(self, item: ast.FromItem) -> None:
        if isinstance(item, ast.TableRef):
            self._add_table(item)
        elif isinstance(item, ast.SubqueryRef):
            self._add_derived(item)
        elif isinstance(item, ast.Join):
            self._collect(item.left)
            self._collect(item.right)

    def _add_table(self, item: ast.TableRef) -> None:
        binding_name = (item.alias or item.name).lower()
        if self._schema.has_table(item.name):
            info = BindingInfo(
                name=binding_name,
                kind=BindingKind.BASE_TABLE,
                table=self._schema.table(item.name),
            )
        else:
            # a table unknown to the MT schema (e.g. a meta table) is treated
            # as a global table with only comparable columns
            info = BindingInfo(name=binding_name, kind=BindingKind.BASE_TABLE, table=None)
        self._bindings[binding_name] = info

    def _add_derived(self, item: ast.SubqueryRef) -> None:
        columns = []
        for select_item in item.query.items:
            name = _output_name(select_item)
            if name is not None:
                columns.append(name.lower())
        self._bindings[item.alias.lower()] = BindingInfo(
            name=item.alias.lower(), kind=BindingKind.DERIVED, columns=tuple(columns)
        )

    # -- look-ups ------------------------------------------------------------------

    def bindings(self) -> list[BindingInfo]:
        return list(self._bindings.values())

    def base_table_bindings(self) -> list[BindingInfo]:
        return [
            binding
            for binding in self._bindings.values()
            if binding.kind is BindingKind.BASE_TABLE
        ]

    def tenant_specific_bindings(self) -> list[BindingInfo]:
        return [binding for binding in self.base_table_bindings() if binding.is_tenant_specific]

    def get(self, name: str) -> Optional[BindingInfo]:
        return self._bindings.get(name.lower())

    def resolve(self, column: ast.Column) -> Optional[ResolvedAttribute]:
        """Resolve a column reference; ``None`` for unknown (outer) references."""
        if column.table is not None:
            binding = self._bindings.get(column.table.lower())
            if binding is None or not binding.has_column(column.name):
                return None
            return self._describe(binding, column)
        owners = [
            binding for binding in self._bindings.values() if binding.has_column(column.name)
        ]
        if not owners:
            return None
        if len(owners) > 1:
            raise RewriteError(f"ambiguous column reference {column.name!r}")
        return self._describe(owners[0], column)

    def _describe(self, binding: BindingInfo, column: ast.Column) -> ResolvedAttribute:
        if binding.kind is BindingKind.DERIVED or binding.table is None:
            return ResolvedAttribute(
                binding=binding, column=column, comparability=ast.Comparability.COMPARABLE
            )
        table = binding.table
        ttid = binding.ttid_column
        if ttid is not None and column.name.lower() == ttid.lower():
            # the meta ttid column itself is tenant-specific bookkeeping
            return ResolvedAttribute(
                binding=binding, column=column, comparability=ast.Comparability.COMPARABLE
            )
        attribute = table.attribute(column.name)
        return ResolvedAttribute(
            binding=binding,
            column=column,
            comparability=attribute.comparability,
            conversion=attribute.conversion,
        )


def _output_name(item: ast.SelectItem) -> Optional[str]:
    if item.alias:
        return item.alias
    if isinstance(item.expr, ast.Column):
        return item.expr.name
    return None
