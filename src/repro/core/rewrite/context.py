"""Shared state for one MTSQL→SQL rewrite: C, D', schema and flags."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..conversion import ConversionRegistry
from ..mtschema import MTSchema


@dataclass
class RewriteOptions:
    """Which parts of the canonical rewrite to emit.

    The canonical algorithm always emits everything; the *trivial semantic
    optimizations* (§4.1) disable individual parts when C and D allow it:

    * ``add_dataset_filters``   — the per-table ``ttid IN (D')`` filters,
    * ``add_ttid_join_predicates`` — the extra ``a.ttid = b.ttid`` predicates,
    * ``wrap_conversions``      — the ``fromUniversal(toUniversal(...))`` calls.
    """

    add_dataset_filters: bool = True
    add_ttid_join_predicates: bool = True
    wrap_conversions: bool = True

    @classmethod
    def canonical(cls) -> "RewriteOptions":
        return cls()

    @classmethod
    def trivially_optimized(
        cls, client: int, dataset: Sequence[int], all_tenants: Sequence[int]
    ) -> "RewriteOptions":
        """Compute the §4.1 flags from C, D and the set of all tenants."""
        dataset = tuple(sorted(set(dataset)))
        every_tenant = tuple(sorted(set(all_tenants)))
        is_all = bool(every_tenant) and dataset == every_tenant
        single = len(dataset) == 1
        own_data_only = dataset == (client,)
        return cls(
            add_dataset_filters=not is_all,
            add_ttid_join_predicates=not single,
            wrap_conversions=not own_data_only,
        )


@dataclass
class RewriteContext:
    """Everything the canonical rewriter needs to know about the statement."""

    client: int
    dataset: tuple[int, ...]
    schema: MTSchema
    conversions: ConversionRegistry
    options: RewriteOptions = field(default_factory=RewriteOptions.canonical)
    all_tenants: tuple[int, ...] = ()

    @property
    def dataset_is_all_tenants(self) -> bool:
        return bool(self.all_tenants) and tuple(sorted(self.dataset)) == tuple(
            sorted(self.all_tenants)
        )
