"""The MTSQL→SQL rewrite machinery (canonical algorithm + shared context)."""

from .bindings import BindingInfo, BindingKind, QueryBindings, ResolvedAttribute
from .canonical import CanonicalRewriter
from .context import RewriteContext, RewriteOptions

__all__ = [
    "BindingInfo",
    "BindingKind",
    "QueryBindings",
    "ResolvedAttribute",
    "CanonicalRewriter",
    "RewriteContext",
    "RewriteOptions",
]
