"""Client connections to MTBase.

An :class:`MTConnection` carries the two MTSQL parameters that plain SQL
lacks: the client tenant ``C`` (fixed by the connection, §2.1) and the data
set ``D`` (the ``SCOPE`` runtime parameter).  Every statement goes through the
paper's middleware pipeline (Figure 4):

1. if the scope is complex, run its rewritten query to determine ``D``,
2. prune ``D`` to ``D'`` using the client's privileges,
3. compile the MTSQL statement into plain SQL through the middleware's staged
   :class:`~repro.compile.QueryCompiler` (canonical rewrite + the configured
   optimization level's passes + the shardability analysis) — exactly once
   per statement,
4. execute the compiled SQL on the underlying DBMS and relay the result; the
   whole :class:`~repro.compile.CompiledQuery` artifact travels with it so a
   sharded backend never re-analyses the AST.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Union

from ..errors import MTSQLError, PrivilegeError
from ..result import QueryResult, RowStream, StatementResult
from ..sql import ast
from ..sql.dialect import Dialect, get_dialect
from ..sql.params import (
    ParameterValues,
    bind_parameters,
    resolve_parameters,
    statement_parameters,
)
from ..sql.parser import parse_submitted_statement
from ..sql.printer import to_sql
from ..sql.transform import walk_expression
from .dml import DMLRewriter
from .optimizer.levels import OptimizationLevel
from .rewrite.canonical import CanonicalRewriter
from .scope import ComplexScope, DefaultScope, Scope, SimpleScope, parse_scope, scope_dataset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..backends import BackendConnection
    from ..compile import CompiledQuery, ExplainReport
    from .middleware import MTBase


class MTConnection:
    """A client connection with its own C, SCOPE, optimization level and backend."""

    def __init__(
        self,
        middleware: "MTBase",
        client: int,
        level: OptimizationLevel,
        backend: Optional["BackendConnection"] = None,
    ) -> None:
        self.middleware = middleware
        self.client = client
        self.optimization = level
        #: the execution backend this connection's statements are sent to
        self.backend = backend if backend is not None else middleware.backend
        self.scope: Scope = DefaultScope()
        #: the most recently executed rewritten statement(s), for inspection
        self.last_rewritten: list[ast.Statement] = []

    def __repr__(self) -> str:
        return (
            f"MTConnection(client={self.client}, scope={self.scope.describe()!r}, "
            f"optimization={self.optimization.value}, backend={self.backend.name})"
        )

    # -- scope handling -----------------------------------------------------------

    def set_scope(self, scope: Union[str, Scope]) -> None:
        """``SET SCOPE = "..."`` — change the connection's data set D."""
        if isinstance(scope, Scope):
            self.scope = scope
        else:
            self.scope = parse_scope(scope)

    def reset_scope(self) -> None:
        """Restore the default scope (D = {C})."""
        self.scope = DefaultScope()

    def dataset(self) -> tuple[int, ...]:
        """Resolve the current scope to the concrete data set D."""
        return scope_dataset(
            self.scope,
            self.client,
            self.middleware.tenants(),
            complex_resolver=self._resolve_complex_scope,
        )

    def _resolve_complex_scope(self, scope: ComplexScope) -> list[int]:
        context = self.middleware.compiler.rewrite_context(
            self.client, self.middleware.tenants(), self.optimization
        )
        rewritten = CanonicalRewriter(context).rewrite_scope_query(scope.query)
        result = self.backend.execute(rewritten)
        return [int(row[0]) for row in result.rows]

    # -- statement execution ---------------------------------------------------------

    def execute(
        self,
        statement: Union[str, ast.Statement],
        parameters: Optional[ParameterValues] = None,
    ):
        """Execute one MTSQL statement and return the relayed DBMS result.

        ``parameters`` bind a parameterized statement's ``?``/``:name``
        placeholders (positional sequence or ``{name: value}`` mapping).
        SELECT statements keep their parameters through compilation and bind
        at the backend; DML binds by literal substitution up front because
        the MTSQL rewrite routes on concrete values (per-owner INSERTs).
        Unparsable SQL raises :class:`~repro.errors.InvalidStatementError`
        with the offending fragment.
        """
        if isinstance(statement, str):
            statement = parse_submitted_statement(statement)
        slots = statement_parameters(statement)
        if parameters is not None or slots:
            values = resolve_parameters(slots, parameters)
            if isinstance(statement, ast.Select):
                return self._execute_query(statement, values)
            statement = bind_parameters(statement, values)
        if isinstance(statement, ast.SetScope):
            self.set_scope(statement.scope_text)
            self.last_rewritten = []
            return StatementResult("SET SCOPE")
        if isinstance(statement, ast.Select):
            return self._execute_query(statement)
        if isinstance(statement, (ast.Grant, ast.Revoke)):
            return self._execute_dcl(statement)
        if isinstance(statement, (ast.Insert, ast.Update, ast.Delete)):
            return self._execute_dml(statement)
        if isinstance(statement, ast.CreateView):
            self._reject_routed_ddl(statement)
            return self._execute_create_view(statement)
        if isinstance(
            statement, (ast.CreateTable, ast.CreateFunction, ast.DropTable, ast.DropView)
        ):
            self._reject_routed_ddl(statement)
            return self.middleware.execute_ddl(statement)
        raise MTSQLError(f"unsupported MTSQL statement {type(statement).__name__}")

    def _reject_routed_ddl(self, statement: ast.Statement) -> None:
        """Schema changes are not allowed through a backend-routed connection.

        DDL updates the shared middleware metadata and must land on the
        middleware's primary backend; executing it from a connection routed
        to a replica would split the physical schema across backends.
        """
        if self.backend is not self.middleware.backend:
            raise MTSQLError(
                f"{type(statement).__name__} is not allowed on a connection routed "
                f"to an alternate backend; issue DDL through the middleware's "
                f"primary backend"
            )

    def query(
        self,
        statement: Union[str, ast.Select],
        parameters: Optional[ParameterValues] = None,
    ) -> QueryResult:
        """Execute a SELECT and return its :class:`QueryResult`."""
        result = self.execute(statement, parameters=parameters)
        if not isinstance(result, QueryResult):
            raise MTSQLError("query() expects a SELECT statement")
        return result

    def query_stream(
        self,
        statement: Union[str, ast.Select],
        parameters: Optional[ParameterValues] = None,
    ) -> RowStream:
        """Execute a SELECT as an incremental :class:`~repro.result.RowStream`.

        The statement goes through the ordinary compile pipeline; the
        backend's ``execute_stream`` produces rows on demand (lazily on the
        engine, from an open cursor on SQLite, via the single-shard fast path
        on a cluster — other shapes materialize and replay).
        """
        if isinstance(statement, str):
            statement = parse_submitted_statement(statement)
        if not isinstance(statement, ast.Select):
            raise MTSQLError("query_stream() expects a SELECT statement")
        values = resolve_parameters(statement_parameters(statement), parameters)
        compiled = self.compile(statement)
        self._check_bind_values(compiled, values)
        self.last_rewritten = [compiled.rewritten]
        return self.backend.execute_stream(
            compiled.rewritten,
            dataset=compiled.dataset,
            parameters=values or None,
            compiled=compiled,
        )

    # -- compilation entry points (used by the gateway, tests, examples, bench) -------

    def compile(self, statement: Union[str, ast.Select]) -> "CompiledQuery":
        """Compile a query without executing it: resolve the scope, prune it
        to ``D'`` and run the middleware's staged pipeline once.

        Unparsable SQL raises :class:`~repro.errors.InvalidStatementError`
        with the offending fragment (the same error ``GatewaySession.
        prepare`` raises), so both compilation entry points fail alike.
        """
        if isinstance(statement, str):
            statement = parse_submitted_statement(statement)
        if not isinstance(statement, ast.Select):
            raise MTSQLError("compile() expects a SELECT statement")
        tables = tuple(sorted(self.statement_tables(statement)))
        dataset = self.prune_dataset(self.dataset(), tables)
        return self.compile_resolved(statement, dataset, tables=tables)

    def compile_resolved(
        self,
        query: ast.Select,
        dataset: tuple[int, ...],
        tables: Optional[Sequence[str]] = None,
    ) -> "CompiledQuery":
        """Compile for an already-resolved (and pruned) data set D'.

        This is the cacheable tail of the pipeline: the gateway resolves D'
        per execution (it is part of the cache key) and only pays this step
        on a cache miss.  ``tables`` are the tenant-specific tables walked
        for pruning, when the caller already knows them.
        """
        if tables is None:
            tables = tuple(sorted(self.statement_tables(query)))
        return self.middleware.compiler.compile(
            query,
            client=self.client,
            dataset=tuple(dataset),
            level=self.optimization,
            tables=tuple(tables),
        )

    def rewrite(self, statement: Union[str, ast.Select]) -> ast.Select:
        """Rewrite a query without executing it (the compiled statement)."""
        return self.compile(statement).rewritten

    def rewrite_sql(
        self,
        statement: Union[str, ast.Select],
        dialect: Optional[Union[str, Dialect]] = None,
    ) -> str:
        """Rewrite a query and return the SQL text sent to the DBMS.

        ``dialect`` selects the rendering: a :class:`~repro.sql.dialect.
        Dialect`, a registered dialect name (``"sqlite"``), or the string
        ``"backend"`` for this connection's backend dialect.  The default
        stays the engine's own dialect profile.
        """
        return to_sql(self.rewrite(statement), self._resolve_dialect(dialect))

    def rewrite_resolved(self, query: ast.Select, dataset: tuple[int, ...]) -> ast.Select:
        """Back-compat wrapper: the rewritten AST of :meth:`compile_resolved`."""
        return self.compile_resolved(query, dataset).rewritten

    def explain(
        self,
        statement: Union[str, ast.Select],
        dialect: Optional[Union[str, Dialect]] = None,
        analyze: bool = False,
        parameters: Optional[Sequence] = None,
    ) -> "ExplainReport":
        """Compile a query and return the pass-by-pass compilation report.

        The report carries per-stage wall time, AST-size deltas, fired-rule
        counts, the conversion-call census, the shardability analysis and the
        SQL snapshot after every stage.  ``dialect`` works like in
        :meth:`rewrite_sql` but defaults to ``"backend"`` — the printout shows
        what this connection's backend would receive.

        With ``analyze=True`` the compiled statement is also *executed* once
        (bind values via ``parameters``) and the report gains the run's
        per-operator execution profile — batch counts, rows per batch and
        wall time next to the per-pass compile timings.  The profile is a
        delta of the backend's statistics around the run, so concurrent
        statements on the same backend would bleed into it; analyze on a
        quiet connection.

        When the backend exposes table statistics the report also carries
        the cost model's estimated plan tree for the rewritten statement
        (``report.estimate``); an analyze run records the actual result
        cardinality next to it (``report.actual_rows``, ``report.q_error``).
        """
        from ..compile.explain import ExplainReport

        resolved = (
            self.backend.dialect if dialect is None else self._resolve_dialect(dialect)
        )
        compiled = self.compile(statement)
        estimate = self._estimate_plan(compiled)
        operators = None
        actual_rows = None
        if analyze:
            operators, actual_rows = self._analyze_operators(compiled, parameters)
        return ExplainReport(
            compiled=compiled,
            dialect=resolved,
            operators=operators,
            estimate=estimate,
            actual_rows=actual_rows,
        )

    def _estimate_plan(self, compiled: "CompiledQuery"):
        """The cost model's plan estimate for a compiled statement.

        ``None`` when the backend has no statistics to estimate from (the
        base-protocol default returns an empty catalog, which still yields
        an estimate tree — only backends without the hook opt out).
        """
        from ..compile.cost import estimate_select

        statistics_of = getattr(self.backend, "statistics", None)
        if statistics_of is None:
            return None
        proven = compiled.facts.proven_not_null if compiled.facts is not None else None
        return estimate_select(
            compiled.rewritten, statistics_of(), proven_not_null=proven
        )

    def _analyze_operators(
        self, compiled: "CompiledQuery", parameters: Optional[Sequence]
    ) -> tuple:
        """Execute a compiled statement; return its operator-profile delta
        and the run's result cardinality."""
        from ..result import OperatorProfile

        stats = getattr(self.backend, "stats", None)
        snapshot = getattr(stats, "operator_snapshot", None)
        before = (
            {profile.operator: profile for profile in snapshot()}
            if snapshot is not None
            else {}
        )
        result = self.backend.execute_scoped(
            compiled.rewritten,
            dataset=compiled.dataset,
            parameters=tuple(parameters) if parameters else None,
            compiled=compiled,
        )
        actual_rows = len(result.rows) if hasattr(result, "rows") else None
        operators: list = []
        if snapshot is not None:
            for profile in snapshot():
                prior = before.get(profile.operator)
                batches = profile.batches - (prior.batches if prior else 0)
                rows = profile.rows - (prior.rows if prior else 0)
                seconds = profile.seconds - (prior.seconds if prior else 0.0)
                typed = profile.typed_kernels - (prior.typed_kernels if prior else 0)
                generic = profile.generic_kernels - (
                    prior.generic_kernels if prior else 0
                )
                proven = profile.proven_kernels - (
                    prior.proven_kernels if prior else 0
                )
                if batches > 0 or rows > 0:
                    operators.append(
                        OperatorProfile(
                            operator=profile.operator,
                            batches=batches,
                            rows=rows,
                            seconds=seconds,
                            typed_kernels=typed,
                            generic_kernels=generic,
                            proven_kernels=proven,
                        )
                    )
        return operators, actual_rows

    def _resolve_dialect(
        self, dialect: Optional[Union[str, Dialect]]
    ) -> Optional[Dialect]:
        """Resolve a dialect argument (None = the printer's default dialect)."""
        if isinstance(dialect, str):
            if dialect == "backend":
                return self.backend.dialect
            return get_dialect(dialect)
        return dialect  # None or an (possibly wrapped) Dialect object

    # -- internals ----------------------------------------------------------------------

    def _execute_query(self, query: ast.Select, parameters: tuple = ()) -> QueryResult:
        compiled = self.compile(query)
        self._check_bind_values(compiled, parameters)
        self.last_rewritten = [compiled.rewritten]
        # D' is routing metadata: a sharded backend prunes its fan-out to the
        # shards owning these tenants (single-database backends ignore it);
        # the artifact rides along so the cluster planner reuses its analysis,
        # and bind values travel separately from the parameterized statement
        return self.backend.execute_scoped(
            compiled.rewritten,
            dataset=compiled.dataset,
            parameters=parameters or None,
            compiled=compiled,
        )

    @staticmethod
    def _check_bind_values(compiled: "CompiledQuery", values: tuple) -> None:
        """Check bind values against the analyzer's inferred slot types.

        A mistyped value (say a string bound into a slot compared with an
        INTEGER column) fails here with a
        :class:`~repro.errors.TypeCheckError` naming the slot, instead of
        surfacing as a coercion surprise deep in the engine.  No-op when the
        typechecker was disabled (``compiled.facts is None``).
        """
        facts = compiled.facts
        if facts is None or not values or not facts.parameter_types:
            return
        from ..compile.typecheck import check_parameter_values

        check_parameter_values(facts.parameter_types, tuple(values))

    def prune_dataset(
        self,
        dataset: tuple[int, ...],
        tables: Union[list[str], tuple[str, ...]],
        privilege: str = "READ",
    ) -> tuple[int, ...]:
        """Prune D to D' for the given tables, enforcing the §2.3 rule that a
        statement over a non-empty D must keep at least one accessible tenant."""
        tables = sorted(tables)
        pruned = self.middleware.privileges.prune_dataset(
            self.client, dataset, tables, privilege=privilege
        )
        if dataset and not pruned:
            raise PrivilegeError(
                f"tenant {self.client} has no {privilege} privilege on any tenant in "
                f"{sorted(dataset)} for tables {tables}"
            )
        return pruned

    def _pruned_dataset(
        self, statement: ast.Statement, privilege: str = "READ"
    ) -> tuple[int, ...]:
        return self.prune_dataset(
            self.dataset(), self.statement_tables(statement), privilege=privilege
        )

    def statement_tables(self, statement: ast.Statement) -> set[str]:
        """Public alias of the privilege-pruning table walk (used by the gateway)."""
        return self._tenant_specific_tables(statement)

    def _tenant_specific_tables(self, statement: ast.Statement) -> set[str]:
        """All tenant-specific base tables a statement touches (for privilege pruning)."""
        schema = self.middleware.schema
        tables: set[str] = set()

        def add_table(name: str) -> None:
            if schema.has_table(name) and schema.table(name).is_tenant_specific:
                tables.add(schema.table(name).name)

        def visit_from(item: ast.FromItem) -> None:
            if isinstance(item, ast.TableRef):
                add_table(item.name)
            elif isinstance(item, ast.SubqueryRef):
                visit_select(item.query)
            elif isinstance(item, ast.Join):
                visit_from(item.left)
                visit_from(item.right)

        def visit_expression(expr) -> None:
            for node in walk_expression(expr):
                if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
                    visit_select(node.query)

        def visit_select(select: ast.Select) -> None:
            for item in select.from_items:
                visit_from(item)
            for select_item in select.items:
                visit_expression(select_item.expr)
            visit_expression(select.where)
            visit_expression(select.having)

        if isinstance(statement, ast.Select):
            visit_select(statement)
        elif isinstance(statement, (ast.Insert, ast.Update, ast.Delete)):
            add_table(statement.table)
            if isinstance(statement, ast.Insert) and statement.query is not None:
                visit_select(statement.query)
            if isinstance(statement, (ast.Update, ast.Delete)) and statement.where is not None:
                visit_expression(statement.where)
        return tables

    # -- DCL --------------------------------------------------------------------------

    def _execute_dcl(self, statement: Union[ast.Grant, ast.Revoke]) -> StatementResult:
        dataset = self.dataset()
        privileges = statement.privileges
        if isinstance(statement, ast.Grant):
            self.middleware.privileges.grant(
                owner=self.client,
                table=statement.object_name,
                grantee=statement.grantee,
                privileges=privileges,
                dataset=dataset,
            )
            self.last_rewritten = []
            self.middleware.notify_metadata_change("privilege")
            return StatementResult("GRANT")
        self.middleware.privileges.revoke(
            owner=self.client,
            table=statement.object_name,
            grantee=statement.grantee,
            privileges=privileges,
            dataset=dataset,
        )
        self.last_rewritten = []
        self.middleware.notify_metadata_change("privilege")
        return StatementResult("REVOKE")

    # -- DML --------------------------------------------------------------------------

    def _execute_dml(self, statement: Union[ast.Insert, ast.Update, ast.Delete]):
        privilege = {
            ast.Insert: "INSERT",
            ast.Update: "UPDATE",
            ast.Delete: "DELETE",
        }[type(statement)]
        dataset = self._pruned_dataset(statement, privilege=privilege)
        # the DML rewrite needs the canonical form regardless of the level
        context = self.middleware.compiler.rewrite_context(
            self.client, dataset, self.optimization, force_canonical=True
        )
        rewriter = DMLRewriter(context)
        database = self.backend

        if isinstance(statement, ast.Delete):
            rewritten = rewriter.rewrite_delete(statement)
            self.last_rewritten = [rewritten]
            return database.execute(rewritten)

        if isinstance(statement, ast.Update):
            statements = rewriter.rewrite_update(statement)
            self.last_rewritten = list(statements)
            total = 0
            for rewritten in statements:
                total += database.execute(rewritten).rowcount
            return StatementResult("UPDATE", rowcount=total)

        # INSERT
        if statement.query is not None:
            return self._execute_insert_select(statement, rewriter, dataset)
        statements = rewriter.rewrite_insert_values(statement)
        self.last_rewritten = list(statements)
        total = 0
        for rewritten in statements:
            total += database.execute(rewritten).rowcount
        return StatementResult("INSERT", rowcount=total)

    def _execute_insert_select(
        self, statement: ast.Insert, rewriter: DMLRewriter, dataset: tuple[int, ...]
    ) -> StatementResult:
        """Appendix A.2: run the sub-query on behalf of C, then insert per owner."""
        query_result = self._execute_query(statement.query)
        columns = rewriter.insert_columns(statement)
        if query_result.rows and len(query_result.rows[0]) != len(columns):
            raise MTSQLError(
                f"INSERT ... SELECT: sub-query yields {len(query_result.rows[0])} columns, "
                f"target list has {len(columns)}"
            )
        values_statement = ast.Insert(
            table=statement.table,
            columns=tuple(columns),
            rows=[tuple(ast.Literal(value) for value in row) for row in query_result.rows],
        )
        statements = rewriter.rewrite_insert_values(values_statement)
        self.last_rewritten = list(statements)
        total = 0
        for rewritten in statements:
            total += self.backend.execute(rewritten).rowcount
        return StatementResult("INSERT", rowcount=total)

    # -- views ------------------------------------------------------------------------

    def _execute_create_view(self, statement: ast.CreateView) -> StatementResult:
        """Tenant views are created over the rewritten (D-filtered) query."""
        dataset = self._pruned_dataset(statement.query)
        compiled = self.compile_resolved(statement.query, dataset)
        self.last_rewritten = [compiled.rewritten]
        self.backend.execute(
            ast.CreateView(name=statement.name, query=compiled.rewritten)
        )
        self.middleware.notify_metadata_change("ddl")
        return StatementResult("CREATE VIEW")
