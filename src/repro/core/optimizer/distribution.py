"""Aggregation distribution (§4.2.2, Listing 16).

Aggregating a converted attribute canonically costs two conversion calls per
record.  When the aggregation function distributes over the conversion pair
(Table 2), the query can instead

1. aggregate the *raw* values per tenant (no conversions),
2. convert each per-tenant partial result to universal format (one call per
   tenant), and
3. combine the partials and convert the final result to client format (one
   more call),

reducing the number of conversion calls from ``2N`` to ``T + 1``.

The pass restructures a grouped query ``SELECT g, AGG(e) ... GROUP BY g`` into

``SELECT g, combine(p) FROM (SELECT g, ttid, partial(e') AS p ... GROUP BY g,
ttid) GROUP BY g``

and additionally *hoists* ``fromUniversal(x, C)`` wrappers (left behind by
client presentation push-up) out of distributive aggregates.
"""

from __future__ import annotations

import copy
from typing import Optional

from ...sql import ast
from ...sql.printer import to_sql
from ...sql.transform import transform_expression
from ..conversion import ConversionPair, distributes_over
from ..rewrite.context import RewriteContext
from .patterns import FromWrap, FullWrap, find_wraps, on_multiplicative_path


class _AggregateInfo:
    """Analysis of one unique aggregate call occurring in the query."""

    def __init__(self, index: int, call: ast.FunctionCall, registry) -> None:
        self.index = index
        self.call = call
        self.name = call.name.upper()
        self.text = to_sql(call)
        self.argument = call.args[0] if call.args else ast.Star()
        self.full_wraps: list[FullWrap] = []
        self.from_wraps: list[FromWrap] = []
        if not isinstance(self.argument, ast.Star):
            self.full_wraps, self.from_wraps = find_wraps(self.argument, registry)

    @property
    def wraps(self) -> list:
        return self.full_wraps + self.from_wraps

    @property
    def pair(self) -> Optional[ConversionPair]:
        pairs = {wrap.pair.name: wrap.pair for wrap in self.wraps}
        if len(pairs) == 1:
            return next(iter(pairs.values()))
        return None

    def stripped_argument(self) -> ast.Expression:
        """The aggregate argument with every conversion wrap removed."""
        nodes = {id(wrap.node): wrap for wrap in self.wraps}

        def replacer(node: ast.Expression) -> Optional[ast.Expression]:
            wrap = nodes.get(id(node))
            if wrap is None:
                return None
            if isinstance(wrap, FullWrap):
                return wrap.value
            return wrap.value

        return transform_expression(self.argument, replacer)


class AggregationDistributionOptimizer:
    """Applies aggregation distribution to every (sub-)query where it is valid."""

    def __init__(self, context: RewriteContext) -> None:
        self.context = context
        self.registry = context.conversions
        self.client = context.client
        #: aggregates restructured/hoisted across one apply() (instrumentation)
        self.fired = 0

    # -- recursion -----------------------------------------------------------

    def apply(self, query: ast.Select) -> ast.Select:
        query = copy.copy(query)
        query.from_items = [self._apply_from_item(item) for item in query.from_items]
        query = self._apply_expression_subqueries(query)
        return self._distribute(query)

    def _apply_from_item(self, item: ast.FromItem) -> ast.FromItem:
        if isinstance(item, ast.SubqueryRef):
            return ast.SubqueryRef(query=self.apply(item.query), alias=item.alias)
        if isinstance(item, ast.Join):
            return ast.Join(
                left=self._apply_from_item(item.left),
                right=self._apply_from_item(item.right),
                join_type=item.join_type,
                condition=item.condition,
                alias=item.alias,
            )
        return item

    def _apply_expression_subqueries(self, query: ast.Select) -> ast.Select:
        def replacer(node: ast.Expression) -> Optional[ast.Expression]:
            if isinstance(node, ast.ScalarSubquery):
                return ast.ScalarSubquery(query=self.apply(node.query))
            if isinstance(node, ast.InSubquery):
                return ast.InSubquery(
                    expr=transform_expression(node.expr, replacer),
                    query=self.apply(node.query),
                    negated=node.negated,
                )
            if isinstance(node, ast.Exists):
                return ast.Exists(query=self.apply(node.query), negated=node.negated)
            return None

        query.items = [
            ast.SelectItem(expr=transform_expression(item.expr, replacer), alias=item.alias)
            for item in query.items
        ]
        query.where = transform_expression(query.where, replacer)
        query.having = transform_expression(query.having, replacer)
        return query

    # -- analysis ---------------------------------------------------------------

    def _distribute(self, query: ast.Select) -> ast.Select:
        from ...engine.expressions import find_aggregates

        if query.distinct:
            return query
        collected: list[ast.FunctionCall] = []
        for item in query.items:
            collected.extend(find_aggregates(item.expr))
        collected.extend(find_aggregates(query.having))
        for order in query.order_by:
            collected.extend(find_aggregates(order.expr))
        if not collected:
            return query
        if any(call.distinct for call in collected):
            return query

        unique: dict[str, ast.FunctionCall] = {}
        for call in collected:
            unique.setdefault(to_sql(call), call)
        infos = [
            _AggregateInfo(index, call, self.registry)
            for index, (_, call) in enumerate(unique.items())
        ]

        wrapped_infos = [info for info in infos if info.wraps]
        if not wrapped_infos:
            return query
        for info in wrapped_infos:
            pair = info.pair
            if pair is None:
                return query
            if not distributes_over(info.name, pair):
                return query
            if info.name != "COUNT":
                # stripping the conversion out of the surrounding arithmetic is
                # only valid for constant-factor pairs, for a single conversion
                # per aggregate argument, and only when that conversion sits on
                # a purely multiplicative path inside the argument
                if not pair.constant_factor:
                    return query
                if len(info.wraps) != 1:
                    return query
                if not on_multiplicative_path(info.argument, info.wraps[0].node):
                    return query

        full_ttids = {
            to_sql(wrap.ttid) for info in wrapped_infos for wrap in info.full_wraps
        }
        if len(full_ttids) > 1:
            return query
        if full_ttids:
            ttid_expr = next(
                wrap.ttid for info in wrapped_infos for wrap in info.full_wraps
            )
            self.fired += len(infos)
            return self._restructure(query, infos, ttid_expr)
        return self._hoist(query, wrapped_infos)

    # -- hoisting (no per-tenant partials needed) ----------------------------------

    def _hoist(self, query: ast.Select, wrapped_infos: list[_AggregateInfo]) -> ast.Select:
        mapping: dict[str, ast.Expression] = {}
        for info in wrapped_infos:
            if info.name == "COUNT":
                continue
            if len(info.from_wraps) != 1 or info.full_wraps:
                continue
            pair = info.pair
            stripped = info.stripped_argument()
            hoisted = ast.func(
                pair.from_universal,
                ast.FunctionCall(name=info.call.name, args=(stripped,)),
                ast.Literal(self.client),
            )
            mapping[info.text] = hoisted
        if not mapping:
            return query
        self.fired += len(mapping)
        return self._replace_by_text(query, mapping)

    # -- full restructuring ----------------------------------------------------------

    def _restructure(
        self, query: ast.Select, infos: list[_AggregateInfo], ttid_expr: ast.Expression
    ) -> ast.Select:
        inner = ast.Select()
        inner.from_items = query.from_items
        inner.where = query.where
        inner.group_by = list(query.group_by) + [ttid_expr]
        inner.items = []
        for position, group_expr in enumerate(query.group_by):
            inner.items.append(ast.SelectItem(expr=group_expr, alias=f"mt_g{position}"))
        inner.items.append(ast.SelectItem(expr=ttid_expr, alias="mt_ttid"))

        combined: dict[str, ast.Expression] = {}
        for info in infos:
            partial_items, combined_expr = self._partials_for(info, ttid_expr)
            inner.items.extend(partial_items)
            combined[info.text] = combined_expr

        outer = ast.Select()
        outer.from_items = [ast.SubqueryRef(query=inner, alias="mt_part")]
        outer.group_by = [
            ast.Column(name=f"mt_g{position}") for position in range(len(query.group_by))
        ]
        mapping = dict(combined)
        for position, group_expr in enumerate(query.group_by):
            mapping.setdefault(to_sql(group_expr), ast.Column(name=f"mt_g{position}"))

        outer.items = []
        for item in query.items:
            new_expr = self._replace_expression(item.expr, mapping)
            alias = item.alias
            if alias is None and isinstance(item.expr, ast.Column):
                alias = item.expr.name
            outer.items.append(ast.SelectItem(expr=new_expr, alias=alias))
        outer.having = (
            self._replace_expression(query.having, mapping) if query.having is not None else None
        )
        outer.order_by = [
            ast.OrderItem(
                expr=self._replace_expression(order.expr, mapping), descending=order.descending
            )
            for order in query.order_by
        ]
        outer.distinct = query.distinct
        outer.limit = query.limit
        return outer

    def _partials_for(
        self, info: _AggregateInfo, ttid_expr: ast.Expression
    ) -> tuple[list[ast.SelectItem], ast.Expression]:
        pair = info.pair if info.wraps else None
        client = ast.Literal(self.client)
        stripped = info.stripped_argument() if info.wraps else info.argument
        partial_name = f"mt_p{info.index}"

        def to_universal(expr: ast.Expression) -> ast.Expression:
            if pair is None or not info.full_wraps:
                return expr
            return ast.func(pair.to_universal, expr, ttid_expr)

        def from_universal(expr: ast.Expression) -> ast.Expression:
            if pair is None:
                return expr
            return ast.func(pair.from_universal, expr, client)

        if info.name == "COUNT":
            partial = ast.FunctionCall(name="COUNT", args=info.call.args)
            items = [ast.SelectItem(expr=partial, alias=partial_name)]
            # COALESCE keeps COUNT's empty-input semantics: a COUNT over zero
            # rows is 0, but a SUM over zero per-tenant partials would be NULL
            combined = ast.func(
                "COALESCE",
                ast.FunctionCall(name="SUM", args=(ast.Column(name=partial_name),)),
                ast.Literal(0),
            )
            return items, combined
        if info.name in ("SUM", "MIN", "MAX"):
            partial = to_universal(ast.FunctionCall(name=info.name, args=(stripped,)))
            items = [ast.SelectItem(expr=partial, alias=partial_name)]
            outer_name = "SUM" if info.name == "SUM" else info.name
            combined = ast.FunctionCall(name=outer_name, args=(ast.Column(name=partial_name),))
            if info.wraps:
                combined = from_universal(combined)
            return items, combined
        if info.name == "AVG":
            partial_sum = to_universal(ast.FunctionCall(name="SUM", args=(stripped,)))
            partial_count = ast.FunctionCall(name="COUNT", args=(stripped,))
            items = [
                ast.SelectItem(expr=partial_sum, alias=f"{partial_name}_sum"),
                ast.SelectItem(expr=partial_count, alias=f"{partial_name}_cnt"),
            ]
            combined = ast.BinaryOp(
                "/",
                ast.FunctionCall(name="SUM", args=(ast.Column(name=f"{partial_name}_sum"),)),
                ast.FunctionCall(name="SUM", args=(ast.Column(name=f"{partial_name}_cnt"),)),
            )
            if info.wraps:
                combined = from_universal(combined)
            return items, combined
        # unreachable: find_aggregates only yields the five standard aggregates
        partial = ast.FunctionCall(name=info.name, args=(stripped,))
        return [ast.SelectItem(expr=partial, alias=partial_name)], ast.Column(name=partial_name)

    # -- text-based subtree replacement -----------------------------------------------

    def _replace_by_text(self, query: ast.Select, mapping: dict[str, ast.Expression]) -> ast.Select:
        query = copy.copy(query)
        query.items = [
            ast.SelectItem(expr=self._replace_expression(item.expr, mapping), alias=item.alias)
            for item in query.items
        ]
        query.having = (
            self._replace_expression(query.having, mapping) if query.having is not None else None
        )
        query.order_by = [
            ast.OrderItem(
                expr=self._replace_expression(order.expr, mapping), descending=order.descending
            )
            for order in query.order_by
        ]
        return query

    @staticmethod
    def _replace_expression(
        expr: Optional[ast.Expression], mapping: dict[str, ast.Expression]
    ) -> Optional[ast.Expression]:
        if expr is None:
            return None

        def replacer(node: ast.Expression) -> Optional[ast.Expression]:
            if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
                return node
            replacement = mapping.get(to_sql(node))
            if replacement is not None:
                return replacement
            return None

        return transform_expression(expr, replacer)
