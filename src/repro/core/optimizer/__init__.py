"""MTSQL-specific query optimizations (§4 of the paper).

:func:`apply_optimizations` runs the post-rewrite passes belonging to an
:class:`~repro.core.optimizer.levels.OptimizationLevel` on a canonically
rewritten query.  Which passes a level runs is declared once, in
:data:`repro.compile.passes.LEVEL_PASSES`; this helper merely replays that
pass list without the compiler's instrumentation (the middleware itself
compiles through :class:`repro.compile.QueryCompiler`).  The *trivial
semantic optimizations* (o1) are not a pass: they are expressed as
:class:`~repro.core.rewrite.context.RewriteOptions` computed from C and D
before the canonical rewrite runs.
"""

from __future__ import annotations

from ...sql import ast
from ..rewrite.context import RewriteContext
from .distribution import AggregationDistributionOptimizer
from .inlining import InliningOptimizer
from .levels import ALL_LEVELS, OptimizationLevel
from .patterns import find_wraps, match_from_wrap, match_full_wrap, match_to_wrap
from .pushup import PushUpOptimizer


def apply_optimizations(
    query: ast.Select, level: OptimizationLevel, context: RewriteContext
) -> ast.Select:
    """Run the §4.2 passes required by ``level`` on a rewritten query."""
    # local import: repro.compile builds on this package's optimizer classes
    from ...compile.passes import passes_for_level

    for compiler_pass in passes_for_level(level):
        query = compiler_pass.run(query, context).query
    return query


__all__ = [
    "OptimizationLevel",
    "ALL_LEVELS",
    "apply_optimizations",
    "PushUpOptimizer",
    "AggregationDistributionOptimizer",
    "InliningOptimizer",
    "find_wraps",
    "match_full_wrap",
    "match_from_wrap",
    "match_to_wrap",
]
