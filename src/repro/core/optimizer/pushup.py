"""Client presentation push-up and conversion push-up (§4.2.1).

Both optimizations postpone conversions so that fewer values need converting:

* **conversion push-up** — in a comparison between a converted attribute and a
  client-format constant (or uncorrelated scalar sub-query), convert the
  *constant* into the owner's format instead of converting the attribute of
  every row.  The converted constant depends only on ``(constant, ttid)``, so
  a back-end that caches immutable UDF results executes it once per tenant.
* **client presentation push-up** — when two converted attributes are
  compared, compare them in universal format (dropping the ``fromUniversal``
  calls); when a sub-query's output feeds an outer query, defer the
  ``fromUniversal`` call to the outer query so the sub-query only converts to
  universal format.

Equality comparisons are valid for every conversion pair (Corollary 1);
inequalities additionally require the pair to be order preserving.
"""

from __future__ import annotations

import copy
from typing import Optional

from ...sql import ast
from ...sql.transform import transform_expression
from ..rewrite.context import RewriteContext
from .patterns import (
    FullWrap,
    contains_conversion_call,
    find_wraps,
    match_full_wrap,
    on_multiplicative_path,
)

_EQUALITY_OPS = {"=", "<>"}
_ORDER_OPS = {"<", "<=", ">", ">="}


class PushUpOptimizer:
    """Applies the §4.2.1 push-up transformations to a rewritten query."""

    def __init__(self, context: RewriteContext) -> None:
        self.context = context
        self.registry = context.conversions
        self.client = context.client
        #: rewrite rules fired across one apply() (compiler instrumentation)
        self.fired = 0

    # -- entry point ---------------------------------------------------------

    def apply(self, query: ast.Select) -> ast.Select:
        query = copy.copy(query)
        query.from_items = [self._apply_from_item(item) for item in query.from_items]
        query = self._apply_expression_subqueries(query)
        query = self._derived_table_pushup(query)
        query.where = self._pushup_predicate(query.where)
        query.having = self._pushup_predicate(query.having)
        return query

    def _apply_from_item(self, item: ast.FromItem) -> ast.FromItem:
        if isinstance(item, ast.SubqueryRef):
            return ast.SubqueryRef(query=self.apply(item.query), alias=item.alias)
        if isinstance(item, ast.Join):
            return ast.Join(
                left=self._apply_from_item(item.left),
                right=self._apply_from_item(item.right),
                join_type=item.join_type,
                condition=self._pushup_predicate(item.condition),
                alias=item.alias,
            )
        return item

    def _apply_expression_subqueries(self, query: ast.Select) -> ast.Select:
        def replacer(node: ast.Expression) -> Optional[ast.Expression]:
            if isinstance(node, ast.ScalarSubquery):
                return ast.ScalarSubquery(query=self.apply(node.query))
            if isinstance(node, ast.InSubquery):
                return ast.InSubquery(
                    expr=transform_expression(node.expr, replacer),
                    query=self.apply(node.query),
                    negated=node.negated,
                )
            if isinstance(node, ast.Exists):
                return ast.Exists(query=self.apply(node.query), negated=node.negated)
            return None

        query.items = [
            ast.SelectItem(expr=transform_expression(item.expr, replacer), alias=item.alias)
            for item in query.items
        ]
        query.where = transform_expression(query.where, replacer)
        query.having = transform_expression(query.having, replacer)
        return query

    # -- comparison push-ups -----------------------------------------------------

    def _pushup_predicate(self, predicate: Optional[ast.Expression]) -> Optional[ast.Expression]:
        if predicate is None:
            return None

        def replacer(node: ast.Expression) -> Optional[ast.Expression]:
            replacement: Optional[ast.Expression] = None
            if isinstance(node, ast.BinaryOp) and node.op in _EQUALITY_OPS | _ORDER_OPS:
                replacement = self._pushup_comparison(node)
            elif isinstance(node, ast.Between):
                replacement = self._pushup_between(node)
            elif isinstance(node, ast.InList):
                replacement = self._pushup_in_list(node)
            if replacement is not None:
                self.fired += 1
            return replacement

        return transform_expression(predicate, replacer)

    def _pushup_comparison(self, node: ast.BinaryOp) -> Optional[ast.Expression]:
        left_wrap = match_full_wrap(node.left, self.registry)
        right_wrap = match_full_wrap(node.right, self.registry)
        order_needed = node.op in _ORDER_OPS

        if left_wrap is not None and right_wrap is not None and left_wrap.pair is right_wrap.pair:
            if order_needed and not left_wrap.pair.order_preserving:
                return None
            # client presentation push-up: compare in universal format
            return ast.BinaryOp(node.op, left_wrap.node.args[0], right_wrap.node.args[0])

        for wrap, other, flipped in (
            (left_wrap, node.right, False),
            (right_wrap, node.left, True),
        ):
            if wrap is None:
                continue
            if not self._is_client_constant(other):
                continue
            if order_needed and not wrap.pair.order_preserving:
                continue
            converted_constant = self._convert_constant(other, wrap)
            if flipped:
                return ast.BinaryOp(node.op, converted_constant, wrap.value)
            return ast.BinaryOp(node.op, wrap.value, converted_constant)
        return None

    def _pushup_between(self, node: ast.Between) -> Optional[ast.Expression]:
        wrap = match_full_wrap(node.expr, self.registry)
        if wrap is None or not wrap.pair.order_preserving:
            return None
        if not (self._is_client_constant(node.low) and self._is_client_constant(node.high)):
            return None
        return ast.Between(
            expr=wrap.value,
            low=self._convert_constant(node.low, wrap),
            high=self._convert_constant(node.high, wrap),
            negated=node.negated,
        )

    def _pushup_in_list(self, node: ast.InList) -> Optional[ast.Expression]:
        wrap = match_full_wrap(node.expr, self.registry)
        if wrap is None:
            return None
        if not all(self._is_client_constant(item) for item in node.items):
            return None
        return ast.InList(
            expr=wrap.value,
            items=tuple(self._convert_constant(item, wrap) for item in node.items),
            negated=node.negated,
        )

    def _convert_constant(self, constant: ast.Expression, wrap: FullWrap) -> ast.Expression:
        """Convert a client-format constant into the owner's format.

        Note: Listing 15 of the paper prints the argument order the other way
        round; converting *from* the client format *into* the owner's format
        is ``fromUniversal(toUniversal(const, C), ttid)``.
        """
        to_universal = ast.func(wrap.pair.to_universal, constant, ast.Literal(self.client))
        return ast.func(wrap.pair.from_universal, to_universal, wrap.ttid)

    def _is_client_constant(self, expr: ast.Expression) -> bool:
        """True for expressions that are constant per query and in client format."""
        from ...engine.expressions import referenced_columns

        if contains_conversion_call(expr, self.registry):
            return False
        if isinstance(expr, ast.ScalarSubquery):
            return True
        return not referenced_columns(expr)

    # -- derived-table client presentation push-up ----------------------------------

    def _derived_table_pushup(self, query: ast.Select) -> ast.Select:
        deferred: dict[str, object] = {}
        new_from: list[ast.FromItem] = []
        for item in query.from_items:
            if isinstance(item, ast.SubqueryRef):
                rewritten_item, item_deferred = self._defer_subquery_conversions(item)
                new_from.append(rewritten_item)
                deferred.update(item_deferred)
            else:
                new_from.append(item)
        if not deferred:
            return query
        query.from_items = new_from
        self.fired += len(deferred)

        def replacer(node: ast.Expression) -> Optional[ast.Expression]:
            if isinstance(node, ast.Column):
                pair = deferred.get(node.name.lower())
                if pair is not None:
                    return ast.func(pair.from_universal, node, ast.Literal(self.client))
            return None

        query.items = [
            ast.SelectItem(expr=transform_expression(item.expr, replacer), alias=item.alias)
            for item in query.items
        ]
        query.where = transform_expression(query.where, replacer)
        query.group_by = [transform_expression(expr, replacer) for expr in query.group_by]
        query.having = transform_expression(query.having, replacer)
        query.order_by = [
            ast.OrderItem(expr=transform_expression(order.expr, replacer), descending=order.descending)
            for order in query.order_by
        ]
        return query

    def _defer_subquery_conversions(
        self, item: ast.SubqueryRef
    ) -> tuple[ast.SubqueryRef, dict[str, object]]:
        """Leave the sub-query's output in universal format where possible."""
        inner = item.query
        deferred: dict[str, object] = {}
        new_items: list[ast.SelectItem] = []
        for select_item in inner.items:
            replacement = self._defer_item(select_item)
            if replacement is None:
                new_items.append(select_item)
            else:
                new_item, pair = replacement
                new_items.append(new_item)
                name = new_item.alias or (
                    new_item.expr.name if isinstance(new_item.expr, ast.Column) else None
                )
                if name is not None:
                    deferred[name.lower()] = pair
        if not deferred:
            return item, {}
        new_inner = copy.copy(inner)
        new_inner.items = new_items
        return ast.SubqueryRef(query=new_inner, alias=item.alias), deferred

    def _defer_item(self, select_item: ast.SelectItem):
        full_wraps, from_wraps = find_wraps(select_item.expr, self.registry)
        wraps = full_wraps + from_wraps
        if len(wraps) != 1:
            return None
        wrap = wraps[0]
        # Deferring the fromUniversal call past the surrounding arithmetic and
        # past outer comparisons/orderings is only valid for constant-factor
        # pairs and only when the conversion is a multiplicative factor of the
        # whole output expression.
        if not wrap.pair.constant_factor:
            return None
        if not on_multiplicative_path(select_item.expr, wrap.node):
            return None
        alias = select_item.alias
        if alias is None:
            return None
        inner_value = wrap.node.args[0]

        def replacer(node: ast.Expression) -> Optional[ast.Expression]:
            if node is wrap.node:
                return inner_value
            return None

        new_expr = transform_expression(select_item.expr, replacer)
        return ast.SelectItem(expr=new_expr, alias=alias), wrap.pair
