"""Optimization levels (Table 6 of the paper)."""

from __future__ import annotations

from enum import Enum


class OptimizationLevel(Enum):
    """The optimization levels evaluated in the paper's experiments.

    ========== =================================================================
    level      optimization passes
    ========== =================================================================
    CANONICAL  none (the bare canonical rewrite)
    O1         trivial semantic optimizations (§4.1)
    O2         O1 + client presentation push-up + conversion push-up (§4.2.1)
    O3         O2 + conversion function distribution (§4.2.2)
    O4         O3 + conversion function inlining (§4.2.3)
    INL_ONLY   O1 + conversion function inlining
    ========== =================================================================
    """

    CANONICAL = "canonical"
    O1 = "o1"
    O2 = "o2"
    O3 = "o3"
    O4 = "o4"
    INL_ONLY = "inl-only"

    @classmethod
    def from_name(cls, name: str) -> "OptimizationLevel":
        normalized = name.strip().lower().replace("_", "-")
        for level in cls:
            if level.value == normalized or level.name.lower() == normalized:
                return level
        raise ValueError(f"unknown optimization level {name!r}")

    @property
    def applies_trivial(self) -> bool:
        return self is not OptimizationLevel.CANONICAL

    @property
    def applies_pushup(self) -> bool:
        return self in (OptimizationLevel.O2, OptimizationLevel.O3, OptimizationLevel.O4)

    @property
    def applies_distribution(self) -> bool:
        return self in (OptimizationLevel.O3, OptimizationLevel.O4)

    @property
    def applies_inlining(self) -> bool:
        return self in (OptimizationLevel.O4, OptimizationLevel.INL_ONLY)


ALL_LEVELS = (
    OptimizationLevel.CANONICAL,
    OptimizationLevel.O1,
    OptimizationLevel.O2,
    OptimizationLevel.O3,
    OptimizationLevel.O4,
    OptimizationLevel.INL_ONLY,
)
