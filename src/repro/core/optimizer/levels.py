"""Optimization levels (Table 6 of the paper).

The level enum is pure identity: *which* passes each level runs is the
declarative :data:`repro.compile.passes.LEVEL_PASSES` table consumed by the
staged compiler (:mod:`repro.compile`), not a property of the enum.
"""

from __future__ import annotations

from enum import Enum


class OptimizationLevel(Enum):
    """The optimization levels evaluated in the paper's experiments.

    ========== =================================================================
    level      optimization passes
    ========== =================================================================
    CANONICAL  none (the bare canonical rewrite)
    O1         trivial semantic optimizations (§4.1)
    O2         O1 + client presentation push-up + conversion push-up (§4.2.1)
    O3         O2 + conversion function distribution (§4.2.2)
    O4         O3 + conversion function inlining (§4.2.3)
    INL_ONLY   O1 + conversion function inlining
    ========== =================================================================
    """

    CANONICAL = "canonical"
    O1 = "o1"
    O2 = "o2"
    O3 = "o3"
    O4 = "o4"
    INL_ONLY = "inl-only"

    @classmethod
    def levels(cls) -> tuple[str, ...]:
        """Every valid level name, in Table-6 order (for CLI/bench arg parsing)."""
        return tuple(level.value for level in cls)

    @classmethod
    def from_name(cls, name: str) -> "OptimizationLevel":
        """Parse a level name (case-insensitive, ``_``/``-`` interchangeable)."""
        normalized = name.strip().lower().replace("_", "-")
        for level in cls:
            if level.value == normalized or level.name.lower() == normalized:
                return level
        raise ValueError(
            f"unknown optimization level {name!r}; valid levels: "
            f"{', '.join(cls.levels())}"
        )


ALL_LEVELS = (
    OptimizationLevel.CANONICAL,
    OptimizationLevel.O1,
    OptimizationLevel.O2,
    OptimizationLevel.O3,
    OptimizationLevel.O4,
    OptimizationLevel.INL_ONLY,
)
