"""Conversion function inlining (§4.2.3).

The paper inlines SQL-bodied conversion UDFs into the rewritten query (as a
join with the meta tables) so that the DBMS evaluates plain expressions
instead of calling a UDF per record.  In this reproduction a conversion pair
carries *inline builders* that produce the equivalent plain expression; for
the currency pair the UDF call becomes a multiplication with a per-tenant
rate obtained through a cheap immutable look-up function, for the phone pair
it becomes SUBSTRING/CONCAT over the tenant's prefix — the same per-record
cost profile as the paper's join-based inlining (an O(1) look-up plus scalar
arithmetic per record).
"""

from __future__ import annotations

import copy
from typing import Optional

from ...sql import ast
from ...sql.transform import transform_expression
from ..conversion import ConversionRegistry
from ..rewrite.context import RewriteContext


class InliningOptimizer:
    """Replaces calls to conversion UDFs with their inline expression form."""

    def __init__(self, context: RewriteContext) -> None:
        self.registry: ConversionRegistry = context.conversions
        #: conversion calls inlined across one apply() (compiler instrumentation)
        self.fired = 0

    def apply(self, query: ast.Select) -> ast.Select:
        query = copy.copy(query)
        query.items = [
            ast.SelectItem(expr=self.inline_expression(item.expr), alias=item.alias)
            for item in query.items
        ]
        query.from_items = [self._apply_from_item(item) for item in query.from_items]
        query.where = self.inline_expression(query.where)
        query.group_by = [self.inline_expression(expr) for expr in query.group_by]
        query.having = self.inline_expression(query.having)
        query.order_by = [
            ast.OrderItem(expr=self.inline_expression(order.expr), descending=order.descending)
            for order in query.order_by
        ]
        return query

    def _apply_from_item(self, item: ast.FromItem) -> ast.FromItem:
        if isinstance(item, ast.SubqueryRef):
            return ast.SubqueryRef(query=self.apply(item.query), alias=item.alias)
        if isinstance(item, ast.Join):
            return ast.Join(
                left=self._apply_from_item(item.left),
                right=self._apply_from_item(item.right),
                join_type=item.join_type,
                condition=self.inline_expression(item.condition),
                alias=item.alias,
            )
        return item

    def inline_expression(self, expr: Optional[ast.Expression]) -> Optional[ast.Expression]:
        if expr is None:
            return None

        def replacer(node: ast.Expression) -> Optional[ast.Expression]:
            if isinstance(node, ast.ScalarSubquery):
                return ast.ScalarSubquery(query=self.apply(node.query))
            if isinstance(node, ast.InSubquery):
                return ast.InSubquery(
                    expr=self.inline_expression(node.expr),
                    query=self.apply(node.query),
                    negated=node.negated,
                )
            if isinstance(node, ast.Exists):
                return ast.Exists(query=self.apply(node.query), negated=node.negated)
            if isinstance(node, ast.FunctionCall) and len(node.args) == 2:
                pair = self.registry.by_function(node.name)
                if pair is not None and pair.supports_inlining:
                    value = self.inline_expression(node.args[0])
                    ttid = self.inline_expression(node.args[1])
                    self.fired += 1
                    if node.name.lower() == pair.to_universal.lower():
                        return pair.inline_to(value, ttid)
                    return pair.inline_from(value, ttid)
            return None

        return transform_expression(expr, replacer)
