"""Recognition of conversion-call patterns inside rewritten SQL expressions.

The optimization passes work on the output of the canonical rewriter, which
contains two shapes of conversion calls:

* a *full wrap* ``fromUniversal(toUniversal(X, <ttid expr>), C)`` — a value in
  some owner's format converted to the client's format,
* a *from wrap* ``fromUniversal(X, C)`` — a value already in universal format
  converted to the client's format (this shape appears after client
  presentation push-up deferred the conversion out of a sub-query).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...sql import ast
from ..conversion import ConversionPair, ConversionRegistry


@dataclass
class FullWrap:
    """``from(to(value, ttid), client)``."""

    pair: ConversionPair
    value: ast.Expression
    ttid: ast.Expression
    client: ast.Expression
    node: ast.FunctionCall


@dataclass
class FromWrap:
    """``from(value, client)`` where ``value`` is already universal."""

    pair: ConversionPair
    value: ast.Expression
    client: ast.Expression
    node: ast.FunctionCall


@dataclass
class ToWrap:
    """``to(value, ttid)`` — a value converted into universal format."""

    pair: ConversionPair
    value: ast.Expression
    ttid: ast.Expression
    node: ast.FunctionCall


def match_full_wrap(node: ast.Expression, registry: ConversionRegistry) -> Optional[FullWrap]:
    if not isinstance(node, ast.FunctionCall) or len(node.args) != 2:
        return None
    pair = registry.by_function(node.name)
    if pair is None or node.name.lower() != pair.from_universal.lower():
        return None
    inner = node.args[0]
    if not isinstance(inner, ast.FunctionCall) or len(inner.args) != 2:
        return None
    inner_pair = registry.by_function(inner.name)
    if inner_pair is None or inner_pair is not pair:
        return None
    if inner.name.lower() != pair.to_universal.lower():
        return None
    return FullWrap(
        pair=pair, value=inner.args[0], ttid=inner.args[1], client=node.args[1], node=node
    )


def match_from_wrap(node: ast.Expression, registry: ConversionRegistry) -> Optional[FromWrap]:
    if not isinstance(node, ast.FunctionCall) or len(node.args) != 2:
        return None
    pair = registry.by_function(node.name)
    if pair is None or node.name.lower() != pair.from_universal.lower():
        return None
    if match_full_wrap(node, registry) is not None:
        return None
    return FromWrap(pair=pair, value=node.args[0], client=node.args[1], node=node)


def match_to_wrap(node: ast.Expression, registry: ConversionRegistry) -> Optional[ToWrap]:
    if not isinstance(node, ast.FunctionCall) or len(node.args) != 2:
        return None
    pair = registry.by_function(node.name)
    if pair is None or node.name.lower() != pair.to_universal.lower():
        return None
    return ToWrap(pair=pair, value=node.args[0], ttid=node.args[1], node=node)


def find_wraps(
    expr: Optional[ast.Expression], registry: ConversionRegistry
) -> tuple[list[FullWrap], list[FromWrap]]:
    """All conversion wraps in an expression (not descending into sub-queries).

    Full wraps are not double counted as from wraps, and the inner ``to``
    call of a full wrap is not reported separately.
    """
    full_wraps: list[FullWrap] = []
    from_wraps: list[FromWrap] = []

    def visit(node: Optional[ast.Expression]) -> None:
        if node is None:
            return
        full = match_full_wrap(node, registry)
        if full is not None:
            full_wraps.append(full)
            visit(full.value)
            return
        partial = match_from_wrap(node, registry)
        if partial is not None:
            from_wraps.append(partial)
            visit(partial.value)
            return
        for child in _children(node):
            visit(child)

    visit(expr)
    return full_wraps, from_wraps


def contains_conversion_call(expr: Optional[ast.Expression], registry: ConversionRegistry) -> bool:
    """True when the expression calls any registered conversion function."""
    found = False

    def visit(node: Optional[ast.Expression]) -> None:
        nonlocal found
        if node is None or found:
            return
        if isinstance(node, ast.FunctionCall) and registry.by_function(node.name) is not None:
            found = True
            return
        for child in _children(node):
            visit(child)

    visit(expr)
    return found


def on_multiplicative_path(root: Optional[ast.Expression], target: ast.Expression) -> bool:
    """Is ``target`` reachable from ``root`` through factor-commuting nodes only?

    A constant factor applied to ``target`` (what stripping a constant-factor
    conversion does) can be pulled out of the whole expression exactly when
    every ancestor on the path is a multiplication, the numerator of a
    division, a unary minus, or a CASE branch whose sibling branches are the
    literal 0 (or NULL).  This is the validity condition for aggregation
    distribution (§4.2.2) and for deferring ``fromUniversal`` calls out of
    sub-queries (client presentation push-up).
    """
    if root is None:
        return False
    if root is target:
        return True
    if isinstance(root, ast.BinaryOp):
        if root.op == "*":
            return on_multiplicative_path(root.left, target) or on_multiplicative_path(
                root.right, target
            )
        if root.op == "/":
            return on_multiplicative_path(root.left, target)
        return False
    if isinstance(root, ast.UnaryOp) and root.op == "-":
        return on_multiplicative_path(root.operand, target)
    if isinstance(root, ast.Case):
        containing = None
        for when in root.whens:
            if _contains_node(when.condition, target):
                return False
            if _contains_node(when.result, target):
                containing = when.result
        if _contains_node(root.else_result, target):
            containing = root.else_result
        if containing is None:
            return False
        siblings = [when.result for when in root.whens] + (
            [root.else_result] if root.else_result is not None else []
        )
        for sibling in siblings:
            if sibling is containing:
                continue
            if not (isinstance(sibling, ast.Literal) and sibling.value in (0, 0.0, None)):
                return False
        return on_multiplicative_path(containing, target)
    return False


def _contains_node(root: Optional[ast.Expression], target: ast.Expression) -> bool:
    if root is None:
        return False
    if root is target:
        return True
    return any(_contains_node(child, target) for child in _children(root))


def _children(node: ast.Expression) -> list[Optional[ast.Expression]]:
    if isinstance(node, ast.BinaryOp):
        return [node.left, node.right]
    if isinstance(node, ast.UnaryOp):
        return [node.operand]
    if isinstance(node, ast.FunctionCall):
        return list(node.args)
    if isinstance(node, ast.Case):
        children: list[Optional[ast.Expression]] = []
        for when in node.whens:
            children.extend([when.condition, when.result])
        children.append(node.else_result)
        return children
    if isinstance(node, ast.InList):
        return [node.expr, *node.items]
    if isinstance(node, ast.InSubquery):
        return [node.expr]
    if isinstance(node, ast.Between):
        return [node.expr, node.low, node.high]
    if isinstance(node, ast.Like):
        return [node.expr, node.pattern]
    if isinstance(node, ast.IsNull):
        return [node.expr]
    if isinstance(node, ast.Extract):
        return [node.expr]
    if isinstance(node, ast.Substring):
        return [node.expr, node.start, node.length]
    return []
