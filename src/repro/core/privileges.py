"""MTSQL access control (§2.3): tenant-aware GRANT / REVOKE and D pruning.

Privileges are tracked per ``(owner, table, grantee)``: the grant statement
``GRANT READ ON Employees TO 42`` issued by client ``C`` grants tenant 42
read access to *C's* rows of ``Employees`` (in the private-table layout this
would be ``Employees_C``).  Before executing a query, the middleware prunes
the data set ``D`` down to ``D'``: the owners whose rows the client may read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

from ..errors import PrivilegeError

#: the privileges MTSQL knows about
PRIVILEGES = ("READ", "INSERT", "UPDATE", "DELETE", "GRANT", "REVOKE")

Grantee = Union[int, str]

ALL_TENANTS = "ALL"


@dataclass(frozen=True)
class PrivilegeKey:
    owner: int
    table: str
    grantee: int


@dataclass
class TenantRegistration:
    """A tenant known to the middleware."""

    ttid: int
    name: str = ""
    metadata: dict = field(default_factory=dict)


class PrivilegeManager:
    """Tracks tenants and the privileges they granted to each other."""

    def __init__(self) -> None:
        self._tenants: dict[int, TenantRegistration] = {}
        self._grants: dict[PrivilegeKey, set[str]] = {}
        self._public_grants: dict[str, set[str]] = {}

    # -- tenants -----------------------------------------------------------------

    def register_tenant(self, ttid: int, name: str = "", **metadata) -> TenantRegistration:
        """Register a tenant; new tenants get the §2.3 default privileges.

        Defaults are implicit: a tenant always has full access to her own
        rows and READ access to global tables, so only cross-tenant grants
        are stored explicitly.
        """
        registration = TenantRegistration(ttid=ttid, name=name, metadata=dict(metadata))
        self._tenants[ttid] = registration
        return registration

    def has_tenant(self, ttid: int) -> bool:
        return ttid in self._tenants

    def tenants(self) -> list[int]:
        return sorted(self._tenants)

    def tenant(self, ttid: int) -> TenantRegistration:
        try:
            return self._tenants[ttid]
        except KeyError as exc:
            raise PrivilegeError(f"unknown tenant {ttid}") from exc

    # -- grants ------------------------------------------------------------------

    def grant(
        self,
        owner: int,
        table: str,
        grantee: Grantee,
        privileges: Iterable[str],
        dataset: Sequence[int] = (),
    ) -> None:
        """Apply a GRANT issued by ``owner`` (the client C).

        When ``grantee`` is ``ALL``, the privileges are granted to every
        tenant in the statement's data set ``D`` (paper §2.3).
        """
        privileges = self._normalize_privileges(privileges)
        for target in self._expand_grantee(grantee, dataset):
            key = PrivilegeKey(owner=owner, table=table.lower(), grantee=target)
            self._grants.setdefault(key, set()).update(privileges)

    def revoke(
        self,
        owner: int,
        table: str,
        grantee: Grantee,
        privileges: Iterable[str],
        dataset: Sequence[int] = (),
    ) -> None:
        privileges = self._normalize_privileges(privileges)
        for target in self._expand_grantee(grantee, dataset):
            key = PrivilegeKey(owner=owner, table=table.lower(), grantee=target)
            existing = self._grants.get(key)
            if existing:
                existing.difference_update(privileges)
                if not existing:
                    del self._grants[key]

    def _expand_grantee(self, grantee: Grantee, dataset: Sequence[int]) -> list[int]:
        if isinstance(grantee, str):
            if grantee.upper() == ALL_TENANTS:
                return list(dataset)
            try:
                return [int(grantee)]
            except ValueError as exc:
                raise PrivilegeError(f"invalid grantee {grantee!r}") from exc
        return [int(grantee)]

    @staticmethod
    def _normalize_privileges(privileges: Iterable[str]) -> set[str]:
        normalized = {privilege.upper() for privilege in privileges}
        # SELECT is accepted as a synonym of READ for SQL compatibility
        if "SELECT" in normalized:
            normalized.discard("SELECT")
            normalized.add("READ")
        unknown = normalized - set(PRIVILEGES)
        if unknown:
            raise PrivilegeError(f"unknown privileges: {sorted(unknown)}")
        return normalized

    # -- public (data-sharing-agreement) grants ------------------------------------

    def grant_public(self, table: str, privileges: Iterable[str] = ("READ",)) -> None:
        """Grant a privilege on ``table`` between *all* pairs of tenants.

        This is a convenience extension over the paper's GRANT statement: a
        data-sharing agreement under which every tenant lets every other
        tenant read (or modify) her rows of a table.  The MT-H benchmark uses
        it so that the research client can query the whole data set without
        storing O(T²) individual grants.
        """
        normalized = self._normalize_privileges(privileges)
        self._public_grants.setdefault(table.lower(), set()).update(normalized)

    def revoke_public(self, table: str, privileges: Iterable[str] = ("READ",)) -> None:
        normalized = self._normalize_privileges(privileges)
        existing = self._public_grants.get(table.lower())
        if existing:
            existing.difference_update(normalized)
            if not existing:
                del self._public_grants[table.lower()]

    # -- checks -------------------------------------------------------------------

    def has_privilege(self, client: int, owner: int, table: str, privilege: str) -> bool:
        """Does ``client`` hold ``privilege`` on ``owner``'s rows of ``table``?

        Every tenant implicitly holds every privilege on her own data.
        """
        if client == owner:
            return True
        if privilege.upper() in self._public_grants.get(table.lower(), set()):
            return True
        key = PrivilegeKey(owner=owner, table=table.lower(), grantee=client)
        return privilege.upper() in self._grants.get(key, set())

    def prune_dataset(
        self,
        client: int,
        dataset: Sequence[int],
        tables: Iterable[str],
        privilege: str = "READ",
    ) -> tuple[int, ...]:
        """Compute D': drop owners for which the client lacks the privilege.

        A tenant stays in D' when the client holds the privilege on *every*
        tenant-specific table the statement touches.
        """
        tables = [table for table in tables]
        pruned = []
        for owner in dataset:
            if all(self.has_privilege(client, owner, table, privilege) for table in tables):
                pruned.append(owner)
        return tuple(sorted(set(pruned)))

    def grants_for(self, owner: int) -> list[tuple[str, int, set[str]]]:
        """All explicit grants issued on ``owner``'s data (table, grantee, privileges)."""
        return [
            (key.table, key.grantee, set(privileges))
            for key, privileges in self._grants.items()
            if key.owner == owner
        ]
