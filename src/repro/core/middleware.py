"""The MTBase middleware (Figure 4 of the paper).

The middleware sits between clients and an off-the-shelf DBMS — any
:class:`~repro.backends.base.Backend` (the in-memory engine of
:mod:`repro.engine`, SQLite, ...).  It

* keeps the MT-specific metadata: table generality, attribute comparability,
  conversion function pairs, tenants and privileges,
* executes MTSQL DDL by registering the metadata and creating the physical
  (shared-table / "basic layout") tables — each tenant-specific table gets an
  invisible ttid column,
* hands out :class:`~repro.core.client.MTConnection` objects through which
  clients issue MTSQL statements; the connection performs scope resolution,
  privilege pruning, the MTSQL→SQL rewrite and the optimization passes before
  sending plain SQL to the DBMS.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Callable, Optional, Union

from ..backends import Backend, BackendConnection, EngineBackend, as_backend_connection
from ..errors import MTSQLError
from ..sql import ast
from ..sql.parser import parse_statement
from .client import MTConnection
from .conversion import ConversionPair, ConversionRegistry
from .mtschema import DEFAULT_TTID_COLUMN, MTSchema
from .optimizer.levels import OptimizationLevel
from .privileges import PrivilegeManager


class MTBase:
    """An MTBase instance: metadata caches plus the underlying DBMS."""

    def __init__(
        self,
        database=None,
        profile: str = "postgres",
        default_optimization: OptimizationLevel = OptimizationLevel.O4,
        backend: Optional[Union[Backend, BackendConnection, str]] = None,
    ) -> None:
        if backend is None:
            backend = EngineBackend(profile=profile, database=database)
        elif database is not None:
            raise MTSQLError("pass either database= (engine shortcut) or backend=, not both")
        # local import: repro.compile builds on repro.core's rewrite/optimizer
        from ..compile.compiler import QueryCompiler
        from ..compile.typecheck import UDFSignature

        #: the execution backend all statements are sent to
        self.backend: BackendConnection = as_backend_connection(backend, profile=profile)
        self.schema = MTSchema()
        #: declared UDF signatures (``CREATE FUNCTION`` DDL), consumed by the
        #: static analyzer; functions registered directly on the backend
        #: (``register_sql_function``) are deliberately absent and unchecked
        self.udf_signatures: dict[str, UDFSignature] = {}
        self.conversions = ConversionRegistry()
        self.privileges = PrivilegeManager()
        self.default_optimization = default_optimization
        #: bumped on every metadata change; cached rewrites are stale across bumps
        self.metadata_version = 0
        self._metadata_listeners: list[Callable[[str], None]] = []
        self._metadata_lock = threading.Lock()
        #: the staged MTSQL→SQL compiler every connection compiles through
        self.compiler = QueryCompiler(self)

    @property
    def database(self):
        """The engine backend's in-memory :class:`Database` (back-compat).

        Raises for non-engine backends — code that needs to work on any
        backend must go through :attr:`backend` instead.
        """
        engine_database = getattr(self.backend, "engine_database", None)
        if engine_database is None:
            raise MTSQLError(
                f"the {self.backend.name!r} backend has no in-memory engine "
                f"Database; use MTBase.backend"
            )
        return engine_database

    # -- metadata-change signal ---------------------------------------------------
    #
    # The MTSQL→SQL rewrite of a statement depends on middleware metadata:
    # the MT schema (DDL), privileges (GRANT/REVOKE), the tenant population
    # (the "D = all tenants" trivial optimization) and the conversion
    # registry.  Layers that cache rewrites (:mod:`repro.gateway`) subscribe
    # here and flush whenever any of those change.

    def on_metadata_change(self, listener: Callable[[str], None]) -> Callable[[str], None]:
        """Register ``listener(reason)`` to run after every metadata change."""
        with self._metadata_lock:
            self._metadata_listeners.append(listener)
        return listener

    def remove_metadata_listener(self, listener: Callable[[str], None]) -> None:
        """Unsubscribe a metadata-change listener (idempotent)."""
        with self._metadata_lock:
            if listener in self._metadata_listeners:
                self._metadata_listeners.remove(listener)

    def notify_metadata_change(self, reason: str) -> None:
        """Bump the metadata version and run every registered listener."""
        # the increment must not lose updates: a cache's stale-put guard
        # (RewriteCache) compares version snapshots, and two concurrent
        # changes collapsing into one bump would let a stale plan slip in
        with self._metadata_lock:
            self.metadata_version += 1
            listeners = list(self._metadata_listeners)
        for listener in listeners:
            listener(reason)

    # -- tenants ---------------------------------------------------------------

    def register_tenant(self, ttid: int, name: str = "", **metadata) -> None:
        """Make a tenant known to the middleware (and grant the §2.3 defaults)."""
        self.privileges.register_tenant(ttid, name=name, **metadata)
        # a new tenant can turn an "all tenants" data set into a partial one
        self.notify_metadata_change("tenant")

    def tenants(self) -> tuple[int, ...]:
        """The ttids of every registered tenant."""
        return tuple(self.privileges.tenants())

    def allow_cross_tenant_access(
        self, *tables: str, privileges: tuple[str, ...] = ("READ",)
    ) -> None:
        """Let every tenant access every other tenant's rows of ``tables``.

        Convenience for data-sharing agreements (and for the MT-H benchmark);
        equivalent to every tenant issuing ``GRANT <privileges> ON <table> TO
        ALL`` with an all-tenant scope.
        """
        targets = tables or tuple(table.name for table in self.schema.tenant_specific_tables())
        for table in targets:
            self.privileges.grant_public(table, privileges)
        self.notify_metadata_change("privilege")

    # -- conversion functions -----------------------------------------------------

    def register_conversion_pair(self, pair: ConversionPair) -> ConversionPair:
        """Register a toUniversal/fromUniversal pair (§2.2.2) and notify caches."""
        registered = self.conversions.register(pair)
        self.notify_metadata_change("conversion")
        return registered

    # -- statistics ------------------------------------------------------------------

    def collect_statistics(self):
        """Freshly scan the backend's tables into planner statistics.

        Forwards to the execution backend (a sharded backend merges its
        shards' catalogs); backends without the hook return an empty
        catalog.  Loaders call this once after bulk loading so the first
        query plans against real numbers.
        """
        return self.backend.collect_statistics()

    def statistics(self):
        """The backend's current (lazily refreshed) statistics catalog."""
        return self.backend.statistics()

    # -- DDL ------------------------------------------------------------------------

    def execute_ddl(
        self,
        statement: Union[str, ast.Statement],
        ttid_column: Optional[str] = None,
    ):
        """Execute an MTSQL DDL statement issued by the data modeller."""
        if isinstance(statement, str):
            statement = parse_statement(statement)
        if isinstance(statement, ast.CreateTable):
            return self.create_table(statement, ttid_column=ttid_column)
        if isinstance(statement, (ast.CreateFunction, ast.CreateView)):
            result = self.backend.execute(statement)
            if isinstance(statement, ast.CreateFunction):
                from ..compile.typecheck import UDFSignature

                self.udf_signatures[statement.name.lower()] = UDFSignature.from_create(
                    statement
                )
            self.notify_metadata_change("ddl")
            return result
        if isinstance(statement, (ast.DropTable, ast.DropView)):
            if isinstance(statement, ast.DropTable):
                self.schema.drop_table(statement.name)
            result = self.backend.execute(statement)
            self.notify_metadata_change("ddl")
            return result
        raise MTSQLError(f"not an MTSQL DDL statement: {type(statement).__name__}")

    def create_table(
        self,
        statement: Union[str, ast.CreateTable],
        ttid_column: Optional[str] = None,
    ):
        """Register MT metadata and create the physical shared table.

        Tenant-specific tables get an extra (client-invisible) ttid column;
        global referential-integrity constraints between two tenant-specific
        tables are extended with the ttid columns (Appendix A.1).
        """
        if isinstance(statement, str):
            parsed = parse_statement(statement)
            if not isinstance(parsed, ast.CreateTable):
                raise MTSQLError("create_table() expects a CREATE TABLE statement")
            statement = parsed
        ttid_column = ttid_column or DEFAULT_TTID_COLUMN
        info = self.schema.add_from_create_table(statement, ttid_column=ttid_column)

        physical_columns = [
            ast.ColumnDef(
                name=column.name,
                type_name=column.type_name,
                not_null=column.not_null,
                default=column.default,
            )
            for column in statement.columns
        ]
        physical_constraints = []
        if info.is_tenant_specific:
            physical_columns.insert(
                0, ast.ColumnDef(name=ttid_column, type_name="INTEGER", not_null=True)
            )
        for constraint in statement.constraints:
            physical_constraints.append(self._physical_constraint(constraint, info, ttid_column))

        physical = ast.CreateTable(
            name=statement.name,
            columns=physical_columns,
            constraints=physical_constraints,
            generality=None,
        )
        if info.is_tenant_specific:
            # partition-aware backends (the sharded cluster) route loads and
            # plan scatter-gather from this hint; others inherit the no-op
            self.backend.register_partitioned_table(
                info.name,
                ttid_column,
                local_key_columns=tuple(
                    attribute.name for attribute in info.tenant_specific_attributes()
                ),
            )
        self.backend.execute(physical)
        self.notify_metadata_change("ddl")
        return info

    def _physical_constraint(
        self, constraint: ast.TableConstraint, info, ttid_column: str
    ) -> ast.TableConstraint:
        if not info.is_tenant_specific:
            return constraint
        if constraint.kind is ast.ConstraintKind.PRIMARY_KEY:
            # within a shared table, tenant-specific keys are only unique per tenant
            return replace(constraint, columns=(ttid_column,) + tuple(constraint.columns))
        if constraint.kind is ast.ConstraintKind.FOREIGN_KEY:
            ref_table = constraint.ref_table or ""
            if self.schema.has_table(ref_table) and self.schema.table(ref_table).is_tenant_specific:
                ref_ttid = self.schema.table(ref_table).ttid_column
                return replace(
                    constraint,
                    columns=tuple(constraint.columns) + (ttid_column,),
                    ref_columns=tuple(constraint.ref_columns) + (ref_ttid,),
                )
        return constraint

    # -- connections ---------------------------------------------------------------

    def connect(
        self,
        ttid: int,
        optimization: Optional[Union[str, OptimizationLevel]] = None,
        backend: Optional[Union[Backend, BackendConnection]] = None,
    ) -> MTConnection:
        """Open a client connection; C is derived from the connection (§2.1).

        ``backend`` routes this connection's statements to an alternate
        execution backend (a replica holding the same physical schema and
        data); the default is the middleware's own backend.  A bare backend
        *name* is rejected here — it would create a fresh, empty database,
        which can never be the replica this parameter promises.
        """
        if isinstance(backend, str):
            raise MTSQLError(
                "connect(backend=...) needs a Backend or BackendConnection that "
                "already holds this middleware's data; a name would create an "
                "empty database"
            )
        if not self.privileges.has_tenant(ttid):
            raise MTSQLError(f"tenant {ttid} is not registered")
        if optimization is None:
            level = self.default_optimization
        elif isinstance(optimization, OptimizationLevel):
            level = optimization
        else:
            level = OptimizationLevel.from_name(optimization)
        routed = self.backend if backend is None else as_backend_connection(backend)
        return MTConnection(self, ttid, level, backend=routed)

    def gateway(self, cache_size: int = 256, max_workers: Optional[int] = None):
        """Open a :class:`repro.gateway.QueryGateway` serving layer over this instance."""
        from ..gateway import QueryGateway  # local import: gateway depends on core

        return QueryGateway(self, cache_size=cache_size, max_workers=max_workers)
