"""Rewriting of MTSQL DML statements (§2.5, §3.3 and Appendix A.2).

With ``D = {C}`` DML behaves exactly like plain SQL.  Otherwise the statement
is applied *to each tenant in D separately*: constants and WHERE clauses are
interpreted with respect to C (just like queries) and values written into
convertible attributes are converted into each owner's format.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..errors import RewriteError
from ..sql import ast
from .conversion import ConversionRegistry
from .mtschema import MTSchema, TableInfo
from .rewrite.canonical import CanonicalRewriter
from .rewrite.context import RewriteContext, RewriteOptions


class DMLRewriter:
    """Rewrites MTSQL INSERT / UPDATE / DELETE statements into plain SQL."""

    def __init__(self, context: RewriteContext) -> None:
        self.context = context
        self.schema: MTSchema = context.schema
        self.conversions: ConversionRegistry = context.conversions

    # -- DELETE -------------------------------------------------------------------

    def rewrite_delete(self, statement: ast.Delete) -> ast.Delete:
        """DELETE is applied to all of D at once: rewrite the WHERE, add the D-filter."""
        context = replace(self.context, options=RewriteOptions.canonical())
        where = self._rewrite_where(statement.table, statement.where, context)
        return ast.Delete(table=statement.table, where=where)

    # -- UPDATE -------------------------------------------------------------------

    def rewrite_update(self, statement: ast.Update) -> list[ast.Update]:
        """One UPDATE per tenant in D, with values converted into that tenant's format."""
        table = self._table(statement.table)
        statements: list[ast.Update] = []
        for owner in self.context.dataset:
            # always keep the D-filter: each generated statement targets exactly
            # one owner, regardless of which trivial optimizations queries use
            owner_context = replace(
                self.context, dataset=(owner,), options=RewriteOptions.canonical()
            )
            assignments = [
                ast.Assignment(
                    column=assignment.column,
                    value=self._convert_written_value(table, assignment.column, assignment.value, owner),
                )
                for assignment in statement.assignments
            ]
            where = self._rewrite_where(statement.table, statement.where, owner_context)
            statements.append(
                ast.Update(table=statement.table, assignments=assignments, where=where)
            )
        return statements

    # -- INSERT -------------------------------------------------------------------

    def rewrite_insert_values(self, statement: ast.Insert) -> list[ast.Insert]:
        """One INSERT per tenant in D with converted values and an explicit ttid."""
        if statement.query is not None:
            raise RewriteError(
                "INSERT ... SELECT is executed in two steps by the connection, "
                "not rewritten directly"
            )
        table = self._table(statement.table)
        columns = list(statement.columns) if statement.columns else table.attribute_names()
        statements: list[ast.Insert] = []
        for owner in self.context.dataset:
            rows = []
            for row in statement.rows:
                if len(row) != len(columns):
                    raise RewriteError(
                        f"INSERT into {statement.table!r}: {len(columns)} columns but "
                        f"{len(row)} values"
                    )
                converted = tuple(
                    self._convert_written_value(table, column, value, owner)
                    for column, value in zip(columns, row)
                )
                rows.append(converted + (ast.Literal(owner),))
            statements.append(
                ast.Insert(
                    table=statement.table,
                    columns=tuple(columns) + (table.ttid_column,),
                    rows=rows,
                )
            )
        return statements

    def insert_columns(self, statement: ast.Insert) -> list[str]:
        """The logical column list an INSERT targets (explicit or the MT schema's)."""
        table = self._table(statement.table)
        return list(statement.columns) if statement.columns else table.attribute_names()

    # -- helpers ---------------------------------------------------------------------

    def _table(self, name: str) -> TableInfo:
        if not self.schema.has_table(name):
            raise RewriteError(f"table {name!r} is not registered in the MT schema")
        return self.schema.table(name)

    def _convert_written_value(
        self, table: TableInfo, column: str, value: ast.Expression, owner: int
    ) -> ast.Expression:
        """Convert a client-format value expression into the owner's format."""
        if not table.has_attribute(column):
            raise RewriteError(f"table {table.name!r} has no attribute {column!r}")
        attribute = table.attribute(column)
        if attribute.comparability is not ast.Comparability.CONVERTIBLE:
            return value
        if owner == self.context.client:
            return value
        pair = self.conversions.resolve(attribute.conversion)
        to_universal = ast.func(pair.to_universal, value, ast.Literal(self.context.client))
        return ast.func(pair.from_universal, to_universal, ast.Literal(owner))

    def _rewrite_where(
        self, table_name: str, where: Optional[ast.Expression], context: RewriteContext
    ) -> Optional[ast.Expression]:
        """Reuse the query rewriter on a synthetic single-table query."""
        probe = ast.Select(
            items=[ast.SelectItem(expr=ast.Star())],
            from_items=[ast.TableRef(name=table_name)],
            where=where,
        )
        rewritten = CanonicalRewriter(context).rewrite_query(probe, top_level=False)
        return rewritten.where
