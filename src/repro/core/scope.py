"""MTSQL scopes: the data set ``D`` a statement operates on (§2.1).

A client sets the scope on its connection:

* ``SET SCOPE = "IN (1, 3, 42)"`` — a :class:`SimpleScope` listing ttids; an
  empty ``IN ()`` list means *all* tenants in the database,
* ``SET SCOPE = "FROM Employees WHERE E_salary > 180000"`` — a
  :class:`ComplexScope`; every tenant owning at least one qualifying record
  belongs to ``D``,
* no scope at all defaults to ``{C}`` (:class:`DefaultScope`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import ScopeError
from ..sql import ast
from ..sql.lexer import TokenType, tokenize
from ..sql.parser import Parser


class Scope:
    """Base class for MTSQL scopes."""

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class DefaultScope(Scope):
    """The implicit scope ``D = {C}``."""

    def describe(self) -> str:
        return "DEFAULT"


@dataclass(frozen=True)
class SimpleScope(Scope):
    """``IN (t1, t2, ...)``; an empty tuple means every tenant."""

    ttids: tuple[int, ...] = ()

    @property
    def is_all(self) -> bool:
        return not self.ttids

    def describe(self) -> str:
        return f"IN ({', '.join(str(ttid) for ttid in self.ttids)})"


@dataclass(frozen=True)
class ComplexScope(Scope):
    """``FROM ... WHERE ...`` — resolved to a ttid set by the middleware."""

    from_text: str
    query: ast.Select

    def describe(self) -> str:
        return self.from_text


def parse_scope(scope_text: str) -> Scope:
    """Parse the text of a ``SET SCOPE`` statement into a scope object."""
    text = scope_text.strip()
    if not text:
        return SimpleScope(())
    tokens = tokenize(text)
    if not tokens or tokens[0].type is TokenType.EOF:
        return SimpleScope(())
    head = tokens[0]
    if head.type is TokenType.IDENT and head.upper == "IN":
        try:
            return _parse_simple_scope(text)
        except ScopeError:
            raise
        except Exception as exc:
            raise ScopeError(f"invalid simple scope {text!r}: {exc}") from exc
    if head.type is TokenType.IDENT and head.upper == "FROM":
        return _parse_complex_scope(text)
    raise ScopeError(f"scope must start with IN or FROM, got {text!r}")


def _parse_simple_scope(text: str) -> SimpleScope:
    parser = Parser(text)
    parser.expect_keyword("IN")
    parser.expect_punct("(")
    ttids: list[int] = []
    if not parser.accept_punct(")"):
        while True:
            value = parser.expect_number()
            ttids.append(int(value))
            if parser.accept_punct(")"):
                break
            parser.expect_punct(",")
    parser.expect_end()
    return SimpleScope(tuple(ttids))


def _parse_complex_scope(text: str) -> ComplexScope:
    # Parse "FROM ... [WHERE ...]" by prepending a SELECT placeholder; the
    # projection on ttids is added later by the rewriter (Listing 12).
    try:
        query = Parser(f"SELECT 1 {text}").parse_select()
    except Exception as exc:  # pragma: no cover - defensive
        raise ScopeError(f"invalid complex scope {text!r}: {exc}") from exc
    if not query.from_items:
        raise ScopeError("complex scope needs a FROM clause")
    return ComplexScope(from_text=text, query=query)


def scope_dataset(
    scope: Scope,
    client: int,
    all_tenants: Sequence[int],
    complex_resolver: Optional[callable] = None,
) -> tuple[int, ...]:
    """Resolve a scope to the concrete data set ``D``.

    ``complex_resolver(scope)`` must return an iterable of ttids and is only
    needed for :class:`ComplexScope` (the middleware supplies a callback that
    rewrites and runs the scope query, Listing 12 of the paper).
    """
    if isinstance(scope, DefaultScope):
        return (client,)
    if isinstance(scope, SimpleScope):
        if scope.is_all:
            return tuple(sorted(all_tenants))
        return tuple(sorted(set(scope.ttids)))
    if isinstance(scope, ComplexScope):
        if complex_resolver is None:
            raise ScopeError("complex scopes need a resolver callback")
        return tuple(sorted(set(int(ttid) for ttid in complex_resolver(scope))))
    raise ScopeError(f"unknown scope type {type(scope).__name__}")
