"""Conversion-function pairs (§2.2.2) and their algebraic properties.

A :class:`ConversionPair` describes the two UDFs ``toUniversal(x, t)`` and
``fromUniversal(x, t)`` registered in the underlying DBMS, plus the algebraic
properties the MTSQL optimizer exploits:

* every valid pair is *equality preserving* (Corollary 1),
* ``order_preserving`` pairs additionally preserve ``<``/``>``,
* ``linear`` pairs have the form ``to(x, t) = a_t * x + b_t``,
* ``constant_factor`` pairs are the ``b_t = 0`` special case.

:func:`distributes_over` encodes Table 2 of the paper: which SQL aggregation
functions can be computed per tenant first (aggregation distribution, §4.2.2)
for a given category of conversion functions.

For the function-inlining optimization (§4.2.3) a pair can carry *inline
builders*: callables producing the AST expression that replaces a UDF call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..errors import ConversionError
from ..sql import ast

InlineBuilder = Callable[[ast.Expression, ast.Expression], ast.Expression]

#: aggregates considered by the distribution matrix (Table 2)
DISTRIBUTIVE_AGGREGATES = ("COUNT", "MIN", "MAX", "SUM", "AVG")


@dataclass
class ConversionPair:
    """A registered ``(toUniversal, fromUniversal)`` pair for one attribute domain."""

    name: str
    to_universal: str
    from_universal: str
    order_preserving: bool = False
    linear: bool = False
    constant_factor: bool = False
    inline_to: Optional[InlineBuilder] = None
    inline_from: Optional[InlineBuilder] = None

    def __post_init__(self) -> None:
        if self.constant_factor:
            self.linear = True
        if self.linear:
            self.order_preserving = True

    @property
    def supports_inlining(self) -> bool:
        return self.inline_to is not None and self.inline_from is not None

    def function_names(self) -> tuple[str, str]:
        return self.to_universal, self.from_universal


def distributes_over(aggregate: str, pair: ConversionPair) -> bool:
    """Table 2: does ``aggregate`` distribute over this conversion pair?

    * COUNT distributes over every conversion pair (conversions are scalar).
    * MIN / MAX distribute over order-preserving pairs.
    * SUM / AVG distribute over linear pairs (``a*x + b``); the constant
      factor case (``c*x``) is included.
    * nothing distributes over pairs that are merely equality preserving,
      and holistic aggregates never distribute (they are not in the list).
    """
    name = aggregate.upper()
    if name == "COUNT":
        return True
    if name in ("MIN", "MAX"):
        return pair.order_preserving
    if name in ("SUM", "AVG"):
        return pair.linear
    return False


class ConversionRegistry:
    """All conversion pairs known to an MTBase instance."""

    def __init__(self) -> None:
        self._pairs: dict[str, ConversionPair] = {}
        self._by_function: dict[str, ConversionPair] = {}

    def register(self, pair: ConversionPair) -> ConversionPair:
        if pair.name.lower() in self._pairs:
            raise ConversionError(f"conversion pair {pair.name!r} already registered")
        self._pairs[pair.name.lower()] = pair
        self._by_function[pair.to_universal.lower()] = pair
        self._by_function[pair.from_universal.lower()] = pair
        return pair

    def has(self, name: str) -> bool:
        return name.lower() in self._pairs

    def get(self, name: str) -> ConversionPair:
        try:
            return self._pairs[name.lower()]
        except KeyError as exc:
            raise ConversionError(f"unknown conversion pair {name!r}") from exc

    def by_function(self, function_name: str) -> Optional[ConversionPair]:
        return self._by_function.get(function_name.lower())

    def resolve(self, name: str) -> ConversionPair:
        """Look a pair up by its name or by either of its function names.

        The MT schema records a CONVERTIBLE column's pair by the
        ``@toUniversal`` function named in the DDL, so both spellings must
        resolve to the same pair.
        """
        pair = self._pairs.get(name.lower())
        if pair is not None:
            return pair
        pair = self._by_function.get(name.lower())
        if pair is not None:
            return pair
        raise ConversionError(f"unknown conversion pair {name!r}")

    def pairs(self) -> list[ConversionPair]:
        return list(self._pairs.values())


# ---------------------------------------------------------------------------
# Validation of Definition 1 (used by tests and by users defining new pairs)
# ---------------------------------------------------------------------------


def verify_conversion_pair(
    call: Callable[[str, list], object],
    pair: ConversionPair,
    tenants: Iterable[int],
    samples: Iterable,
) -> list[str]:
    """Check the Definition-1 properties of a pair on sample values.

    ``call(function_name, args)`` must invoke the UDF (e.g.
    ``lambda name, args: middleware.database.executor.context.call_function(name, args)``).
    Returns a list of violation messages; an empty list means the samples
    exhibit all required properties:

    (iii) round-trip: ``from(to(x, t), t) == x``
    (Corollary 1) equality preservation, checked pairwise on the samples,
    (Corollary 2) cross-tenant convertibility preserves equality.
    """
    violations: list[str] = []
    tenants = list(tenants)
    samples = list(samples)
    for tenant in tenants:
        for value in samples:
            universal = call(pair.to_universal, [value, tenant])
            round_trip = call(pair.from_universal, [universal, tenant])
            if not _approximately_equal(round_trip, value):
                violations.append(
                    f"{pair.name}: fromUniversal(toUniversal({value!r}, {tenant})) = "
                    f"{round_trip!r} != {value!r}"
                )
    for tenant in tenants:
        converted = [call(pair.to_universal, [value, tenant]) for value in samples]
        for first in range(len(samples)):
            for second in range(len(samples)):
                same_input = _approximately_equal(samples[first], samples[second])
                same_output = _approximately_equal(converted[first], converted[second])
                if same_input != same_output:
                    violations.append(
                        f"{pair.name}: equality not preserved for tenant {tenant} on "
                        f"({samples[first]!r}, {samples[second]!r})"
                    )
    if len(tenants) >= 2:
        source, target = tenants[0], tenants[1]
        for value in samples:
            translated = call(
                pair.from_universal, [call(pair.to_universal, [value, source]), target]
            )
            back = call(
                pair.from_universal, [call(pair.to_universal, [translated, target]), source]
            )
            if not _approximately_equal(back, value):
                violations.append(
                    f"{pair.name}: cross-tenant translation not invertible for {value!r}"
                )
    return violations


def _approximately_equal(left, right) -> bool:
    if isinstance(left, float) or isinstance(right, float):
        try:
            return abs(float(left) - float(right)) <= 1e-6 * max(1.0, abs(float(left)))
        except (TypeError, ValueError):
            return False
    return left == right


# ---------------------------------------------------------------------------
# Helpers to build the two standard MT-H conversion pairs
# ---------------------------------------------------------------------------


def make_currency_pair(
    to_name: str = "currencyToUniversal",
    from_name: str = "currencyFromUniversal",
    rate_to_fn: str = "mt_currency_rate_to_universal",
    rate_from_fn: str = "mt_currency_rate_from_universal",
) -> ConversionPair:
    """The constant-factor currency pair (universal format: USD)."""

    def inline_to(value: ast.Expression, ttid: ast.Expression) -> ast.Expression:
        return ast.BinaryOp("*", value, ast.func(rate_to_fn, ttid))

    def inline_from(value: ast.Expression, ttid: ast.Expression) -> ast.Expression:
        return ast.BinaryOp("*", value, ast.func(rate_from_fn, ttid))

    return ConversionPair(
        name="currency",
        to_universal=to_name,
        from_universal=from_name,
        constant_factor=True,
        inline_to=inline_to,
        inline_from=inline_from,
    )


def make_phone_pair(
    to_name: str = "phoneToUniversal",
    from_name: str = "phoneFromUniversal",
    prefix_fn: str = "mt_phone_prefix",
) -> ConversionPair:
    """The phone-prefix pair: equality preserving only (not order preserving)."""

    def inline_to(value: ast.Expression, ttid: ast.Expression) -> ast.Expression:
        prefix_length = ast.func("CHAR_LENGTH", ast.func(prefix_fn, ttid))
        return ast.Substring(
            expr=value, start=ast.BinaryOp("+", prefix_length, ast.lit(1)), length=None
        )

    def inline_from(value: ast.Expression, ttid: ast.Expression) -> ast.Expression:
        return ast.func("CONCAT", ast.func(prefix_fn, ttid), value)

    return ConversionPair(
        name="phone",
        to_universal=to_name,
        from_universal=from_name,
        order_preserving=False,
        inline_to=inline_to,
        inline_from=inline_from,
    )
