"""MTSQL core: schema metadata, conversions, scopes, privileges, rewriting.

The public entry point is :class:`MTBase` (the middleware) from which clients
obtain :class:`MTConnection` objects.
"""

from .client import MTConnection
from .conversion import (
    ConversionPair,
    ConversionRegistry,
    distributes_over,
    make_currency_pair,
    make_phone_pair,
    verify_conversion_pair,
)
from .dml import DMLRewriter
from .middleware import MTBase
from .mtschema import AttributeInfo, MTSchema, TableInfo
from .optimizer import OptimizationLevel, apply_optimizations
from .privileges import PrivilegeManager
from .rewrite import CanonicalRewriter, RewriteContext, RewriteOptions
from .scope import ComplexScope, DefaultScope, SimpleScope, parse_scope

__all__ = [
    "MTBase",
    "MTConnection",
    "MTSchema",
    "TableInfo",
    "AttributeInfo",
    "ConversionPair",
    "ConversionRegistry",
    "distributes_over",
    "make_currency_pair",
    "make_phone_pair",
    "verify_conversion_pair",
    "DMLRewriter",
    "OptimizationLevel",
    "apply_optimizations",
    "PrivilegeManager",
    "CanonicalRewriter",
    "RewriteContext",
    "RewriteOptions",
    "ComplexScope",
    "DefaultScope",
    "SimpleScope",
    "parse_scope",
]
