"""MT schema model: table generality and attribute comparability (§2.2).

The MTBase middleware keeps this metadata (the paper's ``Schema`` meta table)
next to the physical tables.  The rewrite algorithm consults it to decide,
per attribute, whether a reference can be compared directly (*comparable*),
needs conversion through a conversion-function pair (*convertible*), or must
never be compared across tenants (*tenant-specific*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..errors import CatalogError, MTSQLError, TypeMismatchError
from ..sql import ast
from ..sql.types import SQLType

DEFAULT_TTID_COLUMN = "ttid"


@dataclass
class AttributeInfo:
    """Comparability metadata for one attribute of a tenant-aware table."""

    name: str
    comparability: ast.Comparability
    conversion: Optional[str] = None  # name of the registered conversion pair
    #: declared SQL type (None when the DDL used a type this catalog
    #: does not model — the static analyzer then treats it as unknown)
    sql_type: Optional[SQLType] = None
    #: declared NOT NULL — storage enforces it, so non-nullness is *proven*
    not_null: bool = False

    @property
    def key(self) -> str:
        return self.name.lower()


@dataclass
class TableInfo:
    """MT metadata for one logical table."""

    name: str
    generality: ast.TableGenerality
    attributes: dict[str, AttributeInfo] = field(default_factory=dict)
    ttid_column: str = DEFAULT_TTID_COLUMN

    @property
    def key(self) -> str:
        return self.name.lower()

    @property
    def is_tenant_specific(self) -> bool:
        return self.generality is ast.TableGenerality.SPECIFIC

    def attribute(self, name: str) -> AttributeInfo:
        try:
            return self.attributes[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"table {self.name!r} has no attribute {name!r}") from exc

    def has_attribute(self, name: str) -> bool:
        return name.lower() in self.attributes

    def attribute_names(self) -> list[str]:
        return [attribute.name for attribute in self.attributes.values()]

    def convertible_attributes(self) -> list[AttributeInfo]:
        return [
            attribute
            for attribute in self.attributes.values()
            if attribute.comparability is ast.Comparability.CONVERTIBLE
        ]

    def tenant_specific_attributes(self) -> list[AttributeInfo]:
        return [
            attribute
            for attribute in self.attributes.values()
            if attribute.comparability is ast.Comparability.SPECIFIC
        ]


class MTSchema:
    """The middleware's view of which tables/attributes are tenant-aware."""

    def __init__(self) -> None:
        self._tables: dict[str, TableInfo] = {}

    # -- registration ---------------------------------------------------------

    def add_table(self, table: TableInfo) -> TableInfo:
        if table.key in self._tables:
            raise CatalogError(f"MT table {table.name!r} already registered")
        self._tables[table.key] = table
        return table

    def add_from_create_table(
        self,
        statement: ast.CreateTable,
        ttid_column: str = DEFAULT_TTID_COLUMN,
        conversion_names: Optional[dict[str, str]] = None,
    ) -> TableInfo:
        """Derive MT metadata from an MTSQL ``CREATE TABLE`` statement.

        Defaults follow §2.2.1: tables are global unless marked ``SPECIFIC``;
        attributes of tenant-specific tables default to tenant-specific and
        attributes of global tables to comparable.  ``conversion_names`` maps
        attribute name -> registered conversion pair for CONVERTIBLE columns
        (when omitted, the pair is named after the ``@toUniversal`` function).
        """
        generality = statement.generality or ast.TableGenerality.GLOBAL
        default_comparability = (
            ast.Comparability.SPECIFIC
            if generality is ast.TableGenerality.SPECIFIC
            else ast.Comparability.COMPARABLE
        )
        attributes: dict[str, AttributeInfo] = {}
        for column in statement.columns:
            comparability = column.comparability or default_comparability
            conversion = None
            if comparability is ast.Comparability.CONVERTIBLE:
                if conversion_names and column.name.lower() in {
                    key.lower() for key in conversion_names
                }:
                    lookup = {key.lower(): value for key, value in conversion_names.items()}
                    conversion = lookup[column.name.lower()]
                elif column.to_universal is not None:
                    conversion = column.to_universal
                else:
                    raise MTSQLError(
                        f"convertible attribute {column.name!r} needs a conversion pair"
                    )
            try:
                sql_type: Optional[SQLType] = SQLType.from_name(column.type_name)
            except TypeMismatchError:
                sql_type = None
            attributes[column.name.lower()] = AttributeInfo(
                name=column.name,
                comparability=comparability,
                conversion=conversion,
                sql_type=sql_type,
                not_null=column.not_null,
            )
        info = TableInfo(
            name=statement.name,
            generality=generality,
            attributes=attributes,
            ttid_column=ttid_column,
        )
        return self.add_table(info)

    def drop_table(self, name: str) -> None:
        self._tables.pop(name.lower(), None)

    # -- look-ups ---------------------------------------------------------------

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> TableInfo:
        try:
            return self._tables[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"table {name!r} is not registered in the MT schema") from exc

    def tables(self) -> list[TableInfo]:
        return list(self._tables.values())

    def tenant_specific_tables(self) -> list[TableInfo]:
        return [table for table in self._tables.values() if table.is_tenant_specific]

    def global_tables(self) -> list[TableInfo]:
        return [table for table in self._tables.values() if not table.is_tenant_specific]

    def comparability(self, table_name: str, attribute_name: str) -> ast.Comparability:
        return self.table(table_name).attribute(attribute_name).comparability

    def conversion_name(self, table_name: str, attribute_name: str) -> Optional[str]:
        return self.table(table_name).attribute(attribute_name).conversion

    def ttid_column(self, table_name: str) -> str:
        return self.table(table_name).ttid_column

    def find_attribute_table(
        self, attribute_name: str, candidate_tables: Iterable[str]
    ) -> Optional[str]:
        """Find which of the candidate tables owns an (unqualified) attribute."""
        owners = [
            table_name
            for table_name in candidate_tables
            if self.has_table(table_name) and self.table(table_name).has_attribute(attribute_name)
        ]
        if len(owners) > 1:
            raise MTSQLError(
                f"ambiguous attribute reference {attribute_name!r}: "
                f"defined in tables {', '.join(sorted(owners))}"
            )
        return owners[0] if owners else None
