"""Generic AST transformation helpers shared by the executor and the rewriter.

:func:`transform_expression` rebuilds an expression tree bottom-up... actually
top-down: the supplied function sees each node first; when it returns a
replacement node that subtree is used as-is, otherwise the children are
transformed recursively and the node is rebuilt.  Sub-queries nested inside
expressions are left untouched unless ``descend_subqueries`` is set, in which
case their SELECT/WHERE/... expressions are transformed with the same
function.
"""

from __future__ import annotations

import copy
from dataclasses import replace
from typing import Callable, Optional

from . import ast

TransformFn = Callable[[ast.Expression], Optional[ast.Expression]]


def transform_expression(
    expr: Optional[ast.Expression],
    fn: TransformFn,
    descend_subqueries: bool = False,
) -> Optional[ast.Expression]:
    """Return a new expression tree with ``fn`` applied at every node."""
    if expr is None:
        return None
    replacement = fn(expr)
    if replacement is not None:
        return replacement

    def recurse(child: Optional[ast.Expression]) -> Optional[ast.Expression]:
        return transform_expression(child, fn, descend_subqueries)

    if isinstance(expr, (ast.Literal, ast.Column, ast.Star)):
        return expr
    if isinstance(expr, ast.FunctionCall):
        return replace(expr, args=tuple(recurse(argument) for argument in expr.args))
    if isinstance(expr, ast.BinaryOp):
        return replace(expr, left=recurse(expr.left), right=recurse(expr.right))
    if isinstance(expr, ast.UnaryOp):
        return replace(expr, operand=recurse(expr.operand))
    if isinstance(expr, ast.Case):
        whens = tuple(
            ast.CaseWhen(condition=recurse(when.condition), result=recurse(when.result))
            for when in expr.whens
        )
        return replace(expr, whens=whens, else_result=recurse(expr.else_result))
    if isinstance(expr, ast.InList):
        return replace(
            expr,
            expr=recurse(expr.expr),
            items=tuple(recurse(item) for item in expr.items),
        )
    if isinstance(expr, ast.InSubquery):
        query = (
            transform_select(expr.query, fn) if descend_subqueries else expr.query
        )
        return replace(expr, expr=recurse(expr.expr), query=query)
    if isinstance(expr, ast.Exists):
        query = (
            transform_select(expr.query, fn) if descend_subqueries else expr.query
        )
        return replace(expr, query=query)
    if isinstance(expr, ast.ScalarSubquery):
        query = (
            transform_select(expr.query, fn) if descend_subqueries else expr.query
        )
        return replace(expr, query=query)
    if isinstance(expr, ast.Between):
        return replace(
            expr,
            expr=recurse(expr.expr),
            low=recurse(expr.low),
            high=recurse(expr.high),
        )
    if isinstance(expr, ast.Like):
        return replace(expr, expr=recurse(expr.expr), pattern=recurse(expr.pattern))
    if isinstance(expr, ast.IsNull):
        return replace(expr, expr=recurse(expr.expr))
    if isinstance(expr, ast.Extract):
        return replace(expr, expr=recurse(expr.expr))
    if isinstance(expr, ast.Substring):
        return replace(
            expr,
            expr=recurse(expr.expr),
            start=recurse(expr.start),
            length=recurse(expr.length),
        )
    return expr


def transform_select(select: ast.Select, fn: TransformFn) -> ast.Select:
    """Apply an expression transform to every expression of a SELECT.

    FROM-clause sub-queries are transformed recursively as well; this is what
    the MTSQL rewrite passes rely on.
    """
    new_select = copy.copy(select)
    new_select.items = [
        ast.SelectItem(expr=transform_expression(item.expr, fn, True), alias=item.alias)
        for item in select.items
    ]
    new_select.from_items = [transform_from_item(item, fn) for item in select.from_items]
    new_select.where = transform_expression(select.where, fn, True)
    new_select.group_by = [transform_expression(expr, fn, True) for expr in select.group_by]
    new_select.having = transform_expression(select.having, fn, True)
    new_select.order_by = [
        ast.OrderItem(expr=transform_expression(order.expr, fn, True), descending=order.descending)
        for order in select.order_by
    ]
    return new_select


def transform_from_item(item: ast.FromItem, fn: TransformFn) -> ast.FromItem:
    if isinstance(item, ast.TableRef):
        return ast.TableRef(name=item.name, alias=item.alias)
    if isinstance(item, ast.SubqueryRef):
        return ast.SubqueryRef(query=transform_select(item.query, fn), alias=item.alias)
    if isinstance(item, ast.Join):
        return ast.Join(
            left=transform_from_item(item.left, fn),
            right=transform_from_item(item.right, fn),
            join_type=item.join_type,
            condition=transform_expression(item.condition, fn, True),
            alias=item.alias,
        )
    return item


def clone_select(select: ast.Select) -> ast.Select:
    """Deep-ish copy of a SELECT (expressions are immutable, clauses are new)."""
    return transform_select(select, lambda node: None)


def walk_expression(expr: Optional[ast.Expression]):
    """Yield every expression node in a tree (not descending into sub-queries)."""
    if expr is None:
        return
    yield expr
    if isinstance(expr, ast.BinaryOp):
        yield from walk_expression(expr.left)
        yield from walk_expression(expr.right)
    elif isinstance(expr, ast.UnaryOp):
        yield from walk_expression(expr.operand)
    elif isinstance(expr, ast.FunctionCall):
        for argument in expr.args:
            yield from walk_expression(argument)
    elif isinstance(expr, ast.Case):
        for when in expr.whens:
            yield from walk_expression(when.condition)
            yield from walk_expression(when.result)
        yield from walk_expression(expr.else_result)
    elif isinstance(expr, ast.InList):
        yield from walk_expression(expr.expr)
        for item in expr.items:
            yield from walk_expression(item)
    elif isinstance(expr, ast.InSubquery):
        yield from walk_expression(expr.expr)
    elif isinstance(expr, ast.Between):
        yield from walk_expression(expr.expr)
        yield from walk_expression(expr.low)
        yield from walk_expression(expr.high)
    elif isinstance(expr, ast.Like):
        yield from walk_expression(expr.expr)
        yield from walk_expression(expr.pattern)
    elif isinstance(expr, ast.IsNull):
        yield from walk_expression(expr.expr)
    elif isinstance(expr, (ast.Extract,)):
        yield from walk_expression(expr.expr)
    elif isinstance(expr, ast.Substring):
        yield from walk_expression(expr.expr)
        yield from walk_expression(expr.start)
        yield from walk_expression(expr.length)
