"""Generic AST transformation helpers shared by the executor and the rewriter.

:func:`transform_expression` rebuilds an expression tree bottom-up... actually
top-down: the supplied function sees each node first; when it returns a
replacement node that subtree is used as-is, otherwise the children are
transformed recursively and the node is rebuilt.  Sub-queries nested inside
expressions are left untouched unless ``descend_subqueries`` is set, in which
case their SELECT/WHERE/... expressions are transformed with the same
function.

The second half of the module splits a (rewritten, plain-SQL) ``SELECT`` into
a *per-shard query* plus a *merge plan* for scatter-gather execution over a
tenant-partitioned cluster (:mod:`repro.cluster`):

* :func:`split_row_stream` — non-aggregate queries: the shards stream rows,
  the coordinator re-sorts, deduplicates and applies ``LIMIT``,
* :func:`split_partial_aggregates` — aggregate queries: the shards compute
  partial aggregates per group (``AVG`` decomposed into ``SUM``/``COUNT``),
  the coordinator re-aggregates and re-applies ``HAVING``/``ORDER BY``.

Both raise :class:`~repro.errors.SplitError` when the statement has no such
decomposition; the cluster planner then falls back to a plan that does not
need one.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Callable, Iterator, Optional, Union

from ..errors import SplitError
from . import ast

TransformFn = Callable[[ast.Expression], Optional[ast.Expression]]


def transform_expression(
    expr: Optional[ast.Expression],
    fn: TransformFn,
    descend_subqueries: bool = False,
) -> Optional[ast.Expression]:
    """Return a new expression tree with ``fn`` applied at every node."""
    if expr is None:
        return None
    replacement = fn(expr)
    if replacement is not None:
        return replacement

    def recurse(child: Optional[ast.Expression]) -> Optional[ast.Expression]:
        return transform_expression(child, fn, descend_subqueries)

    if isinstance(expr, (ast.Literal, ast.Column, ast.Star, ast.Parameter)):
        return expr
    if isinstance(expr, ast.FunctionCall):
        return replace(expr, args=tuple(recurse(argument) for argument in expr.args))
    if isinstance(expr, ast.BinaryOp):
        return replace(expr, left=recurse(expr.left), right=recurse(expr.right))
    if isinstance(expr, ast.UnaryOp):
        return replace(expr, operand=recurse(expr.operand))
    if isinstance(expr, ast.Case):
        whens = tuple(
            ast.CaseWhen(condition=recurse(when.condition), result=recurse(when.result))
            for when in expr.whens
        )
        return replace(expr, whens=whens, else_result=recurse(expr.else_result))
    if isinstance(expr, ast.InList):
        return replace(
            expr,
            expr=recurse(expr.expr),
            items=tuple(recurse(item) for item in expr.items),
        )
    if isinstance(expr, ast.InSubquery):
        query = (
            transform_select(expr.query, fn) if descend_subqueries else expr.query
        )
        return replace(expr, expr=recurse(expr.expr), query=query)
    if isinstance(expr, ast.Exists):
        query = (
            transform_select(expr.query, fn) if descend_subqueries else expr.query
        )
        return replace(expr, query=query)
    if isinstance(expr, ast.ScalarSubquery):
        query = (
            transform_select(expr.query, fn) if descend_subqueries else expr.query
        )
        return replace(expr, query=query)
    if isinstance(expr, ast.Between):
        return replace(
            expr,
            expr=recurse(expr.expr),
            low=recurse(expr.low),
            high=recurse(expr.high),
        )
    if isinstance(expr, ast.Like):
        return replace(expr, expr=recurse(expr.expr), pattern=recurse(expr.pattern))
    if isinstance(expr, ast.IsNull):
        return replace(expr, expr=recurse(expr.expr))
    if isinstance(expr, ast.Extract):
        return replace(expr, expr=recurse(expr.expr))
    if isinstance(expr, ast.Substring):
        return replace(
            expr,
            expr=recurse(expr.expr),
            start=recurse(expr.start),
            length=recurse(expr.length),
        )
    return expr


def transform_select(select: ast.Select, fn: TransformFn) -> ast.Select:
    """Apply an expression transform to every expression of a SELECT.

    FROM-clause sub-queries are transformed recursively as well; this is what
    the MTSQL rewrite passes rely on.
    """
    new_select = copy.copy(select)
    new_select.items = [
        ast.SelectItem(expr=transform_expression(item.expr, fn, True), alias=item.alias)
        for item in select.items
    ]
    new_select.from_items = [transform_from_item(item, fn) for item in select.from_items]
    new_select.where = transform_expression(select.where, fn, True)
    new_select.group_by = [transform_expression(expr, fn, True) for expr in select.group_by]
    new_select.having = transform_expression(select.having, fn, True)
    new_select.order_by = [
        ast.OrderItem(expr=transform_expression(order.expr, fn, True), descending=order.descending)
        for order in select.order_by
    ]
    return new_select


def transform_from_item(item: ast.FromItem, fn: TransformFn) -> ast.FromItem:
    """Apply an expression transform to one FROM item (recursing into joins)."""
    if isinstance(item, ast.TableRef):
        return ast.TableRef(name=item.name, alias=item.alias)
    if isinstance(item, ast.SubqueryRef):
        return ast.SubqueryRef(query=transform_select(item.query, fn), alias=item.alias)
    if isinstance(item, ast.Join):
        return ast.Join(
            left=transform_from_item(item.left, fn),
            right=transform_from_item(item.right, fn),
            join_type=item.join_type,
            condition=transform_expression(item.condition, fn, True),
            alias=item.alias,
        )
    return item


def clone_select(select: ast.Select) -> ast.Select:
    """Deep-ish copy of a SELECT (expressions are immutable, clauses are new)."""
    return transform_select(select, lambda node: None)


def walk_expression(expr: Optional[ast.Expression]):
    """Yield every expression node in a tree (not descending into sub-queries)."""
    if expr is None:
        return
    yield expr
    if isinstance(expr, ast.BinaryOp):
        yield from walk_expression(expr.left)
        yield from walk_expression(expr.right)
    elif isinstance(expr, ast.UnaryOp):
        yield from walk_expression(expr.operand)
    elif isinstance(expr, ast.FunctionCall):
        for argument in expr.args:
            yield from walk_expression(argument)
    elif isinstance(expr, ast.Case):
        for when in expr.whens:
            yield from walk_expression(when.condition)
            yield from walk_expression(when.result)
        yield from walk_expression(expr.else_result)
    elif isinstance(expr, ast.InList):
        yield from walk_expression(expr.expr)
        for item in expr.items:
            yield from walk_expression(item)
    elif isinstance(expr, ast.InSubquery):
        yield from walk_expression(expr.expr)
    elif isinstance(expr, ast.Between):
        yield from walk_expression(expr.expr)
        yield from walk_expression(expr.low)
        yield from walk_expression(expr.high)
    elif isinstance(expr, ast.Like):
        yield from walk_expression(expr.expr)
        yield from walk_expression(expr.pattern)
    elif isinstance(expr, ast.IsNull):
        yield from walk_expression(expr.expr)
    elif isinstance(expr, (ast.Extract,)):
        yield from walk_expression(expr.expr)
    elif isinstance(expr, ast.Substring):
        yield from walk_expression(expr.expr)
        yield from walk_expression(expr.start)
        yield from walk_expression(expr.length)


# ---------------------------------------------------------------------------
# Statement-level walks used by the cluster planner
# ---------------------------------------------------------------------------


def walk_selects(select: ast.Select) -> Iterator[ast.Select]:
    """Yield a SELECT and every sub-query nested anywhere inside it."""
    yield select
    for item in select.from_items:
        yield from _walk_from_selects(item)
    for expr in iter_select_expressions(select):
        for node in walk_expression(expr):
            if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
                yield from walk_selects(node.query)


def _walk_from_selects(item: ast.FromItem) -> Iterator[ast.Select]:
    if isinstance(item, ast.SubqueryRef):
        yield from walk_selects(item.query)
    elif isinstance(item, ast.Join):
        yield from _walk_from_selects(item.left)
        yield from _walk_from_selects(item.right)


def iter_select_expressions(select: ast.Select) -> Iterator[ast.Expression]:
    """Yield every top-level expression of one SELECT (not of its FROM items)."""
    for item in select.items:
        yield item.expr
    for conjunct in _join_conditions(select.from_items):
        yield conjunct
    if select.where is not None:
        yield select.where
    for expr in select.group_by:
        yield expr
    if select.having is not None:
        yield select.having
    for order in select.order_by:
        yield order.expr


def _join_conditions(from_items: list[ast.FromItem]) -> Iterator[ast.Expression]:
    for item in from_items:
        if isinstance(item, ast.Join):
            if item.condition is not None:
                yield item.condition
            yield from _join_conditions([item.left, item.right])


def referenced_table_names(statement: Union[ast.Select, ast.Statement]) -> set[str]:
    """Lower-cased names of every base table / view a statement references.

    For DML this includes tables referenced by sub-queries in the ``WHERE``
    clause and (for ``UPDATE``) in assignment values — the cluster layer
    routes on the full reference set, not just the target table.
    """
    names: set[str] = set()
    if isinstance(statement, ast.Select):
        for select in walk_selects(statement):
            for item in select.from_items:
                _collect_table_names(item, names)
    elif isinstance(statement, (ast.Insert, ast.Update, ast.Delete)):
        names.add(statement.table.lower())
        if isinstance(statement, ast.Insert) and statement.query is not None:
            names |= referenced_table_names(statement.query)
        expressions: list[Optional[ast.Expression]] = []
        if isinstance(statement, (ast.Update, ast.Delete)):
            expressions.append(statement.where)
        if isinstance(statement, ast.Update):
            expressions.extend(assignment.value for assignment in statement.assignments)
        for expr in expressions:
            for node in walk_expression(expr):
                if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
                    names |= referenced_table_names(node.query)
    return names


def _collect_table_names(item: ast.FromItem, names: set[str]) -> None:
    if isinstance(item, ast.TableRef):
        names.add(item.name.lower())
    elif isinstance(item, ast.Join):
        _collect_table_names(item.left, names)
        _collect_table_names(item.right, names)
    # SubqueryRef tables are collected by walk_selects


def count_nodes(node: Optional[ast.Node]) -> int:
    """Total AST nodes in a statement or expression tree (sub-queries included).

    The size metric behind the compiler's per-pass instrumentation
    (:mod:`repro.compile`): every SELECT, FROM item, select/order item and
    expression node counts as one.
    """
    if node is None:
        return 0
    if isinstance(node, ast.Select):
        total = 1
        for item in node.from_items:
            total += _count_from_item_nodes(item)
        for select_item in node.items:
            total += 1 + count_nodes(select_item.expr)
        total += count_nodes(node.where)
        for expr in node.group_by:
            total += count_nodes(expr)
        total += count_nodes(node.having)
        for order in node.order_by:
            total += 1 + count_nodes(order.expr)
        return total
    total = 0
    for sub in walk_expression(node):  # type: ignore[arg-type]
        total += 1
        if isinstance(sub, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
            total += count_nodes(sub.query)
    return total


def _count_from_item_nodes(item: ast.FromItem) -> int:
    if isinstance(item, ast.SubqueryRef):
        return 1 + count_nodes(item.query)
    if isinstance(item, ast.Join):
        return (
            1
            + _count_from_item_nodes(item.left)
            + _count_from_item_nodes(item.right)
            + count_nodes(item.condition)
        )
    return 1


def find_aggregate_calls(expr: Optional[ast.Expression]) -> list[ast.FunctionCall]:
    """All aggregate calls in an expression (sub-queries excluded)."""
    return [
        node
        for node in walk_expression(expr)
        if isinstance(node, ast.FunctionCall) and node.is_aggregate
    ]


def select_aggregate_calls(select: ast.Select) -> list[ast.FunctionCall]:
    """Aggregate calls of one SELECT's own clauses (items, HAVING, ORDER BY)."""
    aggregates: list[ast.FunctionCall] = []
    for item in select.items:
        aggregates.extend(find_aggregate_calls(item.expr))
    aggregates.extend(find_aggregate_calls(select.having))
    for order in select.order_by:
        aggregates.extend(find_aggregate_calls(order.expr))
    return aggregates


# ---------------------------------------------------------------------------
# Per-shard query + merge plan splits
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RowStreamSplit:
    """A non-aggregate query split for scatter-gather execution.

    The per-shard query keeps the original SELECT list (plus hidden trailing
    sort-key columns when ``ORDER BY`` references an expression that is not
    in the SELECT list); the coordinator concatenates the shard streams,
    re-sorts on ``sort_columns``, deduplicates when ``distinct`` and applies
    ``limit``, then strips the hidden columns down to ``visible_width``.
    """

    shard_query: ast.Select
    visible_width: int
    sort_columns: tuple[tuple[int, bool], ...]  # (row position, descending)
    limit: Optional[int]
    distinct: bool


@dataclass(frozen=True)
class PartialAggregate:
    """How one aggregate call is merged from per-shard partial columns.

    ``kind`` is the merge rule — ``sum``/``count`` add partials, ``min``/
    ``max`` keep the extremum and ``avg`` divides a partial-SUM column by a
    partial-COUNT column (the classic AVG = SUM ÷ COUNT decomposition).
    ``columns`` are the positions of the partial column(s) in the per-shard
    result row (one position, except two for ``avg``).
    """

    text: str
    kind: str
    columns: tuple[int, ...]


@dataclass(frozen=True)
class AggregateSplit:
    """An aggregate query split into per-shard partials plus a merge plan.

    The per-shard query projects the group-key expressions first (positions
    ``0 .. len(key_texts)-1``) followed by the partial-aggregate columns; it
    drops ``HAVING``/``ORDER BY``/``LIMIT``/``DISTINCT``, which the
    coordinator re-applies after re-aggregation.  ``key_texts`` are the
    printed group-key expressions — the merge evaluator binds them (and each
    :class:`PartialAggregate`'s ``text``) to merged values when evaluating
    the final SELECT list, ``HAVING`` and ``ORDER BY``.
    """

    shard_query: ast.Select
    key_texts: tuple[str, ...]
    partials: tuple[PartialAggregate, ...]


_MERGEABLE_AGGREGATES = frozenset({"SUM", "COUNT", "MIN", "MAX", "AVG"})


def split_row_stream(select: ast.Select) -> RowStreamSplit:
    """Split a non-aggregate SELECT into a per-shard stream + merge ordering.

    Raises :class:`SplitError` for aggregate/grouped queries and for DISTINCT
    queries whose ORDER BY is not part of the SELECT list (a hidden sort
    column would change the DISTINCT row identity).
    """
    if select.group_by or select_aggregate_calls(select):
        raise SplitError("row-stream split needs a non-aggregate query")
    shard_query = clone_select(select)
    shard_query.order_by = []
    shard_query.limit = None

    visible_width = len(select.items)
    sort_columns: list[tuple[int, bool]] = []
    alias_positions = {
        item.alias.lower(): position
        for position, item in enumerate(select.items)
        if item.alias is not None
    }
    item_positions = {
        ast.Node.to_sql(item.expr): position for position, item in enumerate(select.items)
    }
    for order in select.order_by:
        position = _order_key_position(order.expr, alias_positions, item_positions)
        if position is None:
            if select.distinct:
                raise SplitError(
                    "DISTINCT with an ORDER BY key outside the SELECT list"
                )
            position = len(shard_query.items)
            shard_query.items.append(ast.SelectItem(expr=order.expr, alias=None))
        sort_columns.append((position, order.descending))
    return RowStreamSplit(
        shard_query=shard_query,
        visible_width=visible_width,
        sort_columns=tuple(sort_columns),
        limit=select.limit,
        distinct=select.distinct,
    )


def _order_key_position(
    expr: ast.Expression,
    alias_positions: dict[str, int],
    item_positions: dict[str, int],
) -> Optional[int]:
    if isinstance(expr, ast.Column) and expr.table is None:
        position = alias_positions.get(expr.name.lower())
        if position is not None:
            return position
    return item_positions.get(ast.Node.to_sql(expr))


def split_partial_aggregates(select: ast.Select) -> AggregateSplit:
    """Split an aggregate SELECT into per-shard partials plus a merge plan.

    Raises :class:`SplitError` when any aggregate is not partial-mergeable
    (DISTINCT aggregates, unknown functions).
    """
    aggregates = select_aggregate_calls(select)
    if not aggregates and not select.group_by:
        raise SplitError("partial-aggregate split needs an aggregate query")

    unique: dict[str, ast.FunctionCall] = {}
    for call in aggregates:
        unique.setdefault(ast.Node.to_sql(call), call)

    key_texts = tuple(ast.Node.to_sql(expr) for expr in select.group_by)
    items = [
        ast.SelectItem(expr=expr, alias=f"mt_key_{position}")
        for position, expr in enumerate(select.group_by)
    ]
    partials: list[PartialAggregate] = []
    for text, call in unique.items():
        if call.distinct or call.name.upper() not in _MERGEABLE_AGGREGATES:
            raise SplitError(f"aggregate {text} is not partial-mergeable")
        if call.name.upper() == "AVG":
            columns = (len(items), len(items) + 1)
            items.append(
                ast.SelectItem(
                    expr=ast.func("SUM", *call.args), alias=f"mt_part_{len(partials)}s"
                )
            )
            items.append(
                ast.SelectItem(
                    expr=ast.func("COUNT", *call.args), alias=f"mt_part_{len(partials)}c"
                )
            )
            partials.append(PartialAggregate(text=text, kind="avg", columns=columns))
        else:
            columns = (len(items),)
            items.append(ast.SelectItem(expr=call, alias=f"mt_part_{len(partials)}"))
            partials.append(
                PartialAggregate(text=text, kind=call.name.lower(), columns=columns)
            )

    shard_query = clone_select(select)
    shard_query.items = items
    shard_query.having = None
    shard_query.order_by = []
    shard_query.limit = None
    shard_query.distinct = False
    return AggregateSplit(
        shard_query=shard_query, key_texts=key_texts, partials=tuple(partials)
    )
