"""A hand-written SQL lexer.

The lexer produces a flat list of :class:`Token` objects.  Keywords are not
distinguished from identifiers at this level (the parser decides), but the
token carries the upper-cased form so the parser can match case-insensitively
without losing the original spelling of identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import LexerError


class TokenType(Enum):
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    PARAM = "PARAM"  # $1, $2 ... inside SQL function bodies
    PLACEHOLDER = "PLACEHOLDER"  # bind parameters: ?, ?3, :name
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"  # ( ) , ; .
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    @property
    def upper(self) -> str:
        return self.text.upper()

    def matches(self, keyword: str) -> bool:
        return self.type is TokenType.IDENT and self.upper == keyword.upper()


_OPERATORS = (
    "<>",
    "<=",
    ">=",
    "!=",
    "||",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "@",
)

_PUNCTUATION = "(),;."


def tokenize(text: str) -> list[Token]:
    """Convert SQL text into a token list (always terminated by an EOF token)."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        # -- line comments
        if char == "-" and text.startswith("--", index):
            newline = text.find("\n", index)
            index = length if newline == -1 else newline + 1
            continue
        # /* block comments */
        if char == "/" and text.startswith("/*", index):
            end = text.find("*/", index + 2)
            if end == -1:
                raise LexerError("unterminated block comment", index)
            index = end + 2
            continue
        if char == "'":
            token, index = _lex_string(text, index)
            tokens.append(token)
            continue
        if char == '"':
            token, index = _lex_quoted_identifier(text, index)
            tokens.append(token)
            continue
        if char.isdigit() or (
            char == "." and index + 1 < length and text[index + 1].isdigit()
        ):
            token, index = _lex_number(text, index)
            tokens.append(token)
            continue
        if char == "?":
            start = index
            index += 1
            while index < length and text[index].isdigit():
                index += 1
            tokens.append(Token(TokenType.PLACEHOLDER, text[start:index], start))
            continue
        if char == ":" and index + 1 < length and (
            text[index + 1].isalpha() or text[index + 1] == "_"
        ):
            start = index
            index += 1
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            tokens.append(Token(TokenType.PLACEHOLDER, text[start:index], start))
            continue
        if char == "$" and index + 1 < length and text[index + 1].isdigit():
            start = index
            index += 1
            while index < length and text[index].isdigit():
                index += 1
            tokens.append(Token(TokenType.PARAM, text[start:index], start))
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            tokens.append(Token(TokenType.IDENT, text[start:index], start))
            continue
        matched_operator = _match_operator(text, index)
        if matched_operator is not None:
            tokens.append(Token(TokenType.OPERATOR, matched_operator, index))
            index += len(matched_operator)
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCT, char, index))
            index += 1
            continue
        raise LexerError(f"unexpected character {char!r} at position {index}", index)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def _match_operator(text: str, index: int) -> str | None:
    for operator in _OPERATORS:
        if text.startswith(operator, index):
            return operator
    return None


def _lex_string(text: str, index: int) -> tuple[Token, int]:
    """Lex a single-quoted string; '' escapes a quote (standard SQL)."""
    start = index
    index += 1
    chunks: list[str] = []
    while index < len(text):
        char = text[index]
        if char == "'":
            if index + 1 < len(text) and text[index + 1] == "'":
                chunks.append("'")
                index += 2
                continue
            return Token(TokenType.STRING, "".join(chunks), start), index + 1
        chunks.append(char)
        index += 1
    raise LexerError("unterminated string literal", start)


def _lex_quoted_identifier(text: str, index: int) -> tuple[Token, int]:
    """Lex a double-quoted identifier (also used for SET SCOPE = "...")."""
    start = index
    index += 1
    chunks: list[str] = []
    while index < len(text):
        char = text[index]
        if char == '"':
            if index + 1 < len(text) and text[index + 1] == '"':
                chunks.append('"')
                index += 2
                continue
            return Token(TokenType.STRING, "".join(chunks), start), index + 1
        chunks.append(char)
        index += 1
    raise LexerError("unterminated quoted identifier", start)


def _lex_number(text: str, index: int) -> tuple[Token, int]:
    start = index
    seen_dot = False
    while index < len(text):
        char = text[index]
        if char.isdigit():
            index += 1
        elif char == "." and not seen_dot:
            seen_dot = True
            index += 1
        else:
            break
    return Token(TokenType.NUMBER, text[start:index], start), index
