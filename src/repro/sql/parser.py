"""Recursive-descent parser for the SQL / MTSQL dialect used by ``repro``.

The grammar covers everything the MT-H workload and the paper's examples
need: full SELECT queries (joins, sub-queries, correlated sub-queries,
aggregates, CASE, LIKE, IN, EXISTS, BETWEEN, EXTRACT, SUBSTRING, date and
interval literals), the MTSQL DDL extensions (``GLOBAL`` / ``SPECIFIC`` /
``COMPARABLE`` / ``CONVERTIBLE @to @from``), ``CREATE FUNCTION`` with SQL
bodies, DML, the MTSQL GRANT/REVOKE statements and ``SET SCOPE``.
"""

from __future__ import annotations

from typing import Optional

from ..errors import InvalidStatementError, LexerError, ParseError
from . import ast
from .lexer import Token, TokenType, tokenize
from .types import Date, Interval, IntervalUnit

# Words that terminate a table reference / cannot be used as an implicit alias.
_RESERVED = {
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "ORDER",
    "HAVING",
    "LIMIT",
    "ON",
    "JOIN",
    "INNER",
    "LEFT",
    "RIGHT",
    "FULL",
    "OUTER",
    "CROSS",
    "AND",
    "OR",
    "NOT",
    "AS",
    "UNION",
    "SET",
    "BY",
    "ASC",
    "DESC",
    "IN",
    "IS",
    "BETWEEN",
    "LIKE",
    "EXISTS",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "VALUES",
    "INTO",
    "CONSTRAINT",
    "PRIMARY",
    "FOREIGN",
    "REFERENCES",
    "CHECK",
    "UNIQUE",
    "TO",
    "GRANT",
    "REVOKE",
}


def parse_statement(sql: str) -> ast.Statement:
    """Parse a single SQL/MTSQL statement and return its AST."""
    parser = Parser(sql)
    statement = parser.parse_statement()
    parser.expect_end()
    return statement


def parse_statements(sql: str) -> list[ast.Statement]:
    """Parse a ``;``-separated script into a list of statements."""
    parser = Parser(sql)
    statements: list[ast.Statement] = []
    while not parser.at_end():
        statements.append(parser.parse_statement())
        while parser.accept_punct(";"):
            pass
    return statements


def parse_submitted_statement(sql: str) -> ast.Statement:
    """Parse client-submitted SQL, normalizing failures onto one error type.

    Statement-accepting entry points (the MTBase client, gateway sessions,
    the DB-API cursor) call this instead of :func:`parse_statement` so that
    unparsable SQL always surfaces as an
    :class:`~repro.errors.InvalidStatementError` carrying the offending
    statement fragment — regardless of whether the lexer or the parser
    rejected it.
    """
    try:
        return parse_statement(sql)
    except InvalidStatementError:
        raise
    except (LexerError, ParseError) as exc:
        raise InvalidStatementError.from_sql(sql, exc) from exc


def parse_query(sql: str) -> ast.Select:
    """Parse SQL text that must be a SELECT query."""
    statement = parse_statement(sql)
    if not isinstance(statement, ast.Select):
        raise ParseError(f"expected a SELECT query, got {type(statement).__name__}")
    return statement


def parse_expression(sql: str) -> ast.Expression:
    """Parse a standalone scalar expression (used in tests and scope parsing)."""
    parser = Parser(sql)
    expression = parser.parse_expr()
    parser.expect_end()
    return expression


class Parser:
    """Stateful recursive-descent parser over a token list."""

    def __init__(self, sql: str) -> None:
        self._sql = sql
        self._tokens = tokenize(sql)
        self._index = 0
        # bind-parameter slot assignment: `?` takes the next free index
        # (SQLite's rule), `?NNN` pins one, `:name` shares one slot per name
        self._param_max_index = 0
        self._param_names: dict[str, int] = {}

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def at_end(self) -> bool:
        # Trailing semicolons do not count as content.
        index = self._index
        while self._tokens[index].type is TokenType.PUNCT and self._tokens[index].text == ";":
            index += 1
        return self._tokens[index].type is TokenType.EOF

    def expect_end(self) -> None:
        while self.accept_punct(";"):
            pass
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise ParseError(f"unexpected trailing input near {token.text!r}", token.position)

    def accept_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        if token.type is TokenType.IDENT and token.upper in {k.upper() for k in keywords}:
            self._advance()
            return True
        return False

    def expect_keyword(self, keyword: str) -> Token:
        token = self._peek()
        if token.type is TokenType.IDENT and token.upper == keyword.upper():
            return self._advance()
        raise ParseError(f"expected {keyword!r}, got {token.text!r}", token.position)

    def peek_keyword(self, *keywords: str, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token.type is TokenType.IDENT and token.upper in {k.upper() for k in keywords}

    def accept_punct(self, punct: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.text == punct:
            self._advance()
            return True
        return False

    def expect_punct(self, punct: str) -> Token:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.text == punct:
            return self._advance()
        raise ParseError(f"expected {punct!r}, got {token.text!r}", token.position)

    def accept_operator(self, *operators: str) -> Optional[str]:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text in operators:
            self._advance()
            return token.text
        return None

    def expect_operator(self, operator: str) -> Token:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text == operator:
            return self._advance()
        raise ParseError(f"expected {operator!r}, got {token.text!r}", token.position)

    def expect_identifier(self) -> str:
        token = self._peek()
        if token.type is TokenType.IDENT:
            self._advance()
            return token.text
        raise ParseError(f"expected identifier, got {token.text!r}", token.position)

    def expect_string(self) -> str:
        token = self._peek()
        if token.type is TokenType.STRING:
            self._advance()
            return token.text
        raise ParseError(f"expected string literal, got {token.text!r}", token.position)

    def expect_number(self) -> float:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return _number_value(token.text)
        raise ParseError(f"expected number, got {token.text!r}", token.position)

    # -- statements ---------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        # bind-parameter slots are per statement: a ';'-separated script must
        # not leak slot indexes from one statement into the next
        self._param_max_index = 0
        self._param_names = {}
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise ParseError(f"expected a statement, got {token.text!r}", token.position)
        keyword = token.upper
        if keyword == "SELECT":
            return self.parse_select()
        if keyword == "CREATE":
            return self._parse_create()
        if keyword == "DROP":
            return self._parse_drop()
        if keyword == "INSERT":
            return self._parse_insert()
        if keyword == "UPDATE":
            return self._parse_update()
        if keyword == "DELETE":
            return self._parse_delete()
        if keyword == "GRANT":
            return self._parse_grant_revoke(is_grant=True)
        if keyword == "REVOKE":
            return self._parse_grant_revoke(is_grant=False)
        if keyword == "SET":
            return self._parse_set_scope()
        raise ParseError(f"unsupported statement {token.text!r}", token.position)

    # -- SELECT -------------------------------------------------------------

    def parse_select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items = [self._parse_select_item()]
        while self.accept_punct(","):
            items.append(self._parse_select_item())

        from_items: list[ast.FromItem] = []
        if self.accept_keyword("FROM"):
            from_items.append(self._parse_from_item())
            while self.accept_punct(","):
                from_items.append(self._parse_from_item())

        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()

        group_by: list[ast.Expression] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_punct(","):
                group_by.append(self.parse_expr())

        having = None
        if self.accept_keyword("HAVING"):
            having = self.parse_expr()

        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self.accept_punct(","):
                order_by.append(self._parse_order_item())

        limit = None
        if self.accept_keyword("LIMIT"):
            limit = int(self.expect_number())

        return ast.Select(
            items=items,
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier()
        elif self._peek().type is TokenType.IDENT and self._peek().upper not in _RESERVED:
            alias = self.expect_identifier()
        return ast.SelectItem(expr=expr, alias=alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr=expr, descending=descending)

    def _parse_from_item(self) -> ast.FromItem:
        item = self._parse_from_primary()
        while True:
            if self.peek_keyword("JOIN") or self.peek_keyword("INNER") or self.peek_keyword("LEFT") or self.peek_keyword("CROSS"):
                join_type = ast.JoinType.INNER
                if self.accept_keyword("LEFT"):
                    self.accept_keyword("OUTER")
                    join_type = ast.JoinType.LEFT
                elif self.accept_keyword("CROSS"):
                    join_type = ast.JoinType.CROSS
                else:
                    self.accept_keyword("INNER")
                self.expect_keyword("JOIN")
                right = self._parse_from_primary()
                condition = None
                if join_type is not ast.JoinType.CROSS:
                    self.expect_keyword("ON")
                    condition = self.parse_expr()
                item = ast.Join(left=item, right=right, join_type=join_type, condition=condition)
                continue
            break
        return item

    def _parse_from_primary(self) -> ast.FromItem:
        if self.accept_punct("("):
            if self.peek_keyword("SELECT"):
                query = self.parse_select()
                self.expect_punct(")")
                alias = self._parse_optional_alias()
                if alias is None:
                    raise ParseError("derived table requires an alias", self._peek().position)
                return ast.SubqueryRef(query=query, alias=alias)
            item = self._parse_from_item()
            self.expect_punct(")")
            return item
        name = self.expect_identifier()
        alias = self._parse_optional_alias()
        return ast.TableRef(name=name, alias=alias)

    def _parse_optional_alias(self) -> Optional[str]:
        if self.accept_keyword("AS"):
            return self.expect_identifier()
        token = self._peek()
        if token.type is TokenType.IDENT and token.upper not in _RESERVED:
            return self.expect_identifier()
        return None

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        expr = self._parse_and()
        while self.accept_keyword("OR"):
            expr = ast.BinaryOp("OR", expr, self._parse_and())
        return expr

    def _parse_and(self) -> ast.Expression:
        expr = self._parse_not()
        while self.accept_keyword("AND"):
            expr = ast.BinaryOp("AND", expr, self._parse_not())
        return expr

    def _parse_not(self) -> ast.Expression:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        expr = self._parse_additive()
        while True:
            operator = self.accept_operator("=", "<>", "!=", "<", "<=", ">", ">=")
            if operator is not None:
                operator = "<>" if operator == "!=" else operator
                expr = ast.BinaryOp(operator, expr, self._parse_additive())
                continue
            if self.peek_keyword("IS"):
                self.expect_keyword("IS")
                negated = self.accept_keyword("NOT")
                self.expect_keyword("NULL")
                expr = ast.IsNull(expr=expr, negated=negated)
                continue
            negated = False
            if self.peek_keyword("NOT") and self.peek_keyword("BETWEEN", "IN", "LIKE", offset=1):
                self.expect_keyword("NOT")
                negated = True
            if self.accept_keyword("BETWEEN"):
                low = self._parse_additive()
                self.expect_keyword("AND")
                high = self._parse_additive()
                expr = ast.Between(expr=expr, low=low, high=high, negated=negated)
                continue
            if self.accept_keyword("IN"):
                expr = self._parse_in_tail(expr, negated)
                continue
            if self.accept_keyword("LIKE"):
                pattern = self._parse_additive()
                expr = ast.Like(expr=expr, pattern=pattern, negated=negated)
                continue
            if negated:
                raise ParseError("dangling NOT in predicate", self._peek().position)
            return expr

    def _parse_in_tail(self, expr: ast.Expression, negated: bool) -> ast.Expression:
        self.expect_punct("(")
        if self.peek_keyword("SELECT"):
            query = self.parse_select()
            self.expect_punct(")")
            return ast.InSubquery(expr=expr, query=query, negated=negated)
        items = [self.parse_expr()]
        while self.accept_punct(","):
            items.append(self.parse_expr())
        self.expect_punct(")")
        return ast.InList(expr=expr, items=tuple(items), negated=negated)

    def _parse_additive(self) -> ast.Expression:
        expr = self._parse_multiplicative()
        while True:
            operator = self.accept_operator("+", "-", "||")
            if operator is None:
                return expr
            expr = ast.BinaryOp(operator, expr, self._parse_multiplicative())

    def _parse_multiplicative(self) -> ast.Expression:
        expr = self._parse_unary()
        while True:
            operator = self.accept_operator("*", "/", "%")
            if operator is None:
                return expr
            expr = ast.BinaryOp(operator, expr, self._parse_unary())

    def _parse_unary(self) -> ast.Expression:
        operator = self.accept_operator("-", "+")
        if operator == "-":
            operand = self._parse_unary()
            # fold negative numeric literals so that `-1` round-trips as a literal
            if isinstance(operand, ast.Literal) and isinstance(operand.value, (int, float)):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if operator == "+":
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.Literal(_number_value(token.text))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.text)
        if token.type is TokenType.PARAM:
            self._advance()
            return ast.Column(name=token.text)
        if token.type is TokenType.PLACEHOLDER:
            self._advance()
            return self._make_parameter(token)
        if token.type is TokenType.PUNCT and token.text == "(":
            self._advance()
            if self.peek_keyword("SELECT"):
                query = self.parse_select()
                self.expect_punct(")")
                return ast.ScalarSubquery(query=query)
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.type is TokenType.OPERATOR and token.text == "*":
            self._advance()
            return ast.Star()
        if token.type is TokenType.IDENT:
            return self._parse_identifier_expression()
        raise ParseError(f"unexpected token {token.text!r} in expression", token.position)

    def _parse_identifier_expression(self) -> ast.Expression:
        token = self._peek()
        keyword = token.upper

        if keyword == "NULL":
            self._advance()
            return ast.Literal(None)
        if keyword in ("TRUE", "FALSE"):
            self._advance()
            return ast.Literal(keyword == "TRUE")
        if keyword == "DATE" and self._peek(1).type is TokenType.STRING:
            self._advance()
            return ast.Literal(Date.from_string(self.expect_string()))
        if keyword == "INTERVAL" and self._peek(1).type is TokenType.STRING:
            self._advance()
            amount = int(self.expect_string())
            unit_name = self.expect_identifier_text()
            return ast.Literal(Interval(amount, _interval_unit(unit_name)))
        if keyword == "CASE":
            return self._parse_case()
        if keyword == "EXISTS" and self._is_punct(1, "("):
            self._advance()
            self.expect_punct("(")
            query = self.parse_select()
            self.expect_punct(")")
            return ast.Exists(query=query)
        if keyword == "EXTRACT" and self._is_punct(1, "("):
            self._advance()
            self.expect_punct("(")
            part = self.expect_identifier().upper()
            self.expect_keyword("FROM")
            inner = self.parse_expr()
            self.expect_punct(")")
            return ast.Extract(part=part, expr=inner)
        if keyword == "SUBSTRING" and self._is_punct(1, "("):
            self._advance()
            self.expect_punct("(")
            inner = self.parse_expr()
            if self.accept_keyword("FROM"):
                start = self.parse_expr()
                length = None
                if self.accept_keyword("FOR"):
                    length = self.parse_expr()
            else:
                self.expect_punct(",")
                start = self.parse_expr()
                length = None
                if self.accept_punct(","):
                    length = self.parse_expr()
            self.expect_punct(")")
            return ast.Substring(expr=inner, start=start, length=length)

        name = self.expect_identifier()

        # function call
        if self._is_punct(0, "("):
            self.expect_punct("(")
            distinct = self.accept_keyword("DISTINCT")
            args: list[ast.Expression] = []
            if self._peek().type is TokenType.OPERATOR and self._peek().text == "*":
                self._advance()
                args.append(ast.Star())
            elif not self._is_punct(0, ")"):
                args.append(self.parse_expr())
                while self.accept_punct(","):
                    args.append(self.parse_expr())
            self.expect_punct(")")
            return ast.FunctionCall(name=name, args=tuple(args), distinct=distinct)

        # qualified column or alias.*
        if self.accept_punct("."):
            if self._peek().type is TokenType.OPERATOR and self._peek().text == "*":
                self._advance()
                return ast.Star(table=name)
            column = self.expect_identifier()
            return ast.Column(name=column, table=name)
        return ast.Column(name=name)

    def expect_identifier_text(self) -> str:
        """Identifier text upper-cased, with a trailing plural 's' tolerated."""
        text = self.expect_identifier().upper()
        if text.endswith("S") and text[:-1] in ("DAY", "MONTH", "YEAR"):
            return text[:-1]
        return text

    def _parse_case(self) -> ast.Case:
        self.expect_keyword("CASE")
        whens: list[ast.CaseWhen] = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expr()
            self.expect_keyword("THEN")
            result = self.parse_expr()
            whens.append(ast.CaseWhen(condition=condition, result=result))
        else_result = None
        if self.accept_keyword("ELSE"):
            else_result = self.parse_expr()
        self.expect_keyword("END")
        return ast.Case(whens=tuple(whens), else_result=else_result)

    def _make_parameter(self, token: Token) -> ast.Parameter:
        text = token.text
        if text.startswith(":"):
            name = text[1:]
            index = self._param_names.get(name)
            if index is None:
                self._param_max_index += 1
                index = self._param_max_index
                self._param_names[name] = index
            return ast.Parameter(index=index, name=name)
        if len(text) > 1:  # explicit ?NNN
            index = int(text[1:])
            if index < 1:
                raise ParseError(
                    f"parameter index must be positive, got {text!r}", token.position
                )
            self._param_max_index = max(self._param_max_index, index)
            return ast.Parameter(index=index)
        self._param_max_index += 1
        return ast.Parameter(index=self._param_max_index)

    def _is_punct(self, offset: int, punct: str) -> bool:
        token = self._peek(offset)
        return token.type is TokenType.PUNCT and token.text == punct

    # -- CREATE -------------------------------------------------------------

    def _parse_create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self._parse_create_table()
        if self.accept_keyword("VIEW"):
            return self._parse_create_view()
        if self.accept_keyword("FUNCTION"):
            return self._parse_create_function()
        token = self._peek()
        raise ParseError(f"unsupported CREATE {token.text!r}", token.position)

    def _parse_create_table(self) -> ast.CreateTable:
        name = self.expect_identifier()
        generality = None
        if self.accept_keyword("SPECIFIC"):
            generality = ast.TableGenerality.SPECIFIC
        elif self.accept_keyword("GLOBAL"):
            generality = ast.TableGenerality.GLOBAL
        self.expect_punct("(")
        columns: list[ast.ColumnDef] = []
        constraints: list[ast.TableConstraint] = []
        while True:
            if self.peek_keyword("CONSTRAINT", "PRIMARY", "FOREIGN", "CHECK", "UNIQUE"):
                constraints.append(self._parse_table_constraint())
            else:
                columns.append(self._parse_column_def())
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return ast.CreateTable(
            name=name, columns=columns, constraints=constraints, generality=generality
        )

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self.expect_identifier()
        type_name = self._parse_type_name()
        not_null = False
        comparability = None
        to_universal = None
        from_universal = None
        default = None
        while True:
            if self.peek_keyword("NOT") and self.peek_keyword("NULL", offset=1):
                self.expect_keyword("NOT")
                self.expect_keyword("NULL")
                not_null = True
                continue
            if self.accept_keyword("SPECIFIC"):
                comparability = ast.Comparability.SPECIFIC
                continue
            if self.accept_keyword("COMPARABLE"):
                comparability = ast.Comparability.COMPARABLE
                continue
            if self.accept_keyword("CONVERTIBLE"):
                comparability = ast.Comparability.CONVERTIBLE
                self.expect_operator("@")
                to_universal = self.expect_identifier()
                self.expect_operator("@")
                from_universal = self.expect_identifier()
                continue
            if self.accept_keyword("DEFAULT"):
                default = self.parse_expr()
                continue
            break
        return ast.ColumnDef(
            name=name,
            type_name=type_name,
            not_null=not_null,
            comparability=comparability,
            to_universal=to_universal,
            from_universal=from_universal,
            default=default,
        )

    def _parse_type_name(self) -> str:
        base = self.expect_identifier()
        if self._is_punct(0, "("):
            self.expect_punct("(")
            parts = [str(int(self.expect_number()))]
            while self.accept_punct(","):
                parts.append(str(int(self.expect_number())))
            self.expect_punct(")")
            return f"{base}({','.join(parts)})"
        return base

    def _parse_table_constraint(self) -> ast.TableConstraint:
        name = None
        if self.accept_keyword("CONSTRAINT"):
            name = self.expect_identifier()
        if self.accept_keyword("PRIMARY"):
            self.expect_keyword("KEY")
            columns = self._parse_column_list()
            return ast.TableConstraint(
                kind=ast.ConstraintKind.PRIMARY_KEY, name=name, columns=columns
            )
        if self.accept_keyword("FOREIGN"):
            self.expect_keyword("KEY")
            columns = self._parse_column_list()
            self.expect_keyword("REFERENCES")
            ref_table = self.expect_identifier()
            ref_columns = self._parse_column_list()
            return ast.TableConstraint(
                kind=ast.ConstraintKind.FOREIGN_KEY,
                name=name,
                columns=columns,
                ref_table=ref_table,
                ref_columns=ref_columns,
            )
        if self.accept_keyword("UNIQUE"):
            columns = self._parse_column_list()
            return ast.TableConstraint(
                kind=ast.ConstraintKind.UNIQUE, name=name, columns=columns
            )
        if self.accept_keyword("CHECK"):
            self.expect_punct("(")
            check = self.parse_expr()
            self.expect_punct(")")
            return ast.TableConstraint(kind=ast.ConstraintKind.CHECK, name=name, check=check)
        token = self._peek()
        raise ParseError(f"unsupported constraint near {token.text!r}", token.position)

    def _parse_column_list(self) -> tuple[str, ...]:
        self.expect_punct("(")
        columns = [self.expect_identifier()]
        while self.accept_punct(","):
            columns.append(self.expect_identifier())
        self.expect_punct(")")
        return tuple(columns)

    def _parse_create_view(self) -> ast.CreateView:
        name = self.expect_identifier()
        self.expect_keyword("AS")
        query = self.parse_select()
        return ast.CreateView(name=name, query=query)

    def _parse_create_function(self) -> ast.CreateFunction:
        name = self.expect_identifier()
        self.expect_punct("(")
        arg_types: list[str] = []
        if not self._is_punct(0, ")"):
            arg_types.append(self._parse_type_name())
            while self.accept_punct(","):
                arg_types.append(self._parse_type_name())
        self.expect_punct(")")
        self.expect_keyword("RETURNS")
        return_type = self._parse_type_name()
        self.expect_keyword("AS")
        body = self.expect_string()
        language = "SQL"
        immutable = False
        if self.accept_keyword("LANGUAGE"):
            language = self.expect_identifier().upper()
        if self.accept_keyword("IMMUTABLE"):
            immutable = True
        return ast.CreateFunction(
            name=name,
            arg_types=tuple(arg_types),
            return_type=return_type,
            body=body,
            language=language,
            immutable=immutable,
        )

    # -- DROP ---------------------------------------------------------------

    def _parse_drop(self) -> ast.Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            if_exists = self._accept_if_exists()
            return ast.DropTable(name=self.expect_identifier(), if_exists=if_exists)
        if self.accept_keyword("VIEW"):
            if_exists = self._accept_if_exists()
            return ast.DropView(name=self.expect_identifier(), if_exists=if_exists)
        token = self._peek()
        raise ParseError(f"unsupported DROP {token.text!r}", token.position)

    def _accept_if_exists(self) -> bool:
        if self.peek_keyword("IF") and self.peek_keyword("EXISTS", offset=1):
            self.expect_keyword("IF")
            self.expect_keyword("EXISTS")
            return True
        return False

    # -- DML ----------------------------------------------------------------

    def _parse_insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_identifier()
        columns: tuple[str, ...] = ()
        if self._is_punct(0, "(") and not self.peek_keyword("SELECT", offset=1):
            columns = self._parse_column_list()
        if self.accept_keyword("VALUES"):
            rows: list[tuple[ast.Expression, ...]] = []
            while True:
                self.expect_punct("(")
                values = [self.parse_expr()]
                while self.accept_punct(","):
                    values.append(self.parse_expr())
                self.expect_punct(")")
                rows.append(tuple(values))
                if not self.accept_punct(","):
                    break
            return ast.Insert(table=table, columns=columns, rows=rows)
        if self._is_punct(0, "("):
            self.expect_punct("(")
            query = self.parse_select()
            self.expect_punct(")")
        else:
            query = self.parse_select()
        return ast.Insert(table=table, columns=columns, query=query)

    def _parse_update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier()
        self.expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self.accept_punct(","):
            assignments.append(self._parse_assignment())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Update(table=table, assignments=assignments, where=where)

    def _parse_assignment(self) -> ast.Assignment:
        column = self.expect_identifier()
        self.expect_operator("=")
        return ast.Assignment(column=column, value=self.parse_expr())

    def _parse_delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_identifier()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Delete(table=table, where=where)

    # -- DCL and SET SCOPE --------------------------------------------------

    def _parse_grant_revoke(self, is_grant: bool) -> ast.Statement:
        self.expect_keyword("GRANT" if is_grant else "REVOKE")
        privileges = [self.expect_identifier().upper()]
        while self.accept_punct(","):
            privileges.append(self.expect_identifier().upper())
        self.expect_keyword("ON")
        object_name = self.expect_identifier()
        if not self.accept_keyword("TO"):
            self.expect_keyword("FROM")
        grantee = self._parse_grantee()
        if is_grant:
            return ast.Grant(privileges=tuple(privileges), object_name=object_name, grantee=grantee)
        return ast.Revoke(privileges=tuple(privileges), object_name=object_name, grantee=grantee)

    def _parse_grantee(self):
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return int(float(token.text))
        if token.type is TokenType.IDENT:
            self._advance()
            return token.text
        if token.type is TokenType.STRING:
            self._advance()
            return token.text
        raise ParseError(f"expected grantee, got {token.text!r}", token.position)

    def _parse_set_scope(self) -> ast.SetScope:
        self.expect_keyword("SET")
        self.expect_keyword("SCOPE")
        self.expect_operator("=")
        token = self._peek()
        if token.type is TokenType.STRING:
            self._advance()
            return ast.SetScope(scope_text=token.text)
        raise ParseError("SET SCOPE expects a quoted scope expression", token.position)


def _number_value(text: str):
    if "." in text:
        return float(text)
    return int(text)


def _interval_unit(name: str) -> IntervalUnit:
    normalized = name.upper()
    if normalized.endswith("S"):
        normalized = normalized[:-1]
    try:
        return IntervalUnit(normalized)
    except ValueError as exc:
        raise ParseError(f"unknown interval unit {name!r}") from exc
