"""SQL value model: types, dates, intervals and NULL-aware helpers.

The engine stores values as plain Python objects:

* ``NULL``        -> ``None``
* ``INTEGER``     -> ``int``
* ``DECIMAL``     -> ``float`` (sufficient precision for the MT-H workload)
* ``VARCHAR``     -> ``str``
* ``DATE``        -> :class:`Date`
* ``INTERVAL``    -> :class:`Interval`
* ``BOOLEAN``     -> ``bool``

The helpers in this module implement SQL's three-valued comparison logic
(``None`` propagates) and the date/interval arithmetic needed by TPC-H style
queries (``date '1998-12-01' - interval '90' day``).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from enum import Enum
from typing import Any, Optional

from ..errors import TypeMismatchError


class SQLType(Enum):
    """Logical column types understood by the engine's catalog."""

    INTEGER = "INTEGER"
    DECIMAL = "DECIMAL"
    VARCHAR = "VARCHAR"
    DATE = "DATE"
    BOOLEAN = "BOOLEAN"

    @classmethod
    def from_name(cls, name: str) -> "SQLType":
        """Map a SQL type name (possibly with a length spec) to a SQLType."""
        base = name.strip().upper()
        if "(" in base:
            base = base[: base.index("(")].strip()
        aliases = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "DECIMAL": cls.DECIMAL,
            "NUMERIC": cls.DECIMAL,
            "FLOAT": cls.DECIMAL,
            "DOUBLE": cls.DECIMAL,
            "REAL": cls.DECIMAL,
            "VARCHAR": cls.VARCHAR,
            "CHAR": cls.VARCHAR,
            "TEXT": cls.VARCHAR,
            "STRING": cls.VARCHAR,
            "DATE": cls.DATE,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
        }
        if base not in aliases:
            raise TypeMismatchError(f"unknown SQL type: {name!r}")
        return aliases[base]


#: types whose values share SQL's numeric comparison/arithmetic semantics
NUMERIC_TYPES = frozenset({SQLType.INTEGER, SQLType.DECIMAL, SQLType.BOOLEAN})


def is_numeric_type(sql_type: Optional[SQLType]) -> bool:
    """True when ``sql_type`` is known and numeric (INTEGER/DECIMAL/BOOLEAN)."""
    return sql_type in NUMERIC_TYPES


def comparison_compatible(left: Optional[SQLType], right: Optional[SQLType]) -> bool:
    """Static mirror of the runtime coercion lattice: may two values compare?

    ``None`` means "type unknown" and is compatible with everything — the
    static analyzer must never reject a statement the runtime
    (:func:`sql_compare` / :func:`_coerce_pair`) would accept.
    """
    if left is None or right is None:
        return True
    if left in NUMERIC_TYPES and right in NUMERIC_TYPES:
        return True
    if left is right:
        return True
    # a string coerces to a Date when the other side is a Date
    return {left, right} == {SQLType.DATE, SQLType.VARCHAR}


def arithmetic_result(
    left: Optional[SQLType], right: Optional[SQLType]
) -> Optional[SQLType]:
    """Statically inferred type of numeric ``left <op> right``.

    ``None`` (unknown) when either side is unknown; INTEGER only when both
    sides are integral, DECIMAL otherwise — mirroring Python's int/float
    promotion in the engine's evaluators.  Callers must have established
    that both sides are numeric (or DATE/INTERVAL, handled separately).
    """
    if left is None or right is None:
        return None
    if left is SQLType.INTEGER and right is SQLType.INTEGER:
        return SQLType.INTEGER
    return SQLType.DECIMAL


@dataclass(frozen=True, order=True)
class Date:
    """A calendar date, stored as days since 1970-01-01.

    Ordering and equality follow calendar order, which makes dates directly
    usable as sort keys and group keys.
    """

    days: int

    @classmethod
    def from_string(cls, text: str) -> "Date":
        """Parse an ISO ``YYYY-MM-DD`` string."""
        parsed = _dt.date.fromisoformat(text.strip())
        return cls((parsed - _dt.date(1970, 1, 1)).days)

    @classmethod
    def from_ymd(cls, year: int, month: int, day: int) -> "Date":
        return cls((_dt.date(year, month, day) - _dt.date(1970, 1, 1)).days)

    def to_date(self) -> _dt.date:
        return _dt.date(1970, 1, 1) + _dt.timedelta(days=self.days)

    @property
    def year(self) -> int:
        return self.to_date().year

    @property
    def month(self) -> int:
        return self.to_date().month

    @property
    def day(self) -> int:
        return self.to_date().day

    def add_days(self, days: int) -> "Date":
        return Date(self.days + days)

    def add_months(self, months: int) -> "Date":
        base = self.to_date()
        month_index = base.year * 12 + (base.month - 1) + months
        year, month = divmod(month_index, 12)
        month += 1
        day = min(base.day, _days_in_month(year, month))
        return Date.from_ymd(year, month, day)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.to_date().isoformat()


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        nxt = _dt.date(year + 1, 1, 1)
    else:
        nxt = _dt.date(year, month + 1, 1)
    return (nxt - _dt.date(year, month, 1)).days


class IntervalUnit(Enum):
    DAY = "DAY"
    MONTH = "MONTH"
    YEAR = "YEAR"


@dataclass(frozen=True)
class Interval:
    """A SQL interval such as ``interval '3' month``."""

    amount: int
    unit: IntervalUnit

    def months(self) -> int:
        if self.unit is IntervalUnit.MONTH:
            return self.amount
        if self.unit is IntervalUnit.YEAR:
            return self.amount * 12
        raise TypeMismatchError("day interval has no month component")

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"INTERVAL '{self.amount}' {self.unit.value}"


def add_date_interval(date: Date, interval: Interval, sign: int = 1) -> Date:
    """Compute ``date + sign * interval`` with calendar-aware month math."""
    if interval.unit is IntervalUnit.DAY:
        return date.add_days(sign * interval.amount)
    return date.add_months(sign * interval.months())


def is_null(value: Any) -> bool:
    return value is None


def sql_equal(left: Any, right: Any) -> Optional[bool]:
    """SQL ``=``: returns None when either side is NULL."""
    if left is None or right is None:
        return None
    left, right = _coerce_pair(left, right)
    return left == right


def sql_compare(left: Any, right: Any) -> Optional[int]:
    """Return -1/0/1 like ``cmp`` or ``None`` if either side is NULL."""
    if left is None or right is None:
        return None
    left, right = _coerce_pair(left, right)
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


def _coerce_pair(left: Any, right: Any) -> tuple[Any, Any]:
    """Coerce two non-NULL values into a comparable pair.

    Numeric values (int/float/bool) compare numerically.  A Date never
    compares with a number or a string; that is a query bug we want surfaced.
    """
    if isinstance(left, Date) and isinstance(right, Date):
        return left, right
    if isinstance(left, Date) or isinstance(right, Date):
        if isinstance(left, str):
            return Date.from_string(left), right
        if isinstance(right, str):
            return left, Date.from_string(right)
        raise TypeMismatchError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        )
    numeric = (int, float, bool)
    if isinstance(left, numeric) and isinstance(right, numeric):
        return left, right
    if isinstance(left, str) and isinstance(right, str):
        return left, right
    raise TypeMismatchError(
        f"cannot compare {type(left).__name__} with {type(right).__name__}"
    )


def sort_key(value: Any) -> tuple:
    """A total-order key usable for ORDER BY / DISTINCT over mixed NULLs.

    NULLs sort first (PostgreSQL's ``NULLS LAST`` is not needed for MT-H).
    """
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, float(value))
    if isinstance(value, Date):
        return (2, value.days)
    return (3, str(value))


def format_value(value: Any) -> str:
    """Human-readable rendering used by result printers and examples."""
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
