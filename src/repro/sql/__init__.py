"""SQL substrate: lexer, parser, AST and printer for the ``repro`` dialect."""

from . import ast
from .lexer import Token, TokenType, tokenize
from .parser import parse_expression, parse_query, parse_statement, parse_statements
from .printer import to_sql
from .types import Date, Interval, IntervalUnit, SQLType

__all__ = [
    "ast",
    "Token",
    "TokenType",
    "tokenize",
    "parse_expression",
    "parse_query",
    "parse_statement",
    "parse_statements",
    "to_sql",
    "Date",
    "Interval",
    "IntervalUnit",
    "SQLType",
]
