"""SQL substrate: lexer, parser, AST and printer for the ``repro`` dialect."""

from . import ast
from .lexer import Token, TokenType, tokenize
from .params import (
    ParameterSlot,
    bind_parameters,
    resolve_parameters,
    statement_parameters,
)
from .parser import (
    parse_expression,
    parse_query,
    parse_statement,
    parse_statements,
    parse_submitted_statement,
)
from .printer import to_sql
from .types import Date, Interval, IntervalUnit, SQLType

__all__ = [
    "ast",
    "Token",
    "TokenType",
    "tokenize",
    "ParameterSlot",
    "bind_parameters",
    "resolve_parameters",
    "statement_parameters",
    "parse_expression",
    "parse_query",
    "parse_statement",
    "parse_statements",
    "parse_submitted_statement",
    "to_sql",
    "Date",
    "Interval",
    "IntervalUnit",
    "SQLType",
]
