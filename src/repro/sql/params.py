"""Bind-parameter plumbing: slot discovery, value resolution, substitution.

A parameterized statement carries :class:`~repro.sql.ast.Parameter` nodes —
opaque scalars with a 1-based slot ``index`` and an optional ``name``.  This
module is the one place the rest of the system reasons about them:

* :func:`statement_parameters` walks a statement (sub-queries included) and
  returns its ordered :class:`ParameterSlot` vector — what a
  :class:`~repro.compile.CompiledQuery` records so the cursor can validate
  bindings without re-walking the AST,
* :func:`resolve_parameters` turns client-supplied values (a positional
  sequence or a ``{name: value}`` mapping) into the positional tuple every
  backend consumes,
* :func:`bind_parameters` substitutes resolved values as literals into a new
  statement tree — the binding strategy for backends without native
  placeholder support (the in-memory engine, and the cluster's merge-side
  evaluation); the SQLite backend instead renders ``?NNN`` text and binds
  natively.

All validation failures raise :class:`~repro.errors.ParameterError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence, Union

from ..errors import ParameterError
from . import ast
from .transform import (
    iter_select_expressions,
    transform_expression,
    transform_select,
    walk_expression,
    walk_selects,
)

ParameterValues = Union[Sequence[Any], Mapping[str, Any]]


@dataclass(frozen=True)
class ParameterSlot:
    """One bind-parameter slot of a statement: its 1-based index and name."""

    index: int
    name: Optional[str] = None

    @property
    def placeholder(self) -> str:
        """The client-facing spelling (``:name`` or ``?N``)."""
        return f":{self.name}" if self.name else f"?{self.index}"


def _statement_expressions(statement: ast.Statement):
    """Yield every expression tree of a statement, sub-queries included."""
    selects: list[ast.Select] = []

    def collect(expr: ast.Expression):
        """Yield one DML expression and queue any sub-queries nested in it."""
        yield expr
        for node in walk_expression(expr):
            if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
                selects.append(node.query)

    if isinstance(statement, ast.Select):
        selects.append(statement)
    elif isinstance(statement, (ast.Update, ast.Delete)):
        if statement.where is not None:
            yield from collect(statement.where)
        if isinstance(statement, ast.Update):
            for assignment in statement.assignments:
                yield from collect(assignment.value)
    elif isinstance(statement, ast.Insert):
        for row in statement.rows:
            for value in row:
                yield from collect(value)
        if statement.query is not None:
            selects.append(statement.query)
    for select in selects:
        for sub_select in walk_selects(select):
            yield from iter_select_expressions(sub_select)


def statement_parameters(statement: ast.Statement) -> tuple[ParameterSlot, ...]:
    """The statement's bind-parameter slots, ordered by index.

    Validates that slot indexes are contiguous from 1 (a statement written
    with explicit ``?NNN`` markers may skip indexes; that is an error because
    a positional value vector could not be bound unambiguously).
    """
    slots: dict[int, ParameterSlot] = {}
    for expr in _statement_expressions(statement):
        for node in walk_expression(expr):
            if isinstance(node, ast.Parameter):
                known = slots.get(node.index)
                if known is not None and known.name != node.name:
                    raise ParameterError(
                        f"parameter slot {node.index} is referenced both as "
                        f"{known.placeholder!r} and as "
                        f"{ParameterSlot(node.index, node.name).placeholder!r}"
                    )
                slots[node.index] = ParameterSlot(index=node.index, name=node.name)
    if not slots:
        return ()
    ordered = tuple(slots[index] for index in sorted(slots))
    expected = tuple(range(1, len(ordered) + 1))
    if tuple(slot.index for slot in ordered) != expected:
        raise ParameterError(
            f"parameter indexes must be contiguous from 1, got "
            f"{sorted(slots)}"
        )
    return ordered


def resolve_parameters(
    slots: Sequence[ParameterSlot], values: Optional[ParameterValues]
) -> tuple:
    """Resolve client-supplied values into the positional tuple backends bind.

    ``values`` may be a positional sequence (matched against the slot order)
    or a mapping keyed on parameter names (only valid when every slot is
    named).  ``None`` is accepted for a statement without parameters.
    """
    if not slots:
        if values:
            raise ParameterError(
                f"statement takes no parameters but {len(values)} value(s) "
                f"were supplied"
            )
        return ()
    if values is None:
        raise ParameterError(
            f"statement has {len(slots)} parameter(s) "
            f"({', '.join(slot.placeholder for slot in slots)}) but no values "
            f"were supplied"
        )
    if isinstance(values, Mapping):
        unnamed = [slot.placeholder for slot in slots if slot.name is None]
        if unnamed:
            raise ParameterError(
                f"named bindings require named parameters; positional slot(s) "
                f"{', '.join(unnamed)} cannot be bound from a mapping"
            )
        missing = [slot.name for slot in slots if slot.name not in values]
        if missing:
            raise ParameterError(f"missing value(s) for parameter(s) {missing}")
        extra = sorted(set(values) - {slot.name for slot in slots})
        if extra:
            raise ParameterError(f"unknown parameter name(s) {extra}")
        return tuple(values[slot.name] for slot in slots)
    values = tuple(values)
    if len(values) != len(slots):
        raise ParameterError(
            f"statement has {len(slots)} parameter(s) but {len(values)} "
            f"value(s) were supplied"
        )
    return values


def bind_parameters(
    statement: ast.Statement, values: Sequence[Any]
) -> ast.Statement:
    """A new statement tree with every parameter replaced by a literal value.

    ``values`` is the *resolved* positional vector (slot ``index`` N reads
    ``values[N-1]``); use :func:`resolve_parameters` first for client input.
    """
    values = tuple(values)

    def replacer(node: ast.Expression) -> Optional[ast.Expression]:
        if isinstance(node, ast.Parameter):
            if not 1 <= node.index <= len(values):
                raise ParameterError(
                    f"statement references parameter {node.index} but only "
                    f"{len(values)} value(s) were supplied"
                )
            return ast.Literal(values[node.index - 1])
        return None

    if isinstance(statement, ast.Select):
        return transform_select(statement, replacer)
    if isinstance(statement, ast.Insert):
        query = (
            transform_select(statement.query, replacer)
            if statement.query is not None
            else None
        )
        rows = [
            tuple(transform_expression(value, replacer, True) for value in row)
            for row in statement.rows
        ]
        return ast.Insert(
            table=statement.table, columns=statement.columns, rows=rows, query=query
        )
    if isinstance(statement, ast.Update):
        return ast.Update(
            table=statement.table,
            assignments=[
                ast.Assignment(
                    column=assignment.column,
                    value=transform_expression(assignment.value, replacer, True),
                )
                for assignment in statement.assignments
            ],
            where=transform_expression(statement.where, replacer, True),
        )
    if isinstance(statement, ast.Delete):
        return ast.Delete(
            table=statement.table,
            where=transform_expression(statement.where, replacer, True),
        )
    if statement_parameters(statement):
        raise ParameterError(
            f"cannot bind parameters into a {type(statement).__name__} statement"
        )
    return statement
