"""Render AST nodes back into SQL text.

The printer is the counterpart of the parser; ``parse(print(node))`` produces
a structurally identical tree, which is exercised by property-based tests.
The MTBase middleware uses it to emit the rewritten SQL statements it sends to
the underlying DBMS, and the examples use it to show the rewrites.
"""

from __future__ import annotations

from typing import Any

from ..errors import SQLError
from . import ast
from .types import Date, Interval


def to_sql(node: ast.Node) -> str:
    """Render any AST node as SQL text."""
    printer = _PRINTERS.get(type(node))
    if printer is None:
        raise SQLError(f"cannot print node of type {type(node).__name__}")
    return printer(node)


def _literal(node: ast.Literal) -> str:
    return format_literal(node.value)


def format_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        if isinstance(value, float) and value == int(value):
            return f"{value:.1f}"
        return str(value)
    if isinstance(value, Date):
        return f"DATE '{value}'"
    if isinstance(value, Interval):
        return f"INTERVAL '{value.amount}' {value.unit.value}"
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def _column(node: ast.Column) -> str:
    return node.qualified


def _star(node: ast.Star) -> str:
    return f"{node.table}.*" if node.table else "*"


def _function_call(node: ast.FunctionCall) -> str:
    prefix = "DISTINCT " if node.distinct else ""
    args = ", ".join(to_sql(argument) for argument in node.args)
    return f"{node.name}({prefix}{args})"


_NO_PARENS = (ast.Literal, ast.Column, ast.FunctionCall, ast.Star, ast.ScalarSubquery,
              ast.Extract, ast.Substring, ast.Case)


def _operand(expr: ast.Expression) -> str:
    text = to_sql(expr)
    if isinstance(expr, _NO_PARENS):
        return text
    return f"({text})"


def _binary_op(node: ast.BinaryOp) -> str:
    if node.op in ("AND", "OR"):
        return f"{_operand(node.left)} {node.op} {_operand(node.right)}"
    return f"{_operand(node.left)} {node.op} {_operand(node.right)}"


def _unary_op(node: ast.UnaryOp) -> str:
    if node.op == "NOT":
        return f"NOT {_operand(node.operand)}"
    return f"{node.op}{_operand(node.operand)}"


def _case(node: ast.Case) -> str:
    parts = ["CASE"]
    for when in node.whens:
        parts.append(f"WHEN {to_sql(when.condition)} THEN {to_sql(when.result)}")
    if node.else_result is not None:
        parts.append(f"ELSE {to_sql(node.else_result)}")
    parts.append("END")
    return " ".join(parts)


def _in_list(node: ast.InList) -> str:
    keyword = "NOT IN" if node.negated else "IN"
    items = ", ".join(to_sql(item) for item in node.items)
    return f"{_operand(node.expr)} {keyword} ({items})"


def _in_subquery(node: ast.InSubquery) -> str:
    keyword = "NOT IN" if node.negated else "IN"
    return f"{_operand(node.expr)} {keyword} ({to_sql(node.query)})"


def _exists(node: ast.Exists) -> str:
    keyword = "NOT EXISTS" if node.negated else "EXISTS"
    return f"{keyword} ({to_sql(node.query)})"


def _between(node: ast.Between) -> str:
    keyword = "NOT BETWEEN" if node.negated else "BETWEEN"
    return f"{_operand(node.expr)} {keyword} {_operand(node.low)} AND {_operand(node.high)}"


def _like(node: ast.Like) -> str:
    keyword = "NOT LIKE" if node.negated else "LIKE"
    return f"{_operand(node.expr)} {keyword} {_operand(node.pattern)}"


def _is_null(node: ast.IsNull) -> str:
    keyword = "IS NOT NULL" if node.negated else "IS NULL"
    return f"{_operand(node.expr)} {keyword}"


def _scalar_subquery(node: ast.ScalarSubquery) -> str:
    return f"({to_sql(node.query)})"


def _extract(node: ast.Extract) -> str:
    return f"EXTRACT({node.part} FROM {to_sql(node.expr)})"


def _substring(node: ast.Substring) -> str:
    if node.length is None:
        return f"SUBSTRING({to_sql(node.expr)} FROM {to_sql(node.start)})"
    return (
        f"SUBSTRING({to_sql(node.expr)} FROM {to_sql(node.start)}"
        f" FOR {to_sql(node.length)})"
    )


def _table_ref(node: ast.TableRef) -> str:
    return f"{node.name} {node.alias}" if node.alias else node.name


def _subquery_ref(node: ast.SubqueryRef) -> str:
    return f"({to_sql(node.query)}) AS {node.alias}"


def _join(node: ast.Join) -> str:
    left = to_sql(node.left)
    right = to_sql(node.right)
    if node.join_type is ast.JoinType.CROSS:
        return f"{left} CROSS JOIN {right}"
    keyword = "LEFT JOIN" if node.join_type is ast.JoinType.LEFT else "JOIN"
    return f"{left} {keyword} {right} ON {to_sql(node.condition)}"


def _select(node: ast.Select) -> str:
    parts = ["SELECT"]
    if node.distinct:
        parts.append("DISTINCT")
    items = []
    for item in node.items:
        text = to_sql(item.expr)
        if item.alias:
            text += f" AS {item.alias}"
        items.append(text)
    parts.append(", ".join(items))
    if node.from_items:
        parts.append("FROM " + ", ".join(to_sql(item) for item in node.from_items))
    if node.where is not None:
        parts.append("WHERE " + to_sql(node.where))
    if node.group_by:
        parts.append("GROUP BY " + ", ".join(to_sql(expr) for expr in node.group_by))
    if node.having is not None:
        parts.append("HAVING " + to_sql(node.having))
    if node.order_by:
        rendered = []
        for order in node.order_by:
            text = to_sql(order.expr)
            if order.descending:
                text += " DESC"
            rendered.append(text)
        parts.append("ORDER BY " + ", ".join(rendered))
    if node.limit is not None:
        parts.append(f"LIMIT {node.limit}")
    return " ".join(parts)


def _column_def(node: ast.ColumnDef) -> str:
    parts = [node.name, node.type_name]
    if node.not_null:
        parts.append("NOT NULL")
    if node.comparability is ast.Comparability.SPECIFIC:
        parts.append("SPECIFIC")
    elif node.comparability is ast.Comparability.COMPARABLE:
        parts.append("COMPARABLE")
    elif node.comparability is ast.Comparability.CONVERTIBLE:
        parts.append(f"CONVERTIBLE @{node.to_universal} @{node.from_universal}")
    if node.default is not None:
        parts.append("DEFAULT " + to_sql(node.default))
    return " ".join(parts)


def _table_constraint(node: ast.TableConstraint) -> str:
    prefix = f"CONSTRAINT {node.name} " if node.name else ""
    if node.kind is ast.ConstraintKind.PRIMARY_KEY:
        return f"{prefix}PRIMARY KEY ({', '.join(node.columns)})"
    if node.kind is ast.ConstraintKind.UNIQUE:
        return f"{prefix}UNIQUE ({', '.join(node.columns)})"
    if node.kind is ast.ConstraintKind.FOREIGN_KEY:
        return (
            f"{prefix}FOREIGN KEY ({', '.join(node.columns)}) "
            f"REFERENCES {node.ref_table} ({', '.join(node.ref_columns)})"
        )
    return f"{prefix}CHECK ({to_sql(node.check)})"


def _create_table(node: ast.CreateTable) -> str:
    generality = ""
    if node.generality is ast.TableGenerality.SPECIFIC:
        generality = " SPECIFIC"
    elif node.generality is ast.TableGenerality.GLOBAL:
        generality = " GLOBAL"
    entries = [_column_def(column) for column in node.columns]
    entries.extend(_table_constraint(constraint) for constraint in node.constraints)
    return f"CREATE TABLE {node.name}{generality} ({', '.join(entries)})"


def _create_view(node: ast.CreateView) -> str:
    return f"CREATE VIEW {node.name} AS {to_sql(node.query)}"


def _create_function(node: ast.CreateFunction) -> str:
    body = node.body.replace("'", "''")
    immutable = " IMMUTABLE" if node.immutable else ""
    return (
        f"CREATE FUNCTION {node.name} ({', '.join(node.arg_types)}) "
        f"RETURNS {node.return_type} AS '{body}' LANGUAGE {node.language}{immutable}"
    )


def _drop_table(node: ast.DropTable) -> str:
    clause = "IF EXISTS " if node.if_exists else ""
    return f"DROP TABLE {clause}{node.name}"


def _drop_view(node: ast.DropView) -> str:
    clause = "IF EXISTS " if node.if_exists else ""
    return f"DROP VIEW {clause}{node.name}"


def _insert(node: ast.Insert) -> str:
    columns = f" ({', '.join(node.columns)})" if node.columns else ""
    if node.query is not None:
        return f"INSERT INTO {node.table}{columns} {to_sql(node.query)}"
    rows = ", ".join(
        "(" + ", ".join(to_sql(value) for value in row) + ")" for row in node.rows
    )
    return f"INSERT INTO {node.table}{columns} VALUES {rows}"


def _update(node: ast.Update) -> str:
    assignments = ", ".join(
        f"{assignment.column} = {to_sql(assignment.value)}" for assignment in node.assignments
    )
    where = f" WHERE {to_sql(node.where)}" if node.where is not None else ""
    return f"UPDATE {node.table} SET {assignments}{where}"


def _delete(node: ast.Delete) -> str:
    where = f" WHERE {to_sql(node.where)}" if node.where is not None else ""
    return f"DELETE FROM {node.table}{where}"


def _grant(node: ast.Grant) -> str:
    return f"GRANT {', '.join(node.privileges)} ON {node.object_name} TO {node.grantee}"


def _revoke(node: ast.Revoke) -> str:
    return f"REVOKE {', '.join(node.privileges)} ON {node.object_name} FROM {node.grantee}"


def _set_scope(node: ast.SetScope) -> str:
    return f'SET SCOPE = "{node.scope_text}"'


_PRINTERS = {
    ast.Literal: _literal,
    ast.Column: _column,
    ast.Star: _star,
    ast.FunctionCall: _function_call,
    ast.BinaryOp: _binary_op,
    ast.UnaryOp: _unary_op,
    ast.Case: _case,
    ast.InList: _in_list,
    ast.InSubquery: _in_subquery,
    ast.Exists: _exists,
    ast.Between: _between,
    ast.Like: _like,
    ast.IsNull: _is_null,
    ast.ScalarSubquery: _scalar_subquery,
    ast.Extract: _extract,
    ast.Substring: _substring,
    ast.TableRef: _table_ref,
    ast.SubqueryRef: _subquery_ref,
    ast.Join: _join,
    ast.Select: _select,
    ast.ColumnDef: _column_def,
    ast.TableConstraint: _table_constraint,
    ast.CreateTable: _create_table,
    ast.CreateView: _create_view,
    ast.CreateFunction: _create_function,
    ast.DropTable: _drop_table,
    ast.DropView: _drop_view,
    ast.Insert: _insert,
    ast.Update: _update,
    ast.Delete: _delete,
    ast.Grant: _grant,
    ast.Revoke: _revoke,
    ast.SetScope: _set_scope,
}
