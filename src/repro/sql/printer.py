"""Render AST nodes back into SQL text, in a configurable dialect.

The printer is the counterpart of the parser; with the default dialect
``parse(print(node))`` produces a structurally identical tree, which is
exercised by property-based tests.  The MTBase middleware uses it to emit the
rewritten SQL statements it sends to the underlying DBMS; execution backends
pick the :class:`~repro.sql.dialect.Dialect` their DBMS understands (the
SQLite backend prints ``DATE``/``INTERVAL`` arithmetic as ``date()``
modifiers, ``EXTRACT`` as ``strftime`` and so on).
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import SQLError
from . import ast
from .dialect import DEFAULT_DIALECT, Dialect
from .types import Interval


def to_sql(node: ast.Node, dialect: Optional[Dialect] = None) -> str:
    """Render any AST node as SQL text in ``dialect`` (default: engine SQL)."""
    return SqlPrinter(dialect or DEFAULT_DIALECT).print(node)


def format_literal(value: Any) -> str:
    """Render a literal value in the default dialect (back-compat helper)."""
    return DEFAULT_DIALECT.format_literal(value)


#: expression types that never need parentheses as an operand
_NO_PARENS = (ast.Literal, ast.Column, ast.Parameter, ast.FunctionCall, ast.Star,
              ast.ScalarSubquery, ast.Extract, ast.Substring, ast.Case)


class SqlPrinter:
    """Stateless visitor rendering AST nodes through one dialect."""

    def __init__(self, dialect: Dialect) -> None:
        self.dialect = dialect

    def print(self, node: ast.Node) -> str:
        printer = _PRINTERS.get(type(node))
        if printer is None:
            raise SQLError(f"cannot print node of type {type(node).__name__}")
        return printer(self, node)

    # -- helpers -------------------------------------------------------------

    def _ident(self, name: str) -> str:
        return self.dialect.quote_identifier(name)

    def _operand(self, expr: ast.Expression) -> str:
        text = self.print(expr)
        if isinstance(expr, _NO_PARENS):
            return text
        return f"({text})"

    # -- expressions ---------------------------------------------------------

    def _literal(self, node: ast.Literal) -> str:
        return self.dialect.format_literal(node.value)

    def _column(self, node: ast.Column) -> str:
        if node.table is None:
            index = self.dialect.parameter_index(node.name)
            if index is not None:
                return self.dialect.placeholder(index)
        return self.dialect.qualified_identifier(node.name, node.table)

    def _parameter(self, node: ast.Parameter) -> str:
        return self.dialect.render_parameter(node.index, node.name)

    def _star(self, node: ast.Star) -> str:
        return f"{self._ident(node.table)}.*" if node.table else "*"

    def _function_call(self, node: ast.FunctionCall) -> str:
        prefix = "DISTINCT " if node.distinct else ""
        args = ", ".join(self.print(argument) for argument in node.args)
        return f"{node.name}({prefix}{args})"

    def _binary_op(self, node: ast.BinaryOp) -> str:
        right = node.right
        if isinstance(right, ast.Literal) and isinstance(right.value, Interval):
            rendered = self.dialect.render_date_arithmetic(
                self._operand(node.left), node.op, right.value
            )
            if rendered is not None:
                return rendered
        return f"{self._operand(node.left)} {node.op} {self._operand(node.right)}"

    def _unary_op(self, node: ast.UnaryOp) -> str:
        if node.op == "NOT":
            return f"NOT {self._operand(node.operand)}"
        return f"{node.op}{self._operand(node.operand)}"

    def _case(self, node: ast.Case) -> str:
        parts = ["CASE"]
        for when in node.whens:
            parts.append(f"WHEN {self.print(when.condition)} THEN {self.print(when.result)}")
        if node.else_result is not None:
            parts.append(f"ELSE {self.print(node.else_result)}")
        parts.append("END")
        return " ".join(parts)

    def _in_list(self, node: ast.InList) -> str:
        keyword = "NOT IN" if node.negated else "IN"
        items = ", ".join(self.print(item) for item in node.items)
        return f"{self._operand(node.expr)} {keyword} ({items})"

    def _in_subquery(self, node: ast.InSubquery) -> str:
        keyword = "NOT IN" if node.negated else "IN"
        return f"{self._operand(node.expr)} {keyword} ({self.print(node.query)})"

    def _exists(self, node: ast.Exists) -> str:
        keyword = "NOT EXISTS" if node.negated else "EXISTS"
        return f"{keyword} ({self.print(node.query)})"

    def _between(self, node: ast.Between) -> str:
        keyword = "NOT BETWEEN" if node.negated else "BETWEEN"
        return (
            f"{self._operand(node.expr)} {keyword} "
            f"{self._operand(node.low)} AND {self._operand(node.high)}"
        )

    def _like(self, node: ast.Like) -> str:
        keyword = "NOT LIKE" if node.negated else "LIKE"
        return f"{self._operand(node.expr)} {keyword} {self._operand(node.pattern)}"

    def _is_null(self, node: ast.IsNull) -> str:
        keyword = "IS NOT NULL" if node.negated else "IS NULL"
        return f"{self._operand(node.expr)} {keyword}"

    def _scalar_subquery(self, node: ast.ScalarSubquery) -> str:
        return f"({self.print(node.query)})"

    def _extract(self, node: ast.Extract) -> str:
        return self.dialect.render_extract(node.part, self.print(node.expr))

    def _substring(self, node: ast.Substring) -> str:
        return self.dialect.render_substring(
            self.print(node.expr),
            self.print(node.start),
            self.print(node.length) if node.length is not None else None,
        )

    # -- FROM items ----------------------------------------------------------

    def _table_ref(self, node: ast.TableRef) -> str:
        name = self._ident(node.name)
        return f"{name} {self._ident(node.alias)}" if node.alias else name

    def _subquery_ref(self, node: ast.SubqueryRef) -> str:
        return f"({self.print(node.query)}) AS {self._ident(node.alias)}"

    def _join(self, node: ast.Join) -> str:
        left = self.print(node.left)
        right = self.print(node.right)
        if node.join_type is ast.JoinType.CROSS:
            return f"{left} CROSS JOIN {right}"
        keyword = "LEFT JOIN" if node.join_type is ast.JoinType.LEFT else "JOIN"
        return f"{left} {keyword} {right} ON {self.print(node.condition)}"

    # -- statements ----------------------------------------------------------

    def _select(self, node: ast.Select) -> str:
        parts = ["SELECT"]
        if node.distinct:
            parts.append("DISTINCT")
        items = []
        for item in node.items:
            text = self.print(item.expr)
            if item.alias:
                text += f" AS {self._ident(item.alias)}"
            items.append(text)
        parts.append(", ".join(items))
        if node.from_items:
            parts.append("FROM " + ", ".join(self.print(item) for item in node.from_items))
        if node.where is not None:
            parts.append("WHERE " + self.print(node.where))
        if node.group_by:
            parts.append("GROUP BY " + ", ".join(self.print(expr) for expr in node.group_by))
        if node.having is not None:
            parts.append("HAVING " + self.print(node.having))
        if node.order_by:
            rendered = []
            for order in node.order_by:
                text = self.print(order.expr)
                if order.descending:
                    text += " DESC"
                rendered.append(text)
            parts.append("ORDER BY " + ", ".join(rendered))
        if node.limit is not None:
            parts.append(f"LIMIT {node.limit}")
        return " ".join(parts)

    def _column_def(self, node: ast.ColumnDef) -> str:
        parts = [self._ident(node.name), self.dialect.render_type(node.type_name)]
        if node.not_null:
            parts.append("NOT NULL")
        if node.comparability is ast.Comparability.SPECIFIC:
            parts.append("SPECIFIC")
        elif node.comparability is ast.Comparability.COMPARABLE:
            parts.append("COMPARABLE")
        elif node.comparability is ast.Comparability.CONVERTIBLE:
            parts.append(f"CONVERTIBLE @{node.to_universal} @{node.from_universal}")
        if node.default is not None:
            parts.append("DEFAULT " + self.print(node.default))
        return " ".join(parts)

    def _table_constraint(self, node: ast.TableConstraint) -> str:
        prefix = f"CONSTRAINT {self._ident(node.name)} " if node.name else ""
        columns = ", ".join(self._ident(column) for column in node.columns)
        if node.kind is ast.ConstraintKind.PRIMARY_KEY:
            return f"{prefix}PRIMARY KEY ({columns})"
        if node.kind is ast.ConstraintKind.UNIQUE:
            return f"{prefix}UNIQUE ({columns})"
        if node.kind is ast.ConstraintKind.FOREIGN_KEY:
            ref_columns = ", ".join(self._ident(column) for column in node.ref_columns)
            return (
                f"{prefix}FOREIGN KEY ({columns}) "
                f"REFERENCES {self._ident(node.ref_table)} ({ref_columns})"
            )
        return f"{prefix}CHECK ({self.print(node.check)})"

    def _create_table(self, node: ast.CreateTable) -> str:
        generality = ""
        if node.generality is ast.TableGenerality.SPECIFIC:
            generality = " SPECIFIC"
        elif node.generality is ast.TableGenerality.GLOBAL:
            generality = " GLOBAL"
        entries = [self._column_def(column) for column in node.columns]
        entries.extend(self._table_constraint(constraint) for constraint in node.constraints)
        return f"CREATE TABLE {self._ident(node.name)}{generality} ({', '.join(entries)})"

    def _create_view(self, node: ast.CreateView) -> str:
        return f"CREATE VIEW {self._ident(node.name)} AS {self.print(node.query)}"

    def _create_function(self, node: ast.CreateFunction) -> str:
        body = node.body.replace("'", "''")
        immutable = " IMMUTABLE" if node.immutable else ""
        return (
            f"CREATE FUNCTION {node.name} ({', '.join(node.arg_types)}) "
            f"RETURNS {node.return_type} AS '{body}' LANGUAGE {node.language}{immutable}"
        )

    def _drop_table(self, node: ast.DropTable) -> str:
        clause = "IF EXISTS " if node.if_exists else ""
        return f"DROP TABLE {clause}{self._ident(node.name)}"

    def _drop_view(self, node: ast.DropView) -> str:
        clause = "IF EXISTS " if node.if_exists else ""
        return f"DROP VIEW {clause}{self._ident(node.name)}"

    def _insert(self, node: ast.Insert) -> str:
        columns = (
            f" ({', '.join(self._ident(column) for column in node.columns)})"
            if node.columns
            else ""
        )
        table = self._ident(node.table)
        if node.query is not None:
            return f"INSERT INTO {table}{columns} {self.print(node.query)}"
        rows = ", ".join(
            "(" + ", ".join(self.print(value) for value in row) + ")" for row in node.rows
        )
        return f"INSERT INTO {table}{columns} VALUES {rows}"

    def _update(self, node: ast.Update) -> str:
        assignments = ", ".join(
            f"{self._ident(assignment.column)} = {self.print(assignment.value)}"
            for assignment in node.assignments
        )
        where = f" WHERE {self.print(node.where)}" if node.where is not None else ""
        return f"UPDATE {self._ident(node.table)} SET {assignments}{where}"

    def _delete(self, node: ast.Delete) -> str:
        where = f" WHERE {self.print(node.where)}" if node.where is not None else ""
        return f"DELETE FROM {self._ident(node.table)}{where}"

    def _grant(self, node: ast.Grant) -> str:
        return (
            f"GRANT {', '.join(node.privileges)} ON {self._ident(node.object_name)} "
            f"TO {node.grantee}"
        )

    def _revoke(self, node: ast.Revoke) -> str:
        return (
            f"REVOKE {', '.join(node.privileges)} ON {self._ident(node.object_name)} "
            f"FROM {node.grantee}"
        )

    def _set_scope(self, node: ast.SetScope) -> str:
        return f'SET SCOPE = "{node.scope_text}"'


_PRINTERS = {
    ast.Literal: SqlPrinter._literal,
    ast.Column: SqlPrinter._column,
    ast.Parameter: SqlPrinter._parameter,
    ast.Star: SqlPrinter._star,
    ast.FunctionCall: SqlPrinter._function_call,
    ast.BinaryOp: SqlPrinter._binary_op,
    ast.UnaryOp: SqlPrinter._unary_op,
    ast.Case: SqlPrinter._case,
    ast.InList: SqlPrinter._in_list,
    ast.InSubquery: SqlPrinter._in_subquery,
    ast.Exists: SqlPrinter._exists,
    ast.Between: SqlPrinter._between,
    ast.Like: SqlPrinter._like,
    ast.IsNull: SqlPrinter._is_null,
    ast.ScalarSubquery: SqlPrinter._scalar_subquery,
    ast.Extract: SqlPrinter._extract,
    ast.Substring: SqlPrinter._substring,
    ast.TableRef: SqlPrinter._table_ref,
    ast.SubqueryRef: SqlPrinter._subquery_ref,
    ast.Join: SqlPrinter._join,
    ast.Select: SqlPrinter._select,
    ast.ColumnDef: SqlPrinter._column_def,
    ast.TableConstraint: SqlPrinter._table_constraint,
    ast.CreateTable: SqlPrinter._create_table,
    ast.CreateView: SqlPrinter._create_view,
    ast.CreateFunction: SqlPrinter._create_function,
    ast.DropTable: SqlPrinter._drop_table,
    ast.DropView: SqlPrinter._drop_view,
    ast.Insert: SqlPrinter._insert,
    ast.Update: SqlPrinter._update,
    ast.Delete: SqlPrinter._delete,
    ast.Grant: SqlPrinter._grant,
    ast.Revoke: SqlPrinter._revoke,
    ast.SetScope: SqlPrinter._set_scope,
}
