"""Abstract syntax tree for the SQL / MTSQL dialect understood by ``repro``.

Every node is a frozen-enough dataclass (mutable lists are used where the
rewriter needs to replace children wholesale, but the idiom throughout the
code base is to build *new* nodes rather than mutate existing ones).

The same AST is shared by three consumers:

* the engine executes ``Select`` / DML / DDL nodes directly,
* the MTSQL rewriter transforms MTSQL ``Select`` trees into plain SQL trees,
* the printer renders any node back to SQL text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional, Sequence, Union


class Node:
    """Base class for all AST nodes (statements and expressions)."""

    def to_sql(self) -> str:
        """Render this node as SQL text (delegates to :mod:`repro.sql.printer`)."""
        from .printer import to_sql

        return to_sql(self)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression(Node):
    """Base class for scalar expressions."""


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, date, interval, boolean or NULL."""

    value: Any


@dataclass(frozen=True)
class Parameter(Expression):
    """A bind-parameter placeholder: positional ``?``/``?NNN`` or named ``:name``.

    ``index`` is the 1-based slot the value binds to (assigned in first-use
    order by the parser; explicit ``?NNN`` pins it).  Named parameters share
    one slot per name, so ``:low`` appearing twice binds one value.  The
    whole compilation pipeline treats a parameter as an opaque scalar; values
    are bound at execute time — natively on backends whose DBMS supports
    numbered placeholders, by literal substitution elsewhere (see
    :mod:`repro.sql.params`).
    """

    index: int
    name: Optional[str] = None


@dataclass(frozen=True)
class Column(Expression):
    """A (possibly qualified) column reference such as ``E1.E_salary``."""

    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``alias.*`` in a SELECT list or inside COUNT(*)."""

    table: Optional[str] = None


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar or aggregate function call.

    Aggregates are not syntactically distinguished; the executor and the
    MTSQL optimizer consult :data:`AGGREGATE_FUNCTIONS`.
    """

    name: str
    args: tuple[Expression, ...] = ()
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name.upper() in AGGREGATE_FUNCTIONS


AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operator: arithmetic, comparison, AND/OR or ``||``."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary ``NOT`` or ``-``."""

    op: str
    operand: Expression


@dataclass(frozen=True)
class CaseWhen(Node):
    condition: Expression
    result: Expression


@dataclass(frozen=True)
class Case(Expression):
    """A searched ``CASE WHEN ... THEN ... ELSE ... END`` expression."""

    whens: tuple[CaseWhen, ...]
    else_result: Optional[Expression] = None


@dataclass(frozen=True)
class InList(Expression):
    expr: Expression
    items: tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expression):
    expr: Expression
    query: "Select"
    negated: bool = False


@dataclass(frozen=True)
class Exists(Expression):
    query: "Select"
    negated: bool = False


@dataclass(frozen=True)
class Between(Expression):
    expr: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True)
class Like(Expression):
    expr: Expression
    pattern: Expression
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expression):
    expr: Expression
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery(Expression):
    """A sub-query used as a scalar value, e.g. ``x > (SELECT AVG(...) ...)``."""

    query: "Select"


@dataclass(frozen=True)
class Extract(Expression):
    """``EXTRACT(YEAR FROM expr)`` and friends."""

    part: str
    expr: Expression


@dataclass(frozen=True)
class Substring(Expression):
    """``SUBSTRING(expr FROM start [FOR length])`` (also accepts comma form)."""

    expr: Expression
    start: Expression
    length: Optional[Expression] = None


# ---------------------------------------------------------------------------
# FROM clause items
# ---------------------------------------------------------------------------


class FromItem(Node):
    """Base class for things that can appear in a FROM clause."""

    alias: Optional[str]


@dataclass
class TableRef(FromItem):
    """A base table (or view) reference with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """Name under which this relation's columns are visible."""
        return self.alias or self.name


@dataclass
class SubqueryRef(FromItem):
    """A derived table: ``(SELECT ...) AS alias``."""

    query: "Select"
    alias: str = ""

    @property
    def binding(self) -> str:
        return self.alias


class JoinType(Enum):
    INNER = "INNER"
    LEFT = "LEFT"
    CROSS = "CROSS"


@dataclass
class Join(FromItem):
    """An explicit ``A JOIN B ON cond`` item."""

    left: FromItem
    right: FromItem
    join_type: JoinType = JoinType.INNER
    condition: Optional[Expression] = None
    alias: Optional[str] = None


# ---------------------------------------------------------------------------
# SELECT statement
# ---------------------------------------------------------------------------


@dataclass
class SelectItem(Node):
    expr: Expression
    alias: Optional[str] = None


@dataclass
class OrderItem(Node):
    expr: Expression
    descending: bool = False


@dataclass
class Select(Node):
    """A (sub-)query.

    ``from_items`` holds the comma-separated FROM entries; explicit joins are
    nested inside :class:`Join` items.
    """

    items: list[SelectItem] = field(default_factory=list)
    from_items: list[FromItem] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: list[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------


class TableGenerality(Enum):
    """MTSQL table generality (§2.2): global vs tenant-specific."""

    GLOBAL = "GLOBAL"
    SPECIFIC = "SPECIFIC"


class Comparability(Enum):
    """MTSQL attribute comparability (§2.2, Table 1)."""

    COMPARABLE = "COMPARABLE"
    CONVERTIBLE = "CONVERTIBLE"
    SPECIFIC = "SPECIFIC"


@dataclass
class ColumnDef(Node):
    name: str
    type_name: str
    not_null: bool = False
    comparability: Optional[Comparability] = None
    to_universal: Optional[str] = None
    from_universal: Optional[str] = None
    default: Optional[Expression] = None


class ConstraintKind(Enum):
    PRIMARY_KEY = "PRIMARY KEY"
    FOREIGN_KEY = "FOREIGN KEY"
    CHECK = "CHECK"
    UNIQUE = "UNIQUE"


@dataclass
class TableConstraint(Node):
    kind: ConstraintKind
    name: Optional[str] = None
    columns: tuple[str, ...] = ()
    ref_table: Optional[str] = None
    ref_columns: tuple[str, ...] = ()
    check: Optional[Expression] = None


@dataclass
class CreateTable(Node):
    name: str
    columns: list[ColumnDef] = field(default_factory=list)
    constraints: list[TableConstraint] = field(default_factory=list)
    generality: Optional[TableGenerality] = None


@dataclass
class CreateView(Node):
    name: str
    query: Select


@dataclass
class CreateFunction(Node):
    """``CREATE FUNCTION name (argtypes) RETURNS type AS 'body' LANGUAGE SQL``."""

    name: str
    arg_types: tuple[str, ...]
    return_type: str
    body: str
    language: str = "SQL"
    immutable: bool = False


@dataclass
class DropTable(Node):
    name: str
    if_exists: bool = False


@dataclass
class DropView(Node):
    name: str
    if_exists: bool = False


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------


@dataclass
class Insert(Node):
    table: str
    columns: tuple[str, ...] = ()
    rows: list[tuple[Expression, ...]] = field(default_factory=list)
    query: Optional[Select] = None


@dataclass
class Assignment(Node):
    column: str
    value: Expression


@dataclass
class Update(Node):
    table: str
    assignments: list[Assignment] = field(default_factory=list)
    where: Optional[Expression] = None


@dataclass
class Delete(Node):
    table: str
    where: Optional[Expression] = None


# ---------------------------------------------------------------------------
# DCL and MTSQL session statements
# ---------------------------------------------------------------------------


@dataclass
class Grant(Node):
    privileges: tuple[str, ...]
    object_name: str
    grantee: Union[int, str]


@dataclass
class Revoke(Node):
    privileges: tuple[str, ...]
    object_name: str
    grantee: Union[int, str]


@dataclass
class SetScope(Node):
    """``SET SCOPE = "..."`` — the raw scope text, interpreted by the core layer."""

    scope_text: str


Statement = Union[
    Select,
    CreateTable,
    CreateView,
    CreateFunction,
    DropTable,
    DropView,
    Insert,
    Update,
    Delete,
    Grant,
    Revoke,
    SetScope,
]


# ---------------------------------------------------------------------------
# Convenience constructors used throughout the rewriter and tests
# ---------------------------------------------------------------------------


def col(name: str, table: Optional[str] = None) -> Column:
    return Column(name=name, table=table)


def lit(value: Any) -> Literal:
    return Literal(value)


def func(name: str, *args: Expression, distinct: bool = False) -> FunctionCall:
    return FunctionCall(name=name, args=tuple(args), distinct=distinct)


def and_(*conditions: Optional[Expression]) -> Optional[Expression]:
    """Combine conditions with AND, ignoring ``None`` entries."""
    present = [c for c in conditions if c is not None]
    if not present:
        return None
    result = present[0]
    for condition in present[1:]:
        result = BinaryOp("AND", result, condition)
    return result


def eq(left: Expression, right: Expression) -> BinaryOp:
    return BinaryOp("=", left, right)


def split_conjuncts(expr: Optional[Expression]) -> list[Expression]:
    """Split a predicate on top-level ANDs; inverse of :func:`and_`."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]
