"""SQL dialects: how one target DBMS spells literals, identifiers and idioms.

The MTBase middleware is backend-agnostic — the rewritten statement is an AST,
and each execution backend renders it through the :class:`Dialect` its DBMS
understands.  A dialect bundles

* **identifier quoting** — which names need quoting and with which character,
* **placeholder style** — ``$1`` (the engine's SQL-function parameters) vs.
  SQLite's ``?1``,
* **literal rendering** — strings, dates, intervals, booleans,
* **idiom translation** — ``EXTRACT``/``SUBSTRING``/date±interval arithmetic
  and DDL type names, for targets that spell them differently.

:data:`DEFAULT_DIALECT` reproduces the historic printer output byte for byte
(and therefore round-trips through :mod:`repro.sql.parser`);
:data:`SQLITE_DIALECT` emits SQL executable by the :mod:`sqlite3` module.
"""

from __future__ import annotations

import re
from typing import Any, Optional

from ..errors import SQLError
from .types import Date, Interval, IntervalUnit

_SAFE_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*\Z")
_PARAMETER = re.compile(r"\$(\d+)\Z")


class Dialect:
    """The default dialect: the ``repro`` SQL grammar itself.

    Its output is what the in-memory engine parses, so it never quotes
    identifiers (the grammar has no quoting) and keeps ``DATE``/``INTERVAL``
    literals in ANSI form.
    """

    name = "default"
    identifier_quote = '"'
    #: words that must be quoted when used as an identifier
    reserved_words: frozenset[str] = frozenset()

    # -- identifiers ---------------------------------------------------------

    def quote_identifier(self, name: str) -> str:
        """Quote ``name`` if this dialect requires it (the default never does)."""
        if self.needs_quoting(name):
            quote = self.identifier_quote
            return f"{quote}{name.replace(quote, quote * 2)}{quote}"
        return name

    def qualified_identifier(self, name: str, table: Optional[str] = None) -> str:
        """``table.name`` with each part quoted as required."""
        if table:
            return f"{self.quote_identifier(table)}.{self.quote_identifier(name)}"
        return self.quote_identifier(name)

    def needs_quoting(self, name: str) -> bool:
        """Whether ``name`` must be quoted (reserved word or unsafe chars)."""
        if not self.reserved_words:
            return False
        return (
            not _SAFE_IDENTIFIER.match(name) or name.upper() in self.reserved_words
        )

    # -- placeholders --------------------------------------------------------

    def placeholder(self, index: int) -> str:
        """The text of the ``index``-th (1-based) statement parameter."""
        return f"${index}"

    def parameter_index(self, name: str) -> Optional[int]:
        """If ``name`` is a parameter reference (``$n``), its 1-based index."""
        match = _PARAMETER.match(name)
        return int(match.group(1)) if match else None

    def render_parameter(self, index: int, name: Optional[str] = None) -> str:
        """How a bind-parameter slot is spelled in statement text.

        The default dialect keeps the client-facing spelling — ``:name`` for
        named parameters, numbered ``?N`` for positional ones (unambiguous
        and round-trippable through the parser, unlike a bare ``?``).
        """
        return f":{name}" if name else f"?{index}"

    # -- literals ------------------------------------------------------------

    def format_literal(self, value: Any) -> str:
        """Render any Python literal value in this dialect's spelling."""
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return self.format_boolean(value)
        if isinstance(value, (int, float)):
            if isinstance(value, float) and value == int(value):
                return f"{value:.1f}"
            return str(value)
        if isinstance(value, Date):
            return self.format_date(value)
        if isinstance(value, Interval):
            return self.format_interval(value)
        return self.format_string(str(value))

    def format_string(self, value: str) -> str:
        """A single-quoted string literal (quotes doubled)."""
        return "'" + value.replace("'", "''") + "'"

    def format_boolean(self, value: bool) -> str:
        """A boolean literal (ANSI ``TRUE``/``FALSE``)."""
        return "TRUE" if value else "FALSE"

    def format_date(self, value: Date) -> str:
        """A date literal (ANSI ``DATE '...'``)."""
        return f"DATE '{value}'"

    def format_interval(self, value: Interval) -> str:
        """An interval literal (ANSI ``INTERVAL 'n' UNIT``)."""
        return f"INTERVAL '{value.amount}' {value.unit.value}"

    # -- idioms --------------------------------------------------------------

    def render_extract(self, part: str, operand: str) -> str:
        """``EXTRACT(part FROM operand)`` in this dialect's spelling."""
        return f"EXTRACT({part} FROM {operand})"

    def render_substring(self, expr: str, start: str, length: Optional[str]) -> str:
        """``SUBSTRING(expr FROM start [FOR length])`` in this dialect."""
        if length is None:
            return f"SUBSTRING({expr} FROM {start})"
        return f"SUBSTRING({expr} FROM {start} FOR {length})"

    def render_date_arithmetic(
        self, left: str, op: str, interval: Interval
    ) -> Optional[str]:
        """Render ``<date expr> ± INTERVAL``; ``None`` keeps the generic form."""
        return None

    def render_type(self, type_name: str) -> str:
        """Map a DDL column type to this dialect's spelling."""
        return type_name


class SQLiteDialect(Dialect):
    """SQL as the :mod:`sqlite3` module (SQLite ≥ 3.35) executes it.

    Dates are stored as ISO-8601 ``TEXT`` (which preserves calendar order
    under string comparison), intervals become ``date(x, '+N unit')``
    modifiers, ``EXTRACT`` becomes ``strftime`` and parameters use the
    ``?NNN`` style.
    """

    name = "sqlite"
    identifier_quote = '"'
    reserved_words = frozenset(
        """
        ABORT ACTION ADD AFTER ALL ALTER ANALYZE AND AS ASC ATTACH AUTOINCREMENT
        BEFORE BEGIN BETWEEN BY CASCADE CASE CAST CHECK COLLATE COLUMN COMMIT
        CONFLICT CONSTRAINT CREATE CROSS CURRENT CURRENT_DATE CURRENT_TIME
        CURRENT_TIMESTAMP DATABASE DEFAULT DEFERRABLE DEFERRED DELETE DESC
        DETACH DISTINCT DO DROP EACH ELSE END ESCAPE EXCEPT EXCLUSIVE EXISTS
        EXPLAIN FAIL FILTER FOR FOREIGN FROM FULL GLOB GROUP HAVING IF IGNORE
        IMMEDIATE IN INDEX INDEXED INITIALLY INNER INSERT INSTEAD INTERSECT
        INTO IS ISNULL JOIN KEY LEFT LIKE LIMIT MATCH NATURAL NO NOT NOTHING
        NOTNULL NULL OF OFFSET ON OR ORDER OUTER OVER PLAN PRAGMA PRIMARY QUERY
        RAISE RECURSIVE REFERENCES REGEXP REINDEX RELEASE RENAME REPLACE
        RESTRICT RIGHT ROLLBACK ROW ROWS SAVEPOINT SELECT SET TABLE TEMP
        TEMPORARY THEN TO TRANSACTION TRIGGER UNION UNIQUE UPDATE USING VACUUM
        VALUES VIEW VIRTUAL WHEN WHERE WINDOW WITH WITHOUT
        """.split()
    )

    _STRFTIME_PARTS = {"YEAR": "%Y", "MONTH": "%m", "DAY": "%d"}
    _TYPE_MAP = {
        "INTEGER": "INTEGER",
        "INT": "INTEGER",
        "BIGINT": "INTEGER",
        "SMALLINT": "INTEGER",
        "DECIMAL": "REAL",
        "NUMERIC": "REAL",
        "FLOAT": "REAL",
        "DOUBLE": "REAL",
        "REAL": "REAL",
        "VARCHAR": "TEXT",
        "CHAR": "TEXT",
        "TEXT": "TEXT",
        "STRING": "TEXT",
        "DATE": "TEXT",
        "BOOLEAN": "INTEGER",
        "BOOL": "INTEGER",
    }

    def needs_quoting(self, name: str) -> bool:
        """SQLite quotes unsafe names and its (long) reserved-word list."""
        return not _SAFE_IDENTIFIER.match(name) or name.upper() in self.reserved_words

    def placeholder(self, index: int) -> str:
        """SQLite's numbered ``?NNN`` parameter style."""
        return f"?{index}"

    def render_parameter(self, index: int, name: Optional[str] = None) -> str:
        """Bind parameters pass through natively as ``?NNN``.

        Named parameters are rendered by slot number too: the backend binds a
        positional value vector, so ``:name`` must not reach SQLite (its
        named style expects a mapping).
        """
        return f"?{index}"

    def format_boolean(self, value: bool) -> str:
        """SQLite has no booleans; integers 1/0."""
        return "1" if value else "0"

    def format_date(self, value: Date) -> str:
        """Dates are ISO-8601 TEXT (string comparison preserves order)."""
        return f"'{value}'"

    def format_interval(self, value: Interval) -> str:
        """Rejected: intervals only exist inside date arithmetic here."""
        raise SQLError(
            "SQLite has no interval literals; intervals are only valid as the "
            "right operand of date arithmetic"
        )

    def render_extract(self, part: str, operand: str) -> str:
        """``EXTRACT`` via ``strftime`` + CAST."""
        fmt = self._STRFTIME_PARTS.get(part.upper())
        if fmt is None:
            raise SQLError(f"cannot EXTRACT({part} ...) in the sqlite dialect")
        return f"CAST(strftime('{fmt}', {operand}) AS INTEGER)"

    def render_substring(self, expr: str, start: str, length: Optional[str]) -> str:
        """``SUBSTRING`` via SQLite's comma-style ``SUBSTR``."""
        if length is None:
            return f"SUBSTR({expr}, {start})"
        return f"SUBSTR({expr}, {start}, {length})"

    def render_date_arithmetic(
        self, left: str, op: str, interval: Interval
    ) -> Optional[str]:
        """``date ± INTERVAL`` via ``date(x, '+N unit')`` modifiers."""
        if op not in ("+", "-"):
            return None
        # fold the operator into the amount: INTERVAL '-3' DAY subtracted is
        # +3 days, and '+-3 day' would silently evaluate to NULL in SQLite
        signed = -interval.amount if op == "-" else interval.amount
        unit = {
            IntervalUnit.DAY: "day",
            IntervalUnit.MONTH: "month",
            IntervalUnit.YEAR: "year",
        }[interval.unit]
        return f"date({left}, '{signed:+d} {unit}')"

    def render_type(self, type_name: str) -> str:
        """Map catalog types onto SQLite's affinities (DECIMAL→REAL, ...)."""
        base = type_name.strip().upper()
        if "(" in base:
            base = base[: base.index("(")].strip()
        return self._TYPE_MAP.get(base, "TEXT")


DEFAULT_DIALECT = Dialect()
SQLITE_DIALECT = SQLiteDialect()

DIALECTS: dict[str, Dialect] = {
    DEFAULT_DIALECT.name: DEFAULT_DIALECT,
    SQLITE_DIALECT.name: SQLITE_DIALECT,
}


def get_dialect(name: str) -> Dialect:
    """Look a dialect up by name (``"default"``, ``"sqlite"``)."""
    try:
        return DIALECTS[name.lower()]
    except KeyError as exc:
        raise SQLError(
            f"unknown SQL dialect {name!r}; known: {sorted(DIALECTS)}"
        ) from exc
