"""The compiler's pass protocol, registry and per-level pass lists.

The paper's Table 6 assigns each optimization level a set of post-rewrite
passes.  Historically that mapping was spread over boolean ``applies_*``
properties of :class:`~repro.core.optimizer.levels.OptimizationLevel`; here
it is one declarative table, :data:`LEVEL_PASSES`, consumed by the staged
compiler (:mod:`repro.compile.compiler`) and by the back-compat
:func:`repro.core.optimizer.apply_optimizations` helper.

A pass is a named, instrumented unit of work: ``run(query, context)`` returns
the transformed query plus how many rewrite rules fired, which the compiler
records per stage (:class:`~repro.compile.artifact.PassRecord`).  Passes are
registered by name with :func:`register_pass`, so new optimizations plug in
by adding a class and extending :data:`LEVEL_PASSES`.

The *trivial semantic optimizations* (§4.1, level o1) are intentionally not a
pass: they are :class:`~repro.core.rewrite.context.RewriteOptions` flags that
switch parts of the canonical rewrite off — see :func:`applies_trivial`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from ..core.optimizer.distribution import AggregationDistributionOptimizer
from ..core.optimizer.inlining import InliningOptimizer
from ..core.optimizer.levels import OptimizationLevel
from ..core.optimizer.pushup import PushUpOptimizer
from ..core.rewrite.context import RewriteContext
from ..errors import MTSQLError
from ..sql import ast


@dataclass(frozen=True)
class PassResult:
    """What one pass produced: the transformed query and its fired-rule count."""

    query: ast.Select
    fired: int


class CompilerPass(Protocol):
    """One named, instrumented compilation pass.

    Implementations are cheap, stateless-to-construct objects; the compiler
    instantiates a fresh one per compilation (fired-rule counting happens on
    the wrapped optimizer instance, which must not be shared).
    """

    name: str
    description: str

    def run(self, query: ast.Select, context: RewriteContext) -> PassResult:
        """Transform ``query`` for ``context``; report how many rules fired."""
        ...


#: registered pass factories by name (see :func:`register_pass`)
PASS_REGISTRY: dict[str, Callable[[], CompilerPass]] = {}


def register_pass(factory: Callable[[], CompilerPass]):
    """Class decorator: register a pass factory under its ``name``."""
    name = factory.name  # type: ignore[attr-defined]
    if name in PASS_REGISTRY:
        raise MTSQLError(f"compiler pass {name!r} is already registered")
    PASS_REGISTRY[name] = factory
    return factory


@register_pass
class PushUpPass:
    """Client presentation push-up + conversion push-up (§4.2.1)."""

    name = "pushup"
    description = "convert constants instead of attributes; compare in universal format"

    def run(self, query: ast.Select, context: RewriteContext) -> PassResult:
        """Apply :class:`~repro.core.optimizer.pushup.PushUpOptimizer`."""
        optimizer = PushUpOptimizer(context)
        return PassResult(query=optimizer.apply(query), fired=optimizer.fired)


@register_pass
class DistributionPass:
    """Conversion function distribution over aggregates (§4.2.2)."""

    name = "distribution"
    description = "aggregate raw values per tenant, convert the partials (2N → T+1 calls)"

    def run(self, query: ast.Select, context: RewriteContext) -> PassResult:
        """Apply :class:`~repro.core.optimizer.distribution.AggregationDistributionOptimizer`."""
        optimizer = AggregationDistributionOptimizer(context)
        return PassResult(query=optimizer.apply(query), fired=optimizer.fired)


@register_pass
class InliningPass:
    """Conversion function inlining (§4.2.3)."""

    name = "inlining"
    description = "replace conversion UDF calls with their inline expression form"

    def run(self, query: ast.Select, context: RewriteContext) -> PassResult:
        """Apply :class:`~repro.core.optimizer.inlining.InliningOptimizer`."""
        optimizer = InliningOptimizer(context)
        return PassResult(query=optimizer.apply(query), fired=optimizer.fired)


#: Table 6: the post-rewrite passes each optimization level runs, in order.
LEVEL_PASSES: dict[OptimizationLevel, tuple[str, ...]] = {
    OptimizationLevel.CANONICAL: (),
    OptimizationLevel.O1: (),
    OptimizationLevel.O2: ("pushup",),
    OptimizationLevel.O3: ("pushup", "distribution"),
    OptimizationLevel.O4: ("pushup", "distribution", "inlining"),
    OptimizationLevel.INL_ONLY: ("inlining",),
}


def applies_trivial(level: OptimizationLevel) -> bool:
    """Whether ``level`` enables the §4.1 trivial semantic optimizations.

    Every level except the bare canonical rewrite does; the flags themselves
    are computed from C and D by
    :meth:`~repro.core.rewrite.context.RewriteOptions.trivially_optimized`.
    """
    return level is not OptimizationLevel.CANONICAL


def level_pass_names(level: OptimizationLevel) -> tuple[str, ...]:
    """The names of the passes ``level`` runs, in execution order."""
    try:
        return LEVEL_PASSES[level]
    except KeyError as exc:  # pragma: no cover - every enum member is mapped
        raise MTSQLError(f"no pass list registered for level {level!r}") from exc


def passes_for_level(level: OptimizationLevel) -> tuple[CompilerPass, ...]:
    """Fresh pass instances for ``level``, in execution order."""
    return tuple(PASS_REGISTRY[name]() for name in level_pass_names(level))
