"""The staged MTSQL→SQL query compiler.

:class:`QueryCompiler` is the one place the middleware turns an MTSQL SELECT
into executable SQL.  It runs an explicit pipeline —

1. **context** — build the :class:`~repro.core.rewrite.context.RewriteContext`
   for ``(C, D', level)``; every level except ``canonical`` computes the
   §4.1 trivial-optimization flags here,
2. **canonical** — the Algorithm-1 rewrite
   (:class:`~repro.core.rewrite.canonical.CanonicalRewriter`),
3. **passes** — the level's registered passes in :data:`~repro.compile.passes.
   LEVEL_PASSES` order (push-up, distribution, inlining),
4. **analysis** — the shardability / tenant-local-key walk
   (:class:`~repro.compile.analysis.ShardabilityAnalyzer`) against a catalog
   derived from the middleware's MT schema —

and records per-stage wall time, AST node-count deltas, fired-rule counts and
AST snapshots into the returned
:class:`~repro.compile.artifact.CompiledQuery`.  Consumers never re-derive
any of this: the client executes the artifact, the gateway caches it, the
cluster planner reads its analysis.

``stats.compilations`` counts every pipeline run — the acceptance tests use
it to prove each statement is compiled exactly once end-to-end (and not at
all on a warm gateway cache hit).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Sequence

from ..core.rewrite.canonical import CanonicalRewriter
from ..core.rewrite.context import RewriteContext, RewriteOptions
from ..sql import ast
from ..sql.params import statement_parameters
from ..sql.transform import count_nodes
from .analysis import ClusterCatalog, PartitionInfo, ShardabilityAnalyzer
from .artifact import CompiledQuery, ConversionCensus, PassRecord, conversion_census
from .passes import applies_trivial, passes_for_level
from .typecheck import SemanticFacts, TypeChecker, env_typecheck
from ..core.optimizer.levels import OptimizationLevel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.middleware import MTBase


@dataclass
class CompilerStats:
    """Pipeline counters, read by tests and the benchmark harness."""

    #: full pipeline runs (one per compiled statement)
    compilations: int = 0
    #: total wall time spent compiling
    seconds: float = 0.0

    def snapshot(self) -> "CompilerStats":
        """A defensive copy of the counters."""
        return replace(self)

    def reset(self) -> None:
        """Zero the counters (between benchmark runs)."""
        self.compilations = 0
        self.seconds = 0.0


class QueryCompiler:
    """The middleware's staged compiler: one instance per :class:`MTBase`."""

    def __init__(self, middleware: "MTBase") -> None:
        self.middleware = middleware
        self.stats = CompilerStats()
        #: whether the prepare-time static analyzer runs (strict env knob
        #: ``REPRO_COMPILE_TYPECHECK``); tests flip the attribute directly
        self.typecheck = env_typecheck()
        self._lock = threading.Lock()
        self._catalog: Optional[ClusterCatalog] = None
        self._catalog_version: Optional[int] = None

    # -- context ---------------------------------------------------------------

    def rewrite_context(
        self,
        client: int,
        dataset: Sequence[int],
        level: OptimizationLevel,
        force_canonical: bool = False,
    ) -> RewriteContext:
        """The rewrite context for one ``(C, D', level)`` combination.

        ``force_canonical`` disables the trivial-optimization flags even for
        optimizing levels — the DML rewrite requires the canonical form.
        """
        all_tenants = self.middleware.tenants()
        if applies_trivial(level) and not force_canonical:
            options = RewriteOptions.trivially_optimized(client, dataset, all_tenants)
        else:
            options = RewriteOptions.canonical()
        return RewriteContext(
            client=client,
            dataset=tuple(dataset),
            schema=self.middleware.schema,
            conversions=self.middleware.conversions,
            options=options,
            all_tenants=all_tenants,
        )

    # -- catalog ---------------------------------------------------------------

    def catalog(self) -> ClusterCatalog:
        """Partitioning facts derived from the MT schema (cached per version).

        Tenant-specific tables are the partitioned relations (their ttid
        column plus ``SPECIFIC`` attributes form the tenant-local keys);
        global tables are replicated.  Views (and any relation created behind
        the middleware's back) surface as *unknown* in the analysis; the
        consumer resolves them against its own catalog — a sharded backend
        plans views through its always-correct federated path.
        """
        version = self.middleware.metadata_version
        with self._lock:
            if self._catalog is not None and self._catalog_version == version:
                return self._catalog
        catalog = ClusterCatalog()
        for table in self.middleware.schema.tables():
            catalog.add_relation(table.name)
            if table.is_tenant_specific:
                catalog.set_partitioned(
                    PartitionInfo(
                        table=table.name,
                        ttid_column=table.ttid_column,
                        local_keys=frozenset(
                            attribute.name.lower()
                            for attribute in table.tenant_specific_attributes()
                        ),
                    )
                )
        with self._lock:
            self._catalog = catalog
            self._catalog_version = version
        return catalog

    # -- compilation -----------------------------------------------------------

    def compile(
        self,
        query: ast.Select,
        client: int,
        dataset: Sequence[int],
        level: OptimizationLevel,
        tables: Sequence[str] = (),
    ) -> CompiledQuery:
        """Run the full pipeline on one SELECT and return its artifact.

        ``dataset`` must already be resolved and privilege-pruned (it is
        ``D'``); ``tables`` are the tenant-specific tables the caller walked
        for pruning, recorded on the artifact for cache consumers.
        """
        started = time.perf_counter()
        parameters = statement_parameters(query)
        checker: Optional[TypeChecker] = None
        if self.typecheck:
            # the static analyzer rejects ill-typed statements here — at
            # prepare time, before the rewrite or any backend runs — and the
            # walk's findings become the artifact's SemanticFacts below
            checker = TypeChecker(
                self.middleware.schema,
                udf_signatures=self.middleware.udf_signatures,
            )
            checker.check(query)
        context = self.rewrite_context(client, dataset, level)
        records: list[PassRecord] = []

        nodes_before = count_nodes(query)
        stage_started = time.perf_counter()
        canonical = CanonicalRewriter(context).rewrite_query(query)
        stage_seconds = time.perf_counter() - stage_started
        census_canonical = conversion_census(canonical, self.middleware.conversions)
        # snapshots hold the stage outputs by reference: the pipeline treats
        # ASTs as immutable (passes rebuild, never mutate), so no copies are
        # paid on the hot path — explain() renders, snapshot_after() copies
        records.append(
            PassRecord(
                name="canonical",
                seconds=stage_seconds,
                nodes_before=nodes_before,
                nodes_after=count_nodes(canonical),
                fired=sum(census_canonical.values()),
                snapshot=canonical,
            )
        )

        current = canonical
        for compiler_pass in passes_for_level(level):
            nodes_in = records[-1].nodes_after
            stage_started = time.perf_counter()
            result = compiler_pass.run(current, context)
            stage_seconds = time.perf_counter() - stage_started
            current = result.query
            records.append(
                PassRecord(
                    name=compiler_pass.name,
                    seconds=stage_seconds,
                    nodes_before=nodes_in,
                    nodes_after=count_nodes(current),
                    fired=result.fired,
                    snapshot=current,
                )
            )

        facts: Optional[SemanticFacts] = None
        if checker is not None:
            # provenance/nullability facts over the *rewritten* statement:
            # the shardability walk reuses the column-owner map instead of
            # its any-binding heuristic, the engine the proven-NOT-NULL sets
            facts = checker.facts(current)
        analysis = ShardabilityAnalyzer(
            self.catalog(),
            column_owners=facts.column_owners if facts is not None else None,
        ).analyze(current)
        census_final = (
            census_canonical
            if current is canonical  # pass-less levels: nothing changed
            else conversion_census(current, self.middleware.conversions)
        )
        seconds = time.perf_counter() - started
        with self._lock:
            self.stats.compilations += 1
            self.stats.seconds += seconds
        return CompiledQuery(
            statement=query,
            canonical=canonical,
            rewritten=current,
            client=client,
            dataset=tuple(dataset),
            level=level,
            tables=tuple(tables),
            parameters=parameters,
            analysis=analysis,
            passes=tuple(records),
            conversions=ConversionCensus(
                canonical=census_canonical, final=census_final
            ),
            seconds=seconds,
            facts=facts,
        )

    # -- maintenance -----------------------------------------------------------

    def reset_stats(self) -> None:
        """Zero the compilation counters (between benchmark runs)."""
        with self._lock:
            self.stats.reset()
