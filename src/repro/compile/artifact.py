"""The compilation artifact: everything one statement's compilation produced.

A :class:`CompiledQuery` is the single hand-off object between the layers of
the repo's hottest path.  The middleware compiles each SELECT exactly once;
the client executes ``compiled.rewritten``, the gateway caches the whole
artifact (a warm hit skips compilation *and* shard planning), and a sharded
backend consumes ``compiled.analysis`` instead of re-walking the AST and
memoizes its cluster plan in ``compiled.attachments``.

Per-stage instrumentation lives in :class:`PassRecord` — wall time, AST
node-count delta, fired-rule count and a rendered-on-demand SQL snapshot —
which is what ``MTConnection.explain()`` reports.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..sql import ast
from ..sql.transform import iter_select_expressions, walk_expression, walk_selects
from .analysis import QueryAnalysis

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.conversion import ConversionRegistry
    from ..core.optimizer.levels import OptimizationLevel
    from ..sql.params import ParameterSlot
    from .typecheck import SemanticFacts


def conversion_census(select: ast.Select, registry: "ConversionRegistry") -> dict[str, int]:
    """Count the conversion-function calls in a query, per function name.

    The census is the paper's central cost driver (§4 optimizes exactly this
    number): every ``toUniversal``/``fromUniversal`` call of a registered
    conversion pair is counted, descending into sub-queries.  After the
    inlining pass the census is empty — the calls became plain expressions.
    """
    counts: dict[str, int] = {}
    for sub_select in walk_selects(select):
        for expr in iter_select_expressions(sub_select):
            for node in walk_expression(expr):
                if isinstance(node, ast.FunctionCall) and registry.by_function(node.name):
                    counts[node.name] = counts.get(node.name, 0) + 1
    return counts


@dataclass(frozen=True)
class PassRecord:
    """Instrumentation of one compilation stage (canonical rewrite or a pass)."""

    #: stage name (``"canonical"`` or a registered pass name)
    name: str
    #: wall time the stage took
    seconds: float
    #: AST node count fed into the stage
    nodes_before: int
    #: AST node count the stage produced
    nodes_after: int
    #: rewrite rules fired (for the canonical stage: conversion calls emitted)
    fired: int
    #: the stage's output AST, held by reference — the pipeline treats ASTs
    #: as immutable, so render it freely but never mutate it (callers that
    #: want to edit go through :meth:`CompiledQuery.snapshot_after`)
    snapshot: ast.Select = field(repr=False)

    @property
    def node_delta(self) -> int:
        """AST growth (+) or shrinkage (−) caused by this stage."""
        return self.nodes_after - self.nodes_before


@dataclass(frozen=True)
class ConversionCensus:
    """Conversion-call counts before and after the optimization passes."""

    #: calls in the canonical rewrite, per function name
    canonical: dict[str, int]
    #: calls in the final rewritten statement, per function name
    final: dict[str, int]

    @property
    def canonical_total(self) -> int:
        """Total conversion calls the canonical rewrite emitted."""
        return sum(self.canonical.values())

    @property
    def final_total(self) -> int:
        """Total conversion calls left in the statement sent to the DBMS."""
        return sum(self.final.values())

    @property
    def eliminated(self) -> int:
        """Calls the optimization passes removed (may be negative for push-ups)."""
        return self.canonical_total - self.final_total


@dataclass
class CompiledQuery:
    """One statement's full compilation result (see the module docstring).

    The dataclass is mutable only through ``attachments`` — a scratch map
    where backends memoize execution artifacts derived from this compilation
    (e.g. the sharded backend's cluster plan, keyed by shard set and catalog
    version).  Everything else is written once by the compiler.
    """

    #: the original parsed MTSQL statement
    statement: ast.Select
    #: the statement after the canonical MTSQL→SQL rewrite
    canonical: ast.Select
    #: the final rewritten statement (what the backend executes)
    rewritten: ast.Select
    #: the client tenant C the statement was compiled for
    client: int
    #: the resolved, privilege-pruned data set D'
    dataset: tuple[int, ...]
    #: the optimization level that selected the passes
    level: OptimizationLevel
    #: the tenant-specific tables the statement touches (privilege pruning)
    tables: tuple[str, ...]
    #: the statement's bind-parameter slots, in index order (empty when the
    #: statement is not parameterized); one artifact serves every binding
    parameters: tuple["ParameterSlot", ...]
    #: the shardability / tenant-local-key analysis of ``rewritten``
    analysis: QueryAnalysis
    #: per-stage instrumentation, in execution order
    passes: tuple[PassRecord, ...]
    #: conversion-call census (canonical vs. final)
    conversions: ConversionCensus
    #: total compilation wall time
    seconds: float
    #: what the static semantic analyzer proved about the statement
    #: (``None`` when the checker is disabled, ``REPRO_COMPILE_TYPECHECK=0``);
    #: the engine reads ``facts.proven_not_null`` to dispatch null-check-free
    #: kernels, the client checks bind values against ``facts.parameter_types``
    facts: Optional["SemanticFacts"] = field(default=None, repr=False, compare=False)
    #: backend-owned memo space for derived execution artifacts
    attachments: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def pass_trace(self) -> tuple[str, ...]:
        """The stage names that ran, in order (the per-level taxonomy)."""
        return tuple(record.name for record in self.passes)

    def snapshot_after(self, stage: str) -> Optional[ast.Select]:
        """A deep copy of the AST as it stood after ``stage`` (None if absent)."""
        for record in self.passes:
            if record.name == stage:
                return copy.deepcopy(record.snapshot)
        return None
