"""The staged MTSQL→SQL compilation pipeline.

This package turns the paper's rewrite flow (§3.1 canonical rewrite + §4
optimization levels, Table 6) into one explicit, instrumented compiler whose
artifact every layer consumes exactly once:

* :mod:`repro.compile.passes`   — the :class:`CompilerPass` protocol, the
  pass registry and the declarative ``OptimizationLevel → [passes]`` table,
* :mod:`repro.compile.compiler` — :class:`QueryCompiler`, the staged pipeline
  (context → canonical rewrite → passes → shardability analysis) with
  per-stage wall time, AST-size deltas and fired-rule counts,
* :mod:`repro.compile.artifact` — :class:`CompiledQuery` (original /
  canonical / final ASTs, resolved ``(C, D')``, conversion-call census,
  per-pass records, backend attachment memo) and :class:`PassRecord`,
* :mod:`repro.compile.analysis` — the tenant-local-key / shardability
  analysis shared with the cluster planner,
* :mod:`repro.compile.typecheck` — the prepare-time static analyzer
  (:class:`TypeChecker`) and the :class:`SemanticFacts` it proves: types,
  nullability, bind-parameter slot types, column provenance,
* :mod:`repro.compile.explain`  — the pass-by-pass report behind
  ``MTConnection.explain()``.

The compiler is owned by :class:`repro.core.middleware.MTBase`
(``middleware.compiler``); clients reach it through
``MTConnection.compile()`` / ``explain()``, the gateway caches whole
:class:`CompiledQuery` objects, and sharded backends read
``CompiledQuery.analysis`` instead of re-walking the AST.

The analysis and artifact modules are import-light (SQL layer only) so the
cluster planner can depend on them without cycles; the compiler, passes and
explain modules — which build on :mod:`repro.core` — load lazily on first
attribute access.
"""

from __future__ import annotations

from importlib import import_module

from .analysis import (
    ClusterCatalog,
    PartitionInfo,
    QueryAnalysis,
    ShardabilityAnalyzer,
    StreamInfo,
)
from .artifact import CompiledQuery, ConversionCensus, PassRecord, conversion_census
from .cost import (
    CostConfig,
    PlanEstimate,
    TablePrefilter,
    derive_pull_columns,
    derive_table_prefilters,
    estimate_select,
    predicate_selectivity,
)
from .typecheck import (
    SemanticFacts,
    TypeChecker,
    UDFSignature,
    check_parameter_values,
    env_typecheck,
    schema_proven_not_null,
)
from .stats import (
    ColumnStats,
    RefreshPolicy,
    StatisticsCatalog,
    TableStats,
    collect_table_stats,
    merge_catalogs,
)

#: names resolved lazily: these submodules import repro.core, which imports
#: repro.backends → repro.cluster → repro.compile.analysis; loading them
#: eagerly would close that loop during a cold ``import repro.backends``
_LAZY_EXPORTS = {
    "CompilerStats": ("compiler", "CompilerStats"),
    "QueryCompiler": ("compiler", "QueryCompiler"),
    "ExplainReport": ("explain", "ExplainReport"),
    "CompilerPass": ("passes", "CompilerPass"),
    "LEVEL_PASSES": ("passes", "LEVEL_PASSES"),
    "PASS_REGISTRY": ("passes", "PASS_REGISTRY"),
    "PassResult": ("passes", "PassResult"),
    "applies_trivial": ("passes", "applies_trivial"),
    "level_pass_names": ("passes", "level_pass_names"),
    "passes_for_level": ("passes", "passes_for_level"),
    "register_pass": ("passes", "register_pass"),
}

__all__ = [
    "ColumnStats",
    "CompiledQuery",
    "ClusterCatalog",
    "ConversionCensus",
    "CostConfig",
    "PartitionInfo",
    "PassRecord",
    "PlanEstimate",
    "QueryAnalysis",
    "RefreshPolicy",
    "SemanticFacts",
    "ShardabilityAnalyzer",
    "StatisticsCatalog",
    "StreamInfo",
    "TablePrefilter",
    "TableStats",
    "TypeChecker",
    "UDFSignature",
    "check_parameter_values",
    "collect_table_stats",
    "conversion_census",
    "env_typecheck",
    "schema_proven_not_null",
    "derive_pull_columns",
    "derive_table_prefilters",
    "estimate_select",
    "merge_catalogs",
    "predicate_selectivity",
    *sorted(_LAZY_EXPORTS),
]


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(import_module(f".{module_name}", __name__), attribute)
    globals()[name] = value
    return value
