"""Static semantic analysis: the prepare-time type/nullability checker.

:class:`TypeChecker` walks a submitted SELECT against the middleware's
logical MT schema *before* any backend or shard sees the statement and

* resolves every column reference (unknown and ambiguous references are
  rejected with the offending fragment rendered back to SQL),
* infers a static :class:`~repro.sql.types.SQLType` for every expression,
  mirroring the runtime coercion lattice — the checker must never reject a
  statement the engine would execute,
* enforces structural rules: no aggregates in WHERE/GROUP BY/join
  conditions, no nested aggregates, grouped queries may only output group
  keys and aggregates (the HAVING/SELECT placement rule),
* checks registered UDF signatures (arity and argument types of functions
  declared through ``CREATE FUNCTION``),
* assigns a type to each bind-parameter slot from the context it is
  compared in, so mistyped bind values fail at execute time with the same
  :class:`~repro.errors.TypeCheckError` taxonomy.

Every violation raises :class:`~repro.errors.TypeCheckError`.  A clean walk
produces a :class:`SemanticFacts` artifact that travels on the
:class:`~repro.compile.artifact.CompiledQuery`:

* ``proven_not_null`` — per table, the columns whose non-nullness is
  *proven* by a declared ``NOT NULL`` (storage enforces it).  The engine's
  vectorized kernels use this to select null-check-free variants
  (``counters.proven``) and the cost model to skip null-fraction
  discounting,
* ``column_owners`` — which FROM binding each column reference of the
  *rewritten* statement resolves to; the shardability analysis consumes
  this instead of re-walking the AST with an any-binding heuristic,
* ``parameter_types`` — inferred type per bind-parameter slot,
* ``expression_types`` — the inferred type of every expression node of the
  original statement (keyed by ``id(node)``; the artifact keeps the AST
  alive).

The analyzer is *lenient by construction*: any relation, column or function
it cannot see in the MT schema contributes "type unknown", and unknown
types are compatible with everything.  Only provable contradictions are
errors.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from ..errors import ConfigurationError, TypeCheckError, TypeMismatchError
from ..sql import ast
from ..sql.types import (
    Date,
    Interval,
    SQLType,
    arithmetic_result,
    comparison_compatible,
    is_numeric_type,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.mtschema import MTSchema

#: comparison operators checked against the coercion lattice
_COMPARISONS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})
#: arithmetic operators checked against the numeric/date rules
_ARITHMETIC = frozenset({"+", "-", "*", "/"})


def env_typecheck() -> bool:
    """Parse ``REPRO_COMPILE_TYPECHECK`` strictly (default: enabled).

    ``"1"`` (or unset/empty) enables the prepare-time checker, ``"0"``
    disables it — the escape hatch the CI matrix exercises; results must be
    identical either way, only diagnostics and proven-kernel dispatch
    change.  Anything else raises :class:`ConfigurationError`.
    """
    value = os.environ.get("REPRO_COMPILE_TYPECHECK", "").strip()
    if not value or value == "1":
        return True
    if value == "0":
        return False
    raise ConfigurationError(
        f"the REPRO_COMPILE_TYPECHECK environment variable must be "
        f"'0' or '1' (got {value!r})"
    )


@dataclass(frozen=True)
class UDFSignature:
    """The declared signature of a ``CREATE FUNCTION`` UDF.

    Types the catalog does not model map to ``None`` (unknown) — the
    checker then only enforces arity for that position.
    """

    name: str
    arg_types: tuple[Optional[SQLType], ...]
    return_type: Optional[SQLType]

    @classmethod
    def from_create(cls, statement: ast.CreateFunction) -> "UDFSignature":
        """Derive the signature from a parsed ``CREATE FUNCTION`` statement."""

        def resolve(type_name: str) -> Optional[SQLType]:
            try:
                return SQLType.from_name(type_name)
            except TypeMismatchError:
                return None

        return cls(
            name=statement.name,
            arg_types=tuple(resolve(name) for name in statement.arg_types),
            return_type=resolve(statement.return_type),
        )


@dataclass
class SemanticFacts:
    """What one clean static-analysis walk proved about a statement."""

    #: ``id(expression node)`` in the *original* statement -> inferred type
    #: (``None`` = unknown)
    expression_types: dict[int, Optional[SQLType]] = field(default_factory=dict)
    #: bind-parameter slot index -> the type its comparison context implies
    parameter_types: dict[int, SQLType] = field(default_factory=dict)
    #: table name (lower) -> columns (lower) proven NOT NULL by the schema
    proven_not_null: dict[str, frozenset[str]] = field(default_factory=dict)
    #: ``id(Column node)`` in the *rewritten* statement -> owning FROM
    #: binding (lower); the shardability analysis' provenance map
    column_owners: dict[int, str] = field(default_factory=dict)


def schema_proven_not_null(schema: "MTSchema") -> dict[str, frozenset[str]]:
    """Per-table NOT NULL column sets, derived from the MT schema.

    Sound because the physical layer enforces the declared constraint: a
    stored value of a ``NOT NULL`` column can never be ``None``.  The
    invisible ttid column of tenant-specific tables is always proven (the
    middleware declares it ``NOT NULL`` when creating the physical table).
    """
    proven: dict[str, frozenset[str]] = {}
    for table in schema.tables():
        columns = {
            attribute.key for attribute in table.attributes.values() if attribute.not_null
        }
        if table.is_tenant_specific:
            columns.add(table.ttid_column.lower())
        if columns:
            proven[table.key] = frozenset(columns)
    return proven


def value_sql_type(value) -> Optional[SQLType]:
    """The static type of a Python bind value (``None`` for NULL/exotic)."""
    if isinstance(value, bool):
        return SQLType.BOOLEAN
    if isinstance(value, int):
        return SQLType.INTEGER
    if isinstance(value, float):
        return SQLType.DECIMAL
    if isinstance(value, Date):
        return SQLType.DATE
    if isinstance(value, str):
        return SQLType.VARCHAR
    return None


def check_parameter_values(
    parameter_types: dict[int, SQLType], values: tuple
) -> None:
    """Check bind values against the analyzer's inferred slot types.

    ``values`` is the positional tuple (slot 1 = ``values[0]``).  NULLs and
    values of unmodelled Python types pass; a value whose static type is
    incompatible with the slot's inferred type raises
    :class:`~repro.errors.TypeCheckError` naming the slot.
    """
    for index, expected in parameter_types.items():
        if not 1 <= index <= len(values):
            continue  # arity errors are the parameter resolver's job
        value = values[index - 1]
        actual = value_sql_type(value)
        if actual is None:
            continue
        if not comparison_compatible(expected, actual):
            raise TypeCheckError(
                f"parameter {index} expects {_type_name(expected)}, got "
                f"{_type_name(actual)} value {value!r}",
                fragment=f"?{index}",
            )


def _fragment(node: ast.Node) -> str:
    """Render the offending fragment for a diagnostic (best effort)."""
    try:
        return node.to_sql()
    except Exception:  # pragma: no cover - defensive: diagnostics never fail
        return type(node).__name__


def _error(message: str, node: ast.Node) -> TypeCheckError:
    fragment = _fragment(node)
    return TypeCheckError(f"{message} in {fragment!r}", fragment=fragment)


def _type_name(sql_type: Optional[SQLType]) -> str:
    return sql_type.value if sql_type is not None else "unknown"


def _children(node: ast.Expression) -> Iterable[ast.Expression]:
    """The direct sub-expressions of a node, *excluding* nested queries."""
    if isinstance(node, ast.FunctionCall):
        return node.args
    if isinstance(node, ast.BinaryOp):
        return (node.left, node.right)
    if isinstance(node, ast.UnaryOp):
        return (node.operand,)
    if isinstance(node, ast.Case):
        parts: list[ast.Expression] = []
        for when in node.whens:
            parts.append(when.condition)
            parts.append(when.result)
        if node.else_result is not None:
            parts.append(node.else_result)
        return parts
    if isinstance(node, ast.InList):
        return (node.expr, *node.items)
    if isinstance(node, ast.InSubquery):
        return (node.expr,)
    if isinstance(node, ast.Between):
        return (node.expr, node.low, node.high)
    if isinstance(node, ast.Like):
        return (node.expr, node.pattern)
    if isinstance(node, ast.IsNull):
        return (node.expr,)
    if isinstance(node, ast.Extract):
        return (node.expr,)
    if isinstance(node, ast.Substring):
        parts = [node.expr, node.start]
        if node.length is not None:
            parts.append(node.length)
        return parts
    return ()


def _walk_shallow(expr: Optional[ast.Expression]) -> Iterable[ast.Expression]:
    """Walk an expression without descending into sub-queries."""
    if expr is None:
        return
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(_children(node))


def _contains_aggregate(expr: Optional[ast.Expression]) -> bool:
    return any(
        isinstance(node, ast.FunctionCall) and node.is_aggregate
        for node in _walk_shallow(expr)
    )


# ---------------------------------------------------------------------------
# Name environments
# ---------------------------------------------------------------------------


class _Frame:
    """One query level's FROM bindings: name -> column types (or unknown).

    ``columns`` of ``None`` marks a relation the MT schema does not know
    (a view, a backend-created table); every reference against it resolves
    with an unknown type instead of an error.
    """

    __slots__ = ("bindings",)

    def __init__(self) -> None:
        self.bindings: list[tuple[str, Optional[dict[str, Optional[SQLType]]]]] = []

    def add(self, binding: str, columns: Optional[dict[str, Optional[SQLType]]]) -> None:
        self.bindings.append((binding.lower(), columns))

    def lookup_binding(self, table: str):
        table = table.lower()
        for binding, columns in self.bindings:
            if binding == table:
                return columns
        return None

    def has_binding(self, table: str) -> bool:
        table = table.lower()
        return any(binding == table for binding, _ in self.bindings)


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------


class TypeChecker:
    """Schema-aware static analyzer for one statement (see module docstring).

    One instance per compilation: :meth:`check` walks the original
    statement and raises on the first violation; :meth:`facts` then
    assembles the :class:`SemanticFacts` artifact (including the
    column-provenance map of the rewritten statement).
    """

    def __init__(
        self,
        schema: "MTSchema",
        udf_signatures: Optional[dict[str, UDFSignature]] = None,
    ) -> None:
        self.schema = schema
        self.udf_signatures = {
            name.lower(): signature for name, signature in (udf_signatures or {}).items()
        }
        self.expression_types: dict[int, Optional[SQLType]] = {}
        self.parameter_types: dict[int, SQLType] = {}

    # -- public API ----------------------------------------------------------

    def check(self, statement: ast.Select) -> None:
        """Validate one SELECT; raises :class:`TypeCheckError` on violation."""
        self._check_select(statement, parents=())

    def facts(self, rewritten: ast.Select) -> SemanticFacts:
        """The facts artifact for a statement that passed :meth:`check`."""
        owners: dict[int, str] = {}
        self._collect_owners(rewritten, parents=(), owners=owners)
        return SemanticFacts(
            expression_types=dict(self.expression_types),
            parameter_types=dict(self.parameter_types),
            proven_not_null=schema_proven_not_null(self.schema),
            column_owners=owners,
        )

    # -- frames ---------------------------------------------------------------

    def _table_columns(self, name: str) -> Optional[dict[str, Optional[SQLType]]]:
        if not self.schema.has_table(name):
            return None
        info = self.schema.table(name)
        columns = {key: attribute.sql_type for key, attribute in info.attributes.items()}
        # the invisible ttid column: the rewrite references it, and the
        # physical table carries it, so it resolves (as INTEGER)
        columns.setdefault(info.ttid_column.lower(), SQLType.INTEGER)
        return columns

    def _frame_for(self, select: ast.Select, parents: tuple) -> _Frame:
        frame = _Frame()

        def add_item(item: ast.FromItem) -> None:
            if isinstance(item, ast.TableRef):
                frame.add(item.binding, self._table_columns(item.name))
            elif isinstance(item, ast.SubqueryRef):
                outputs = self._check_select(item.query, parents)
                columns: Optional[dict[str, Optional[SQLType]]]
                if outputs is None:
                    columns = None
                else:
                    columns = {}
                    for name, sql_type in outputs:
                        if name is not None:
                            columns[name.lower()] = sql_type
                frame.add(item.binding, columns)
            elif isinstance(item, ast.Join):
                add_item(item.left)
                add_item(item.right)

        for item in select.from_items:
            add_item(item)
        return frame

    # -- select walk ----------------------------------------------------------

    def _check_select(
        self, select: ast.Select, parents: tuple
    ) -> Optional[list[tuple[Optional[str], Optional[SQLType]]]]:
        """Check one query level; returns its output columns (name, type).

        ``None`` output means the shape is unknown (a ``*`` over a relation
        the schema does not model) — consumers then treat every column of
        the derived table as unknown.
        """
        frame = self._frame_for(select, parents)
        frames = (frame,) + parents

        # join conditions are predicates: boolean, aggregate-free
        def visit_join(item: ast.FromItem) -> None:
            if isinstance(item, ast.Join):
                visit_join(item.left)
                visit_join(item.right)
                if item.condition is not None:
                    self._forbid_aggregates(item.condition, "a join condition")
                    self._check_predicate(item.condition, frames, "a join condition")

        for item in select.from_items:
            visit_join(item)

        if select.where is not None:
            self._forbid_aggregates(select.where, "the WHERE clause")
            self._check_predicate(select.where, frames, "the WHERE clause")

        group_keys: set[str] = set()
        for expr in select.group_by:
            self._forbid_aggregates(expr, "the GROUP BY clause")
            self._infer(expr, frames)
            group_keys.add(_fragment(expr).lower())

        aliases = {
            item.alias.lower() for item in select.items if item.alias is not None
        }
        grouped = bool(select.group_by) or any(
            not isinstance(item.expr, ast.Star) and _contains_aggregate(item.expr)
            for item in select.items
        )

        outputs: Optional[list[tuple[Optional[str], Optional[SQLType]]]] = []
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                outputs = self._expand_star(item.expr, frame, outputs)
                continue
            sql_type = self._infer(item.expr, frames)
            if grouped:
                self._check_grouped(item.expr, group_keys, "the SELECT list")
            if outputs is not None:
                name = item.alias
                if name is None and isinstance(item.expr, ast.Column):
                    name = item.expr.name
                outputs.append((name, sql_type))

        if select.having is not None:
            self._check_predicate(select.having, frames, "the HAVING clause")
            if grouped:
                self._check_grouped(select.having, group_keys, "the HAVING clause")

        for order in select.order_by:
            expr = order.expr
            if (
                isinstance(expr, ast.Column)
                and expr.table is None
                and expr.name.lower() in aliases
            ):
                continue  # references a SELECT-list alias, already checked
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                continue  # positional ORDER BY
            self._infer(expr, frames)
            if grouped:
                self._check_grouped(expr, group_keys, "the ORDER BY clause", aliases)

        return outputs

    def _expand_star(self, star: ast.Star, frame: _Frame, outputs):
        """Fold a ``*`` / ``alias.*`` item into the output column list."""
        if outputs is None:
            return None
        if star.table is not None:
            columns = frame.lookup_binding(star.table)
            if not frame.has_binding(star.table):
                raise _error(f"unknown table or alias {star.table!r}", star)
            if columns is None:
                return None
            outputs.extend(columns.items())
            return outputs
        for _, columns in frame.bindings:
            if columns is None:
                return None
            outputs.extend(columns.items())
        return outputs

    # -- structural rules ------------------------------------------------------

    def _forbid_aggregates(self, expr: Optional[ast.Expression], clause: str) -> None:
        for node in _walk_shallow(expr):
            if isinstance(node, ast.FunctionCall) and node.is_aggregate:
                raise _error(
                    f"aggregate function {node.name.upper()} is not allowed in {clause}",
                    node,
                )

    def _check_grouped(
        self,
        expr: Optional[ast.Expression],
        group_keys: set[str],
        clause: str,
        aliases: frozenset = frozenset(),
    ) -> None:
        """Enforce the placement rule of grouped queries.

        Descent stops at group-key expressions (matched by rendered SQL),
        aggregate calls and sub-queries; any column reference reached past
        those must therefore be grouped.
        """
        if expr is None:
            return
        if _fragment(expr).lower() in group_keys:
            return
        if isinstance(expr, ast.FunctionCall) and expr.is_aggregate:
            return
        if isinstance(expr, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
            return
        if isinstance(expr, ast.Column):
            if expr.table is None and expr.name.lower() in aliases:
                return
            raise _error(
                f"column {expr.qualified} must appear in the GROUP BY clause "
                f"or be used in an aggregate function ({clause})",
                expr,
            )
        for child in _children(expr):
            self._check_grouped(child, group_keys, clause, aliases)

    def _check_predicate(self, expr: ast.Expression, frames: tuple, clause: str) -> None:
        sql_type = self._infer(expr, frames)
        if sql_type is not None and sql_type is not SQLType.BOOLEAN:
            raise _error(
                f"{clause} must be a boolean, not {_type_name(sql_type)}", expr
            )

    # -- column resolution -----------------------------------------------------

    def _resolve_column(self, node: ast.Column, frames: tuple) -> Optional[SQLType]:
        if node.name.startswith("$"):
            return None  # internal rewrite placeholder, never client input
        name = node.name.lower()
        if node.table is not None:
            for frame in frames:
                columns = frame.lookup_binding(node.table)
                if columns is not None:
                    if name in columns:
                        return columns[name]
                    raise _error(
                        f"unknown column {node.qualified}: "
                        f"{node.table!r} has no column {node.name!r}",
                        node,
                    )
                if frame.has_binding(node.table):
                    return None  # relation unknown to the schema: lenient
            raise _error(f"unknown table or alias {node.table!r}", node)
        for frame in frames:
            matches = [
                (binding, columns[name])
                for binding, columns in frame.bindings
                if columns is not None and name in columns
            ]
            if len(matches) > 1:
                owners = ", ".join(sorted(binding for binding, _ in matches))
                raise _error(
                    f"ambiguous column reference {node.name!r}: "
                    f"resolves in bindings {owners}",
                    node,
                )
            if matches:
                return matches[0][1]
            if any(columns is None for _, columns in frame.bindings):
                return None  # could belong to the unknown relation: lenient
        raise _error(f"unknown column {node.name!r}", node)

    # -- type inference --------------------------------------------------------

    def _infer(self, expr: ast.Expression, frames: tuple) -> Optional[SQLType]:
        sql_type = self._infer_inner(expr, frames)
        self.expression_types[id(expr)] = sql_type
        return sql_type

    def _infer_inner(self, expr: ast.Expression, frames: tuple) -> Optional[SQLType]:
        if isinstance(expr, ast.Literal):
            return self._literal_type(expr.value)
        if isinstance(expr, ast.Column):
            return self._resolve_column(expr, frames)
        if isinstance(expr, ast.Parameter):
            return self.parameter_types.get(expr.index)
        if isinstance(expr, ast.Star):
            return None  # only legal inside COUNT(*); the executor enforces
        if isinstance(expr, ast.FunctionCall):
            return self._infer_function(expr, frames)
        if isinstance(expr, ast.BinaryOp):
            return self._infer_binary(expr, frames)
        if isinstance(expr, ast.UnaryOp):
            return self._infer_unary(expr, frames)
        if isinstance(expr, ast.Case):
            return self._infer_case(expr, frames)
        if isinstance(expr, ast.InList):
            expr_type = self._infer(expr.expr, frames)
            for item in expr.items:
                item_type = self._infer(item, frames)
                self._note_parameter(item, expr_type)
                if not comparison_compatible(expr_type, item_type):
                    raise _error(
                        f"cannot compare {_type_name(expr_type)} with "
                        f"{_type_name(item_type)}",
                        expr,
                    )
            self._note_parameter(expr.expr, self._common_type(
                [self.expression_types.get(id(item)) for item in expr.items]
            ))
            return SQLType.BOOLEAN
        if isinstance(expr, ast.InSubquery):
            expr_type = self._infer(expr.expr, frames)
            outputs = self._check_select(expr.query, frames)
            if outputs is not None and len(outputs) == 1:
                sub_type = outputs[0][1]
                self._note_parameter(expr.expr, sub_type)
                if not comparison_compatible(expr_type, sub_type):
                    raise _error(
                        f"cannot compare {_type_name(expr_type)} with "
                        f"{_type_name(sub_type)}",
                        expr,
                    )
            return SQLType.BOOLEAN
        if isinstance(expr, ast.Exists):
            self._check_select(expr.query, frames)
            return SQLType.BOOLEAN
        if isinstance(expr, ast.Between):
            expr_type = self._infer(expr.expr, frames)
            for bound in (expr.low, expr.high):
                bound_type = self._infer(bound, frames)
                self._note_parameter(bound, expr_type)
                if not comparison_compatible(expr_type, bound_type):
                    raise _error(
                        f"cannot compare {_type_name(expr_type)} with "
                        f"{_type_name(bound_type)}",
                        expr,
                    )
            self._note_parameter(expr.expr, self._common_type(
                [self.expression_types.get(id(expr.low)),
                 self.expression_types.get(id(expr.high))]
            ))
            return SQLType.BOOLEAN
        if isinstance(expr, ast.Like):
            expr_type = self._infer(expr.expr, frames)
            pattern_type = self._infer(expr.pattern, frames)
            for side, side_type in ((expr.expr, expr_type), (expr.pattern, pattern_type)):
                if side_type is not None and side_type is not SQLType.VARCHAR:
                    raise _error(
                        f"LIKE requires strings, not {_type_name(side_type)}", expr
                    )
                self._note_parameter(side, SQLType.VARCHAR)
            return SQLType.BOOLEAN
        if isinstance(expr, ast.IsNull):
            self._infer(expr.expr, frames)
            return SQLType.BOOLEAN
        if isinstance(expr, ast.ScalarSubquery):
            outputs = self._check_select(expr.query, frames)
            if outputs is not None and len(outputs) == 1:
                return outputs[0][1]
            return None
        if isinstance(expr, ast.Extract):
            expr_type = self._infer(expr.expr, frames)
            if expr_type is not None and expr_type is not SQLType.DATE:
                raise _error(
                    f"EXTRACT requires a date, not {_type_name(expr_type)}", expr
                )
            return SQLType.INTEGER
        if isinstance(expr, ast.Substring):
            expr_type = self._infer(expr.expr, frames)
            if expr_type is not None and expr_type is not SQLType.VARCHAR:
                raise _error(
                    f"SUBSTRING requires a string, not {_type_name(expr_type)}", expr
                )
            for bound in (expr.start, expr.length):
                if bound is None:
                    continue
                bound_type = self._infer(bound, frames)
                if bound_type is not None and not is_numeric_type(bound_type):
                    raise _error(
                        f"SUBSTRING bounds must be numeric, not "
                        f"{_type_name(bound_type)}",
                        expr,
                    )
            return SQLType.VARCHAR
        return None  # unknown node kind: stay lenient

    @staticmethod
    def _literal_type(value) -> Optional[SQLType]:
        if isinstance(value, bool):
            return SQLType.BOOLEAN
        if isinstance(value, int):
            return SQLType.INTEGER
        if isinstance(value, float):
            return SQLType.DECIMAL
        if isinstance(value, Date):
            return SQLType.DATE
        if isinstance(value, str):
            return SQLType.VARCHAR
        return None  # NULL, intervals, ... carry no comparable static type

    @staticmethod
    def _common_type(types: list) -> Optional[SQLType]:
        known = [sql_type for sql_type in types if sql_type is not None]
        if not known:
            return None
        first = known[0]
        if all(sql_type is first for sql_type in known):
            return first
        if all(is_numeric_type(sql_type) for sql_type in known):
            result = known[0]
            for sql_type in known[1:]:
                result = arithmetic_result(result, sql_type)
            return result
        return None

    def _note_parameter(self, expr: ast.Expression, sql_type: Optional[SQLType]) -> None:
        """Record the type a comparison context implies for a parameter slot."""
        if not isinstance(expr, ast.Parameter) or sql_type is None:
            return
        existing = self.parameter_types.get(expr.index)
        if existing is None:
            self.parameter_types[expr.index] = sql_type
        elif not comparison_compatible(existing, sql_type):
            raise _error(
                f"parameter {expr.index} is used as both "
                f"{_type_name(existing)} and {_type_name(sql_type)}",
                expr,
            )

    def _infer_function(self, expr: ast.FunctionCall, frames: tuple) -> Optional[SQLType]:
        name = expr.name.upper()
        if expr.is_aggregate:
            for arg in expr.args:
                self._forbid_nested_aggregates(arg)
            arg_types = [
                self._infer(arg, frames)
                for arg in expr.args
                if not isinstance(arg, ast.Star)
            ]
            if name == "COUNT":
                return SQLType.INTEGER
            if len(expr.args) != 1:
                raise _error(
                    f"{name} takes exactly one argument, got {len(expr.args)}", expr
                )
            arg_type = arg_types[0] if arg_types else None
            if name in ("SUM", "AVG"):
                if arg_type is not None and not is_numeric_type(arg_type):
                    raise _error(
                        f"{name} requires a numeric argument, not "
                        f"{_type_name(arg_type)}",
                        expr,
                    )
                return SQLType.DECIMAL if name == "AVG" else arg_type
            return arg_type  # MIN/MAX preserve the argument type
        arg_types = [self._infer(arg, frames) for arg in expr.args]
        signature = self.udf_signatures.get(expr.name.lower())
        if signature is None:
            return None  # not declared through CREATE FUNCTION: unchecked
        if len(expr.args) != len(signature.arg_types):
            raise _error(
                f"function {expr.name} takes {len(signature.arg_types)} "
                f"argument(s), got {len(expr.args)}",
                expr,
            )
        for position, (arg, declared) in enumerate(
            zip(expr.args, signature.arg_types), start=1
        ):
            actual = arg_types[position - 1]
            self._note_parameter(arg, declared)
            if not comparison_compatible(declared, actual):
                raise _error(
                    f"argument {position} of {expr.name} expects "
                    f"{_type_name(declared)}, got {_type_name(actual)}",
                    expr,
                )
        return signature.return_type

    def _forbid_nested_aggregates(self, expr: ast.Expression) -> None:
        for node in _walk_shallow(expr):
            if isinstance(node, ast.FunctionCall) and node.is_aggregate:
                raise _error(
                    f"aggregate function {node.name.upper()} cannot be nested "
                    f"inside another aggregate",
                    node,
                )

    def _infer_binary(self, expr: ast.BinaryOp, frames: tuple) -> Optional[SQLType]:
        op = expr.op.upper()
        left_type = self._infer(expr.left, frames)
        right_type = self._infer(expr.right, frames)
        if op in ("AND", "OR"):
            for side, side_type in ((expr.left, left_type), (expr.right, right_type)):
                if side_type is not None and side_type is not SQLType.BOOLEAN:
                    raise _error(
                        f"argument of {op} must be a boolean, not "
                        f"{_type_name(side_type)}",
                        side,
                    )
            return SQLType.BOOLEAN
        if op in _COMPARISONS:
            self._note_parameter(expr.left, right_type)
            self._note_parameter(expr.right, left_type)
            if not comparison_compatible(left_type, right_type):
                raise _error(
                    f"cannot compare {_type_name(left_type)} with "
                    f"{_type_name(right_type)}",
                    expr,
                )
            return SQLType.BOOLEAN
        if op == "||":
            for side_type in (left_type, right_type):
                if side_type is not None and side_type is not SQLType.VARCHAR:
                    raise _error(
                        f"|| requires strings, not {_type_name(side_type)}", expr
                    )
            return SQLType.VARCHAR
        if op in _ARITHMETIC:
            return self._infer_arithmetic(expr, left_type, right_type)
        return None

    def _infer_arithmetic(
        self,
        expr: ast.BinaryOp,
        left_type: Optional[SQLType],
        right_type: Optional[SQLType],
    ) -> Optional[SQLType]:
        op = expr.op
        left_interval = self._is_interval(expr.left)
        right_interval = self._is_interval(expr.right)
        if left_type is SQLType.DATE or right_type is SQLType.DATE:
            if op == "-" and left_type is SQLType.DATE and right_type is SQLType.DATE:
                return SQLType.INTEGER  # day difference
            if op in ("+", "-") and left_type is SQLType.DATE:
                if right_interval or right_type is None:
                    return SQLType.DATE
            if op == "+" and right_type is SQLType.DATE:
                if left_interval or left_type is None:
                    return SQLType.DATE
            other = right_type if left_type is SQLType.DATE else left_type
            raise _error(
                f"cannot apply {op!r} to DATE and {_type_name(other)}", expr
            )
        if left_interval or right_interval:
            return None  # interval arithmetic against unknown types: lenient
        for side_type in (left_type, right_type):
            if side_type is not None and not is_numeric_type(side_type):
                raise _error(
                    f"invalid operand to {op!r}: {_type_name(side_type)} "
                    f"is not numeric",
                    expr,
                )
        return arithmetic_result(left_type, right_type)

    @staticmethod
    def _is_interval(expr: ast.Expression) -> bool:
        return isinstance(expr, ast.Literal) and isinstance(expr.value, Interval)

    def _infer_unary(self, expr: ast.UnaryOp, frames: tuple) -> Optional[SQLType]:
        operand_type = self._infer(expr.operand, frames)
        if expr.op.upper() == "NOT":
            if operand_type is not None and operand_type is not SQLType.BOOLEAN:
                raise _error(
                    f"argument of NOT must be a boolean, not "
                    f"{_type_name(operand_type)}",
                    expr,
                )
            return SQLType.BOOLEAN
        if operand_type is not None and not is_numeric_type(operand_type):
            raise _error(
                f"invalid operand to unary {expr.op!r}: "
                f"{_type_name(operand_type)} is not numeric",
                expr,
            )
        return operand_type

    def _infer_case(self, expr: ast.Case, frames: tuple) -> Optional[SQLType]:
        result_types = []
        for when in expr.whens:
            condition_type = self._infer(when.condition, frames)
            if condition_type is not None and condition_type is not SQLType.BOOLEAN:
                raise _error(
                    f"CASE WHEN condition must be a boolean, not "
                    f"{_type_name(condition_type)}",
                    when.condition,
                )
            result_types.append(self._infer(when.result, frames))
        if expr.else_result is not None:
            result_types.append(self._infer(expr.else_result, frames))
        return self._common_type(result_types)

    # -- column provenance over the rewritten statement ------------------------

    def _collect_owners(
        self, select: ast.Select, parents: tuple, owners: dict[int, str]
    ) -> None:
        """Tolerantly map each column of a (rewritten) select to its binding.

        Never raises: the rewritten statement already passed the canonical
        rewrite, and unknown relations simply leave their columns unmapped
        (the shardability analysis then falls back to its heuristic).
        """
        frame = _Frame()

        def add_item(item: ast.FromItem) -> None:
            if isinstance(item, ast.TableRef):
                frame.add(item.binding, self._table_columns(item.name))
            elif isinstance(item, ast.SubqueryRef):
                self._collect_owners(item.query, parents, owners)
                frame.add(item.binding, None)
            elif isinstance(item, ast.Join):
                add_item(item.left)
                add_item(item.right)

        for item in select.from_items:
            add_item(item)
        frames = (frame,) + parents

        def visit(expr: Optional[ast.Expression]) -> None:
            if expr is None:
                return
            for node in _walk_shallow(expr):
                if isinstance(node, ast.Column):
                    self._record_owner(node, frames, owners)
                elif isinstance(node, (ast.ScalarSubquery, ast.Exists)):
                    self._collect_owners(node.query, frames, owners)
                elif isinstance(node, ast.InSubquery):
                    self._collect_owners(node.query, frames, owners)

        def visit_join(item: ast.FromItem) -> None:
            if isinstance(item, ast.Join):
                visit_join(item.left)
                visit_join(item.right)
                visit(item.condition)

        for item in select.from_items:
            visit_join(item)
        for item in select.items:
            if not isinstance(item.expr, ast.Star):
                visit(item.expr)
        visit(select.where)
        for expr in select.group_by:
            visit(expr)
        visit(select.having)
        for order in select.order_by:
            visit(order.expr)

    @staticmethod
    def _record_owner(node: ast.Column, frames: tuple, owners: dict[int, str]) -> None:
        if node.name.startswith("$"):
            return
        name = node.name.lower()
        if node.table is not None:
            table = node.table.lower()
            for frame in frames:
                if frame.has_binding(table):
                    owners[id(node)] = table
                    return
            return
        for frame in frames:
            matches = [
                binding
                for binding, columns in frame.bindings
                if columns is not None and name in columns
            ]
            if len(matches) == 1 and not any(
                columns is None for _, columns in frame.bindings
            ):
                owners[id(node)] = matches[0]
                return
            if matches or any(columns is None for _, columns in frame.bindings):
                return  # ambiguous or possibly from an unknown relation
