"""Static shardability / tenant-local-key analysis of rewritten queries.

One statement, one analysis: :class:`ShardabilityAnalyzer` walks a rewritten
(plain-SQL) ``SELECT`` once against a :class:`ClusterCatalog` of partitioning
facts and produces a :class:`QueryAnalysis` — the artifact the distributed
planner (:mod:`repro.cluster.planner`) consumes instead of re-walking the
AST.  The compiler (:mod:`repro.compile.compiler`) runs the analyzer as the
last stage of every compilation, deriving the catalog from the middleware's
MT schema (tenant-specific tables are the partitioned ones, their ``SPECIFIC``
attributes the tenant-local keys); a sharded backend runs the same analyzer
against its own DDL-derived catalog when it receives a bare statement.

**Soundness.**  The scatter-gather strategies require that every
pre-aggregation row is produced by exactly one shard.  The analyzer proves
this from the catalog: a FROM clause is *anchored* when it joins at least one
partitioned table (or a shard-local derived table) and global tables;
sub-queries must be *shard-local* — either global-only, or grouped/DISTINCT
on a tenant-specific key column, whose groups therefore never span shards.
Joins between two partitioned tables are assumed co-located (MTBase extends
global referential integrity with the ttid, Appendix A.1); queries that join
partitioned rows of *different* tenants on non-key attributes must disable
scatter-gather (see :class:`repro.backends.sharded.ShardedBackend`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sql import ast
from ..sql.transform import (
    iter_select_expressions,
    referenced_table_names,
    select_aggregate_calls,
    walk_expression,
)

# ---------------------------------------------------------------------------
# Partitioning catalog
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PartitionInfo:
    """How one table is partitioned across a cluster.

    ``local_keys`` are the lower-cased columns whose values never span
    tenants — the ttid column itself plus the table's tenant-specific (MTSQL
    ``SPECIFIC``) attributes.  Grouping by any of them keeps every group on a
    single shard, which is what makes nested aggregation decomposable.
    """

    table: str
    ttid_column: str
    local_keys: frozenset[str] = frozenset()

    @property
    def key(self) -> str:
        """Lower-cased catalog key."""
        return self.table.lower()

    def all_local_keys(self) -> frozenset[str]:
        """The local keys including the ttid column itself."""
        return self.local_keys | {self.ttid_column.lower()}


@dataclass
class ClusterCatalog:
    """The partitioning facts one analysis runs against.

    Two producers build catalogs: the query compiler derives one from the
    middleware's MT schema, and a sharded backend maintains one from the DDL
    it broadcasts.  ``version`` is bumped by every mutator, so consumers that
    memoize per-catalog artifacts (the sharded backend's per-statement plan
    cache) can detect staleness cheaply.
    """

    #: partitioned tables by lower-cased name
    partitioned: dict[str, PartitionInfo] = field(default_factory=dict)
    #: every base table created on the cluster (lower-cased)
    relations: set[str] = field(default_factory=set)
    #: every view created on the cluster (lower-cased)
    views: set[str] = field(default_factory=set)
    #: bumped on every mutation (plan-memo staleness token)
    version: int = 0

    # -- queries --------------------------------------------------------------

    def is_partitioned(self, name: str) -> bool:
        """Whether ``name`` is a tenant-partitioned base table."""
        return name.lower() in self.partitioned

    def is_replicated_table(self, name: str) -> bool:
        """Whether ``name`` is a known base table replicated on every shard."""
        lowered = name.lower()
        return lowered in self.relations and lowered not in self.partitioned

    # -- mutators (bump the version) -------------------------------------------

    def add_relation(self, name: str) -> None:
        """Record a base table."""
        self.relations.add(name.lower())
        self.version += 1

    def drop_relation(self, name: str) -> None:
        """Forget a base table (and its partitioning, if any)."""
        lowered = name.lower()
        self.relations.discard(lowered)
        self.partitioned.pop(lowered, None)
        self.version += 1

    def add_view(self, name: str) -> None:
        """Record a view."""
        self.views.add(name.lower())
        self.version += 1

    def drop_view(self, name: str) -> None:
        """Forget a view."""
        self.views.discard(name.lower())
        self.version += 1

    def set_partitioned(self, info: PartitionInfo) -> None:
        """Record (or update) the partitioning of one table."""
        self.partitioned[info.key] = info
        self.version += 1


# ---------------------------------------------------------------------------
# Analysis artifacts
# ---------------------------------------------------------------------------


@dataclass
class StreamInfo:
    """Result of analysing one SELECT's FROM/WHERE row stream.

    ``ok`` — every FROM item and nested sub-query is shard-local by the rules
    above; ``anchored`` — the stream joins at least one partitioned source
    (an un-anchored stream is replicated, not partitioned); ``bindings`` maps
    each FROM binding to its tenant-local key columns.
    """

    ok: bool
    anchored: bool
    bindings: dict[str, frozenset[str]] = field(default_factory=dict)


@dataclass(frozen=True)
class QueryAnalysis:
    """The per-statement shardability verdict carried by a CompiledQuery.

    All table names are lower-cased.  ``partition_safe`` is the headline
    verdict: the statement's pre-aggregation rows provably partition across
    shards (``StreamInfo.ok and StreamInfo.anchored``), so the decomposed
    scatter-gather strategies are sound.  ``local_keys`` is the tenant-local
    key analysis of the top-level FROM bindings (binding name → columns whose
    values never span tenants).
    """

    #: every relation name the statement references
    tables: tuple[str, ...]
    #: referenced names present in the catalog's relations
    known: tuple[str, ...]
    #: referenced tenant-partitioned tables
    partitioned: tuple[str, ...]
    #: referenced names absent from the catalog's relations — views resolve
    #: here (consumers decide view-ness against their own catalog's views)
    unknown: tuple[str, ...]
    #: pre-aggregation rows provably partition by shard
    partition_safe: bool
    #: the statement aggregates (GROUP BY or aggregate calls)
    has_aggregation: bool
    #: tenant-local key columns per top-level FROM binding
    local_keys: dict[str, frozenset[str]] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Analyzer
# ---------------------------------------------------------------------------


class ShardabilityAnalyzer:
    """Analyses rewritten SELECT statements against a partitioning catalog.

    ``column_owners`` is the static analyzer's provenance map (``id(Column
    node) -> owning FROM binding``, see :mod:`repro.compile.typecheck`): when
    provided, unqualified column references resolve through it instead of the
    any-binding heuristic, so a column name shared by a partitioned and a
    replicated table is attributed to the binding that actually owns it.
    """

    def __init__(
        self,
        catalog: ClusterCatalog,
        column_owners: Optional[dict[int, str]] = None,
    ) -> None:
        self.catalog = catalog
        self.column_owners = column_owners or {}

    # -- entry points ----------------------------------------------------------

    def analyze(self, select: ast.Select) -> QueryAnalysis:
        """One full walk of ``select``, summarized as a :class:`QueryAnalysis`."""
        tables = referenced_table_names(select)
        known = {name for name in tables if name in self.catalog.relations}
        unknown = tables - known
        partitioned = {name for name in tables if name in self.catalog.partitioned}
        info = self.stream_info(select)
        has_aggregation = bool(select.group_by) or bool(select_aggregate_calls(select))
        return QueryAnalysis(
            tables=tuple(sorted(tables)),
            known=tuple(sorted(known)),
            partitioned=tuple(sorted(partitioned)),
            unknown=tuple(sorted(unknown)),
            partition_safe=info.ok and info.anchored,
            has_aggregation=has_aggregation,
            local_keys=dict(info.bindings),
        )

    def stream_info(self, select: ast.Select) -> StreamInfo:
        """Analyse whether a SELECT's pre-aggregation rows partition by shard."""
        bindings: dict[str, frozenset[str]] = {}
        anchored = False
        for item in select.from_items:
            item_ok, item_anchored = self._from_item_info(item, bindings)
            if not item_ok:
                return StreamInfo(ok=False, anchored=False)
            anchored = anchored or item_anchored
        for expr in iter_select_expressions(select):
            if not self._expression_subqueries_ok(expr, bindings):
                return StreamInfo(ok=False, anchored=False)
        return StreamInfo(ok=True, anchored=anchored, bindings=bindings)

    # -- row-partitioning analysis -------------------------------------------

    def _from_item_info(
        self, item: ast.FromItem, bindings: dict[str, frozenset[str]]
    ) -> tuple[bool, bool]:
        """Register a FROM item's bindings; returns ``(ok, anchored)``."""
        if isinstance(item, ast.TableRef):
            lowered = item.name.lower()
            binding = (item.alias or item.name).lower()
            if lowered in self.catalog.partitioned:
                bindings[binding] = self.catalog.partitioned[lowered].all_local_keys()
                return True, True
            if self.catalog.is_replicated_table(lowered):
                bindings[binding] = frozenset()
                return True, False
            return False, False  # view / unknown relation
        if isinstance(item, ast.SubqueryRef):
            shape, local_out = self._select_shape(item.query)
            if shape == "opaque":
                return False, False
            bindings[item.alias.lower()] = local_out
            return True, shape in ("stream", "grouped")
        if isinstance(item, ast.Join):
            left_ok, left_anchored = self._from_item_info(item.left, bindings)
            right_ok, right_anchored = self._from_item_info(item.right, bindings)
            if not (left_ok and right_ok):
                return False, False
            if item.join_type is ast.JoinType.LEFT and right_anchored and not left_anchored:
                # a replicated left side would be NULL-extended on every
                # shard, duplicating its rows across the union
                return False, False
            return True, left_anchored or right_anchored
        return False, False

    def _select_shape(self, select: ast.Select) -> tuple[str, frozenset[str]]:
        """Classify a sub-query: ``global`` (replicated result), ``stream`` /
        ``grouped`` (result rows partition by shard) or ``opaque``."""
        tables = referenced_table_names(select)
        if any(name not in self.catalog.relations for name in tables):
            return "opaque", frozenset()
        if not any(name in self.catalog.partitioned for name in tables):
            return "global", frozenset()

        info = self.stream_info(select)
        if not info.ok or not info.anchored:
            return "opaque", frozenset()
        if select.limit is not None:
            # a per-shard LIMIT is not the global LIMIT
            return "opaque", frozenset()

        aggregates = select_aggregate_calls(select)
        if select.group_by:
            if not any(
                self._is_local_key(expr, info.bindings) for expr in select.group_by
            ):
                return "opaque", frozenset()
            shape = "grouped"
        elif aggregates:
            return "opaque", frozenset()  # a global aggregate needs all shards
        elif select.distinct:
            if not any(
                self._is_local_key(item.expr, info.bindings) for item in select.items
            ):
                return "opaque", frozenset()
            shape = "grouped"
        else:
            shape = "stream"
        return shape, self._local_output_keys(select, info.bindings)

    def _local_output_keys(
        self, select: ast.Select, bindings: dict[str, frozenset[str]]
    ) -> frozenset[str]:
        """Output columns of a sub-query that pass a local key through."""
        keys = set()
        for item in select.items:
            if self._is_local_key(item.expr, bindings):
                name = item.alias or item.expr.name  # type: ignore[union-attr]
                keys.add(name.lower())
        return frozenset(keys)

    def _is_local_key(
        self, expr: ast.Expression, bindings: dict[str, frozenset[str]]
    ) -> bool:
        """Whether an expression is a column whose values never span shards."""
        if not isinstance(expr, ast.Column):
            return False
        name = expr.name.lower()
        if expr.table is not None:
            return name in bindings.get(expr.table.lower(), frozenset())
        owner = self.column_owners.get(id(expr))
        if owner is not None:
            # provenance proven by the static analyzer: resolve against the
            # owning binding only (it may not appear in ``bindings`` when the
            # owner is a sibling level's binding — then the key is not local)
            return name in bindings.get(owner, frozenset())
        return any(name in keys for keys in bindings.values())

    def _expression_subqueries_ok(
        self, expr: ast.Expression, bindings: dict[str, frozenset[str]]
    ) -> bool:
        """Check the sub-queries nested inside one expression tree."""
        for node in walk_expression(expr):
            if isinstance(node, (ast.ScalarSubquery, ast.Exists)):
                # must yield the same value/verdict on every shard
                if self._select_shape(node.query)[0] != "global":
                    return False
            elif isinstance(node, ast.InSubquery):
                if not self._in_subquery_ok(node, bindings):
                    return False
        return True

    def _in_subquery_ok(
        self, node: ast.InSubquery, bindings: dict[str, frozenset[str]]
    ) -> bool:
        """A membership test decomposes when probe and members are co-located.

        Either the sub-query is global (identical member set everywhere), or
        both sides are tenant-local keys: the probed rows and the member rows
        then live on the same shard, so the per-shard verdict is the global
        verdict.
        """
        shape, local_out = self._select_shape(node.query)
        if shape == "global":
            return True
        if shape == "opaque":
            return False
        if len(node.query.items) != 1:
            return False
        item = node.query.items[0]
        member = (item.alias or getattr(item.expr, "name", "")).lower()
        if member not in local_out:
            return False
        return self._is_local_key(node.expr, bindings)
