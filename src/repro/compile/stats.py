"""Table and column statistics backing the cost-based planner.

Every backend that wants costed plans implements
``BackendConnection.collect_statistics()`` by scanning its base tables into a
:class:`StatisticsCatalog`: per table a row count and per-tenant row skew,
per column the number of distinct values (NDV), min/max bounds, a null count
and — while the domain is small — the exact distinct-value set.  Collection
happens once at load time (:func:`repro.mth.loader.load_mth` collects after
bulk load) and is refreshed lazily when a table has absorbed enough DML
(:class:`RefreshPolicy`), so steady-state query planning never rescans.

Two structural facts make the sharded story exact rather than approximate:

* partitioned tables are disjoint across shards, so row counts, null counts
  and per-tenant counts merge by addition, min/max by comparison, and NDV by
  set union while the distinct sets are retained (only once a column's
  domain outgrows :data:`DISTINCT_CAP` does the merge degrade to a summed
  upper bound, flagged ``exact=False``);
* replicated (global) tables are identical on every shard, so the merge
  takes any one shard's statistics verbatim.

The cost model (:mod:`repro.compile.cost`) is the only consumer; it treats a
missing table or column as "no information" and falls back to magic-constant
selectivities, so statistics are always an optimization and never a
correctness dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

#: columns whose distinct-value set is at most this large keep the exact set,
#: making NDV merges across shards exact (union) instead of a summed bound
DISTINCT_CAP = 1024


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column of one table.

    ``values`` is the exact distinct-value set when the domain fit under the
    collection cap, else ``None``; ``exact`` records whether ``ndv`` is exact
    (always true at collection, possibly false after a capped merge).
    """

    name: str
    ndv: int
    null_count: int = 0
    min_value: object = None
    max_value: object = None
    values: Optional[frozenset] = None
    exact: bool = True

    def merged(self, other: "ColumnStats") -> "ColumnStats":
        """Combine with the same column's statistics from a disjoint partition."""
        if self.values is not None and other.values is not None:
            union = self.values | other.values
            if len(union) <= DISTINCT_CAP:
                return ColumnStats(
                    name=self.name,
                    ndv=len(union),
                    null_count=self.null_count + other.null_count,
                    min_value=_merge_bound(self.min_value, other.min_value, min),
                    max_value=_merge_bound(self.max_value, other.max_value, max),
                    values=frozenset(union),
                    exact=self.exact and other.exact,
                )
        return ColumnStats(
            name=self.name,
            ndv=self.ndv + other.ndv,
            null_count=self.null_count + other.null_count,
            min_value=_merge_bound(self.min_value, other.min_value, min),
            max_value=_merge_bound(self.max_value, other.max_value, max),
            values=None,
            exact=False,
        )


@dataclass(frozen=True)
class TableStats:
    """Statistics for one base table.

    ``tenant_rows`` maps ttid to that tenant's row count (empty for tables
    with no registered tenant column); ``columns`` maps lower-cased column
    name to its :class:`ColumnStats`.
    """

    name: str
    row_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    tenant_rows: dict[object, int] = field(default_factory=dict)
    ttid_column: Optional[str] = None

    def column(self, name: str) -> Optional[ColumnStats]:
        """The statistics of one column (case-insensitive), if collected."""
        return self.columns.get(name.lower())

    def merged(self, other: "TableStats") -> "TableStats":
        """Combine with the same table's statistics from a disjoint partition."""
        tenant_rows = dict(self.tenant_rows)
        for ttid, count in other.tenant_rows.items():
            tenant_rows[ttid] = tenant_rows.get(ttid, 0) + count
        columns = {
            key: (
                stats.merged(other.columns[key]) if key in other.columns else stats
            )
            for key, stats in self.columns.items()
        }
        for key, stats in other.columns.items():
            columns.setdefault(key, stats)
        return TableStats(
            name=self.name,
            row_count=self.row_count + other.row_count,
            columns=columns,
            tenant_rows=tenant_rows,
            ttid_column=self.ttid_column or other.ttid_column,
        )


@dataclass
class StatisticsCatalog:
    """All collected table statistics of one backend (or one merged cluster).

    ``version`` bumps on every replace/drop so consumers can cheaply detect
    that estimates may have shifted; correctness never depends on freshness.
    """

    tables: dict[str, TableStats] = field(default_factory=dict)
    version: int = 0

    def table(self, name: str) -> Optional[TableStats]:
        """The statistics of one table (case-insensitive), if collected."""
        return self.tables.get(name.lower())

    def put(self, stats: TableStats) -> None:
        """Install (or replace) one table's statistics."""
        self.tables[stats.name.lower()] = stats
        self.version += 1

    def drop(self, name: str) -> None:
        """Forget one table's statistics (table dropped or fully stale)."""
        if self.tables.pop(name.lower(), None) is not None:
            self.version += 1


@dataclass(frozen=True)
class RefreshPolicy:
    """When accumulated DML makes a table's statistics stale.

    A table is stale after ``max(min_mutations, fraction * row_count)``
    mutated rows — the absolute floor keeps tiny tables from recollecting on
    every insert, the fraction keeps big tables from drifting unboundedly.
    """

    min_mutations: int = 64
    fraction: float = 0.1

    def is_stale(self, stats: Optional[TableStats], mutations: int) -> bool:
        """Whether ``mutations`` mutated rows since collection demand a refresh."""
        if stats is None:
            return True
        threshold = max(self.min_mutations, self.fraction * stats.row_count)
        return mutations >= threshold


def collect_table_stats(
    name: str,
    columns: Sequence[str],
    rows: Iterable[Sequence],
    ttid_column: Optional[str] = None,
    cap: int = DISTINCT_CAP,
) -> TableStats:
    """Scan ``rows`` once into a :class:`TableStats`.

    ``columns`` gives the row layout; ``ttid_column`` (when the table is
    tenant-partitioned) selects the column whose value histogram becomes
    ``tenant_rows``.  NDV is computed exactly; the distinct set is retained
    on the result only while it fits under ``cap``.
    """
    distinct: list[set] = [set() for _ in columns]
    nulls = [0 for _ in columns]
    mins: list[object] = [None for _ in columns]
    maxs: list[object] = [None for _ in columns]
    tenant_rows: dict[object, int] = {}
    ttid_index = None
    if ttid_column is not None:
        lowered = [column.lower() for column in columns]
        if ttid_column.lower() in lowered:
            ttid_index = lowered.index(ttid_column.lower())

    row_count = 0
    for row in rows:
        row_count += 1
        if ttid_index is not None:
            ttid = row[ttid_index]
            tenant_rows[ttid] = tenant_rows.get(ttid, 0) + 1
        for index, value in enumerate(row):
            if value is None:
                nulls[index] += 1
                continue
            distinct[index].add(value)
            low, high = mins[index], maxs[index]
            try:
                if low is None or value < low:
                    mins[index] = value
                if high is None or value > high:
                    maxs[index] = value
            except TypeError:  # mixed un-comparable types: keep no bounds
                mins[index] = None
                maxs[index] = None

    column_stats = {
        column.lower(): ColumnStats(
            name=column.lower(),
            ndv=len(distinct[index]),
            null_count=nulls[index],
            min_value=mins[index],
            max_value=maxs[index],
            values=frozenset(distinct[index]) if len(distinct[index]) <= cap else None,
            exact=True,
        )
        for index, column in enumerate(columns)
    }
    return TableStats(
        name=name.lower(),
        row_count=row_count,
        columns=column_stats,
        tenant_rows=tenant_rows,
        ttid_column=ttid_column.lower() if ttid_index is not None else None,
    )


def merge_catalogs(
    catalogs: Sequence[StatisticsCatalog],
    replicated: frozenset[str] = frozenset(),
) -> StatisticsCatalog:
    """Merge per-shard catalogs into one cluster-wide catalog.

    Tables named in ``replicated`` are identical on every shard, so the first
    shard's statistics are taken verbatim; all other tables are treated as
    disjoint partitions and merged additively.
    """
    merged = StatisticsCatalog()
    for catalog in catalogs:
        for key, stats in catalog.tables.items():
            existing = merged.tables.get(key)
            if existing is None:
                merged.tables[key] = stats
            elif key not in replicated:
                merged.tables[key] = existing.merged(stats)
    merged.version = sum(catalog.version for catalog in catalogs)
    return merged


def _merge_bound(left: object, right: object, pick) -> object:
    if left is None:
        return right
    if right is None:
        return left
    try:
        return pick(left, right)
    except TypeError:
        return None
