"""The cost model: selectivity estimation, plan estimates, federated pushdown.

This module turns the statistics of :mod:`repro.compile.stats` into planning
decisions.  It has three consumers:

* the **engine planner** (:mod:`repro.engine.planner`) asks for filtered
  cardinality estimates to order comma-joins smallest-first and to pick the
  next join partner by estimated join output instead of query text order;
* the **cluster planner** (:mod:`repro.cluster.planner`) asks
  :func:`derive_table_prefilters` / :func:`derive_pull_columns` which
  predicates and projections can soundly be pushed into the per-shard pull
  queries of a federated plan, and uses estimated selectivities to make the
  costed keep-or-drop choice per pushed filter;
* **EXPLAIN** renders the :class:`PlanEstimate` tree built by
  :func:`estimate_select`, and ``explain(analyze=True)`` reports estimated
  vs. actual result rows.

Everything here is *advisory*: a wrong estimate can pick a slower plan but
never a wrong answer.  The only soundness-critical code is the prefilter
derivation, whose rule is spelled out on :func:`derive_table_prefilters` —
every pushed predicate must be provably implied for **every** occurrence of
the table in the statement, because the scratch backend holds one copy of
the table serving all occurrences.

The ``REPRO_COMPILE_COST`` environment knob (``1`` default, ``0`` = off)
disables every costed decision at once, restoring the structural planner —
the differential oracle the costed plans are tested against.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from ..errors import ConfigurationError
from ..sql import ast
from ..sql.transform import (
    transform_expression,
    walk_expression,
    walk_selects,
)
from .analysis import ClusterCatalog
from .stats import StatisticsCatalog, TableStats

#: cardinality assumed for a table with no collected statistics
DEFAULT_TABLE_ROWS = 1000.0
#: selectivity of a predicate the model cannot classify
DEFAULT_SELECTIVITY = 1.0 / 3.0
#: selectivity of a membership test against an unestimated sub-query
SUBQUERY_SELECTIVITY = 0.3
#: selectivity of a LIKE against a prefix pattern / an infix pattern
LIKE_PREFIX_SELECTIVITY = 0.1
LIKE_INFIX_SELECTIVITY = 0.25


def env_cost(default: bool = True) -> bool:
    """Cost-model override via ``REPRO_COMPILE_COST`` (``0`` or ``1``).

    Anything other than the two literal flags raises
    :class:`~repro.errors.ConfigurationError` — a differential run that
    silently fell back to the default would compare a planner against
    itself.
    """
    value = os.environ.get("REPRO_COMPILE_COST", "").strip()
    if not value:
        return default
    if value == "1":
        return True
    if value == "0":
        return False
    raise ConfigurationError(
        f"the REPRO_COMPILE_COST environment variable must be '0' or '1' "
        f"(got {value!r})"
    )


@dataclass(frozen=True)
class CostConfig:
    """The cost model's tunables.

    ``enabled`` gates every costed decision; ``prefilter_max_selectivity``
    is the keep-or-drop threshold for a derived federated prefilter — a
    filter estimated to keep more than this fraction of the table is not
    worth the per-shard evaluation and is dropped.
    """

    enabled: bool = True
    prefilter_max_selectivity: float = 0.95

    @classmethod
    def from_env(cls, **overrides) -> "CostConfig":
        """Build a config from ``REPRO_COMPILE_COST``; overrides win."""
        values = {"enabled": env_cost()}
        values.update(overrides)
        return cls(**values)


# ---------------------------------------------------------------------------
# Selectivity estimation
# ---------------------------------------------------------------------------


def predicate_selectivity(
    expr: Optional[ast.Expression],
    stats: Optional[TableStats],
    proven_not_null: Optional[frozenset] = None,
) -> float:
    """Estimated fraction of a table's rows satisfying ``expr``.

    ``expr`` is assumed to reference columns of the single table described
    by ``stats`` (qualifiers are ignored); with ``stats=None`` every leaf
    predicate gets a magic-constant selectivity.  ``proven_not_null`` is
    the set of lower-cased column names the static analyzer proved never
    NULL (see :mod:`repro.compile.typecheck`) — ``IS NULL`` tests on those
    columns are exact (0 or 1), not estimated.  The result is clamped to
    ``[0, 1]``.
    """
    return max(0.0, min(1.0, _selectivity(expr, stats, proven_not_null)))


def _selectivity(
    expr: Optional[ast.Expression],
    stats: Optional[TableStats],
    proven: Optional[frozenset] = None,
) -> float:
    if expr is None:
        return 1.0
    if isinstance(expr, ast.BinaryOp):
        op = expr.op.upper()
        if op == "AND":
            return _selectivity(expr.left, stats, proven) * _selectivity(
                expr.right, stats, proven
            )
        if op == "OR":
            left = _selectivity(expr.left, stats, proven)
            right = _selectivity(expr.right, stats, proven)
            return left + right - left * right
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return _comparison_selectivity(expr, stats)
        return DEFAULT_SELECTIVITY
    if isinstance(expr, ast.UnaryOp) and expr.op.upper() == "NOT":
        return 1.0 - _selectivity(expr.operand, stats, proven)
    if isinstance(expr, ast.Between):
        low = _comparison_parts(expr.expr, expr.low, ">=", stats)
        high = _comparison_parts(expr.expr, expr.high, "<=", stats)
        # the inclusion-exclusion overlap is only meaningful for interpolated
        # fractions; two magic-constant sides would cancel to zero
        if low == DEFAULT_SELECTIVITY and high == DEFAULT_SELECTIVITY:
            combined = DEFAULT_SELECTIVITY
        else:
            combined = max(0.0, low + high - 1.0)
        return 1.0 - combined if expr.negated else combined
    if isinstance(expr, ast.InList):
        return _in_list_selectivity(expr, stats)
    if isinstance(expr, ast.InSubquery):
        return 1.0 - SUBQUERY_SELECTIVITY if expr.negated else SUBQUERY_SELECTIVITY
    if isinstance(expr, ast.Exists):
        return 0.5
    if isinstance(expr, ast.Like):
        pattern = expr.pattern
        if isinstance(pattern, ast.Literal) and isinstance(pattern.value, str):
            prefixed = not pattern.value.startswith(("%", "_"))
            chosen = LIKE_PREFIX_SELECTIVITY if prefixed else LIKE_INFIX_SELECTIVITY
        else:
            chosen = LIKE_INFIX_SELECTIVITY
        return 1.0 - chosen if expr.negated else chosen
    if isinstance(expr, ast.IsNull):
        fraction = _null_fraction(expr.expr, stats, proven)
        return 1.0 - fraction if expr.negated else fraction
    return DEFAULT_SELECTIVITY


def _comparison_selectivity(expr: ast.BinaryOp, stats: Optional[TableStats]) -> float:
    column, value, op = _orient_comparison(expr)
    if column is None:
        return DEFAULT_SELECTIVITY
    return _comparison_parts(column, value, op, stats)


def _orient_comparison(expr: ast.BinaryOp):
    """Normalize ``col <op> value`` / ``value <op> col`` to ``(col, value, op)``."""
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
    if isinstance(expr.left, ast.Column):
        return expr.left, expr.right, expr.op
    if isinstance(expr.right, ast.Column):
        return expr.right, expr.left, flipped.get(expr.op, expr.op)
    return None, None, expr.op


def _comparison_parts(
    column: ast.Expression,
    value: Optional[ast.Expression],
    op: str,
    stats: Optional[TableStats],
) -> float:
    if not isinstance(column, ast.Column):
        return DEFAULT_SELECTIVITY
    column_stats = stats.column(column.name) if stats is not None else None
    literal = _literal_value(value)
    if op == "=":
        if (
            stats is not None
            and stats.ttid_column == column.name.lower()
            and literal is not None
            and stats.row_count
        ):
            return stats.tenant_rows.get(literal, 0) / stats.row_count
        if column_stats is None or column_stats.ndv == 0:
            return LIKE_PREFIX_SELECTIVITY
        if literal is not None and column_stats.values is not None:
            if literal not in column_stats.values:
                return 0.0
        return 1.0 / column_stats.ndv
    if op == "<>":
        if column_stats is None or column_stats.ndv == 0:
            return 1.0 - LIKE_PREFIX_SELECTIVITY
        return 1.0 - 1.0 / column_stats.ndv
    if op in ("<", "<=", ">", ">="):
        if column_stats is None or literal is None:
            return DEFAULT_SELECTIVITY
        fraction = _range_fraction(
            column_stats.min_value, column_stats.max_value, literal
        )
        if fraction is None:
            return DEFAULT_SELECTIVITY
        return fraction if op in ("<", "<=") else 1.0 - fraction
    return DEFAULT_SELECTIVITY


def _in_list_selectivity(expr: ast.InList, stats: Optional[TableStats]) -> float:
    target = expr.expr
    chosen = DEFAULT_SELECTIVITY
    if isinstance(target, ast.Column):
        column_stats = stats.column(target.name) if stats is not None else None
        values = [_literal_value(item) for item in expr.items]
        if (
            stats is not None
            and stats.ttid_column == target.name.lower()
            and stats.row_count
            and all(value is not None for value in values)
        ):
            kept = sum(stats.tenant_rows.get(value, 0) for value in values)
            chosen = kept / stats.row_count
        elif column_stats is not None and column_stats.ndv:
            if column_stats.values is not None and all(
                value is not None for value in values
            ):
                matching = sum(1 for value in values if value in column_stats.values)
            else:
                matching = len(expr.items)
            chosen = min(1.0, matching / column_stats.ndv)
        else:
            chosen = min(1.0, len(expr.items) * LIKE_PREFIX_SELECTIVITY)
    return 1.0 - chosen if expr.negated else chosen


def _null_fraction(
    expr: ast.Expression,
    stats: Optional[TableStats],
    proven: Optional[frozenset] = None,
) -> float:
    if isinstance(expr, ast.Column):
        # A proven-NOT-NULL column is exact, not an estimate: the analyzer
        # guarantees no stored value is NULL, so IS NULL keeps nothing.
        if proven is not None and expr.name.lower() in proven:
            return 0.0
        if stats is not None and stats.row_count:
            column_stats = stats.column(expr.name)
            if column_stats is not None:
                return column_stats.null_count / stats.row_count
    return 0.05


def _literal_value(expr: Optional[ast.Expression]):
    if isinstance(expr, ast.Literal):
        return expr.value
    return None


def _range_fraction(low, high, value) -> Optional[float]:
    """Fraction of ``[low, high]`` below ``value`` (linear interpolation)."""
    if low is None or high is None:
        return None
    low, high, value = _as_ordinal(low), _as_ordinal(high), _as_ordinal(value)
    try:
        if value <= low:
            return 0.0
        if value >= high:
            return 1.0
        span = high - low
        return (value - low) / span
    except (TypeError, ZeroDivisionError):
        return None


def _as_ordinal(value):
    """A subtractable stand-in for interpolation (dates become day counts)."""
    days = getattr(value, "days", None)
    return days if days is not None else value


# ---------------------------------------------------------------------------
# Binding resolution (shared by estimates and pushdown derivation)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Binding:
    """One FROM-clause binding of a SELECT."""

    name: str  # lower-cased binding (alias or table name)
    table: Optional[str]  # lower-cased base table, None for derived tables
    columns: Optional[frozenset[str]]  # visible column names, None if unknown
    subquery: Optional[ast.Select] = None


def _flatten_from(items: Iterable[ast.FromItem]) -> list[ast.FromItem]:
    flat: list[ast.FromItem] = []
    for item in items:
        if isinstance(item, ast.Join):
            flat.extend(_flatten_from([item.left, item.right]))
        else:
            flat.append(item)
    return flat


def _select_bindings(
    select: ast.Select, columns_of: Mapping[str, Sequence[str]]
) -> dict[str, _Binding]:
    bindings: dict[str, _Binding] = {}
    for item in _flatten_from(select.from_items):
        if isinstance(item, ast.TableRef):
            table = item.name.lower()
            known = columns_of.get(table)
            bindings[item.binding.lower()] = _Binding(
                name=item.binding.lower(),
                table=table,
                columns=(
                    frozenset(column.lower() for column in known)
                    if known is not None
                    else None
                ),
            )
        elif isinstance(item, ast.SubqueryRef):
            outputs: Optional[set[str]] = set()
            for select_item in item.query.items:
                if select_item.alias is not None:
                    outputs.add(select_item.alias.lower())
                elif isinstance(select_item.expr, ast.Column):
                    outputs.add(select_item.expr.name.lower())
                else:
                    outputs = None
                    break
            bindings[item.binding.lower()] = _Binding(
                name=item.binding.lower(),
                table=None,
                columns=frozenset(outputs) if outputs is not None else None,
                subquery=item.query,
            )
    return bindings


def _resolve_column(
    column: ast.Column, bindings: Mapping[str, _Binding]
) -> Optional[_Binding]:
    """The unique binding a column reference resolves to, or ``None``."""
    if column.table is not None:
        return bindings.get(column.table.lower())
    name = column.name.lower()
    matches = [
        binding
        for binding in bindings.values()
        if binding.columns is not None and name in binding.columns
    ]
    unknown = any(binding.columns is None for binding in bindings.values())
    if len(matches) == 1 and not unknown:
        return matches[0]
    return None


def _attributed_conjuncts(
    select: ast.Select, bindings: Mapping[str, _Binding]
) -> tuple[dict[str, list[ast.Expression]], list[ast.Expression]]:
    """Split WHERE conjuncts into per-binding lists plus the leftovers.

    A conjunct belongs to a binding when every column reference in it (not
    descending into sub-queries) resolves to that binding.
    """
    per_binding: dict[str, list[ast.Expression]] = {}
    rest: list[ast.Expression] = []
    for conjunct in ast.split_conjuncts(select.where):
        owners: set[Optional[str]] = set()
        for node in walk_expression(conjunct):
            if isinstance(node, ast.Column):
                binding = _resolve_column(node, bindings)
                owners.add(binding.name if binding is not None else None)
        if len(owners) == 1 and None not in owners:
            per_binding.setdefault(next(iter(owners)), []).append(conjunct)
        else:
            rest.append(conjunct)
    return per_binding, rest


# ---------------------------------------------------------------------------
# Plan estimates (EXPLAIN)
# ---------------------------------------------------------------------------


@dataclass
class PlanEstimate:
    """One node of an estimated plan tree.

    ``rows`` is the estimated output cardinality, ``cost`` an abstract
    rows-processed figure accumulated bottom-up.  Scan nodes carry the base
    ``table`` and the conjunction of single-table predicates attributed to
    it (``predicate``), which is what the estimator-regression tests replay
    as ``SELECT COUNT(*)`` probes.
    """

    kind: str
    label: str
    rows: float
    cost: float
    table: Optional[str] = None
    predicate: Optional[ast.Expression] = None
    children: tuple["PlanEstimate", ...] = ()

    def lines(self, indent: int = 0) -> list[str]:
        """The indented one-line-per-node rendering of this subtree."""
        head = (
            f"{'  ' * indent}{self.kind} {self.label}  "
            f"rows≈{self.rows:.0f} cost≈{self.cost:.0f}"
        )
        rendered = [head]
        for child in self.children:
            rendered.extend(child.lines(indent + 1))
        return rendered

    def render(self) -> str:
        """The whole estimate tree as text."""
        return "\n".join(self.lines())

    def scans(self) -> list["PlanEstimate"]:
        """Every base-table scan node in this subtree."""
        found = [self] if self.kind == "scan" and self.table is not None else []
        for child in self.children:
            found.extend(child.scans())
        return found


def estimate_select(
    select: ast.Select,
    statistics: Optional[StatisticsCatalog],
    columns_of: Optional[Mapping[str, Sequence[str]]] = None,
    proven_not_null: Optional[Mapping[str, frozenset]] = None,
) -> PlanEstimate:
    """Build the estimated plan tree of one SELECT.

    ``columns_of`` (base table → column names) sharpens unqualified-column
    resolution; when omitted it is reconstructed from the statistics.
    ``proven_not_null`` (lower-cased base table → lower-cased column names)
    carries the static analyzer's nullability proof so ``IS NULL`` scans
    get exact rather than estimated selectivities.
    """
    if columns_of is None:
        columns_of = {
            name: tuple(table.columns) for name, table in (
                statistics.tables.items() if statistics is not None else ()
            )
        }
    bindings = _select_bindings(select, columns_of)
    per_binding, rest = _attributed_conjuncts(select, bindings)

    sources: list[PlanEstimate] = []
    for item in _flatten_from(select.from_items):
        binding = bindings.get(item.binding.lower()) if item.binding else None
        conjuncts = per_binding.get(binding.name, []) if binding is not None else []
        predicate = ast.and_(*conjuncts)
        if isinstance(item, ast.TableRef):
            table_stats = (
                statistics.table(item.name) if statistics is not None else None
            )
            base = float(table_stats.row_count) if table_stats else DEFAULT_TABLE_ROWS
            proven = (
                proven_not_null.get(item.name.lower())
                if proven_not_null is not None
                else None
            )
            selectivity = predicate_selectivity(predicate, table_stats, proven)
            sources.append(
                PlanEstimate(
                    kind="scan",
                    label=item.binding,
                    rows=max(base * selectivity, 0.0),
                    cost=base,
                    table=item.name.lower(),
                    predicate=predicate,
                )
            )
        elif isinstance(item, ast.SubqueryRef):
            child = estimate_select(item.query, statistics, columns_of, proven_not_null)
            selectivity = predicate_selectivity(predicate, None)
            sources.append(
                PlanEstimate(
                    kind="derived",
                    label=item.binding,
                    rows=max(child.rows * selectivity, 0.0),
                    cost=child.cost,
                    predicate=predicate,
                    children=(child,),
                )
            )
    if not sources:
        sources = [PlanEstimate(kind="values", label="constant", rows=1.0, cost=0.0)]

    node = sources[0]
    joined = {sources[0].label.lower()}
    for source in sources[1:]:
        joined.add(source.label.lower())
        rows = node.rows * source.rows
        consumed = 0
        for conjunct in rest:
            ndv = _equi_join_ndv(conjunct, joined, bindings, statistics)
            if ndv is not None:
                rows /= max(ndv, 1.0)
                consumed += 1
        rows = max(rows, 1.0)
        node = PlanEstimate(
            kind="join",
            label=f"{node.label}⋈{source.label}",
            rows=rows,
            cost=node.cost + source.cost + rows,
            children=(node, source),
        )
    unconsumed = [
        conjunct
        for conjunct in rest
        if _equi_join_ndv(conjunct, joined, bindings, statistics) is None
    ]
    if unconsumed and len(sources) > 1:
        factor = DEFAULT_SELECTIVITY ** len(unconsumed)
        node = PlanEstimate(
            kind="filter",
            label=f"{len(unconsumed)} residual",
            rows=max(node.rows * factor, 0.0),
            cost=node.cost,
            children=(node,),
        )

    has_aggregates = any(
        isinstance(sub, ast.FunctionCall) and sub.is_aggregate
        for item in select.items
        for sub in walk_expression(item.expr)
    )
    if select.group_by:
        groups = 1.0
        for expr in select.group_by:
            groups *= _group_ndv(expr, bindings, statistics)
        rows = min(node.rows, max(groups, 1.0))
        node = PlanEstimate(
            kind="aggregate",
            label=f"group by {len(select.group_by)}",
            rows=rows,
            cost=node.cost + node.rows,
            children=(node,),
        )
    elif has_aggregates:
        node = PlanEstimate(
            kind="aggregate",
            label="scalar",
            rows=1.0,
            cost=node.cost + node.rows,
            children=(node,),
        )
    if select.having is not None:
        node = PlanEstimate(
            kind="having",
            label="filter",
            rows=max(node.rows * DEFAULT_SELECTIVITY, 1.0),
            cost=node.cost,
            children=(node,),
        )
    if select.distinct:
        node = PlanEstimate(
            kind="distinct",
            label="hash",
            rows=node.rows,
            cost=node.cost + node.rows,
            children=(node,),
        )
    if select.order_by:
        sort_cost = node.rows * math.log2(node.rows + 2.0)
        node = PlanEstimate(
            kind="order",
            label=f"{len(select.order_by)} keys",
            rows=node.rows,
            cost=node.cost + sort_cost,
            children=(node,),
        )
    if select.limit is not None:
        node = PlanEstimate(
            kind="limit",
            label=str(select.limit),
            rows=min(node.rows, float(select.limit)),
            cost=node.cost,
            children=(node,),
        )
    return node


def _equi_join_ndv(
    conjunct: ast.Expression,
    joined: set[str],
    bindings: Mapping[str, _Binding],
    statistics: Optional[StatisticsCatalog],
) -> Optional[float]:
    """For an equi-join conjunct between joined bindings, the divisor NDV."""
    if not (
        isinstance(conjunct, ast.BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ast.Column)
        and isinstance(conjunct.right, ast.Column)
    ):
        return None
    sides = []
    for column in (conjunct.left, conjunct.right):
        binding = _resolve_column(column, bindings)
        if binding is None or binding.name not in joined:
            return None
        sides.append((binding, column))
    if sides[0][0].name == sides[1][0].name:
        return None
    ndvs = []
    for binding, column in sides:
        ndv = _column_ndv(binding, column.name, statistics)
        if ndv is not None:
            ndvs.append(ndv)
    return float(max(ndvs)) if ndvs else 10.0


def _column_ndv(
    binding: _Binding, column: str, statistics: Optional[StatisticsCatalog]
) -> Optional[int]:
    if statistics is None or binding.table is None:
        return None
    table_stats = statistics.table(binding.table)
    if table_stats is None:
        return None
    column_stats = table_stats.column(column)
    return column_stats.ndv if column_stats is not None else None


def _group_ndv(
    expr: ast.Expression,
    bindings: Mapping[str, _Binding],
    statistics: Optional[StatisticsCatalog],
) -> float:
    if isinstance(expr, ast.Column):
        binding = _resolve_column(expr, bindings)
        if binding is not None:
            ndv = _column_ndv(binding, expr.name, statistics)
            if ndv is not None:
                return float(max(ndv, 1))
    return 10.0


# ---------------------------------------------------------------------------
# Federated pushdown derivation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TablePrefilter:
    """A predicate soundly pushable into the per-shard pull of one table.

    ``predicate`` is expressed over the table's raw (unqualified) columns;
    any sub-query inside it references replicated tables only, so it
    evaluates identically on every shard.  ``selectivity`` is the estimated
    kept fraction (1.0 when no statistics were available).
    """

    table: str
    predicate: ast.Expression
    selectivity: float = 1.0

    def describe(self) -> str:
        """Short ``table(≈fraction)`` rendering for plan summaries."""
        return f"{self.table}(≈{self.selectivity:.2f})"


def derive_table_prefilters(
    select: ast.Select,
    catalog: ClusterCatalog,
    columns_of: Mapping[str, Sequence[str]],
    statistics: Optional[StatisticsCatalog] = None,
    config: Optional[CostConfig] = None,
) -> tuple[TablePrefilter, ...]:
    """Derive the predicates a federated plan may push into its table pulls.

    **Soundness rule.**  The scratch backend holds one copy of each pulled
    table and runs the *original* statement against it, so a row may only be
    skipped when **every** occurrence of the table (across all nested
    sub-queries) provably rejects it.  Per occurrence the implied filter is
    the conjunction of

    * WHERE conjuncts of the enclosing SELECT whose column references all
      resolve to that occurrence, where any nested sub-query references
      replicated tables only (replicas are identical on every shard, so the
      predicate evaluates to the same verdict at pull time as at query
      time), and
    * synthesized semi-joins ``col IN (SELECT key FROM g WHERE …)`` from
      equi-join equivalence classes that connect the occurrence to a
      replicated table ``g`` carrying its own single-table predicates —
      including one propagation step through a derived table whose output
      column passes the joined column through (un-aggregated, or as a
      GROUP BY key, never under a LIMIT).

    The per-table pushed predicate is the OR across occurrences; a single
    unfiltered occurrence vetoes the table.  With statistics, filters whose
    estimated selectivity exceeds ``config.prefilter_max_selectivity`` are
    dropped (not worth the per-shard evaluation).
    """
    config = config if config is not None else CostConfig()
    occurrences: dict[str, list[Optional[ast.Expression]]] = {}
    propagated: dict[tuple[int, str], list[ast.Expression]] = {}

    for sub_select in walk_selects(select):
        bindings = _select_bindings(sub_select, columns_of)
        per_binding, _ = _attributed_conjuncts(sub_select, bindings)
        classes = _equi_classes(sub_select, bindings)
        semi_joins = _synthesize_semi_joins(
            sub_select, bindings, per_binding, classes, catalog, propagated
        )
        for item in _flatten_from(sub_select.from_items):
            if not isinstance(item, ast.TableRef):
                continue
            table = item.name.lower()
            if table not in catalog.relations:
                continue
            binding = bindings[item.binding.lower()]
            parts: list[ast.Expression] = []
            for conjunct in per_binding.get(binding.name, []):
                if _pushable_conjunct(conjunct, catalog, columns_of):
                    parts.append(_strip_qualifiers(conjunct, binding.name))
            parts.extend(semi_joins.get(binding.name, []))
            parts.extend(propagated.get((id(sub_select), binding.name), []))
            occurrences.setdefault(table, []).append(ast.and_(*parts))

    prefilters: list[TablePrefilter] = []
    for table in sorted(occurrences):
        filters = occurrences[table]
        if any(part is None for part in filters):
            continue
        predicate = filters[0]
        for part in filters[1:]:
            if ast.Node.to_sql(part) != ast.Node.to_sql(predicate):
                predicate = ast.BinaryOp("OR", predicate, part)
        table_stats = statistics.table(table) if statistics is not None else None
        selectivity = predicate_selectivity(predicate, table_stats)
        if table_stats is not None and selectivity > config.prefilter_max_selectivity:
            continue
        prefilters.append(
            TablePrefilter(table=table, predicate=predicate, selectivity=selectivity)
        )
    return tuple(prefilters)


def _equi_classes(
    select: ast.Select, bindings: Mapping[str, _Binding]
) -> list[set[tuple[str, str]]]:
    """Equivalence classes of ``(binding, column)`` under equi-join conjuncts."""
    classes: list[set[tuple[str, str]]] = []
    for conjunct in ast.split_conjuncts(select.where):
        if not (
            isinstance(conjunct, ast.BinaryOp)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.Column)
            and isinstance(conjunct.right, ast.Column)
        ):
            continue
        members = []
        for column in (conjunct.left, conjunct.right):
            binding = _resolve_column(column, bindings)
            if binding is None:
                members = []
                break
            members.append((binding.name, column.name.lower()))
        if len(members) != 2 or members[0] == members[1]:
            continue
        touched = [cls for cls in classes if cls & set(members)]
        merged = set(members)
        for cls in touched:
            merged |= cls
            classes.remove(cls)
        classes.append(merged)
    return classes


def _synthesize_semi_joins(
    select: ast.Select,
    bindings: Mapping[str, _Binding],
    per_binding: Mapping[str, list[ast.Expression]],
    classes: list[set[tuple[str, str]]],
    catalog: ClusterCatalog,
    propagated: dict[tuple[int, str], list[ast.Expression]],
) -> dict[str, list[ast.Expression]]:
    """Per-binding semi-join filters synthesized from join equivalence classes.

    Side effect: records filters propagated through derived tables into
    ``propagated`` (keyed by the derived sub-query's identity), consumed
    when the walk reaches that sub-query.
    """
    synthesized: dict[str, list[ast.Expression]] = {}
    for cls in classes:
        filtered_sources = []
        for member_binding, member_column in cls:
            binding = bindings.get(member_binding)
            if binding is None or binding.table is None:
                continue
            if not catalog.is_replicated_table(binding.table):
                continue
            conjuncts = [
                conjunct
                for conjunct in per_binding.get(member_binding, [])
                if _pushable_conjunct(conjunct, catalog, {})
            ]
            if conjuncts:
                filtered_sources.append((binding, member_column, conjuncts))
        if not filtered_sources:
            continue
        source_binding, source_column, source_conjuncts = filtered_sources[0]
        member_query = ast.Select(
            items=[ast.SelectItem(expr=ast.Column(name=source_column))],
            from_items=[ast.TableRef(name=source_binding.table)],
            where=ast.and_(
                *(
                    _strip_qualifiers(conjunct, source_binding.name)
                    for conjunct in source_conjuncts
                )
            ),
        )
        for member_binding, member_column in cls:
            binding = bindings.get(member_binding)
            if binding is None or binding.name == source_binding.name:
                continue
            semi_join = ast.InSubquery(
                expr=ast.Column(name=member_column), query=member_query
            )
            if binding.table is not None:
                synthesized.setdefault(binding.name, []).append(semi_join)
            elif binding.subquery is not None:
                _propagate_into_derived(
                    binding, member_column, member_query, propagated
                )
    return synthesized


def _propagate_into_derived(
    binding: _Binding,
    output_column: str,
    member_query: ast.Select,
    propagated: dict[tuple[int, str], list[ast.Expression]],
) -> None:
    """Push a semi-join one level into a derived table, when sound.

    Sound when the derived output column passes an inner base-table column
    through unchanged AND removing inner rows cannot reshape surviving
    output rows: the sub-query has no LIMIT, and either does not aggregate
    at all or groups by that very column (removed rows then only ever
    belong to removed groups).
    """
    query = binding.subquery
    if query is None or query.limit is not None:
        return
    inner_column: Optional[ast.Column] = None
    for item in query.items:
        name = item.alias or (
            item.expr.name if isinstance(item.expr, ast.Column) else None
        )
        if name is not None and name.lower() == output_column:
            if isinstance(item.expr, ast.Column):
                inner_column = item.expr
            break
    if inner_column is None:
        return
    has_aggregates = any(
        isinstance(sub, ast.FunctionCall) and sub.is_aggregate
        for item in query.items
        for sub in walk_expression(item.expr)
    )
    if query.group_by or has_aggregates:
        grouped = any(
            isinstance(expr, ast.Column)
            and expr.name.lower() == inner_column.name.lower()
            for expr in query.group_by
        )
        if not grouped:
            return
    inner_bindings = _select_bindings(query, {})
    target = (
        inner_bindings.get(inner_column.table.lower())
        if inner_column.table is not None
        else None
    )
    if target is None:
        candidates = [
            candidate
            for candidate in inner_bindings.values()
            if candidate.table is not None
        ]
        if len(candidates) != 1:
            return
        target = candidates[0]
    if target.table is None:
        return
    semi_join = ast.InSubquery(
        expr=ast.Column(name=inner_column.name), query=member_query
    )
    propagated.setdefault((id(query), target.name), []).append(semi_join)


def _pushable_conjunct(
    conjunct: ast.Expression,
    catalog: ClusterCatalog,
    columns_of: Mapping[str, Sequence[str]],
) -> bool:
    """Whether a single-binding conjunct may run at pull time on a shard.

    Requires every nested sub-query to reference replicated tables only and
    to be self-contained (no correlated references escaping the sub-query),
    and the conjunct to be parameter-free: a federated plan is memoized per
    statement, so a prefilter baked from one execution's bind values would
    silently filter the next execution's pull.
    """
    for node in walk_expression(conjunct):
        if isinstance(node, ast.Parameter):
            return False
        if isinstance(node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
            if not _replicated_only_subquery(node.query, catalog):
                return False
            if _contains_parameter(node.query):
                return False
    return True


def _contains_parameter(query: ast.Select) -> bool:
    for sub_select in walk_selects(query):
        for expr in _iter_all_expressions(sub_select):
            for node in walk_expression(expr):
                if isinstance(node, ast.Parameter):
                    return True
    return False


def _replicated_only_subquery(query: ast.Select, catalog: ClusterCatalog) -> bool:
    visible: set[str] = set()
    tables: set[str] = set()
    for sub_select in walk_selects(query):
        for item in _flatten_from(sub_select.from_items):
            if isinstance(item, ast.TableRef):
                if not catalog.is_replicated_table(item.name):
                    return False
                tables.add(item.name.lower())
                visible.add(item.binding.lower())
            elif isinstance(item, ast.SubqueryRef):
                visible.add(item.binding.lower())
    for sub_select in walk_selects(query):
        for expr in _iter_all_expressions(sub_select):
            for node in walk_expression(expr):
                if isinstance(node, ast.Column) and node.table is not None:
                    if node.table.lower() not in visible:
                        return False
    return True


def _iter_all_expressions(select: ast.Select):
    for item in select.items:
        yield item.expr
    if select.where is not None:
        yield select.where
    for expr in select.group_by:
        yield expr
    if select.having is not None:
        yield select.having
    for order in select.order_by:
        yield order.expr


def _strip_qualifiers(expr: ast.Expression, binding: str) -> ast.Expression:
    """Rewrite ``binding.col`` references to bare ``col`` (pull-query form)."""

    def strip(node: ast.Expression) -> Optional[ast.Expression]:
        if isinstance(node, ast.Column) and node.table is not None:
            if node.table.lower() == binding:
                return ast.Column(name=node.name)
        return None

    stripped = transform_expression(expr, strip)
    assert stripped is not None
    return stripped


# ---------------------------------------------------------------------------
# Projection pushdown
# ---------------------------------------------------------------------------


def referenced_column_names(
    statements: Iterable[ast.Select],
) -> Optional[frozenset[str]]:
    """Every column name referenced anywhere in the statements (lower-cased).

    Returns ``None`` when a ``*`` outside ``COUNT(*)`` makes the reference
    set unbounded — callers must then pull every column.  The analysis is
    deliberately name-based (not binding-resolved): a column is considered
    referenced for *every* table that has a column of that name, which can
    only over-pull, never under-pull.
    """
    names: set[str] = set()
    for statement in statements:
        for select in walk_selects(statement):
            for expr in _iter_all_expressions(select):
                if not _collect_names(expr, names):
                    return None
            for item in select.from_items:
                for condition in _join_conditions_of(item):
                    if not _collect_names(condition, names):
                        return None
    return frozenset(names)


def _join_conditions_of(item: ast.FromItem):
    if isinstance(item, ast.Join):
        if item.condition is not None:
            yield item.condition
        yield from _join_conditions_of(item.left)
        yield from _join_conditions_of(item.right)


def _collect_names(expr: Optional[ast.Expression], names: set[str]) -> bool:
    """Collect column names from one expression; ``False`` when a star blocks.

    Sub-query bodies are skipped — the enclosing ``walk_selects`` walk
    visits them as SELECTs of their own.
    """
    if expr is None:
        return True
    if isinstance(expr, ast.Star):
        return False
    if isinstance(expr, ast.Column):
        names.add(expr.name.lower())
        return True
    if isinstance(expr, ast.FunctionCall):
        if expr.name.upper() == "COUNT" and all(
            isinstance(argument, ast.Star) for argument in expr.args
        ):
            return True
        return all(_collect_names(argument, names) for argument in expr.args)
    if isinstance(expr, ast.BinaryOp):
        return _collect_names(expr.left, names) and _collect_names(expr.right, names)
    if isinstance(expr, ast.UnaryOp):
        return _collect_names(expr.operand, names)
    if isinstance(expr, ast.Case):
        return all(
            _collect_names(when.condition, names) and _collect_names(when.result, names)
            for when in expr.whens
        ) and _collect_names(expr.else_result, names)
    if isinstance(expr, ast.InList):
        return _collect_names(expr.expr, names) and all(
            _collect_names(item, names) for item in expr.items
        )
    if isinstance(expr, ast.InSubquery):
        return _collect_names(expr.expr, names)
    if isinstance(expr, (ast.Exists, ast.ScalarSubquery)):
        return True
    if isinstance(expr, ast.Between):
        return (
            _collect_names(expr.expr, names)
            and _collect_names(expr.low, names)
            and _collect_names(expr.high, names)
        )
    if isinstance(expr, ast.Like):
        return _collect_names(expr.expr, names) and _collect_names(expr.pattern, names)
    if isinstance(expr, ast.IsNull):
        return _collect_names(expr.expr, names)
    if isinstance(expr, ast.Extract):
        return _collect_names(expr.expr, names)
    if isinstance(expr, ast.Substring):
        return (
            _collect_names(expr.expr, names)
            and _collect_names(expr.start, names)
            and _collect_names(expr.length, names)
        )
    return True


def derive_pull_columns(
    statements: Iterable[ast.Select],
    columns_of: Mapping[str, Sequence[str]],
    always_keep: Optional[Mapping[str, Iterable[str]]] = None,
) -> Optional[dict[str, tuple[str, ...]]]:
    """Per-table column subsets a federated plan needs to pull.

    ``always_keep`` adds per-table must-pull columns (the ttid column of
    partitioned tables).  Returns ``None`` when projection pushdown is
    blocked (a bare ``*``), or a mapping with an entry per table whose
    column set genuinely shrank.
    """
    referenced = referenced_column_names(statements)
    if referenced is None:
        return None
    pulls: dict[str, tuple[str, ...]] = {}
    keep = always_keep or {}
    for table, columns in columns_of.items():
        forced = {column.lower() for column in keep.get(table, ())}
        chosen = tuple(
            column
            for column in columns
            if column.lower() in referenced or column.lower() in forced
        )
        if chosen and len(chosen) < len(columns):
            pulls[table] = chosen
    return pulls
