"""``MTConnection.explain()``: render a compilation as a pass-by-pass report.

The report is the user-facing window into the staged compiler: one line per
stage with wall time, AST size delta and fired-rule count, the shardability
verdict, the conversion-call census, and the SQL text after every stage —
rendered in a chosen :class:`~repro.sql.dialect.Dialect` so the printout
matches what the connection's backend would receive.  With
``MTConnection.explain(..., analyze=True)`` the report additionally carries
the executed statement's per-operator profile (batch counts, rows per
batch, wall time), so compile-side and execution-side cost sit in one
printout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..result import OperatorProfile
from ..sql.dialect import DEFAULT_DIALECT, Dialect
from ..sql.printer import to_sql
from .artifact import CompiledQuery
from .cost import PlanEstimate


@dataclass
class ExplainReport:
    """A compiled statement plus the dialect its SQL snapshots print in.

    ``operators`` is ``None`` for a compile-only report; an ``analyze`` run
    fills it with the statement's per-operator execution profile delta
    (which may legitimately be empty — e.g. a backend that does not record
    operator profiles).

    ``estimate`` is the cost model's estimated plan tree for the rewritten
    statement (``None`` when the backend exposes no statistics).  An
    ``analyze`` run also records ``actual_rows``, the executed statement's
    result cardinality, so the root estimate can be judged against reality.
    """

    compiled: CompiledQuery
    dialect: Optional[Dialect] = None
    operators: Optional[list[OperatorProfile]] = None
    estimate: Optional[PlanEstimate] = None
    actual_rows: Optional[int] = None

    @property
    def q_error(self) -> Optional[float]:
        """The root cardinality Q-error: max(est, actual) / min(est, actual).

        ``None`` without both an estimate and an analyzed run; estimates and
        actuals are floored at one row, the usual Q-error convention.
        """
        if self.estimate is None or self.actual_rows is None:
            return None
        estimated = max(self.estimate.rows, 1.0)
        actual = max(float(self.actual_rows), 1.0)
        return max(estimated, actual) / min(estimated, actual)

    # -- convenience accessors -------------------------------------------------

    @property
    def pass_trace(self) -> tuple[str, ...]:
        """The stage names that ran, in order."""
        return self.compiled.pass_trace

    def sql(self) -> str:
        """The final rewritten SQL in the report's dialect."""
        return to_sql(self.compiled.rewritten, self.dialect)

    # -- rendering -------------------------------------------------------------

    def render(self, include_sql: bool = True) -> str:
        """The full multi-line report (optionally without the SQL snapshots)."""
        compiled = self.compiled
        dialect = self.dialect if self.dialect is not None else DEFAULT_DIALECT
        analysis = compiled.analysis
        lines = [
            (
                f"MTSQL compilation: client={compiled.client} "
                f"D'={list(compiled.dataset)} level={compiled.level.value} "
                f"dialect={dialect.name}"
            ),
            f"statement: {to_sql(compiled.statement, self.dialect)}",
            "",
            f"{'stage':<14}{'time':>12}{'nodes':>8}{'delta':>8}{'fired':>8}",
        ]
        for record in compiled.passes:
            lines.append(
                f"{record.name:<14}{record.seconds * 1000.0:>10.3f}ms"
                f"{record.nodes_after:>8}{record.node_delta:>+8}{record.fired:>8}"
            )
        lines.append(
            f"{'total':<14}{compiled.seconds * 1000.0:>10.3f}ms"
            f"{compiled.passes[-1].nodes_after:>8}"
            f"{compiled.passes[-1].nodes_after - compiled.passes[0].nodes_before:>+8}"
            f"{sum(record.fired for record in compiled.passes[1:]):>8}"
        )
        lines.append("")
        lines.append(
            "conversion calls: "
            f"canonical={compiled.conversions.canonical_total} "
            f"final={compiled.conversions.final_total} "
            f"({_census_text(compiled.conversions.final)})"
        )
        lines.append(
            "analysis: "
            f"partition_safe={analysis.partition_safe} "
            f"aggregation={analysis.has_aggregation} "
            f"partitioned={list(analysis.partitioned)} "
            f"tables={list(analysis.tables)}"
        )
        if self.estimate is not None:
            lines.append("")
            lines.append("cost estimate (rewritten statement):")
            lines.extend(f"  {line}" for line in self.estimate.lines())
            if self.actual_rows is not None:
                lines.append(
                    f"  rows: estimated≈{self.estimate.rows:.0f} "
                    f"actual={self.actual_rows} q-error={self.q_error:.2f}"
                )
        if self.operators is not None:
            lines.append("")
            lines.append("execution profile (one analyzed run):")
            if self.operators:
                for profile in self.operators:
                    lines.append(f"  {profile.describe()}")
            else:
                lines.append("  (backend recorded no operator profiles)")
        if include_sql:
            for record in compiled.passes:
                lines.append("")
                lines.append(f"-- after {record.name}")
                lines.append(to_sql(record.snapshot, self.dialect))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _census_text(census: dict[str, int]) -> str:
    if not census:
        return "none"
    return ", ".join(f"{name}×{count}" for name, count in sorted(census.items()))
