"""A deterministic TPC-H-style data generator (the paper's modified ``dbgen``).

The generator produces the eight TPC-H tables at a configurable (micro) scale
factor, with value domains close enough to the original specification that
the 22 queries all select non-trivial result sets.  All monetary values and
phone numbers are generated in *universal* format (USD / no prefix); the
MT-H loader converts them into each owner's format when assigning records to
tenants, exactly like the paper's modified dbgen.

Row counts follow the TPC-H proportions::

    supplier = 10 000 x sf      part     = 200 000 x sf   partsupp = 4 x part
    customer = 150 000 x sf     orders   = 10 x customer  lineitem ~ 4 x orders

with small lower bounds so that micro scale factors still exercise every
query.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from ..sql.types import Date

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
)

TYPE_SYLLABLE_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
TYPE_SYLLABLE_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
TYPE_SYLLABLE_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")

CONTAINER_SYLLABLE_1 = ("SM", "MED", "LG", "JUMBO", "WRAP")
CONTAINER_SYLLABLE_2 = ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")

PART_NAME_WORDS = (
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched",
    "blue", "blush", "brown", "burlywood", "chartreuse", "chocolate", "coral", "cornsilk",
    "cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot",
    "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon", "light", "lime",
    "linen", "magenta", "maroon", "medium", "midnight", "mint", "misty", "moccasin",
    "navajo", "navy", "olive", "orange", "orchid", "pale", "papaya", "peach", "peru",
    "pink", "plum", "powder", "puff", "purple", "red", "rose", "rosy", "royal", "saddle",
    "salmon", "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
    "steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow",
)

MARKET_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
SHIP_INSTRUCTIONS = ("DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN")

COMMENT_WORDS = (
    "carefully", "quickly", "furiously", "slyly", "blithely", "ironic", "final", "regular",
    "express", "bold", "pending", "silent", "daring",
    "unusual", "even", "special", "requests", "deposits", "packages", "accounts",
    "instructions", "theodolites", "platelets", "foxes", "pinto", "beans", "ideas",
    "dependencies", "excuses", "customer", "complaints", "warhorses", "sheaves",
)

_CURRENT_DATE_START = Date.from_ymd(1992, 1, 1)
_ORDER_DATE_SPAN_DAYS = (Date.from_ymd(1998, 8, 2).days - _CURRENT_DATE_START.days)


@dataclass
class TPCHData:
    """Generated rows for the eight TPC-H tables (universal format)."""

    scale_factor: float
    region: list[tuple] = field(default_factory=list)
    nation: list[tuple] = field(default_factory=list)
    supplier: list[tuple] = field(default_factory=list)
    part: list[tuple] = field(default_factory=list)
    partsupp: list[tuple] = field(default_factory=list)
    customer: list[tuple] = field(default_factory=list)
    orders: list[tuple] = field(default_factory=list)
    lineitem: list[tuple] = field(default_factory=list)

    def table(self, name: str) -> list[tuple]:
        return getattr(self, name)

    def row_counts(self) -> dict[str, int]:
        return {
            name: len(self.table(name))
            for name in (
                "region", "nation", "supplier", "part", "partsupp",
                "customer", "orders", "lineitem",
            )
        }


@dataclass(frozen=True)
class GeneratorSizes:
    """Row counts derived from the scale factor."""

    suppliers: int
    parts: int
    customers: int
    orders_per_customer: int = 10

    @classmethod
    def for_scale(cls, scale_factor: float) -> "GeneratorSizes":
        return cls(
            suppliers=max(20, int(10_000 * scale_factor)),
            parts=max(50, int(200_000 * scale_factor)),
            customers=max(30, int(150_000 * scale_factor)),
        )


def generate(scale_factor: float = 0.001, seed: int = 20180326) -> TPCHData:
    """Generate a deterministic TPC-H data set at the given micro scale factor."""
    rng = random.Random(seed)
    sizes = GeneratorSizes.for_scale(scale_factor)
    data = TPCHData(scale_factor=scale_factor)

    _generate_region(data)
    _generate_nation(data)
    _generate_supplier(data, sizes, rng)
    _generate_part(data, sizes, rng)
    _generate_partsupp(data, sizes, rng)
    _generate_customer(data, sizes, rng)
    _generate_orders_and_lineitems(data, sizes, rng)
    return data


# ---------------------------------------------------------------------------
# per-table generators
# ---------------------------------------------------------------------------


def _comment(rng: random.Random, words: int) -> str:
    return " ".join(rng.choice(COMMENT_WORDS) for _ in range(words))


def _phone(nationkey: int, rng: random.Random) -> str:
    return (
        f"{nationkey + 10}-{rng.randint(100, 999)}-{rng.randint(100, 999)}-"
        f"{rng.randint(1000, 9999)}"
    )


def _generate_region(data: TPCHData) -> None:
    data.region = [
        (key, name, f"region {name.lower()}") for key, name in enumerate(REGIONS)
    ]


def _generate_nation(data: TPCHData) -> None:
    data.nation = [
        (key, name, regionkey, f"nation {name.lower()}")
        for key, (name, regionkey) in enumerate(NATIONS)
    ]


def _generate_supplier(data: TPCHData, sizes: GeneratorSizes, rng: random.Random) -> None:
    rows = []
    for suppkey in range(1, sizes.suppliers + 1):
        nationkey = rng.randrange(len(NATIONS))
        comment = _comment(rng, 8)
        if suppkey % 20 == 0:
            comment = "Customer " + comment + " Complaints"
        rows.append(
            (
                suppkey,
                f"Supplier#{suppkey:09d}",
                _comment(rng, 3),
                nationkey,
                _phone(nationkey, rng),
                round(rng.uniform(-999.99, 9999.99), 2),
                comment,
            )
        )
    data.supplier = rows


def _generate_part(data: TPCHData, sizes: GeneratorSizes, rng: random.Random) -> None:
    rows = []
    for partkey in range(1, sizes.parts + 1):
        name = " ".join(rng.sample(PART_NAME_WORDS, 5))
        manufacturer = rng.randint(1, 5)
        brand = f"Brand#{manufacturer}{rng.randint(1, 5)}"
        part_type = (
            f"{rng.choice(TYPE_SYLLABLE_1)} {rng.choice(TYPE_SYLLABLE_2)} "
            f"{rng.choice(TYPE_SYLLABLE_3)}"
        )
        container = f"{rng.choice(CONTAINER_SYLLABLE_1)} {rng.choice(CONTAINER_SYLLABLE_2)}"
        retail_price = round(900 + (partkey % 1000) * 0.1 + 100 * (partkey % 10), 2)
        rows.append(
            (
                partkey,
                name,
                f"Manufacturer#{manufacturer}",
                brand,
                part_type,
                rng.randint(1, 50),
                container,
                retail_price,
                _comment(rng, 3),
            )
        )
    data.part = rows


def _generate_partsupp(data: TPCHData, sizes: GeneratorSizes, rng: random.Random) -> None:
    rows = []
    for partkey in range(1, sizes.parts + 1):
        suppliers = set()
        for _ in range(4):
            suppkey = rng.randint(1, sizes.suppliers)
            if suppkey in suppliers:
                continue
            suppliers.add(suppkey)
            rows.append(
                (
                    partkey,
                    suppkey,
                    rng.randint(1, 9999),
                    round(rng.uniform(1.0, 1000.0), 2),
                    _comment(rng, 10),
                )
            )
    data.partsupp = rows


def _generate_customer(data: TPCHData, sizes: GeneratorSizes, rng: random.Random) -> None:
    rows = []
    for custkey in range(1, sizes.customers + 1):
        nationkey = rng.randrange(len(NATIONS))
        rows.append(
            (
                custkey,
                f"Customer#{custkey:09d}",
                _comment(rng, 3),
                nationkey,
                _phone(nationkey, rng),
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(MARKET_SEGMENTS),
                _comment(rng, 8),
            )
        )
    data.customer = rows


def _generate_orders_and_lineitems(
    data: TPCHData, sizes: GeneratorSizes, rng: random.Random
) -> None:
    orders = []
    lineitems = []
    orderkey = 0
    total_customers = sizes.customers
    for custkey in range(1, total_customers + 1):
        # roughly two thirds of customers have orders (TPC-H leaves a third
        # of the customer key space without orders, which Q13/Q22 rely on)
        if custkey % 3 == 0:
            continue
        for _ in range(max(1, sizes.orders_per_customer // 2 + rng.randint(0, sizes.orders_per_customer // 2))):
            orderkey += 1
            order_date = _CURRENT_DATE_START.add_days(rng.randint(0, _ORDER_DATE_SPAN_DAYS - 151))
            line_count = rng.randint(1, 7)
            total_price = 0.0
            order_lineitems = []
            for linenumber in range(1, line_count + 1):
                partkey = rng.randint(1, sizes.parts)
                suppkey = rng.randint(1, sizes.suppliers)
                quantity = rng.randint(1, 50)
                extended_price = round(quantity * (900 + (partkey % 1000) * 0.1), 2)
                discount = round(rng.uniform(0.0, 0.10), 2)
                tax = round(rng.uniform(0.0, 0.08), 2)
                ship_date = order_date.add_days(rng.randint(1, 121))
                commit_date = order_date.add_days(rng.randint(30, 90))
                receipt_date = ship_date.add_days(rng.randint(1, 30))
                if receipt_date.days <= Date.from_ymd(1995, 6, 17).days:
                    return_flag = rng.choice(("R", "A"))
                else:
                    return_flag = "N"
                line_status = "F" if ship_date.days <= Date.from_ymd(1995, 6, 17).days else "O"
                total_price += extended_price * (1 + tax) * (1 - discount)
                order_lineitems.append(
                    (
                        orderkey,
                        partkey,
                        suppkey,
                        linenumber,
                        float(quantity),
                        extended_price,
                        discount,
                        tax,
                        return_flag,
                        line_status,
                        ship_date,
                        commit_date,
                        receipt_date,
                        rng.choice(SHIP_INSTRUCTIONS),
                        rng.choice(SHIP_MODES),
                        _comment(rng, 4),
                    )
                )
            order_status = "F" if all(item[9] == "F" for item in order_lineitems) else (
                "O" if all(item[9] == "O" for item in order_lineitems) else "P"
            )
            comment = _comment(rng, 6)
            if orderkey % 25 == 0:
                comment = "special packages requests " + comment
            orders.append(
                (
                    orderkey,
                    custkey,
                    order_status,
                    round(total_price, 2),
                    order_date,
                    rng.choice(ORDER_PRIORITIES),
                    f"Clerk#{rng.randint(1, 1000):09d}",
                    0,
                    comment,
                )
            )
            lineitems.extend(order_lineitems)
    data.orders = orders
    data.lineitem = lineitems
