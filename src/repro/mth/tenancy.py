"""Tenant-share assignment for MT-H: uniform and zipfian distributions (§5).

The benchmark first generates a plain TPC-H data set, then assigns every
customer to a tenant; orders follow their customer and line items follow
their order, which preserves all foreign-key relationships per tenant.

Two distributions are supported:

* ``uniform`` — every tenant receives (roughly) the same number of customers,
* ``zipf``    — tenant 1 gets the largest share and tenant T the smallest,
  following a Zipf distribution with exponent ``s`` (default 1.0).
"""

from __future__ import annotations

from typing import Sequence


def tenant_shares(total: int, tenants: int, distribution: str = "uniform", s: float = 1.0) -> list[int]:
    """Number of records assigned to each tenant (index 0 = tenant 1).

    Every tenant receives at least one record as long as ``total >= tenants``.
    """
    if tenants <= 0:
        raise ValueError("tenants must be positive")
    if total < 0:
        raise ValueError("total must be non-negative")
    if distribution == "uniform":
        weights = [1.0] * tenants
    elif distribution == "zipf":
        weights = [1.0 / (rank ** s) for rank in range(1, tenants + 1)]
    else:
        raise ValueError(f"unknown tenant distribution {distribution!r}")
    weight_sum = sum(weights)
    shares = [int(total * weight / weight_sum) for weight in weights]
    if total >= tenants:
        for index in range(tenants):
            if shares[index] == 0:
                shares[index] = 1
    deficit = total - sum(shares)
    index = 0
    while deficit > 0:
        shares[index % tenants] += 1
        deficit -= 1
        index += 1
    while deficit < 0:
        index_max = max(range(tenants), key=lambda position: shares[position])
        if shares[index_max] <= 1:
            break
        shares[index_max] -= 1
        deficit += 1
    return shares


def assign_tenants(total: int, tenants: int, distribution: str = "uniform", s: float = 1.0) -> list[int]:
    """Per-record tenant assignment (record index -> ttid in ``1..tenants``).

    Records are assigned round-robin-within-share so that consecutive records
    spread across tenants, which keeps per-tenant value distributions similar.
    """
    shares = tenant_shares(total, tenants, distribution, s)
    assignment: list[int] = []
    remaining = list(shares)
    ttid = 0
    for _ in range(total):
        # advance to the next tenant that still has share left
        for offset in range(tenants):
            candidate = (ttid + offset) % tenants
            if remaining[candidate] > 0:
                ttid = candidate
                break
        else:
            ttid = 0
        remaining[ttid] -= 1
        assignment.append(ttid + 1)
        ttid = (ttid + 1) % tenants
    return assignment


def share_summary(shares: Sequence[int]) -> dict:
    """Small helper used by reports and tests."""
    return {
        "tenants": len(shares),
        "total": sum(shares),
        "min": min(shares) if shares else 0,
        "max": max(shares) if shares else 0,
    }
