"""Loading MT-H: build the multi-tenant database and the TPC-H baseline.

:func:`load_mth` generates one TPC-H data set, assigns customers (and their
orders and line items) to tenants, converts the convertible attributes into
each owner's format and loads everything into an :class:`~repro.core.MTBase`
instance.  :func:`load_tpch_baseline` loads the *same* generated data into a
plain single-tenant database, which is the comparison baseline used in all of
the paper's tables and figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..backends import (
    Backend,
    BackendConnection,
    ShardedBackend,
    as_backend_connection,
    create_backend,
)
from ..cluster.placement import PlacementPolicy
from ..core.middleware import MTBase
from ..errors import ClusterError
from . import conversions as conv
from .dbgen import TPCHData, generate
from .schema import CREATION_ORDER, MT_DDL, TENANT_SPECIFIC_TABLES, TTID_COLUMNS, plain_ddl
from .tenancy import assign_tenants

#: positions of convertible columns in the *logical* (generated) row layout
CONVERTIBLE_COLUMNS = {
    "customer": {"currency": (5,), "phone": (4,)},
    "orders": {"currency": (3,), "phone": ()},
    "lineitem": {"currency": (5,), "phone": ()},
}


@dataclass
class MTHInstance:
    """A loaded MT-H database plus the metadata the harness needs."""

    middleware: MTBase
    data: TPCHData
    tenants: int
    distribution: str
    scale_factor: float
    customer_tenants: list[int]

    @property
    def backend(self) -> BackendConnection:
        """The execution backend the instance was loaded into."""
        return self.middleware.backend

    @property
    def database(self):
        """Engine-backend shortcut (raises for other backends)."""
        return self.middleware.database


def load_mth(
    scale_factor: float = 0.001,
    tenants: int = 10,
    distribution: str = "uniform",
    profile: str = "postgres",
    seed: int = 20180326,
    data: Optional[TPCHData] = None,
    backend: Optional[Union[Backend, BackendConnection, str]] = None,
    shards: Optional[int] = None,
    placement: Optional[PlacementPolicy] = None,
) -> MTHInstance:
    """Generate (or reuse) TPC-H data and load it as a multi-tenant MT-H database.

    ``backend`` selects the execution backend (``"engine"``, ``"sqlite"``, a
    :class:`~repro.backends.Backend` or an open connection); the default is a
    fresh in-memory engine with the given UDF-caching ``profile``.

    ``shards`` (and/or an explicit ``placement`` policy) loads a
    *partitioned* MT-H instance instead: a
    :class:`~repro.backends.ShardedBackend` cluster of ``shards`` backends of
    the chosen family, with tenant-specific rows routed to their owner's
    shard and global tables replicated.  ``backend`` must then be a family
    name (``"engine"``/``"sqlite"``) or ``None``, since each shard needs its
    own fresh database.
    """
    if data is None:
        data = generate(scale_factor=scale_factor, seed=seed)
    if shards is not None or placement is not None:
        if backend is not None and not isinstance(backend, str):
            raise ClusterError(
                "a partitioned load builds one database per shard; pass the "
                "backend family as a name (e.g. backend='sqlite'), not an "
                "already-built backend"
            )
        family = backend if backend is not None else "engine"
        backend = ShardedBackend(
            shards=shards,
            placement=placement,
            profile=profile,
            backend_factory=lambda: create_backend(family, profile=profile),
        )
    middleware = MTBase(profile=profile, backend=backend)

    tenant_ids = list(range(1, tenants + 1))
    for ttid in tenant_ids:
        middleware.register_tenant(
            ttid,
            name=f"tenant-{ttid}",
            currency=conv.currency_for_tenant(ttid).code,
            phone_format=conv.phone_format_for_tenant(ttid).name,
        )
    conv.deploy_conversions(middleware, tenant_ids)

    for table in CREATION_ORDER:
        middleware.create_table(MT_DDL[table], ttid_column=TTID_COLUMNS.get(table))

    # global tables: loaded verbatim
    for table in CREATION_ORDER:
        if table in TENANT_SPECIFIC_TABLES:
            continue
        middleware.backend.insert_rows(table, data.table(table))

    # tenant-specific tables: assign customers to tenants, propagate to orders
    # and line items, convert convertible values into the owner's format
    customer_tenants = assign_tenants(len(data.customer), tenants, distribution)
    custkey_to_tenant = {
        row[0]: ttid for row, ttid in zip(data.customer, customer_tenants)
    }
    orderkey_to_tenant: dict[int, int] = {}

    middleware.backend.insert_rows(
        "customer",
        [
            _owned_row("customer", row, ttid)
            for row, ttid in zip(data.customer, customer_tenants)
        ],
    )

    order_rows = []
    for row in data.orders:
        ttid = custkey_to_tenant[row[1]]
        orderkey_to_tenant[row[0]] = ttid
        order_rows.append(_owned_row("orders", row, ttid))
    middleware.backend.insert_rows("orders", order_rows)

    middleware.backend.insert_rows(
        "lineitem",
        [
            _owned_row("lineitem", row, orderkey_to_tenant[row[0]])
            for row in data.lineitem
        ],
    )

    # the research scenario: every tenant may read every other tenant's data
    middleware.allow_cross_tenant_access()

    # seed the cost model: scan the freshly loaded tables once so the first
    # query plans against real statistics instead of collecting lazily
    middleware.backend.collect_statistics()

    return MTHInstance(
        middleware=middleware,
        data=data,
        tenants=tenants,
        distribution=distribution,
        scale_factor=data.scale_factor,
        customer_tenants=customer_tenants,
    )


def load_tpch_baseline(
    data: Optional[TPCHData] = None,
    scale_factor: float = 0.001,
    profile: str = "postgres",
    seed: int = 20180326,
    backend: Optional[Union[Backend, BackendConnection, str]] = None,
) -> BackendConnection:
    """Load the same data as a plain single-tenant TPC-H database."""
    if data is None:
        data = generate(scale_factor=scale_factor, seed=seed)
    connection = as_backend_connection(backend if backend is not None else "engine", profile=profile)
    for table in CREATION_ORDER:
        connection.execute(plain_ddl(table))
        connection.insert_rows(table, data.table(table))
    connection.collect_statistics()
    return connection


def _owned_row(table: str, row: tuple, ttid: int) -> tuple:
    """Prefix the ttid and convert convertible values into the owner's format."""
    values = list(row)
    for position in CONVERTIBLE_COLUMNS[table]["currency"]:
        values[position] = conv.money_from_universal(values[position], ttid)
    for position in CONVERTIBLE_COLUMNS[table]["phone"]:
        values[position] = conv.phone_from_universal(values[position], ttid)
    return (ttid, *values)
