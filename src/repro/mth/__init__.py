"""MT-H: the multi-tenant TPC-H derivative used to evaluate MTBase (§5)."""

from .conversions import (
    CURRENCIES,
    PHONE_FORMATS,
    currency_for_tenant,
    deploy_conversions,
    phone_format_for_tenant,
)
from .dbgen import TPCHData, generate
from .loader import MTHInstance, load_mth, load_tpch_baseline
from .queries import ALL_QUERY_IDS, CONVERSION_INTENSIVE, QUERIES, query_text
from .schema import GLOBAL_TABLES, MT_DDL, TENANT_SPECIFIC_TABLES, TTID_COLUMNS
from .tenancy import assign_tenants, tenant_shares
from .validation import ValidationReport, results_match, validate_queries

__all__ = [
    "CURRENCIES",
    "PHONE_FORMATS",
    "currency_for_tenant",
    "phone_format_for_tenant",
    "deploy_conversions",
    "TPCHData",
    "generate",
    "MTHInstance",
    "load_mth",
    "load_tpch_baseline",
    "QUERIES",
    "ALL_QUERY_IDS",
    "CONVERSION_INTENSIVE",
    "query_text",
    "GLOBAL_TABLES",
    "TENANT_SPECIFIC_TABLES",
    "MT_DDL",
    "TTID_COLUMNS",
    "assign_tenants",
    "tenant_shares",
    "ValidationReport",
    "results_match",
    "validate_queries",
]
