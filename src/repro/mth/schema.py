"""MT-H schema: TPC-H tables with MT-H's multi-tenancy annotations (§5).

``Nation``, ``Region``, ``Supplier``, ``Part`` and ``Partsupp`` are global
(common, publicly available knowledge); ``Customer``, ``Orders`` and
``Lineitem`` are tenant-specific.  Keys that reference tenant-specific tables
are tenant-specific attributes; monetary values (``c_acctbal``,
``o_totalprice``, ``l_extendedprice``) are convertible through the currency
pair and ``c_phone`` through the phone pair.  Everything else is comparable.
"""

from __future__ import annotations

#: column name of the invisible tenant id per tenant-specific table
TTID_COLUMNS = {
    "customer": "c_ttid",
    "orders": "o_ttid",
    "lineitem": "l_ttid",
}

GLOBAL_TABLES = ("region", "nation", "supplier", "part", "partsupp")
TENANT_SPECIFIC_TABLES = ("customer", "orders", "lineitem")
ALL_TABLES = GLOBAL_TABLES + TENANT_SPECIFIC_TABLES


MT_DDL: dict[str, str] = {
    "region": """
        CREATE TABLE region GLOBAL (
            r_regionkey INTEGER NOT NULL,
            r_name VARCHAR(25) NOT NULL,
            r_comment VARCHAR(152),
            CONSTRAINT pk_region PRIMARY KEY (r_regionkey)
        )""",
    "nation": """
        CREATE TABLE nation GLOBAL (
            n_nationkey INTEGER NOT NULL,
            n_name VARCHAR(25) NOT NULL,
            n_regionkey INTEGER NOT NULL,
            n_comment VARCHAR(152),
            CONSTRAINT pk_nation PRIMARY KEY (n_nationkey),
            CONSTRAINT fk_nation_region FOREIGN KEY (n_regionkey) REFERENCES region (r_regionkey)
        )""",
    "supplier": """
        CREATE TABLE supplier GLOBAL (
            s_suppkey INTEGER NOT NULL,
            s_name VARCHAR(25) NOT NULL,
            s_address VARCHAR(40) NOT NULL,
            s_nationkey INTEGER NOT NULL,
            s_phone VARCHAR(15) NOT NULL,
            s_acctbal DECIMAL(15,2) NOT NULL,
            s_comment VARCHAR(101),
            CONSTRAINT pk_supplier PRIMARY KEY (s_suppkey),
            CONSTRAINT fk_supplier_nation FOREIGN KEY (s_nationkey) REFERENCES nation (n_nationkey)
        )""",
    "part": """
        CREATE TABLE part GLOBAL (
            p_partkey INTEGER NOT NULL,
            p_name VARCHAR(55) NOT NULL,
            p_mfgr VARCHAR(25) NOT NULL,
            p_brand VARCHAR(10) NOT NULL,
            p_type VARCHAR(25) NOT NULL,
            p_size INTEGER NOT NULL,
            p_container VARCHAR(10) NOT NULL,
            p_retailprice DECIMAL(15,2) NOT NULL,
            p_comment VARCHAR(23),
            CONSTRAINT pk_part PRIMARY KEY (p_partkey)
        )""",
    "partsupp": """
        CREATE TABLE partsupp GLOBAL (
            ps_partkey INTEGER NOT NULL,
            ps_suppkey INTEGER NOT NULL,
            ps_availqty INTEGER NOT NULL,
            ps_supplycost DECIMAL(15,2) NOT NULL,
            ps_comment VARCHAR(199),
            CONSTRAINT fk_ps_part FOREIGN KEY (ps_partkey) REFERENCES part (p_partkey),
            CONSTRAINT fk_ps_supp FOREIGN KEY (ps_suppkey) REFERENCES supplier (s_suppkey)
        )""",
    "customer": """
        CREATE TABLE customer SPECIFIC (
            c_custkey INTEGER NOT NULL SPECIFIC,
            c_name VARCHAR(25) NOT NULL COMPARABLE,
            c_address VARCHAR(40) NOT NULL COMPARABLE,
            c_nationkey INTEGER NOT NULL COMPARABLE,
            c_phone VARCHAR(15) NOT NULL CONVERTIBLE @phoneToUniversal @phoneFromUniversal,
            c_acctbal DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
            c_mktsegment VARCHAR(10) NOT NULL COMPARABLE,
            c_comment VARCHAR(117) COMPARABLE,
            CONSTRAINT pk_customer PRIMARY KEY (c_custkey),
            CONSTRAINT fk_customer_nation FOREIGN KEY (c_nationkey) REFERENCES nation (n_nationkey)
        )""",
    "orders": """
        CREATE TABLE orders SPECIFIC (
            o_orderkey INTEGER NOT NULL SPECIFIC,
            o_custkey INTEGER NOT NULL SPECIFIC,
            o_orderstatus VARCHAR(1) NOT NULL COMPARABLE,
            o_totalprice DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
            o_orderdate DATE NOT NULL COMPARABLE,
            o_orderpriority VARCHAR(15) NOT NULL COMPARABLE,
            o_clerk VARCHAR(15) NOT NULL COMPARABLE,
            o_shippriority INTEGER NOT NULL COMPARABLE,
            o_comment VARCHAR(79) COMPARABLE,
            CONSTRAINT pk_orders PRIMARY KEY (o_orderkey),
            CONSTRAINT fk_orders_customer FOREIGN KEY (o_custkey) REFERENCES customer (c_custkey)
        )""",
    "lineitem": """
        CREATE TABLE lineitem SPECIFIC (
            l_orderkey INTEGER NOT NULL SPECIFIC,
            l_partkey INTEGER NOT NULL COMPARABLE,
            l_suppkey INTEGER NOT NULL COMPARABLE,
            l_linenumber INTEGER NOT NULL COMPARABLE,
            l_quantity DECIMAL(15,2) NOT NULL COMPARABLE,
            l_extendedprice DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
            l_discount DECIMAL(15,2) NOT NULL COMPARABLE,
            l_tax DECIMAL(15,2) NOT NULL COMPARABLE,
            l_returnflag VARCHAR(1) NOT NULL COMPARABLE,
            l_linestatus VARCHAR(1) NOT NULL COMPARABLE,
            l_shipdate DATE NOT NULL COMPARABLE,
            l_commitdate DATE NOT NULL COMPARABLE,
            l_receiptdate DATE NOT NULL COMPARABLE,
            l_shipinstruct VARCHAR(25) NOT NULL COMPARABLE,
            l_shipmode VARCHAR(10) NOT NULL COMPARABLE,
            l_comment VARCHAR(44) COMPARABLE,
            CONSTRAINT fk_lineitem_orders FOREIGN KEY (l_orderkey) REFERENCES orders (o_orderkey),
            CONSTRAINT fk_lineitem_part FOREIGN KEY (l_partkey) REFERENCES part (p_partkey),
            CONSTRAINT fk_lineitem_supp FOREIGN KEY (l_suppkey) REFERENCES supplier (s_suppkey)
        )""",
}


def plain_ddl(table: str) -> str:
    """The plain-SQL (TPC-H baseline) version of a table's DDL.

    Strips the MT-specific keywords so the statement can be executed directly
    on the engine for the single-tenant TPC-H comparison database.
    """
    text = MT_DDL[table]
    for keyword in (" GLOBAL", " SPECIFIC"):
        text = text.replace(keyword + " (", " (").replace(keyword + ",", ",").replace(
            keyword + "\n", "\n"
        )
    # drop conversion annotations
    for annotation in (
        " CONVERTIBLE @phoneToUniversal @phoneFromUniversal",
        " CONVERTIBLE @currencyToUniversal @currencyFromUniversal",
        " COMPARABLE",
    ):
        text = text.replace(annotation, "")
    return text


#: the order in which tables must be created / loaded (FK dependencies)
CREATION_ORDER = (
    "region",
    "nation",
    "supplier",
    "part",
    "partsupp",
    "customer",
    "orders",
    "lineitem",
)
