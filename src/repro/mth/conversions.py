"""MT-H conversion domains: currencies and phone formats (§5 of the paper).

Each tenant is assigned a currency and a phone format.  Tenant 1 always gets
the universal format for both (USD, no phone prefix) so that a client
connecting as tenant 1 sees results directly comparable to plain TPC-H.

The conversion functions are deployed exactly like the paper's Listings 4-7:
as SQL-bodied UDFs looking up the ``Tenant`` / ``CurrencyTransform`` /
``PhoneTransform`` meta tables.  For the inlining optimization, constant-time
look-up helpers (``mt_currency_rate_*``, ``mt_phone_prefix``) are registered
as immutable Python UDFs — they play the role of the meta-table join the
paper inlines into the query.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.conversion import ConversionPair, make_currency_pair, make_phone_pair
from ..core.middleware import MTBase


@dataclass(frozen=True)
class Currency:
    """One currency: conversion rates to and from the universal format (USD)."""

    key: int
    code: str
    to_universal: float  # value_in_currency * to_universal = value_in_usd

    @property
    def from_universal(self) -> float:
        return 1.0 / self.to_universal


@dataclass(frozen=True)
class PhoneFormat:
    """One phone format: the dialling prefix prepended to universal numbers."""

    key: int
    name: str
    prefix: str


#: the universal currency is USD (rate 1.0); rates are deliberately static —
#: the paper makes the same simplification (footnote 4)
CURRENCIES: tuple[Currency, ...] = (
    Currency(0, "USD", 1.0),
    Currency(1, "EUR", 1.10),
    Currency(2, "GBP", 1.28),
    Currency(3, "CHF", 1.05),
    Currency(4, "JPY", 0.0067),
    Currency(5, "CAD", 0.74),
    Currency(6, "AUD", 0.66),
    Currency(7, "CNY", 0.14),
    Currency(8, "INR", 0.012),
    Currency(9, "BRL", 0.19),
)

#: the universal phone format has no prefix
PHONE_FORMATS: tuple[PhoneFormat, ...] = (
    PhoneFormat(0, "universal", ""),
    PhoneFormat(1, "plus", "+"),
    PhoneFormat(2, "double-zero", "00"),
    PhoneFormat(3, "us-exit", "011"),
    PhoneFormat(4, "au-exit", "0011"),
    PhoneFormat(5, "jp-exit", "010"),
)


def currency_for_tenant(ttid: int) -> Currency:
    """Deterministic currency assignment; tenant 1 gets the universal format."""
    if ttid == 1:
        return CURRENCIES[0]
    return CURRENCIES[(ttid * 7 + 3) % len(CURRENCIES)]


def phone_format_for_tenant(ttid: int) -> PhoneFormat:
    """Deterministic phone-format assignment; tenant 1 gets the universal format."""
    if ttid == 1:
        return PHONE_FORMATS[0]
    return PHONE_FORMATS[(ttid * 5 + 1) % len(PHONE_FORMATS)]


# ---------------------------------------------------------------------------
# Deployment on an MTBase instance
# ---------------------------------------------------------------------------

META_TABLES_DDL = (
    """CREATE TABLE Tenant (
        T_tenant_key INTEGER NOT NULL,
        T_currency_key INTEGER NOT NULL,
        T_phone_prefix_key INTEGER NOT NULL,
        CONSTRAINT pk_tenant PRIMARY KEY (T_tenant_key)
    )""",
    """CREATE TABLE CurrencyTransform (
        CT_currency_key INTEGER NOT NULL,
        CT_code VARCHAR(3) NOT NULL,
        CT_to_universal DECIMAL(15,6) NOT NULL,
        CT_from_universal DECIMAL(15,6) NOT NULL,
        CONSTRAINT pk_ct PRIMARY KEY (CT_currency_key)
    )""",
    """CREATE TABLE PhoneTransform (
        PT_phone_prefix_key INTEGER NOT NULL,
        PT_prefix VARCHAR(5) NOT NULL,
        CONSTRAINT pk_pt PRIMARY KEY (PT_phone_prefix_key)
    )""",
)

CURRENCY_TO_UNIVERSAL_SQL = (
    "SELECT CT_to_universal * $1 FROM Tenant, CurrencyTransform "
    "WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key"
)
CURRENCY_FROM_UNIVERSAL_SQL = (
    "SELECT CT_from_universal * $1 FROM Tenant, CurrencyTransform "
    "WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key"
)
PHONE_TO_UNIVERSAL_SQL = (
    "SELECT SUBSTRING($1 FROM CHAR_LENGTH(PT_prefix) + 1) FROM Tenant, PhoneTransform "
    "WHERE T_tenant_key = $2 AND T_phone_prefix_key = PT_phone_prefix_key"
)
PHONE_FROM_UNIVERSAL_SQL = (
    "SELECT CONCAT(PT_prefix, $1) FROM Tenant, PhoneTransform "
    "WHERE T_tenant_key = $2 AND T_phone_prefix_key = PT_phone_prefix_key"
)


def deploy_conversions(middleware: MTBase, tenants: list[int]) -> dict[str, ConversionPair]:
    """Create meta tables, UDFs and conversion pairs for the given tenants.

    Deployment goes through the backend protocol, so the same Listings-4-7
    UDFs land on whichever DBMS backs the middleware (the engine evaluates
    the SQL bodies natively, the SQLite backend registers them via
    ``sqlite3.create_function``).
    """
    backend = middleware.backend
    for ddl in META_TABLES_DDL:
        backend.execute(ddl)

    backend.insert_rows(
        "CurrencyTransform",
        [
            (currency.key, currency.code, currency.to_universal, currency.from_universal)
            for currency in CURRENCIES
        ],
    )
    backend.insert_rows(
        "PhoneTransform",
        [(phone.key, phone.prefix) for phone in PHONE_FORMATS],
    )
    backend.insert_rows(
        "Tenant",
        [
            (ttid, currency_for_tenant(ttid).key, phone_format_for_tenant(ttid).key)
            for ttid in tenants
        ],
    )

    backend.register_sql_function(
        "currencyToUniversal", CURRENCY_TO_UNIVERSAL_SQL, immutable=True
    )
    backend.register_sql_function(
        "currencyFromUniversal", CURRENCY_FROM_UNIVERSAL_SQL, immutable=True
    )
    backend.register_sql_function("phoneToUniversal", PHONE_TO_UNIVERSAL_SQL, immutable=True)
    backend.register_sql_function(
        "phoneFromUniversal", PHONE_FROM_UNIVERSAL_SQL, immutable=True
    )

    # O(1) look-up helpers used by the inlined form of the conversions
    rates_to = {ttid: currency_for_tenant(ttid).to_universal for ttid in tenants}
    rates_from = {ttid: currency_for_tenant(ttid).from_universal for ttid in tenants}
    prefixes = {ttid: phone_format_for_tenant(ttid).prefix for ttid in tenants}
    backend.register_python_function(
        "mt_currency_rate_to_universal", rates_to.__getitem__, immutable=True
    )
    backend.register_python_function(
        "mt_currency_rate_from_universal", rates_from.__getitem__, immutable=True
    )
    backend.register_python_function("mt_phone_prefix", prefixes.__getitem__, immutable=True)

    currency_pair = make_currency_pair()
    phone_pair = make_phone_pair()
    middleware.register_conversion_pair(currency_pair)
    middleware.register_conversion_pair(phone_pair)
    return {"currency": currency_pair, "phone": phone_pair}


# ---------------------------------------------------------------------------
# Plain-Python converters used by the data generator / loader
# ---------------------------------------------------------------------------


def money_from_universal(value: float, ttid: int) -> float:
    """Convert a USD amount into the tenant's currency (generator-side)."""
    return round(value * currency_for_tenant(ttid).from_universal, 4)


def money_to_universal(value: float, ttid: int) -> float:
    return round(value * currency_for_tenant(ttid).to_universal, 4)


def phone_from_universal(value: str, ttid: int) -> str:
    return phone_format_for_tenant(ttid).prefix + value


def phone_to_universal(value: str, ttid: int) -> str:
    prefix = phone_format_for_tenant(ttid).prefix
    return value[len(prefix):] if prefix and value.startswith(prefix) else value
