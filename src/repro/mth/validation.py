"""MT-H result validation (§5, "query validation").

With ``C = 1`` (tenant 1 uses the universal formats) and ``D`` covering every
tenant, an MT-H query must produce the same result as the plain TPC-H query
over the same generated data — the MT-H loader only re-owns and re-formats
the rows, it never changes their information content.  This module compares
the two result sets with a numeric tolerance (conversion round trips go
through floating point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.client import MTConnection
from ..backends import BackendConnection
from ..result import QueryResult
from ..sql.types import Date
from .queries import ALL_QUERY_IDS, query_text


@dataclass
class ValidationReport:
    """Outcome of validating one or more MT-H queries against the baseline."""

    passed: list[int] = field(default_factory=list)
    failed: dict[int, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        if self.ok:
            return f"all {len(self.passed)} queries validated"
        failures = ", ".join(f"Q{query_id}" for query_id in sorted(self.failed))
        return f"{len(self.passed)} queries validated, failures: {failures}"


def normalize_value(value, tolerance: float = 1e-4):
    """Round floats and render dates so results can be compared order-insensitively."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return round(value, 2)
    if isinstance(value, Date):
        return str(value)
    return value


def results_match(
    left: QueryResult, right: QueryResult, tolerance: float = 1e-2
) -> Optional[str]:
    """Compare two results; returns ``None`` on match or a mismatch description."""
    if len(left.rows) != len(right.rows):
        return f"row count differs: {len(left.rows)} vs {len(right.rows)}"
    if left.rows and len(left.rows[0]) != len(right.rows[0]):
        return f"column count differs: {len(left.rows[0])} vs {len(right.rows[0])}"
    for index, (left_row, right_row) in enumerate(zip(left.rows, right.rows)):
        for position, (left_value, right_value) in enumerate(zip(left_row, right_row)):
            if not _values_close(left_value, right_value, tolerance):
                return (
                    f"row {index}, column {position}: {left_value!r} != {right_value!r}"
                )
    return None


def _values_close(left, right, tolerance: float) -> bool:
    if left is None or right is None:
        return left is None and right is None
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        scale = max(1.0, abs(float(left)), abs(float(right)))
        return abs(float(left) - float(right)) <= tolerance * scale
    return normalize_value(left) == normalize_value(right)


def validate_queries(
    connection: MTConnection,
    baseline: BackendConnection,
    query_ids: tuple[int, ...] = ALL_QUERY_IDS,
    tolerance: float = 1e-2,
) -> ValidationReport:
    """Run MT-H queries through the middleware and compare with the baseline.

    ``connection`` must be opened as tenant 1 with an all-tenant scope so that
    results come back in universal format (§5).
    """
    report = ValidationReport()
    for query_id in query_ids:
        text = query_text(query_id)
        try:
            mt_result = connection.query(text)
            baseline_result = baseline.query(text)
        except Exception as exc:  # pragma: no cover - surfaced in the report
            report.failed[query_id] = f"execution error: {exc}"
            continue
        mismatch = results_match(mt_result, baseline_result, tolerance)
        if mismatch is None:
            report.passed.append(query_id)
        else:
            report.failed[query_id] = mismatch
    return report
