"""The PEP 249 cursor: parameterized execution and incremental fetching.

A :class:`Cursor` submits statements through its connection's target and
presents results the DB-API way:

* SELECT results arrive as a :class:`~repro.result.RowStream` —
  ``fetchone``/``fetchmany`` pull rows as they are produced, so on streaming
  backends the first rows are available before the full result set exists,
* everything else sets :attr:`Cursor.rowcount` from the statement result,
* :attr:`Cursor.description` is the PEP 249 7-tuple list (only the column
  name is known; the middleware is type-agnostic, the remaining six fields
  are ``None``).

``executemany`` re-executes one parameterized statement per binding vector —
the canonical bulk-insert path; through a gateway session the statement is
compiled once and each binding only pays execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Optional, Sequence

from ..errors import BackendError, NotSupportedError
from ..result import QueryResult, RowStream, StatementResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .connection import Connection

#: PEP 249 description entry: (name, type_code, display_size, internal_size,
#: precision, scale, null_ok) — all but the name unknown to the middleware
DescriptionRow = tuple


class Cursor:
    """A PEP 249 cursor over one repro execution target.

    Cursors are cheap, single-threaded objects; open as many as needed from
    one connection.  They are context managers and iterable (yielding row
    tuples after an ``execute`` that produced a result set).
    """

    def __init__(self, connection: "Connection") -> None:
        self.connection = connection
        #: default ``fetchmany`` batch size (PEP 249; mutable per cursor)
        self.arraysize = 1
        self._closed = False
        self._stream: Optional[RowStream] = None
        self._description: Optional[list[DescriptionRow]] = None
        self._rowcount = -1

    # -- PEP 249 read-only attributes ----------------------------------------

    @property
    def description(self) -> Optional[list[DescriptionRow]]:
        """Column 7-tuples of the last result set (``None`` for non-SELECT)."""
        return self._description

    @property
    def rowcount(self) -> int:
        """Rows affected (DML) or produced so far (SELECT; -1 until known).

        On the streaming path the total is unknown until the stream is
        exhausted; the attribute then settles on the number of rows the
        cursor actually produced.
        """
        return self._rowcount

    # -- execution -----------------------------------------------------------

    def execute(self, operation: str, parameters: Optional[Any] = None) -> "Cursor":
        """Execute one statement, optionally binding ``?``/``:name`` values.

        ``parameters`` is a positional sequence or a ``{name: value}``
        mapping.  Returns the cursor itself (the common convenience), so
        ``for row in cursor.execute(...)`` works.
        """
        self._check_open()
        self._reset()
        result = self.connection._run(operation, parameters)
        self._install(result)
        return self

    def executemany(
        self, operation: str, seq_of_parameters: Sequence[Any]
    ) -> "Cursor":
        """Execute one parameterized statement once per binding vector.

        Rowcounts accumulate across the batch (the bulk-insert contract).
        Statements producing result sets are rejected — PEP 249 leaves that
        undefined and silently discarding rows would hide bugs.
        """
        self._check_open()
        self._reset()
        total = 0
        for parameters in seq_of_parameters:
            result = self.connection._run(operation, parameters)
            if isinstance(result, (RowStream, QueryResult)):
                if isinstance(result, RowStream):
                    result.close()
                raise NotSupportedError(
                    "executemany() with a statement returning rows; "
                    "use execute() per binding instead"
                )
            total += result.rowcount
        self._rowcount = total
        return self

    # -- fetching ------------------------------------------------------------

    def fetchone(self) -> Optional[tuple]:
        """The next row of the result set, or ``None`` when exhausted."""
        stream = self._require_result()
        row = stream.fetch()
        if row is None:
            self._rowcount = stream.rows_produced
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        """Up to ``size`` rows (default :attr:`arraysize`); ``[]`` at the end.

        On streaming backends this is the incremental path: each call pulls
        just enough rows from the producer, never the full result set.
        """
        stream = self._require_result()
        batch = stream.fetchmany(self.arraysize if size is None else size)
        if not batch:
            self._rowcount = stream.rows_produced
        return batch

    def fetchall(self) -> list[tuple]:
        """Every remaining row of the result set."""
        stream = self._require_result()
        rows = list(stream)
        self._rowcount = stream.rows_produced
        return rows

    def __iter__(self) -> Iterator[tuple]:
        """Iterate over the remaining rows (PEP 249 extension)."""
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- PEP 249 no-ops ------------------------------------------------------

    def setinputsizes(self, sizes: Sequence[Any]) -> None:
        """No-op (PEP 249 allows it): the driver does not predeclare types."""

    def setoutputsize(self, size: int, column: Optional[int] = None) -> None:
        """No-op (PEP 249 allows it): column buffers are not preallocated."""

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the open result stream and detach from the connection."""
        if self._closed:
            return
        self._closed = True
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        self.connection._forget(self)

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Cursor({self.connection._target.description}, {state})"

    # -- internals -----------------------------------------------------------

    def _install(self, result) -> None:
        """Adopt one execution result as the cursor's current state."""
        if isinstance(result, RowStream):
            self._stream = result
            self._description = [
                (name, None, None, None, None, None, None) for name in result.columns
            ]
            self._rowcount = -1
        elif isinstance(result, QueryResult):
            # a target that had to materialize: replay the finished rows
            self._stream = RowStream(columns=result.columns, rows=result.rows)
            self._description = [
                (name, None, None, None, None, None, None) for name in result.columns
            ]
            self._rowcount = -1
        elif isinstance(result, StatementResult):
            self._rowcount = result.rowcount
        else:  # pragma: no cover - targets only return the shapes above
            raise BackendError(
                f"unexpected execution result {type(result).__name__}"
            )

    def _reset(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        self._description = None
        self._rowcount = -1

    def _require_result(self) -> RowStream:
        self._check_open()
        if self._stream is None:
            raise BackendError(
                "no result set: the previous statement produced none (or "
                "execute() has not been called on this cursor)"
            )
        return self._stream

    def _check_open(self) -> None:
        if self._closed:
            raise BackendError("this cursor is closed")
