"""repro.api — a PEP 249 (DB-API 2.0) driver surface for the MTBase repro.

MTBase is a *middleware/driver*: clients submit (MT)SQL through a thin layer
that rewrites it once and executes it many times.  This package is that
driver shaped the way Python database tooling expects::

    import repro.api

    connection = repro.api.connect(gateway, client=3, scope="IN ()")
    cursor = connection.cursor()
    cursor.execute(
        "SELECT l_returnflag, SUM(l_quantity) FROM lineitem "
        "WHERE l_shipdate <= ? GROUP BY l_returnflag",
        (repro.api.Date(1998, 9, 2),),
    )
    for row in cursor:
        ...

:func:`connect` fronts every existing entry point — an
:class:`~repro.core.middleware.MTBase` middleware, a
:class:`~repro.gateway.gateway.QueryGateway` or one of its sessions, a bare
:class:`~repro.core.client.MTConnection`, or any execution backend
(``"engine"``, ``"sqlite"``, ``"sharded:2"``, a ``Backend`` /
``BackendConnection``) — behind one :class:`Connection` → :class:`Cursor`
surface with bind parameters and incremental ``fetchmany`` streaming.

Module globals follow PEP 249: :data:`apilevel`, :data:`threadsafety`,
:data:`paramstyle` and the exception hierarchy (aliases onto
:mod:`repro.errors`, so library code keeps raising its native types and both
spellings catch them).  See ``docs/api.md`` for the full mapping table,
per-backend paramstyle notes and streaming semantics.
"""

from __future__ import annotations

from ..errors import (
    BackendError,
    ConstraintViolation,
    ExecutionError,
    InvalidStatementError,
    ParameterError,
    ReproError,
    SQLError,
    TypeMismatchError,
)
from ..errors import NotSupportedError as _NotSupportedError
from ..sql.types import Date as _Date
from .connection import Connection, connect
from .cursor import Cursor

#: DB-API level implemented (PEP 249).
apilevel = "2.0"

#: Threads may share the module, but not connections: only the gateway path
#: serializes statements internally — direct MTConnection and bare-backend
#: targets do not, so sharing a connection needs external locking.
threadsafety = 1

#: Positional placeholders are ``qmark`` (``?`` / ``?NNN``); ``named``
#: (``:name``) parameters are accepted as well — see ``docs/api.md``.
paramstyle = "qmark"


# -- PEP 249 exception hierarchy (aliases onto repro.errors) -----------------

#: PEP 249 ``Warning`` — this driver never raises it, exported for tooling.
Warning = UserWarning  # noqa: A001 - PEP 249 mandates the name

#: Base class of every error the driver raises.
Error = ReproError

#: Driver misuse: wrong target type, closed connection/cursor, bad routing.
InterfaceError = BackendError

#: Anything the database layers reject at compile or execution time.
DatabaseError = SQLError

#: Value/type problems inside expressions.
DataError = TypeMismatchError

#: Statement failures during execution.
OperationalError = ExecutionError

#: Declared-constraint violations reported by a backend.
IntegrityError = ConstraintViolation

#: The driver has no separate "internal error" class; alias of
#: :data:`DatabaseError` (keeping PEP 249's hierarchy intact).
InternalError = SQLError

#: Bad SQL or bad bind values (``InvalidStatementError`` / ``ParameterError``
#: both subclass it).
ProgrammingError = SQLError

#: Operations the middleware deliberately does not provide.
NotSupportedError = _NotSupportedError


# -- PEP 249 type constructors ----------------------------------------------


def Date(year: int, month: int, day: int) -> _Date:
    """Construct a date bind value (PEP 249 ``Date(year, month, day)``)."""
    return _Date.from_ymd(year, month, day)


def DateFromTicks(ticks: float) -> _Date:
    """Construct a date bind value from a POSIX timestamp."""
    import time as _time

    struct = _time.localtime(ticks)
    return _Date.from_ymd(struct.tm_year, struct.tm_mon, struct.tm_mday)


def Binary(data) -> bytes:
    """Construct a binary bind value (stored as ``bytes``)."""
    return bytes(data)


__all__ = [
    "apilevel",
    "threadsafety",
    "paramstyle",
    "connect",
    "Connection",
    "Cursor",
    "Date",
    "DateFromTicks",
    "Binary",
    "Warning",
    "Error",
    "InterfaceError",
    "DatabaseError",
    "DataError",
    "OperationalError",
    "IntegrityError",
    "InternalError",
    "ProgrammingError",
    "NotSupportedError",
    "InvalidStatementError",
    "ParameterError",
]
